// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Figure 2: the three coupled failure modes of a 9-layer GCN on
// a Cora-like graph, per training epoch —
//   (a) MAD of the learned features           (over-smoothing),
//   (b) gradient norm at the output layer     (gradient vanishing),
//   (c) total L2 norm of the model weights    (weight over-decaying),
// for the vanilla model and each plug-and-play strategy. Expected shape:
// only the SkipNode rows keep all three quantities healthy.

#include <vector>

#include "bench_common.h"
#include "train/dynamics.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("fig2");

  Graph graph = BuildDatasetByName(
      "cora_like", bench::Pick(0.25, 1.0), /*seed=*/1);
  Rng split_rng(1);
  Split split = PublicSplit(graph, 20, bench::Pick(150, 500),
                            bench::Pick(200, 1000), split_rng);

  const int epochs = bench::Pick(120, 400);
  const int stride = epochs / 10;

  struct Row {
    const char* label;
    StrategyConfig strategy;
    DynamicsRecord record;
  };
  std::vector<Row> rows = {
      {"GCN", StrategyConfig::None(), {}},
      {"GCN(DropEdge)", StrategyConfig::DropEdge(0.3f), {}},
      {"GCN(DropNode)", StrategyConfig::DropNode(0.3f), {}},
      {"GCN(PairNorm)", StrategyConfig::PairNorm(1.0f), {}},
      {"GCN(SkipNode-U)", StrategyConfig::SkipNodeU(bench::Pick(0.9f, 0.7f)), {}},
      {"GCN(SkipNode-B)", StrategyConfig::SkipNodeB(bench::Pick(0.9f, 0.7f)), {}},
  };

  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = bench::Pick(48, 64);
  config.out_dim = graph.num_classes();
  // The paper uses 9 layers on full-size Cora. The shrunk smoke graph
  // tolerates 9 layers, so smoke mode deepens to 16 to reproduce the same
  // collapse regime.
  config.num_layers = bench::Pick(16, 9);
  config.dropout = bench::Pick(0.2f, 0.5f);

  TrainOptions options;
  options.epochs = epochs;
  options.weight_decay = 5e-4f;
  options.seed = 7;

  for (Row& row : rows) {
    bench::CellRecorder recorder(row.label);
    recorder.Param("strategy", StrategyName(row.strategy.kind))
        .Param("rate", static_cast<double>(row.strategy.rate))
        .Param("layers", config.num_layers)
        .Param("epochs", epochs);
    Rng rng(7);
    auto model = MakeModel("GCN", config, rng);
    row.record =
        TrainWithDynamics(*model, graph, split, row.strategy, options);
    recorder.Record("final_val_accuracy",
                    100.0 * row.record.val_accuracy.back());
    recorder.Record("final_mad", row.record.mad.back());
    std::printf("trained %-16s (L=%d) final val acc %.1f%%\n", row.label,
                config.num_layers,
                100.0f * row.record.val_accuracy.back());
    std::fflush(stdout);
  }

  const auto print_panel = [&](const char* title,
                               const std::vector<float> DynamicsRecord::*
                                   series) {
    std::printf("\n-- %s --\n%-16s", title, "epoch");
    for (int e = 0; e < epochs; e += stride) std::printf(" %9d", e);
    std::printf("\n");
    for (const Row& row : rows) {
      std::printf("%-16s", row.label);
      for (int e = 0; e < epochs; e += stride) {
        std::printf(" %9.4f", (row.record.*series)[e]);
      }
      std::printf("\n");
    }
  };

  print_panel("(a) MAD of learned features (0 = fully over-smoothed)",
              &DynamicsRecord::mad);
  print_panel("(b) gradient norm at the first layer's weights",
              &DynamicsRecord::first_layer_gradient_norm);
  print_panel("(b') ||dL/dZ|| at the classification layer",
              &DynamicsRecord::output_gradient_norm);
  print_panel("(c) sum of weight L2 norms", &DynamicsRecord::weight_norm);

  std::printf(
      "\nExpected shape (paper Fig. 2): vanilla/DropNode/PairNorm rows show "
      "MAD ~ 0, vanishing gradients and shrinking weights; SkipNode rows "
      "keep all three healthy.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
