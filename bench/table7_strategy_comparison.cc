// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Table 7: head-to-head comparison of all five plug-and-play
// strategies (DropEdge, DropNode, PairNorm, SkipNode-U, SkipNode-B) on
// Cora-like with GCN and IncepGCN backbones at L in {3,5,7,9}. Expected
// shape: SkipNode variants are the best at every depth; DropNode collapses
// on the plain GCN at L >= 7.

#include <string>
#include <vector>

#include "base/result_table.h"

#include "bench_common.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("table7");

  Graph graph =
      BuildDatasetByName("cora_like", bench::Pick(0.25, 1.0), /*seed=*/10);
  Rng split_rng(10);
  Split split = PublicSplit(graph, 20, bench::Pick(150, 500),
                            bench::Pick(250, 1000), split_rng);

  struct StrategyRow {
    const char* label;
    StrategyConfig config;
  };
  const std::vector<StrategyRow> strategies = {
      {"-", StrategyConfig::None()},
      {"DropEdge", StrategyConfig::DropEdge(0.3f)},
      {"DropNode", StrategyConfig::DropNode(0.3f)},
      {"PairNorm", StrategyConfig::PairNorm(1.0f)},
      {"SkipNode-U", StrategyConfig::SkipNodeU(0.6f)},
      {"SkipNode-B", StrategyConfig::SkipNodeB(0.6f)},
  };
  const std::vector<int> depths = {3, 5, 7, 9};
  const int epochs = bench::Pick(70, 300);
  const int hidden = bench::Pick(32, 64);

  for (const std::string& backbone : {std::string("GCN"),
                                      std::string("IncepGCN")}) {
    std::printf("\n--- backbone: %s ---\n", backbone.c_str());
    std::vector<std::string> columns = {"strategy"};
    for (const int depth : depths) {
      columns.push_back("L=" + std::to_string(depth));
    }
    ResultTable table(columns);
    table.StreamTo(stdout);
    for (const StrategyRow& strategy : strategies) {
      std::vector<std::string> row = {strategy.label};
      for (const int depth : depths) {
        const double acc = bench::RunCell(
            backbone, graph, split, strategy.config, depth, hidden, epochs,
            /*seed=*/11, /*dropout=*/0.4f);
        row.push_back(ResultTable::Cell(acc));
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf(
      "\nExpected shape (paper Table 7): SkipNode rows dominate every "
      "depth; DropNode destabilises the plain GCN at L>=7; PairNorm and "
      "DropEdge offer small or no gains.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
