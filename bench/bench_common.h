// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared plumbing for the table/figure reproduction binaries. Every binary
// reads its configuration from one place — BenchConfig::FromEnv() — instead
// of scattering getenv calls:
//   SKIPNODE_BENCH_SCALE   smoke (default) | paper — shrunk vs full protocol
//   SKIPNODE_BENCH_GUARD   run every cell under the health guardrails (§8)
//   SKIPNODE_BENCH_TRACE   print per-epoch loss/accuracy for every cell
//   SKIPNODE_BENCH_THREADS override the worker-pool thread count
//   SKIPNODE_BENCH_JSON    append one JSONL record per cell to this path
//                          (enables telemetry so each record carries a
//                          per-cell kernel-level snapshot)
//   SKIPNODE_SIMD          1 (default) | 0 — runtime kill-switch for the
//                          vectorized kernels (DESIGN §14)
//
// Unrecognised values abort with a message naming the variable — a typo'd
// SKIPNODE_BENCH_SCALE=papr must not silently record a smoke run as if it
// were the requested one.
//
// A binary calls Begin("table3") once, then either goes through RunCell /
// RunCellTuned (which record their cell automatically) or constructs a
// CellRecorder by hand for custom metrics.

#ifndef SKIPNODE_BENCH_BENCH_COMMON_H_
#define SKIPNODE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/strategies.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "train/trainer.h"

namespace skipnode::bench {

enum class Scale { kSmoke, kPaper };

// Everything the bench harness reads from the environment, parsed once.
struct BenchConfig {
  Scale scale = Scale::kSmoke;
  bool guard = false;         // SKIPNODE_BENCH_GUARD
  bool trace = false;         // SKIPNODE_BENCH_TRACE
  int threads = 0;            // SKIPNODE_BENCH_THREADS; 0 keeps the default
  std::string json_path;      // SKIPNODE_BENCH_JSON; empty disables
  bool simd = true;           // SKIPNODE_SIMD; false pins the scalar refs

  // Aborts (SKIPNODE_CHECK) on an unrecognised SKIPNODE_BENCH_SCALE or
  // SKIPNODE_SIMD value instead of silently falling back to the default.
  static BenchConfig FromEnv();
};

// The process-wide config, parsed from the environment on first use.
const BenchConfig& Config();

inline bool PaperScale() { return Config().scale == Scale::kPaper; }

// Picks the smoke or paper value.
template <typename T>
T Pick(T smoke, T paper) {
  return PaperScale() ? paper : smoke;
}

// Starts a bench binary: prints the banner, applies the thread override, and
// when SKIPNODE_BENCH_JSON is set opens the sink and enables telemetry so
// every cell record carries a kernel-level snapshot. `name` keys the JSONL
// records ("table3", "fig5", ...).
void Begin(const char* name);

// The sink opened by Begin, or nullptr when SKIPNODE_BENCH_JSON is unset.
std::FILE* JsonSink();

// Records one bench cell as a JSONL line:
//   {"bench":...,"cell":...,"scale":...,"threads":N,"params":{...},
//    "metric":...,"value":V,"elapsed_ns":E,"telemetry":{...}}
// Construction resets the telemetry registry (when enabled) and starts the
// cell clock, so elapsed_ns and the embedded snapshot cover exactly this
// cell. Everything is a no-op when no sink is open.
class CellRecorder {
 public:
  explicit CellRecorder(std::string cell);

  CellRecorder& Param(const std::string& key, const std::string& value);
  CellRecorder& Param(const std::string& key, const char* value);
  CellRecorder& Param(const std::string& key, double value);
  CellRecorder& Param(const std::string& key, int64_t value);
  CellRecorder& Param(const std::string& key, int value);

  // Appends one record for `metric`; may be called more than once per cell
  // (each call re-reads the clock and the telemetry snapshot).
  void Record(const std::string& metric, double value);

 private:
  std::string cell_;
  // Params pre-encoded as (key, raw JSON value) so Record can splice them
  // into any number of records.
  std::vector<std::pair<std::string, std::string>> params_;
  int64_t start_ns_ = 0;
};

// One node-classification training run: builds the model fresh and returns
// validation-selected test accuracy (%). Records the cell to the JSONL sink
// (metric "test_accuracy") when one is open.
double RunCell(const std::string& backbone, const Graph& graph,
               const Split& split, const StrategyConfig& strategy,
               int num_layers, int hidden, int epochs, uint64_t seed,
               float dropout = 0.5f, float weight_decay = 5e-4f);

// Best accuracy over a small rho grid — the paper tunes the strategy rate on
// the validation set; we mirror that cheaply with a fixed grid. Returns the
// test accuracy of the best-validation rho and records it (params include
// the winning rate).
double RunCellTuned(const std::string& backbone, const Graph& graph,
                    const Split& split, StrategyKind kind,
                    const std::vector<float>& rates, int num_layers,
                    int hidden, int epochs, uint64_t seed);

}  // namespace skipnode::bench

#endif  // SKIPNODE_BENCH_BENCH_COMMON_H_
