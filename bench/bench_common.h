// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared plumbing for the table/figure reproduction binaries. Every binary
// runs at one of two scales:
//   * smoke (default): shrunk datasets / epochs / run counts sized for a
//     single CPU core — the qualitative shapes of the paper still hold;
//   * paper (SKIPNODE_BENCH_SCALE=paper): the full protocol from DESIGN.md.

#ifndef SKIPNODE_BENCH_BENCH_COMMON_H_
#define SKIPNODE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/strategies.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "train/trainer.h"

namespace skipnode::bench {

inline bool PaperScale() {
  const char* env = std::getenv("SKIPNODE_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "paper") == 0;
}

// Picks the smoke or paper value.
template <typename T>
T Pick(T smoke, T paper) {
  return PaperScale() ? paper : smoke;
}

inline void PrintHeader(const char* title) {
  std::printf("==== %s ====\n", title);
  std::printf("scale: %s%s\n\n", PaperScale() ? "paper" : "smoke",
              PaperScale()
                  ? ""
                  : " (set SKIPNODE_BENCH_SCALE=paper for the full sweep)");
}

// One node-classification training run: builds the model fresh and returns
// validation-selected test accuracy (%).
inline double RunCell(const std::string& backbone, const Graph& graph,
                      const Split& split, const StrategyConfig& strategy,
                      int num_layers, int hidden, int epochs, uint64_t seed,
                      float dropout = 0.5f, float weight_decay = 5e-4f) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = num_layers;
  config.dropout = dropout;

  // Benches can watch any cell live by exporting SKIPNODE_BENCH_TRACE=1;
  // the callback observes only (it never touches the Rng), so tracing does
  // not change any reported number. SKIPNODE_BENCH_GUARD=1 runs every cell
  // under the numerical-health guardrails (DESIGN §8) — also a no-op on the
  // numbers: the scans are pure reads and no fault ever fires in a bench,
  // so guarded cells are bitwise identical to unguarded ones.
  TrainRun run;
  run.options.epochs = epochs;
  run.options.eval_every = 2;
  run.options.weight_decay = weight_decay;
  run.options.seed = seed;
  if (std::getenv("SKIPNODE_BENCH_TRACE") != nullptr) {
    run.on_epoch = [](int epoch, double loss, double val, double test) {
      std::printf("    epoch %4d | loss %.4f | val %.2f%% | test %.2f%%\n",
                  epoch, loss, 100.0 * val, 100.0 * test);
    };
  }
  if (std::getenv("SKIPNODE_BENCH_GUARD") != nullptr) {
    run.health.enabled = true;
  }

  Rng rng(seed * 7919 + 13);
  auto model = MakeModel(backbone, config, rng);
  return 100.0 *
         TrainNodeClassifier(*model, graph, split, strategy, run)
             .test_accuracy;
}

// Best accuracy over a small rho grid — the paper tunes the strategy rate on
// the validation set; we mirror that cheaply with a fixed grid. Returns the
// test accuracy of the best-validation rho.
inline double RunCellTuned(const std::string& backbone, const Graph& graph,
                           const Split& split, StrategyKind kind,
                           const std::vector<float>& rates, int num_layers,
                           int hidden, int epochs, uint64_t seed) {
  double best_val = -1.0, best_test = 0.0;
  for (const float rate : rates) {
    StrategyConfig strategy;
    strategy.kind = kind;
    strategy.rate = rate;

    ModelConfig config;
    config.in_dim = graph.feature_dim();
    config.hidden_dim = hidden;
    config.out_dim = graph.num_classes();
    config.num_layers = num_layers;

    TrainRun run;
    run.options.epochs = epochs;
    run.options.eval_every = 2;
    run.options.seed = seed;

    Rng rng(seed * 7919 + 13);
    auto model = MakeModel(backbone, config, rng);
    const TrainResult result =
        TrainNodeClassifier(*model, graph, split, strategy, run);
    if (result.best_val_accuracy > best_val) {
      best_val = result.best_val_accuracy;
      best_test = result.test_accuracy;
    }
  }
  return 100.0 * best_test;
}

}  // namespace skipnode::bench

#endif  // SKIPNODE_BENCH_BENCH_COMMON_H_
