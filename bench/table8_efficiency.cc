// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Table 8: average training time per epoch of each strategy on
// Cora-like at L in {3,5,7,9}. Expected shape: DropEdge and DropNode pay a
// large premium (they re-normalise the adjacency every epoch — DropNode even
// per layer); SkipNode costs about as little as PairNorm, close to vanilla.
//
// All timing goes through the telemetry layer (base/telemetry.h): each
// timed region is a ScopedTimer and the per-epoch averages are read back
// from the aggregated snapshot, so this table uses the same clock and
// aggregation as every other instrumented kernel — and each cell's JSONL
// record (SKIPNODE_BENCH_JSON) carries the per-kernel breakdown (GEMM vs
// SpMM vs adjacency renormalisation) underneath the headline number.

#include <string>
#include <vector>

#include "base/result_table.h"
#include "base/telemetry.h"
#include "bench_common.h"
#include "core/skipnode.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

// Reads the per-completion average of `metric` (ms) from the current
// snapshot.
double SnapshotMillisPerCount(const char* metric) {
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  const MetricStat* stat = snapshot.Find(metric);
  if (stat == nullptr || stat->count == 0) return 0.0;
  return static_cast<double>(stat->total_ns) / 1e6 /
         static_cast<double>(stat->count);
}

// Isolates the per-epoch *strategy overhead*: adjacency sampling and
// renormalisation (DropEdge once per epoch, DropNode once per layer) or
// mask sampling (SkipNode once per middle layer). On the paper's GPU
// testbed this CPU-side cost dominates the strategy gap; on this pure-CPU
// build the dense convolutions are comparatively expensive, so the gap is
// clearest in this isolated column.
double OverheadMillisPerEpoch(const Graph& graph,
                              const StrategyConfig& strategy, int num_layers,
                              int epochs) {
  Rng rng(5);
  // Sink keeps the sampled structures observable so nothing is elided.
  volatile int64_t sink = 0;
  ResetTelemetry();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const ScopedTimer timer("bench.overhead");
    StrategyContext ctx(graph, strategy, /*training=*/true, rng);
    for (int l = 0; l < num_layers; ++l) {
      auto adjacency = ctx.LayerAdjacency(l);
      sink += adjacency->nnz();
    }
    if (strategy.kind == StrategyKind::kSkipNodeUniform) {
      for (int l = 1; l < num_layers - 1; ++l) {
        auto mask =
            SampleSkipMaskUniform(graph.num_nodes(), strategy.rate, rng);
        sink += mask.size();
      }
    } else if (strategy.kind == StrategyKind::kSkipNodeBiased) {
      for (int l = 1; l < num_layers - 1; ++l) {
        auto mask = SampleSkipMaskBiased(graph.degrees(), strategy.rate, rng);
        sink += mask.size();
      }
    }
  }
  return SnapshotMillisPerCount("bench.overhead");
}

// Times `epochs` full training steps (forward + backward + update).
double MillisPerEpoch(const std::string& backbone, const Graph& graph,
                      const Split& split, const StrategyConfig& strategy,
                      int num_layers, int hidden, int epochs) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = num_layers;
  config.dropout = 0.5f;

  Rng rng(3);
  auto model = MakeModel(backbone, config, rng);
  const std::vector<Parameter*> params = model->Parameters();
  Adam optimizer(0.01f, 5e-4f);

  const auto run_epoch = [&]() {
    Tape tape;
    StrategyContext ctx(graph, strategy, /*training=*/true, rng);
    Var logits = model->Forward(tape, graph, ctx, /*training=*/true, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, graph.labels(), split.train);
    Optimizer::ZeroGrad(params);
    tape.Backward(loss);
    optimizer.Step(params);
  };
  // Warm-up epoch (allocations, adjacency cache) excluded: the reset wipes
  // its timings along with whatever model construction recorded.
  run_epoch();
  ResetTelemetry();

  for (int epoch = 0; epoch < epochs; ++epoch) {
    const ScopedTimer timer("bench.epoch");
    run_epoch();
  }
  return SnapshotMillisPerCount("bench.epoch");
}

void Main() {
  bench::Begin("table8");
  // This bench *is* the timing instrument, so it runs with telemetry on
  // regardless of SKIPNODE_BENCH_JSON; the timers are off the numeric path
  // and this binary reports no accuracies.
  SetTelemetryEnabled(true);

  Graph graph =
      BuildDatasetByName("cora_like", bench::Pick(0.5, 1.0), /*seed=*/12);
  Rng split_rng(12);
  Split split = PublicSplit(graph, 20, 300, 500, split_rng);
  std::printf("graph: %d nodes, %d edges, hidden %d\n\n", graph.num_nodes(),
              graph.num_edges(), bench::Pick(32, 64));

  struct StrategyRow {
    const char* label;
    StrategyConfig config;
  };
  const std::vector<StrategyRow> strategies = {
      {"-", StrategyConfig::None()},
      {"DropEdge", StrategyConfig::DropEdge(0.3f)},
      {"DropNode", StrategyConfig::DropNode(0.3f)},
      {"PairNorm", StrategyConfig::PairNorm(1.0f)},
      {"SkipNode-U", StrategyConfig::SkipNodeU(0.5f)},
      {"SkipNode-B", StrategyConfig::SkipNodeB(0.5f)},
  };
  const std::vector<int> depths = {3, 5, 7, 9};
  const int timed_epochs = bench::Pick(20, 100);
  const int hidden = bench::Pick(32, 64);

  std::vector<std::string> columns = {"strategy"};
  for (const int depth : depths) {
    columns.push_back("L=" + std::to_string(depth));
  }

  ResultTable total_table(columns);
  total_table.StreamTo(stdout);
  for (const StrategyRow& strategy : strategies) {
    std::vector<std::string> row = {strategy.label};
    for (const int depth : depths) {
      bench::CellRecorder recorder(strategy.label);
      recorder.Param("strategy", StrategyName(strategy.config.kind))
          .Param("layers", depth)
          .Param("hidden", hidden)
          .Param("epochs", timed_epochs);
      const double ms = MillisPerEpoch("GCN", graph, split, strategy.config,
                                       depth, hidden, timed_epochs);
      recorder.Record("ms_per_epoch", ms);
      row.push_back(ResultTable::Cell(ms, 2));
    }
    total_table.AddRow(std::move(row));
  }

  std::printf("\nPer-epoch strategy overhead only (sampling + adjacency "
              "renormalisation, ms)\n");
  ResultTable overhead_table(columns);
  overhead_table.StreamTo(stdout);
  for (const StrategyRow& strategy : strategies) {
    std::vector<std::string> row = {strategy.label};
    for (const int depth : depths) {
      bench::CellRecorder recorder(strategy.label);
      recorder.Param("strategy", StrategyName(strategy.config.kind))
          .Param("layers", depth)
          .Param("epochs", timed_epochs * 3);
      const double ms = OverheadMillisPerEpoch(graph, strategy.config, depth,
                                               timed_epochs * 3);
      recorder.Record("overhead_ms_per_epoch", ms);
      row.push_back(ResultTable::Cell(ms, 3));
    }
    overhead_table.AddRow(std::move(row));
  }
  std::printf(
      "\nExpected shape (paper Table 8): in the overhead panel DropEdge and "
      "especially DropNode (per-layer renormalisation) cost orders of "
      "magnitude more than SkipNode's mask sampling or PairNorm (zero). The "
      "paper times GPU training where this CPU-side overhead dominates the "
      "end-to-end gap; on this all-CPU build the dense convolutions mask it "
      "in the total-time panel.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
