// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Serving latency/throughput under synthetic concurrent traffic (DESIGN
// §11). One SGC is trained once and frozen; then:
//   * eval_baseline — the pre-FrozenModel serving story: every request
//     re-runs the full eval-mode forward (EvaluateLogits over the whole
//     graph) and slices its rows. One request at a time, so this is the
//     O(graph)-per-request floor the serving layer must beat.
//   * serve — an InferenceServer fed by 1..8 (smoke) / 1..16 (paper)
//     client threads, each submitting fixed-size node-id batches through
//     the MPMC queue with the coalescing window on, plus a window-off cell
//     at the top client count to isolate what batching buys.
// Every cell records throughput_rps plus p50_us/p99_us client-observed
// latency as standard JSONL records; tools/validate_bench_jsonl.py asserts
// the 8-client batched throughput >= 2x the baseline.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/result_table.h"
#include "base/telemetry.h"
#include "bench_common.h"
#include "serve/inference_server.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

constexpr int kBatchIds = 4;  // node ids per request

// Deterministic per-(client, request) node-id batch; same stream the CLI
// traffic generator uses so the two surfaces exercise identical requests.
std::vector<int> RequestIds(int client, int request, int num_nodes) {
  Rng rng(9173 + 131 * static_cast<uint64_t>(client) + request);
  std::vector<int> ids(kBatchIds);
  for (int& id : ids) {
    id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
  }
  return ids;
}

double Percentile(std::vector<int64_t>& latencies_ns, double p) {
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const size_t index =
      std::min(latencies_ns.size() - 1,
               static_cast<size_t>(p * static_cast<double>(latencies_ns.size())));
  return static_cast<double>(latencies_ns[index]) / 1e3;
}

struct TrafficResult {
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double requests_per_batch = 0.0;
};

// Fires `clients` threads at a fresh server, each submitting
// `requests_per_client` batches and blocking on the result. Latency is
// client-observed: Submit() to logits() ready.
TrafficResult RunTraffic(const FrozenModel& frozen, int clients,
                         int requests_per_client, int window_us) {
  InferenceServer server(frozen, {.workers = 1,
                                  .max_batch_rows = 256,
                                  .batch_window_us = window_us});
  const int total = clients * requests_per_client;
  std::vector<int64_t> latencies_ns(static_cast<size_t>(total), 0);

  const int64_t start_ns = MonotonicNanos();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < requests_per_client; ++r) {
        const std::vector<int> ids =
            RequestIds(c, r, frozen.num_nodes());
        const int64_t submit_ns = MonotonicNanos();
        PredictionHandle handle = server.Submit(ids);
        (void)handle.logits();
        latencies_ns[static_cast<size_t>(c * requests_per_client + r)] =
            MonotonicNanos() - submit_ns;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const int64_t elapsed_ns = MonotonicNanos() - start_ns;
  server.Shutdown();

  const ServeStats stats = server.stats();
  TrafficResult result;
  result.throughput_rps =
      1e9 * static_cast<double>(total) / static_cast<double>(elapsed_ns);
  result.p50_us = Percentile(latencies_ns, 0.5);
  result.p99_us = Percentile(latencies_ns, 0.99);
  result.requests_per_batch =
      static_cast<double>(stats.requests) /
      static_cast<double>(std::max<int64_t>(stats.batches, 1));
  return result;
}

struct OverloadResult {
  double throughput_rps = 0.0;  // completed (ok) requests per second
  double p99_us = 0.0;          // over completed requests only
  double shed_rate = 0.0;       // rejected / submitted
  double completion_rate = 0.0;
  int64_t queue_peak = 0;
};

constexpr int kOverloadIds = 64;  // ids per overload request: service-heavy

// Overload cell: burst open-loop traffic into a bounded queue. Every client
// submits its whole request list back to back (id vectors precomputed, so
// submission cost is negligible against the 64-row service cost), then
// waits on its handles in submission order. Under the shed policies the
// queue caps at `capacity` and overflow is rejected structurally; under
// kBlock, Submit itself backpressures. No fault injection here — survivors'
// latency must reflect the policy, not a planted stall (DESIGN §12).
OverloadResult RunOverload(const FrozenModel& frozen, int clients,
                           int requests_per_client, OverloadPolicy policy,
                           int capacity) {
  InferenceServer server(frozen, {.workers = 1,
                                  .max_batch_rows = 256,
                                  .batch_window_us = 0,
                                  .max_queue_requests = capacity,
                                  .overload_policy = policy});
  const int total = clients * requests_per_client;
  std::vector<std::vector<std::vector<int>>> ids(
      static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    ids[static_cast<size_t>(c)].reserve(
        static_cast<size_t>(requests_per_client));
    for (int r = 0; r < requests_per_client; ++r) {
      Rng rng(5077 + 131 * static_cast<uint64_t>(c) + r);
      std::vector<int> request(kOverloadIds);
      for (int& id : request) {
        id = static_cast<int>(
            rng.UniformInt(static_cast<uint64_t>(frozen.num_nodes())));
      }
      ids[static_cast<size_t>(c)].push_back(std::move(request));
    }
  }

  std::vector<std::vector<int64_t>> ok_latencies_ns(
      static_cast<size_t>(clients));
  const int64_t start_ns = MonotonicNanos();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<PredictionHandle> handles;
      std::vector<int64_t> submit_ns;
      handles.reserve(static_cast<size_t>(requests_per_client));
      submit_ns.reserve(static_cast<size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        submit_ns.push_back(MonotonicNanos());
        handles.push_back(
            server.Submit(ids[static_cast<size_t>(c)][static_cast<size_t>(r)]));
      }
      for (int r = 0; r < requests_per_client; ++r) {
        if (handles[static_cast<size_t>(r)].status() == ServeStatus::kOk) {
          ok_latencies_ns[static_cast<size_t>(c)].push_back(
              MonotonicNanos() - submit_ns[static_cast<size_t>(r)]);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const int64_t elapsed_ns = MonotonicNanos() - start_ns;
  server.Shutdown();

  std::vector<int64_t> completed_ns;
  for (const auto& client_latencies : ok_latencies_ns) {
    completed_ns.insert(completed_ns.end(), client_latencies.begin(),
                        client_latencies.end());
  }
  const ServeStats stats = server.stats();
  OverloadResult result;
  result.throughput_rps = 1e9 * static_cast<double>(completed_ns.size()) /
                          static_cast<double>(elapsed_ns);
  result.p99_us =
      completed_ns.empty() ? 0.0 : Percentile(completed_ns, 0.99);
  result.shed_rate = static_cast<double>(stats.rejected) /
                     static_cast<double>(total);
  result.completion_rate = static_cast<double>(completed_ns.size()) /
                           static_cast<double>(total);
  result.queue_peak = stats.queue_peak;
  return result;
}

// The one-request-at-a-time floor: each request re-runs the full eval-mode
// forward (what every caller did before FrozenModel existed) and gathers
// its rows from the fresh logits table.
TrafficResult RunEvalBaseline(Model& model, const Graph& graph,
                              const StrategyConfig& strategy, int requests) {
  std::vector<int64_t> latencies_ns(static_cast<size_t>(requests), 0);
  const int64_t start_ns = MonotonicNanos();
  for (int r = 0; r < requests; ++r) {
    const std::vector<int> ids = RequestIds(0, r, graph.num_nodes());
    const int64_t submit_ns = MonotonicNanos();
    const Matrix logits = EvaluateLogits(model, graph, strategy);
    const Matrix rows = GatherRows(logits, ids);
    (void)rows;
    latencies_ns[static_cast<size_t>(r)] = MonotonicNanos() - submit_ns;
  }
  const int64_t elapsed_ns = MonotonicNanos() - start_ns;

  TrafficResult result;
  result.throughput_rps =
      1e9 * static_cast<double>(requests) / static_cast<double>(elapsed_ns);
  result.p50_us = Percentile(latencies_ns, 0.5);
  result.p99_us = Percentile(latencies_ns, 0.99);
  result.requests_per_batch = 1.0;
  return result;
}

void Main() {
  bench::Begin("serve");

  const Graph graph =
      BuildDatasetByName("cora_like", bench::Pick(0.5, 1.0), /*seed=*/21);
  const StrategyConfig strategy = StrategyConfig::None();

  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = bench::Pick(32, 64);
  config.out_dim = graph.num_classes();
  config.num_layers = 2;
  config.dropout = 0.5f;

  Rng rng(21);
  auto model = MakeModel("SGC", config, rng);
  Rng split_rng(21);
  const Split split = PublicSplit(graph, 20, 300, 500, split_rng);
  const TrainResult trained = TrainNodeClassifier(
      *model, graph, split, strategy,
      {.options = {.epochs = bench::Pick(10, 50), .seed = 21}});
  const FrozenModel frozen = FrozenModel::Freeze(*model, graph, strategy);
  std::printf("SGC on cora_like: %d nodes, %d classes, test acc %.1f%%, "
              "%s path, %d ids/request\n\n",
              frozen.num_nodes(), frozen.num_classes(),
              100.0 * trained.test_accuracy,
              frozen.has_linear_head() ? "linear-head" : "logit-gather",
              kBatchIds);

  ResultTable table(
      {"cell", "clients", "window_us", "req/s", "p50_us", "p99_us",
       "req/batch"});
  table.StreamTo(stdout);

  const auto add_row = [&](const std::string& cell, int clients,
                           int window_us, const TrafficResult& r) {
    table.AddRow({cell, std::to_string(clients), std::to_string(window_us),
                  ResultTable::Cell(r.throughput_rps, 0),
                  ResultTable::Cell(r.p50_us, 0),
                  ResultTable::Cell(r.p99_us, 0),
                  ResultTable::Cell(r.requests_per_batch, 2)});
  };
  const auto record = [](bench::CellRecorder& recorder,
                         const TrafficResult& r) {
    recorder.Record("throughput_rps", r.throughput_rps);
    recorder.Record("p50_us", r.p50_us);
    recorder.Record("p99_us", r.p99_us);
  };

  // Baseline: one full forward per request, serially.
  {
    bench::CellRecorder recorder("eval_baseline");
    recorder.Param("clients", 1).Param("requests", bench::Pick(8, 32));
    const TrafficResult r =
        RunEvalBaseline(*model, graph, strategy, bench::Pick(8, 32));
    record(recorder, r);
    add_row("eval_baseline", 1, 0, r);
  }

  // Server sweep: coalescing window on, rising client pressure. 8 clients
  // is the cell the validator holds to >= 2x the baseline throughput.
  const std::vector<int> client_counts =
      bench::PaperScale() ? std::vector<int>{1, 2, 4, 8, 16}
                          : std::vector<int>{1, 2, 4, 8};
  const int requests_per_client = bench::Pick(16, 64);
  const int window_us = 200;
  for (const int clients : client_counts) {
    bench::CellRecorder recorder("serve");
    recorder.Param("clients", clients)
        .Param("requests", clients * requests_per_client)
        .Param("window_us", window_us)
        .Param("workers", 1);
    const TrafficResult r =
        RunTraffic(frozen, clients, requests_per_client, window_us);
    record(recorder, r);
    add_row("serve", clients, window_us, r);
  }

  // Window off at top pressure: what the coalescing window buys.
  {
    const int clients = client_counts.back();
    bench::CellRecorder recorder("serve_nowindow");
    recorder.Param("clients", clients)
        .Param("requests", clients * requests_per_client)
        .Param("window_us", 0)
        .Param("workers", 1);
    const TrafficResult r =
        RunTraffic(frozen, clients, requests_per_client, /*window_us=*/0);
    record(recorder, r);
    add_row("serve_nowindow", clients, 0, r);
  }

  // Overload cells (DESIGN §12): burst traffic into a bounded queue, one
  // cell per policy at a tight capacity plus one shed cell provisioned
  // above the total load (the control: no request may shed below capacity).
  ResultTable overload_table({"cell", "policy", "capacity", "req/s", "p99_us",
                              "shed_rate", "completed", "queue_peak"});
  std::printf("\n");
  overload_table.StreamTo(stdout);
  const int overload_clients = 8;
  const int overload_per_client = bench::Pick(32, 128);
  const int overload_total = overload_clients * overload_per_client;
  const int tight_cap = 8;
  const auto run_overload_cell = [&](OverloadPolicy policy, int capacity) {
    bench::CellRecorder recorder("serve_overload");
    recorder.Param("policy", OverloadPolicyName(policy))
        .Param("capacity", capacity)
        .Param("clients", overload_clients)
        .Param("requests", overload_total);
    const OverloadResult r = RunOverload(frozen, overload_clients,
                                         overload_per_client, policy,
                                         capacity);
    recorder.Record("throughput_rps", r.throughput_rps);
    recorder.Record("p99_us", r.p99_us);
    recorder.Record("shed_rate", r.shed_rate);
    recorder.Record("completion_rate", r.completion_rate);
    recorder.Record("queue_peak", static_cast<double>(r.queue_peak));
    overload_table.AddRow(
        {"serve_overload", OverloadPolicyName(policy),
         std::to_string(capacity), ResultTable::Cell(r.throughput_rps, 0),
         ResultTable::Cell(r.p99_us, 0), ResultTable::Cell(r.shed_rate, 3),
         ResultTable::Cell(r.completion_rate, 3),
         std::to_string(r.queue_peak)});
  };
  run_overload_cell(OverloadPolicy::kBlock, tight_cap);
  run_overload_cell(OverloadPolicy::kShedNewest, tight_cap);
  run_overload_cell(OverloadPolicy::kShedOldest, tight_cap);
  run_overload_cell(OverloadPolicy::kShedNewest, overload_total);

  std::printf(
      "\nExpected shape: the server amortises the precomputed tables, so "
      "every serve cell beats eval_baseline by orders of magnitude "
      "(baseline re-runs the full forward per request); with the window on "
      "req/batch grows with client pressure while p50 stays around the "
      "window length. Overload: at capacity %d the shed policies keep "
      "queue_peak bounded and reject the overflow (shed_rate > 0) so "
      "survivors' p99 stays at most the block policy's (which completes "
      "everything by backpressuring Submit); the above-capacity control "
      "cell sheds nothing.\n",
      tight_cap);
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
