// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Engineering micro-benchmarks (not a paper table): throughput of the hot
// kernels behind every experiment — dense GEMM, sparse SpMM (full and
// masked), adjacency renormalisation (DropEdge's per-epoch cost), and
// SkipNode mask sampling (its claimed near-zero overhead). After the
// google-benchmark report, a fused-vs-naive rho sweep prints the speedup of
// the fused SkipNode propagation (DESIGN §10) and a transposed-SpMM sweep
// times the backward gather (1-vs-4 threads, masked over rho); both record
// one JSONL cell per configuration when SKIPNODE_BENCH_JSON is set.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/parallel.h"
#include "base/simd.h"
#include "base/telemetry.h"
#include "bench_common.h"
#include "core/skipnode.h"
#include "graph/datasets.h"
#include "sparse/graph_ops.h"
#include "tensor/ops.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

// Pins the pool width for one benchmark run and restores the default after.
// UseRealTime() matters on every threaded benchmark: CPU time sums the
// workers and would hide any parallel speedup.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int count) { SetParallelThreadCount(count); }
  ~ThreadCountGuard() { SetParallelThreadCount(0); }
};

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::Random(n, 64, rng);
  Matrix b = Matrix::Random(64, 64, rng);
  for (auto _ : state) {
    Matrix c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 64 * 64);
}
BENCHMARK(BM_MatMul)->Arg(512)->Arg(2048);

void BM_SpMM(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  Rng rng(2);
  Matrix x = Matrix::Random(graph.num_nodes(), cols, rng);
  for (auto _ : state) {
    Matrix y = a_hat->Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a_hat->nnz() * cols);
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_SpMMMasked(benchmark::State& state) {
  // Masked SpMM at rho = range/100: only (1-rho) of the output rows are
  // computed, so throughput should rise roughly linearly with rho.
  const float rho = static_cast<float>(state.range(0)) / 100.0f;
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  Rng rng(2);
  Matrix x = Matrix::Random(graph.num_nodes(), 64, rng);
  Rng mask_rng(7);
  const auto mask = SampleSkipMaskUniform(graph.num_nodes(), rho, mask_rng);
  Matrix y(graph.num_nodes(), 64);
  for (auto _ : state) {
    a_hat->MultiplyAccumulateMasked(x, mask, y);
    benchmark::DoNotOptimize(y.data());
    y.SetZero();
  }
  state.SetItemsProcessed(state.iterations() * a_hat->nnz() * 64);
}
BENCHMARK(BM_SpMMMasked)->Arg(0)->Arg(50)->Arg(100);

void BM_DropEdgeRenormalize(benchmark::State& state) {
  // The per-epoch cost DropEdge pays and SkipNode avoids (Table 8's story).
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  Rng rng(3);
  for (auto _ : state) {
    CsrMatrix sampled =
        DropEdgeAdjacency(graph.num_nodes(), graph.edges(), 0.3, rng);
    benchmark::DoNotOptimize(sampled.nnz());
  }
}
BENCHMARK(BM_DropEdgeRenormalize);

void BM_DropNodeRenormalize(benchmark::State& state) {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  Rng rng(4);
  for (auto _ : state) {
    CsrMatrix sampled =
        DropNodeAdjacency(graph.num_nodes(), graph.edges(), 0.3, rng);
    benchmark::DoNotOptimize(sampled.nnz());
  }
}
BENCHMARK(BM_DropNodeRenormalize);

void BM_SkipMaskUniform(benchmark::State& state) {
  Rng rng(5);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto mask = SampleSkipMaskUniform(n, 0.5f, rng);
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_SkipMaskUniform)->Arg(2708)->Arg(100000);

void BM_SkipMaskBiased(benchmark::State& state) {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  Rng rng(6);
  for (auto _ : state) {
    auto mask = SampleSkipMaskBiased(graph.degrees(), 0.5f, rng);
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_SkipMaskBiased);

void BM_NormalizedAdjacency(benchmark::State& state) {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  for (auto _ : state) {
    CsrMatrix a_hat = NormalizedAdjacency(graph.num_nodes(), graph.edges());
    benchmark::DoNotOptimize(a_hat.nnz());
  }
}
BENCHMARK(BM_NormalizedAdjacency);

// --- Thread-pool sweeps ------------------------------------------------------
// The same kernels at a forced pool width of 1 / 2 / 4; the ratio of the
// real-time numbers is the parallel speedup on the current machine (flat on
// a single-core host — see EXPERIMENTS.md).

void BM_GemmThreads(benchmark::State& state) {
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  Rng rng(1);
  Matrix a = Matrix::Random(1024, 256, rng);
  Matrix b = Matrix::Random(256, 256, rng);
  Matrix out(1024, 256);
  for (auto _ : state) {
    Gemm(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{1024} * 256 * 256);
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_GemmTransposeAThreads(benchmark::State& state) {
  // The backward-pass shape: dW = X^T * dY.
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  Rng rng(2);
  Matrix x = Matrix::Random(4096, 128, rng);
  Matrix dy = Matrix::Random(4096, 128, rng);
  Matrix dw(128, 128);
  for (auto _ : state) {
    Gemm(x, dy, dw, {.transpose_a = true});
    benchmark::DoNotOptimize(dw.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{4096} * 128 * 128);
}
BENCHMARK(BM_GemmTransposeAThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SpMMThreads(benchmark::State& state) {
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  // arxiv_like is the largest built-in: enough rows for per-row chunking.
  Graph graph = BuildDatasetByName("arxiv_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  Rng rng(3);
  Matrix x = Matrix::Random(graph.num_nodes(), 64, rng);
  for (auto _ : state) {
    Matrix y = a_hat->Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a_hat->nnz() * 64);
}
BENCHMARK(BM_SpMMThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SpMMTransposedThreads(benchmark::State& state) {
  // The backward-pass shape dX += Â^T * g, now a row-parallel gather over
  // the cached transpose plan instead of a serial scatter.
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  Graph graph = BuildDatasetByName("arxiv_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  Rng rng(3);
  Matrix g = Matrix::Random(graph.num_nodes(), 64, rng);
  // Warm the plan so the loop times the gather, not the one-off build.
  (void)a_hat->transpose_plan();
  for (auto _ : state) {
    Matrix dx = a_hat->MultiplyTransposed(g);
    benchmark::DoNotOptimize(dx.data());
  }
  state.SetItemsProcessed(state.iterations() * a_hat->nnz() * 64);
}
BENCHMARK(BM_SpMMTransposedThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- Fused SkipNode propagation sweep ---------------------------------------
// Forward cost of one middle-layer SkipNode propagation, naive vs fused
// (DESIGN §10), over rho. Naive pays the full SpMM and then overwrites the
// skipped rows; fused copies the skipped rows and convolves only the rest,
// so its time should fall as rho grows while naive stays flat. Each timing
// is also recorded as a JSONL cell (cells "spmm_naive" / "spmm_fused",
// metric ns_per_op) whose telemetry snapshot carries spmm.rows_skipped —
// the acceptance signal that the fused kernel really skipped work.

int64_t TimeReps(int reps, const std::function<void()>& op) {
  const int64_t start = MonotonicNanos();
  for (int r = 0; r < reps; ++r) op();
  return (MonotonicNanos() - start) / reps;
}

void FusedSweep() {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  const int n = graph.num_nodes(), d = 64;
  Rng rng(2);
  const Matrix x = Matrix::Random(n, d, rng);
  const Matrix pre = Matrix::Random(n, d, rng);
  const int reps = bench::Pick(20, 200);

  std::printf("\nFused SkipNode propagation, %d nodes x %d cols, %d reps "
              "(ns/op)\n", n, d, reps);
  std::printf("%6s %12s %12s %9s %14s\n", "rho", "naive", "fused", "speedup",
              "rows_skipped");
  for (const float rho : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
    Rng mask_rng(7);
    const auto mask = SampleSkipMaskUniform(n, rho, mask_rng);
    const int skipped = CountSkipped(mask);

    bench::CellRecorder naive_cell("spmm_naive");
    naive_cell.Param("rho", static_cast<double>(rho))
        .Param("cols", d)
        .Param("reps", reps);
    const int64_t naive_ns = TimeReps(reps, [&]() {
      Matrix y = a_hat->Multiply(x);
      CopyRowsWhere(pre, mask, y);
      benchmark::DoNotOptimize(y.data());
    });
    naive_cell.Record("ns_per_op", static_cast<double>(naive_ns));

    bench::CellRecorder fused_cell("spmm_fused");
    fused_cell.Param("rho", static_cast<double>(rho))
        .Param("cols", d)
        .Param("reps", reps);
    const int64_t fused_ns = TimeReps(reps, [&]() {
      Matrix y(n, d);
      CopyRowsWhere(pre, mask, y);
      a_hat->MultiplyAccumulateMasked(x, mask, y);
      benchmark::DoNotOptimize(y.data());
    });
    fused_cell.Record("ns_per_op", static_cast<double>(fused_ns));

    std::printf("%6.2f %12lld %12lld %8.2fx %14d\n", rho,
                static_cast<long long>(naive_ns),
                static_cast<long long>(fused_ns),
                static_cast<double>(naive_ns) /
                    static_cast<double>(fused_ns > 0 ? fused_ns : 1),
                skipped);
  }
}

// --- Transposed-SpMM sweep ---------------------------------------------------
// Backward-pass cost Â^T · g over the cached transpose plan: the unmasked
// gather at a pool width of 1 and 4 (cells "spmm_t"; the ratio is the
// parallel speedup, flat on a single-core host), then the masked gather over
// rho (cells "spmm_t_masked"; work drops with the skipped source rows —
// near-total at rho=1.0, while rho=0.5 pays maximal skip-branch
// misprediction and wins only modestly on one core). Each cell's telemetry
// snapshot carries spmm_t.rows_skipped — the acceptance signal that the
// masked gather really skipped its entries.

void TransposedSweep() {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  const int n = graph.num_nodes(), d = 64;
  Rng rng(2);
  const Matrix g = Matrix::Random(n, d, rng);
  const int reps = bench::Pick(20, 200);
  (void)a_hat->transpose_plan();  // Time the gathers, not the one-off build.

  std::printf("\nTransposed SpMM (backward gather), %d nodes x %d cols, "
              "%d reps (ns/op)\n", n, d, reps);
  for (const int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    bench::CellRecorder cell("spmm_t");
    cell.Param("cols", d).Param("reps", reps);
    const int64_t ns = TimeReps(reps, [&]() {
      Matrix dx = a_hat->MultiplyTransposed(g);
      benchmark::DoNotOptimize(dx.data());
    });
    cell.Record("ns_per_op", static_cast<double>(ns));
    std::printf("  unmasked @ %d threads %12lld\n", threads,
                static_cast<long long>(ns));
  }
  SetParallelThreadCount(0);

  std::printf("%6s %12s %14s\n", "rho", "masked", "rows_skipped");
  for (const float rho : {0.0f, 0.5f, 1.0f}) {
    Rng mask_rng(7);
    const auto mask = SampleSkipMaskUniform(n, rho, mask_rng);
    const int skipped = CountSkipped(mask);
    bench::CellRecorder cell("spmm_t_masked");
    cell.Param("rho", static_cast<double>(rho))
        .Param("cols", d)
        .Param("reps", reps);
    const int64_t ns = TimeReps(reps, [&]() {
      Matrix dx = a_hat->MultiplyTransposedMasked(g, mask);
      benchmark::DoNotOptimize(dx.data());
    });
    cell.Record("ns_per_op", static_cast<double>(ns));
    std::printf("%6.2f %12lld %14d\n", rho, static_cast<long long>(ns),
                skipped);
  }
}

// --- SIMD kernel sweep -------------------------------------------------------
// Single-thread cost of the vectorized microkernels (DESIGN §14) against the
// retained scalar references (simd_ref.cc, compiled with vectorization off),
// toggled through the runtime kill-switch. Cells "simd_gemm" / "simd_axpby" /
// "simd_adam" are the acceptance gates (validate_bench_jsonl.py requires the
// simd=1 variant ≥ 1.5x the simd=0 one); "simd_spmm" and "simd_relu" are
// informational (their inner loops are short at real-graph degrees, so the
// win is workload-dependent). Exact-path kernels only — results are bitwise
// identical across the toggle, so both variants do identical arithmetic.

void SimdCell(const char* name, int reps, const std::function<void()>& op) {
  for (const int simd_on : {0, 1}) {
    simd::SetEnabled(simd_on != 0);
    op();  // Warm caches (and for simd=1, any lazily-built plans).
    bench::CellRecorder cell(name);
    cell.Param("simd", simd_on).Param("reps", reps);
    const int64_t ns = TimeReps(reps, op);
    cell.Record("ns_per_op", static_cast<double>(ns));
    std::printf("%12s simd=%d %12lld\n", name, simd_on,
                static_cast<long long>(ns));
  }
}

void SimdSweep() {
  const bool saved_simd = simd::Enabled();
  SetParallelThreadCount(1);  // Single-thread: isolate the kernel speedup.
  const int reps = bench::Pick(50, 500);
  std::printf("\nSIMD microkernels vs scalar reference, 1 thread, %d reps "
              "(ns/op, compiled: %s)\n", reps, simd::CompiledMode());
  Rng rng(11);

  {
    Matrix a = Matrix::Random(256, 128, rng);
    Matrix b = Matrix::Random(128, 256, rng);
    Matrix out(256, 256);
    SimdCell("simd_gemm", reps, [&]() {
      Gemm(a, b, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
  {
    Matrix a = Matrix::Random(256, 256, rng);
    Matrix b = Matrix::Random(256, 256, rng);
    Matrix out(256, 256);
    SimdCell("simd_axpby", reps, [&]() {
      AxpbyInto(a, b, 0.5f, 0.25f, out);
      benchmark::DoNotOptimize(out.data());
    });
  }
  {
    // One Adam step over a 256x256 parameter; grads fixed, so every rep does
    // the same arithmetic (value drifts, which is fine for timing).
    Parameter p("w", Matrix::Random(256, 256, rng));
    p.grad = Matrix::Random(256, 256, rng);
    Adam adam(0.01f, 5e-4f);
    const std::vector<Parameter*> params = {&p};
    SimdCell("simd_adam", reps, [&]() {
      adam.Step(params);
      benchmark::DoNotOptimize(p.value.data());
    });
  }
  {
    Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
    const auto a_hat = graph.normalized_adjacency();
    Matrix x = Matrix::Random(graph.num_nodes(), 64, rng);
    SimdCell("simd_spmm", reps, [&]() {
      Matrix y = a_hat->Multiply(x);
      benchmark::DoNotOptimize(y.data());
    });
  }
  {
    Matrix x = Matrix::Random(256, 256, rng);
    Matrix out(256, 256);
    SimdCell("simd_relu", reps, [&]() {
      ReluInto(x, out);
      benchmark::DoNotOptimize(out.data());
    });
  }

  SetParallelThreadCount(0);
  simd::SetEnabled(saved_simd);
}

}  // namespace
}  // namespace skipnode

// Custom main instead of BENCHMARK_MAIN so the binary joins the bench
// harness (banner, SKIPNODE_BENCH_* knobs, JSONL cells for the fused sweep)
// and a run under SKIPNODE_TELEMETRY=1 can dump the aggregated kernel-timer
// snapshot after the report — ground truth for how much wall-clock each
// instrumented kernel really absorbed across the whole run.
int main(int argc, char** argv) {
  skipnode::bench::Begin("micro");
  // At smoke scale cap google-benchmark's per-benchmark budget so the whole
  // binary stays CI-sized; an explicit flag still wins.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
      has_min_time = true;
    }
  }
  if (!skipnode::bench::PaperScale() && !has_min_time) {
    args.push_back(min_time.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  skipnode::FusedSweep();
  skipnode::TransposedSweep();
  skipnode::SimdSweep();
  if (skipnode::TelemetryEnabled()) {
    std::printf("telemetry: %s\n",
                skipnode::SnapshotTelemetry().ToJson().c_str());
  }
  return 0;
}
