// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Engineering micro-benchmarks (not a paper table): throughput of the hot
// kernels behind every experiment — dense GEMM, sparse SpMM, adjacency
// renormalisation (DropEdge's per-epoch cost), and SkipNode mask sampling
// (its claimed near-zero overhead).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "base/parallel.h"
#include "base/telemetry.h"
#include "core/skipnode.h"
#include "graph/datasets.h"
#include "sparse/graph_ops.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

// Pins the pool width for one benchmark run and restores the default after.
// UseRealTime() matters on every threaded benchmark: CPU time sums the
// workers and would hide any parallel speedup.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int count) { SetParallelThreadCount(count); }
  ~ThreadCountGuard() { SetParallelThreadCount(0); }
};

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::Random(n, 64, rng);
  Matrix b = Matrix::Random(64, 64, rng);
  for (auto _ : state) {
    Matrix c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 64 * 64);
}
BENCHMARK(BM_MatMul)->Arg(512)->Arg(2048);

void BM_SpMM(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  Rng rng(2);
  Matrix x = Matrix::Random(graph.num_nodes(), cols, rng);
  for (auto _ : state) {
    Matrix y = a_hat->Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a_hat->nnz() * cols);
}
BENCHMARK(BM_SpMM)->Arg(16)->Arg(64);

void BM_DropEdgeRenormalize(benchmark::State& state) {
  // The per-epoch cost DropEdge pays and SkipNode avoids (Table 8's story).
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  Rng rng(3);
  for (auto _ : state) {
    CsrMatrix sampled =
        DropEdgeAdjacency(graph.num_nodes(), graph.edges(), 0.3, rng);
    benchmark::DoNotOptimize(sampled.nnz());
  }
}
BENCHMARK(BM_DropEdgeRenormalize);

void BM_DropNodeRenormalize(benchmark::State& state) {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  Rng rng(4);
  for (auto _ : state) {
    CsrMatrix sampled =
        DropNodeAdjacency(graph.num_nodes(), graph.edges(), 0.3, rng);
    benchmark::DoNotOptimize(sampled.nnz());
  }
}
BENCHMARK(BM_DropNodeRenormalize);

void BM_SkipMaskUniform(benchmark::State& state) {
  Rng rng(5);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto mask = SampleSkipMaskUniform(n, 0.5f, rng);
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_SkipMaskUniform)->Arg(2708)->Arg(100000);

void BM_SkipMaskBiased(benchmark::State& state) {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  Rng rng(6);
  for (auto _ : state) {
    auto mask = SampleSkipMaskBiased(graph.degrees(), 0.5f, rng);
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_SkipMaskBiased);

void BM_NormalizedAdjacency(benchmark::State& state) {
  Graph graph = BuildDatasetByName("cora_like", 1.0, 1);
  for (auto _ : state) {
    CsrMatrix a_hat = NormalizedAdjacency(graph.num_nodes(), graph.edges());
    benchmark::DoNotOptimize(a_hat.nnz());
  }
}
BENCHMARK(BM_NormalizedAdjacency);

// --- Thread-pool sweeps ------------------------------------------------------
// The same kernels at a forced pool width of 1 / 2 / 4; the ratio of the
// real-time numbers is the parallel speedup on the current machine (flat on
// a single-core host — see EXPERIMENTS.md).

void BM_GemmThreads(benchmark::State& state) {
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  Rng rng(1);
  Matrix a = Matrix::Random(1024, 256, rng);
  Matrix b = Matrix::Random(256, 256, rng);
  Matrix out(1024, 256);
  for (auto _ : state) {
    Gemm(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{1024} * 256 * 256);
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_GemmTransposeAThreads(benchmark::State& state) {
  // The backward-pass shape: dW = X^T * dY.
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  Rng rng(2);
  Matrix x = Matrix::Random(4096, 128, rng);
  Matrix dy = Matrix::Random(4096, 128, rng);
  Matrix dw(128, 128);
  for (auto _ : state) {
    Gemm(x, dy, dw, {.transpose_a = true});
    benchmark::DoNotOptimize(dw.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{4096} * 128 * 128);
}
BENCHMARK(BM_GemmTransposeAThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SpMMThreads(benchmark::State& state) {
  const ThreadCountGuard guard(static_cast<int>(state.range(0)));
  // arxiv_like is the largest built-in: enough rows for per-row chunking.
  Graph graph = BuildDatasetByName("arxiv_like", 1.0, 1);
  const auto a_hat = graph.normalized_adjacency();
  Rng rng(3);
  Matrix x = Matrix::Random(graph.num_nodes(), 64, rng);
  for (auto _ : state) {
    Matrix y = a_hat->Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a_hat->nnz() * 64);
}
BENCHMARK(BM_SpMMThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace skipnode

// Custom main instead of BENCHMARK_MAIN so a run under SKIPNODE_TELEMETRY=1
// can dump the aggregated kernel-timer snapshot after the benchmark report —
// ground truth for how much wall-clock each instrumented kernel really
// absorbed across the whole run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (skipnode::TelemetryEnabled()) {
    std::printf("telemetry: %s\n",
                skipnode::SnapshotTelemetry().ToJson().c_str());
  }
  return 0;
}
