// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Figure 4: the anti-over-smoothing effect of SkipNode measured
// by distances to the lower-information subspace M on an Erdos-Renyi graph.
//   (a) log( d_M(X^(l)) / d_M(X^(0)) ) per layer l for varying rho and s:
//       vanilla (rho = 0) decays linearly in the log domain; larger rho
//       flattens the slope.
//   (b) one-layer log( d_M(X2) / d_M(X1) ) over a (rho, s) grid: always > 0,
//       increasing in rho, decreasing in s.
// Results are averaged over multiple runs with fresh features/weights/masks,
// exactly as in the paper.

#include <cmath>
#include <vector>

#include "bench_common.h"
#include "core/oversmoothing.h"
#include "core/skipnode.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

// One SkipNode layer on raw matrices: X2 = (I-P) ReLU(A_hat X W) + P X.
Matrix SkipNodeLayer(const CsrMatrix& a_hat, const Matrix& x, const Matrix& w,
                     float rho, Rng& rng) {
  Matrix conv = Relu(a_hat.Multiply(MatMul(x, w)));
  if (rho <= 0.0f) return conv;
  const auto mask = SampleSkipMaskUniform(x.rows(), rho, rng);
  for (int r = 0; r < x.rows(); ++r) {
    if (mask[r]) std::copy(x.row(r), x.row(r) + x.cols(), conv.row(r));
  }
  return conv;
}

void Main() {
  bench::Begin("fig4");

  const int n = bench::Pick(200, 500);
  const int dim = 16;
  const int runs = bench::Pick(20, 100);
  Rng graph_rng(1);
  EdgeList edges = ErdosRenyi(n, 0.5, graph_rng);
  Graph graph("er", n, std::move(edges), Matrix(n, dim), {}, 0);
  SubspaceAnalyzer analyzer(graph);
  const auto a_hat = graph.normalized_adjacency();
  std::printf("graph: n=%d, p=0.5, lambda=%.4f, runs=%d\n\n", n,
              analyzer.Lambda(), runs);

  // ---- Panel (a): per-layer trajectories ----------------------------------
  const int layers = 10;
  const std::vector<float> s_values = {0.2f, 0.5f};
  const std::vector<float> rho_values = {0.0f, 0.3f, 0.5f, 0.7f};
  std::printf("(a) log(d_M(X^l)/d_M(X^0)), averaged over %d runs\n", runs);
  for (const float s : s_values) {
    std::printf("\ns = %.1f\n%10s", s, "layer");
    for (int l = 1; l <= layers; ++l) std::printf(" %8d", l);
    std::printf("\n");
    for (const float rho : rho_values) {
      bench::CellRecorder recorder("panel_a");
      recorder.Param("s", static_cast<double>(s))
          .Param("rho", static_cast<double>(rho))
          .Param("layers", layers)
          .Param("runs", runs);
      std::vector<double> log_ratio(layers, 0.0);
      Rng rng(42);
      for (int run = 0; run < runs; ++run) {
        Matrix x = Matrix::Random(n, dim, rng, 0.0f, 1.0f);
        const float d0 = analyzer.DistanceToM(x);
        for (int l = 0; l < layers; ++l) {
          Matrix w = Matrix::RandomNormal(dim, dim, rng);
          SetMaxSingularValue(w, s);
          x = SkipNodeLayer(*a_hat, x, w, rho, rng);
          log_ratio[l] += std::log(
              std::max(analyzer.DistanceToM(x), 1e-30f) / d0);
        }
      }
      std::printf("rho = %4.1f", rho);
      for (int l = 0; l < layers; ++l) {
        std::printf(" %8.2f", log_ratio[l] / runs);
      }
      std::printf("\n");
      std::fflush(stdout);
      recorder.Record("log_ratio_final_layer", log_ratio[layers - 1] / runs);
    }
  }

  // ---- Panel (b): one-layer grid -------------------------------------------
  std::printf("\n(b) one-layer log(d_M(X2)/d_M(X1)) over (rho, s)\n%8s",
              "rho\\s");
  const std::vector<float> grid_s = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
  for (const float s : grid_s) std::printf(" %7.1f", s);
  std::printf("\n");
  for (float rho = 0.1f; rho <= 0.91f; rho += 0.2f) {
    std::printf("%8.1f", rho);
    for (const float s : grid_s) {
      bench::CellRecorder recorder("panel_b");
      recorder.Param("rho", static_cast<double>(rho))
          .Param("s", static_cast<double>(s))
          .Param("runs", runs);
      double total = 0.0;
      Rng rng(77);
      for (int run = 0; run < runs; ++run) {
        Matrix x = Matrix::Random(n, dim, rng, 0.0f, 1.0f);
        Matrix w = Matrix::RandomNormal(dim, dim, rng);
        SetMaxSingularValue(w, s);
        Matrix x1 = Relu(a_hat->Multiply(MatMul(x, w)));
        Matrix x2 = SkipNodeLayer(*a_hat, x, w, rho, rng);
        total += std::log(std::max(analyzer.DistanceToM(x2), 1e-30f) /
                          std::max(analyzer.DistanceToM(x1), 1e-30f));
      }
      std::printf(" %7.2f", total / runs);
      recorder.Record("one_layer_log_ratio", total / runs);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper Fig. 4): (a) the rho=0 row dives steeply and "
      "roughly linearly; larger rho flattens it. (b) all entries > 0, "
      "increasing with rho, decreasing with s.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
