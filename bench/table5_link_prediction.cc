// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Table 5: link prediction on the ppa-like graph with a GCN
// encoder at depths 4/6/8, scored by Hits@{10,50,100} against a shared
// ranked-negative pool. Expected shape: the vanilla encoder degrades from
// L=6 to L=8 while SkipNode keeps improving (or degrades far less), and
// SkipNode wins at the deepest setting for every K.

#include <string>
#include <vector>

#include "base/result_table.h"

#include "bench_common.h"
#include "nn/gcn.h"
#include "train/link_trainer.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("table5");

  Graph graph =
      BuildDatasetByName("ppa_like", bench::Pick(0.15, 1.0), /*seed=*/6);
  Rng split_rng(6);
  LinkSplit split =
      MakeLinkSplit(graph, /*val_fraction=*/0.05, /*test_fraction=*/0.10,
                    bench::Pick(1000, 4000), split_rng);
  Graph message_graph("ppa_like_train", graph.num_nodes(), split.train_edges,
                      graph.features(), {}, 0);
  std::printf("graph: %d nodes, %zu train / %zu val / %zu test edges, "
              "%zu eval negatives\n\n",
              graph.num_nodes(), split.train_edges.size(),
              split.val_pos.size(), split.test_pos.size(),
              split.eval_neg.size());

  struct StrategyRow {
    const char* label;
    StrategyConfig config;
  };
  const std::vector<StrategyRow> strategies = {
      {"-", StrategyConfig::None()},
      {"SkipNode-U", StrategyConfig::SkipNodeU(0.5f)},
      {"SkipNode-B", StrategyConfig::SkipNodeB(0.5f)},
  };
  const std::vector<int> depths = {4, 6, 8};
  const int epochs = bench::Pick(60, 200);
  const int hidden = bench::Pick(48, 128);

  // Train one encoder per (strategy, depth) and remember all three metrics.
  std::vector<std::vector<LinkResult>> results(
      strategies.size(), std::vector<LinkResult>(depths.size()));
  for (size_t s = 0; s < strategies.size(); ++s) {
    for (size_t d = 0; d < depths.size(); ++d) {
      bench::CellRecorder recorder(strategies[s].label);
      recorder.Param("strategy", StrategyName(strategies[s].config.kind))
          .Param("rate", static_cast<double>(strategies[s].config.rate))
          .Param("layers", depths[d])
          .Param("hidden", hidden)
          .Param("epochs", epochs);
      ModelConfig config;
      config.in_dim = message_graph.feature_dim();
      config.hidden_dim = hidden;
      config.out_dim = hidden;
      config.num_layers = depths[d];
      config.dropout = 0.0f;

      LinkTrainOptions options;
      options.epochs = epochs;
      options.eval_every = 5;
      options.seed = 17;

      Rng rng(17);
      GcnModel encoder(config, rng);
      results[s][d] = TrainLinkPredictor(encoder, message_graph, split,
                                         strategies[s].config, options);
      recorder.Record("hits10", 100.0 * results[s][d].test_hits10);
      recorder.Record("hits50", 100.0 * results[s][d].test_hits50);
      recorder.Record("hits100", 100.0 * results[s][d].test_hits100);
      std::printf("trained %-11s L=%d\n", strategies[s].label, depths[d]);
      std::fflush(stdout);
    }
  }

  std::vector<std::string> columns = {"metric", "strategy"};
  for (const int depth : depths) columns.push_back("L=" + std::to_string(depth));
  ResultTable table(columns);
  const auto add_metric = [&](const char* name,
                              double LinkResult::*member) {
    for (size_t s = 0; s < strategies.size(); ++s) {
      std::vector<std::string> row = {name, strategies[s].label};
      for (size_t d = 0; d < depths.size(); ++d) {
        row.push_back(ResultTable::Cell(100.0 * (results[s][d].*member), 2));
      }
      table.AddRow(std::move(row));
    }
  };
  add_metric("Hits@10", &LinkResult::test_hits10);
  add_metric("Hits@50", &LinkResult::test_hits50);
  add_metric("Hits@100", &LinkResult::test_hits100);
  std::printf("\n");
  table.Emit(TableFormat::kText);

  std::printf(
      "\nExpected shape (paper Table 5): at L=8 the vanilla encoder drops "
      "relative to L=6 while SkipNode rows hold or improve, winning the "
      "deepest column for every K.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
