// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Figure 5: sensitivity of a 32-layer GCN to SkipNode's only
// hyper-parameter, the sampling rate rho, on the three citation stand-ins.
//   (a) test accuracy vs rho (vanilla GCN as the flat baseline),
//   (b) MAD of the learned features after training vs rho.
// Expected shape: at this extreme depth, larger rho performs better; the
// vanilla baseline sits at chance with MAD ~ 0, while SkipNode's MAD is
// positive and grows with rho.

#include <string>
#include <vector>

#include "base/result_table.h"

#include "bench_common.h"
#include "core/oversmoothing.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct RhoPoint {
  double accuracy = 0.0;
  double mad = 0.0;
};

RhoPoint RunPoint(const Graph& graph, const Split& split,
                  const StrategyConfig& strategy, int epochs, int hidden,
                  int depth) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = depth;
  config.dropout = 0.1f;

  Rng rng(19);
  auto model = MakeModel("GCN", config, rng);
  RhoPoint point;
  point.accuracy =
      100.0 * TrainNodeClassifier(*model, graph, split, strategy,
                                  {.options = {.epochs = epochs,
                                               .weight_decay = 5e-4f,
                                               .eval_every = 4,
                                               .seed = 19}})
                  .test_accuracy;
  // MAD of the trained model's penultimate features (paper Fig. 5b).
  Tape tape;
  Rng eval_rng(20);
  StrategyContext ctx(graph, strategy, /*training=*/false, eval_rng);
  model->Forward(tape, graph, ctx, /*training=*/false, eval_rng);
  point.mad = MeanAverageDistance(graph, model->Penultimate());
  return point;
}

void Main() {
  bench::Begin("fig5");

  const std::vector<std::string> datasets = {"cora_like", "citeseer_like",
                                             "pubmed_like"};
  const std::vector<float> rhos = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
  // The paper trains the 32-layer model for 500 epochs on the full graphs;
  // the smoke scale cannot afford that, so it studies the same sweep at
  // depth 16 with 150 epochs (the accuracy-increases-with-rho shape is the
  // same, just at a shallower collapse point).
  const int depth = bench::Pick(16, 32);
  const int epochs = bench::Pick(150, 500);
  const int hidden = bench::Pick(32, 64);
  const double scale = bench::Pick(0.15, 1.0);

  for (const std::string& dataset : datasets) {
    Graph graph = BuildDatasetByName(dataset, scale, /*seed=*/14);
    Rng split_rng(14);
    Split split = PublicSplit(graph, 20, bench::Pick(120, 500),
                              bench::Pick(200, 1000), split_rng);

    // One cell record per trained point; MAD rides along as a second
    // metric in the same record stream.
    const auto run_point = [&](const char* label, const StrategyConfig& s,
                               float rho) {
      bench::CellRecorder recorder(label);
      recorder.Param("dataset", dataset)
          .Param("strategy", StrategyName(s.kind))
          .Param("rho", static_cast<double>(rho))
          .Param("layers", depth)
          .Param("epochs", epochs);
      const RhoPoint point = RunPoint(graph, split, s, epochs, hidden, depth);
      recorder.Record("test_accuracy", point.accuracy);
      recorder.Record("mad", point.mad);
      return point;
    };

    const RhoPoint baseline =
        run_point("GCN", StrategyConfig::None(), 0.0f);
    std::printf("\n--- %s (chance %.1f%%, L=%d) ---\n", dataset.c_str(),
                100.0 / graph.num_classes(), depth);
    ResultTable table({"setting", "acc(%)", "MAD"});
    table.StreamTo(stdout);
    table.AddRow({"GCN (no skip)", ResultTable::Cell(baseline.accuracy),
                  ResultTable::Cell(baseline.mad, 4)});
    char label[32];
    for (const float rho : rhos) {
      const RhoPoint u =
          run_point("SkipNode-U", StrategyConfig::SkipNodeU(rho), rho);
      std::snprintf(label, sizeof(label), "SkipNode-U %.1f", rho);
      table.AddRow({label, ResultTable::Cell(u.accuracy),
                    ResultTable::Cell(u.mad, 4)});
      const RhoPoint b =
          run_point("SkipNode-B", StrategyConfig::SkipNodeB(rho), rho);
      std::snprintf(label, sizeof(label), "SkipNode-B %.1f", rho);
      table.AddRow({label, ResultTable::Cell(b.accuracy),
                    ResultTable::Cell(b.mad, 4)});
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 5): the vanilla 32-layer GCN sits near "
      "chance with MAD ~ 0; SkipNode accuracy improves as rho grows (the "
      "deeper the model, the larger the best rho) and its MAD stays "
      "positive.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
