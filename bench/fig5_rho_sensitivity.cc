// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Figure 5: sensitivity of a 32-layer GCN to SkipNode's only
// hyper-parameter, the sampling rate rho, on the three citation stand-ins.
//   (a) test accuracy vs rho (vanilla GCN as the flat baseline),
//   (b) MAD of the learned features after training vs rho.
// Expected shape: at this extreme depth, larger rho performs better; the
// vanilla baseline sits at chance with MAD ~ 0, while SkipNode's MAD is
// positive and grows with rho.

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/oversmoothing.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct RhoPoint {
  double accuracy = 0.0;
  double mad = 0.0;
};

RhoPoint RunPoint(const Graph& graph, const Split& split,
                  const StrategyConfig& strategy, int epochs, int hidden,
                  int depth) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = depth;
  config.dropout = 0.1f;

  TrainOptions options;
  options.epochs = epochs;
  options.eval_every = 4;
  options.weight_decay = 5e-4f;
  options.seed = 19;

  Rng rng(19);
  auto model = MakeModel("GCN", config, rng);
  RhoPoint point;
  point.accuracy = 100.0 * TrainNodeClassifier(*model, graph, split,
                                               strategy, options)
                               .test_accuracy;
  // MAD of the trained model's penultimate features (paper Fig. 5b).
  Tape tape;
  Rng eval_rng(20);
  StrategyContext ctx(graph, strategy, /*training=*/false, eval_rng);
  model->Forward(tape, graph, ctx, /*training=*/false, eval_rng);
  point.mad = MeanAverageDistance(graph, model->Penultimate().value());
  return point;
}

void Main() {
  bench::PrintHeader("Figure 5: rho sensitivity of a 32-layer GCN");

  const std::vector<std::string> datasets = {"cora_like", "citeseer_like",
                                             "pubmed_like"};
  const std::vector<float> rhos = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
  // The paper trains the 32-layer model for 500 epochs on the full graphs;
  // the smoke scale cannot afford that, so it studies the same sweep at
  // depth 16 with 150 epochs (the accuracy-increases-with-rho shape is the
  // same, just at a shallower collapse point).
  const int depth = bench::Pick(16, 32);
  const int epochs = bench::Pick(150, 500);
  const int hidden = bench::Pick(32, 64);
  const double scale = bench::Pick(0.15, 1.0);

  for (const std::string& dataset : datasets) {
    Graph graph = BuildDatasetByName(dataset, scale, /*seed=*/14);
    Rng split_rng(14);
    Split split = PublicSplit(graph, 20, bench::Pick(120, 500),
                              bench::Pick(200, 1000), split_rng);

    const RhoPoint baseline = RunPoint(graph, split, StrategyConfig::None(),
                                       epochs, hidden, depth);
    std::printf("\n--- %s (chance %.1f%%, L=%d) ---\n", dataset.c_str(),
                100.0 / graph.num_classes(), depth);
    std::printf("%-14s %9s %9s\n", "setting", "acc(%)", "MAD");
    std::printf("%-14s %9.1f %9.4f\n", "GCN (no skip)", baseline.accuracy,
                baseline.mad);
    for (const float rho : rhos) {
      const RhoPoint u = RunPoint(graph, split, StrategyConfig::SkipNodeU(rho),
                                  epochs, hidden, depth);
      const RhoPoint b = RunPoint(graph, split, StrategyConfig::SkipNodeB(rho),
                                  epochs, hidden, depth);
      std::printf("SkipNode-U %.1f %9.1f %9.4f\n", rho, u.accuracy, u.mad);
      std::printf("SkipNode-B %.1f %9.1f %9.4f\n", rho, b.accuracy, b.mad);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 5): the vanilla 32-layer GCN sits near "
      "chance with MAD ~ 0; SkipNode accuracy improves as rho grows (the "
      "deeper the model, the larger the best rho) and its MAD stays "
      "positive.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
