// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Table 4: node classification on the large arxiv-like graph
// (temporal split) with GCN at depths 10/12/14/16. Expected shape: accuracy
// decays with depth for every method, but much more slowly for SkipNode,
// and the SkipNode columns dominate at every depth.

#include <string>
#include <vector>

#include "base/result_table.h"

#include "bench_common.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("table4");

  Graph graph =
      BuildDatasetByName("arxiv_like", bench::Pick(0.15, 1.0), /*seed=*/4);
  Split split = TemporalSplit(graph, 2017);
  std::printf("graph: %d nodes, %d edges, %d classes; %zu/%zu/%zu split\n\n",
              graph.num_nodes(), graph.num_edges(), graph.num_classes(),
              split.train.size(), split.val.size(), split.test.size());

  struct StrategyRow {
    const char* label;
    StrategyConfig config;
  };
  const std::vector<StrategyRow> strategies = {
      {"-", StrategyConfig::None()},
      {"DropEdge", StrategyConfig::DropEdge(0.3f)},
      {"SkipNode-U", StrategyConfig::SkipNodeU(0.6f)},
      {"SkipNode-B", StrategyConfig::SkipNodeB(0.6f)},
  };
  // Paper depths are 10-16 on the 169k-node graph. The 1200-node smoke
  // stand-in is relatively much denser, so each convolution smooths far
  // more aggressively and total collapse (for *every* method) arrives by
  // L ~ 8; the smoke sweep therefore covers the same
  // degrade-then-collapse window at L in {4,5,6,7}.
  const std::vector<int> depths = bench::PaperScale()
                                      ? std::vector<int>{10, 12, 14, 16}
                                      : std::vector<int>{4, 5, 6, 7};
  const int epochs = bench::Pick(80, 300);
  const int hidden = bench::Pick(48, 128);

  std::vector<std::string> columns = {"strategy"};
  for (const int depth : depths) columns.push_back("L=" + std::to_string(depth));
  ResultTable table(columns);
  table.StreamTo(stdout);
  for (const StrategyRow& strategy : strategies) {
    std::vector<std::string> row = {strategy.label};
    for (const int depth : depths) {
      const double acc =
          bench::RunCell("GCN", graph, split, strategy.config, depth, hidden,
                         epochs, /*seed=*/5, /*dropout=*/0.1f);
      row.push_back(ResultTable::Cell(acc));
    }
    table.AddRow(std::move(row));
  }
  std::printf(
      "\nExpected shape (paper Table 4): every row decays with depth; the "
      "vanilla row decays fastest; SkipNode rows stay the highest at every "
      "depth with a widening margin at the deepest setting.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
