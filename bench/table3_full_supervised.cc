// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Table 3: full-supervised classification accuracy on three
// homophilic + four heterophilic graphs for seven backbones, each vanilla,
// with DropEdge, and with SkipNode-U / SkipNode-B, plus the average gain of
// each strategy over the vanilla backbone. Expected shape: SkipNode rows win
// most cells and show the largest average gain.

#include <string>
#include <vector>

#include "base/result_table.h"

#include "bench_common.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("table3");

  const std::vector<std::string> datasets = {
      "cora_like",    "citeseer_like", "pubmed_like", "chameleon_like",
      "cornell_like", "texas_like",    "wisconsin_like"};
  const std::vector<std::string> backbones = {
      "GCN", "JKNet", "IncepGCN", "GCNII", "GRAND", "GPRGNN", "APPNP"};
  struct StrategyRow {
    const char* label;
    StrategyKind kind;
  };
  // The paper grid-searches every strategy's sampling rate on the
  // validation set; mirror that with a small per-cell rate grid.
  const std::vector<StrategyRow> strategies = {
      {"-", StrategyKind::kNone},
      {"DropEdge", StrategyKind::kDropEdge},
      {"SkipNode-U", StrategyKind::kSkipNodeUniform},
      {"SkipNode-B", StrategyKind::kSkipNodeBiased},
  };
  // The paper's grid spans {0.05, 0.1, ..., 0.9}; near-zero rates matter
  // because they let saturated cells fall back to almost-vanilla behaviour.
  const std::vector<float> rate_grid =
      bench::PaperScale()
          ? std::vector<float>{0.05f, 0.1f, 0.3f, 0.5f, 0.7f, 0.9f}
          : std::vector<float>{0.1f, 0.3f, 0.5f};

  const int num_splits = bench::Pick(2, 10);
  const int epochs = bench::Pick(50, 300);
  const int hidden = bench::Pick(32, 64);
  const int layers = 4;

  // Build all graphs once (scaled down in smoke mode except the tiny ones).
  std::vector<Graph> graphs;
  for (const std::string& name : datasets) {
    const DatasetSpec& spec = FindDatasetSpec(name);
    const double scale =
        bench::PaperScale() ? 1.0 : (spec.num_nodes > 1000 ? 0.2 : 1.0);
    graphs.push_back(BuildDataset(spec, scale, /*seed=*/2));
  }

  std::vector<std::string> columns = {"backbone", "strategy"};
  for (const std::string& name : datasets) columns.push_back(name);
  columns.push_back("avg.gain(%)");
  ResultTable table(columns);
  table.StreamTo(stdout);

  for (const std::string& backbone : backbones) {
    std::vector<double> vanilla_acc(datasets.size(), 0.0);
    for (const StrategyRow& strategy : strategies) {
      std::vector<std::string> row = {backbone, strategy.label};
      double gain_total = 0.0;
      for (size_t d = 0; d < datasets.size(); ++d) {
        double acc_total = 0.0;
        for (int split_id = 0; split_id < num_splits; ++split_id) {
          Rng split_rng(100 + split_id);
          Split split = RandomSplit(graphs[d], 0.6, 0.2, split_rng);
          if (strategy.kind == StrategyKind::kNone) {
            acc_total += bench::RunCell(backbone, graphs[d], split,
                                        StrategyConfig::None(), layers,
                                        hidden, epochs,
                                        /*seed=*/31 + split_id);
          } else {
            // Every sampling strategy (DropEdge included) gets the same
            // validation-tuned rate grid, as in the paper.
            acc_total += bench::RunCellTuned(backbone, graphs[d], split,
                                             strategy.kind, rate_grid,
                                             layers, hidden, epochs,
                                             /*seed=*/31 + split_id);
          }
        }
        const double acc = acc_total / num_splits;
        if (strategy.kind == StrategyKind::kNone) {
          vanilla_acc[d] = acc;
        }
        gain_total += (acc - vanilla_acc[d]) /
                      std::max(vanilla_acc[d], 1.0) * 100.0;
        row.push_back(ResultTable::Cell(acc));
      }
      row.push_back(ResultTable::Cell(
          gain_total / static_cast<double>(datasets.size())));
      table.AddRow(std::move(row));
    }
  }
  std::printf(
      "\nExpected shape (paper Table 3): SkipNode-U/B have the highest "
      "average gain for most backbones; DropEdge helps less; heterophilic "
      "columns (chameleon/cornell/texas/wisconsin) are much lower than "
      "homophilic ones for every method.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
