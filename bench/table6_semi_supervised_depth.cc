// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Reproduces Table 6: semi-supervised accuracy vs depth on the three
// citation stand-ins for GCN, ResGCN, JKNet, IncepGCN and GCNII, each with
// {-, DropEdge, SkipNode-U, SkipNode-B}. Expected shape: the vanilla GCN
// collapses to near-chance at L >= 16; ResGCN delays but does not prevent
// the collapse; JKNet/IncepGCN/GCNII degrade gently; SkipNode improves the
// deep rows of every backbone, most dramatically for GCN/ResGCN.

#include <string>
#include <vector>

#include "base/result_table.h"

#include "bench_common.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("table6");

  const std::vector<std::string> datasets = {"cora_like", "citeseer_like",
                                             "pubmed_like"};
  // IncepGCN's three branches make it by far the most expensive backbone at
  // L = 32 (~(7/4)L convolutions); smoke mode defers it to the paper run.
  const std::vector<std::string> backbones =
      bench::PaperScale()
          ? std::vector<std::string>{"GCN", "ResGCN", "JKNet", "IncepGCN",
                                     "GCNII"}
          : std::vector<std::string>{"GCN", "ResGCN", "JKNet", "GCNII"};
  const std::vector<int> depths =
      bench::PaperScale() ? std::vector<int>{4, 8, 16, 32, 64}
                          : std::vector<int>{4, 8, 16, 32};
  const int epochs = bench::Pick(70, 300);
  const int hidden = bench::Pick(32, 64);
  const double scale = bench::Pick(0.18, 1.0);

  for (const std::string& dataset : datasets) {
    Graph graph = BuildDatasetByName(dataset, scale, /*seed=*/8);
    Rng split_rng(8);
    Split split = PublicSplit(graph, 20, bench::Pick(150, 500),
                              bench::Pick(200, 1000), split_rng);
    std::printf("\n--- %s (%d nodes, chance %.1f%%) ---\n", dataset.c_str(),
                graph.num_nodes(), 100.0 / graph.num_classes());
    std::vector<std::string> columns = {"backbone", "strategy"};
    for (const int depth : depths) {
      columns.push_back("L=" + std::to_string(depth));
    }
    ResultTable table(columns);
    table.StreamTo(stdout);

    for (const std::string& backbone : backbones) {
      for (int row = 0; row < 4; ++row) {
        // The paper grid-searches rho per cell; mirror its Figure-5 finding
        // cheaply by scaling rho with depth (deeper stacks skip more).
        static const char* const kLabels[] = {"-", "DropEdge", "SkipNode-U",
                                              "SkipNode-B"};
        std::vector<std::string> cells = {backbone, kLabels[row]};
        for (const int depth : depths) {
          // Uniform sampling skips each node independently, so it tolerates
          // (and at depth needs) large rho; biased sampling picks *exactly*
          // rho*N nodes and saturates sooner, so its schedule tops out
          // lower. Both mirror what the paper's per-cell grid search picks.
          const float rho_u = depth >= 16 ? 0.9f : 0.7f;
          const float rho_b = depth >= 16 ? 0.7f : 0.5f;
          StrategyConfig strategy;
          switch (row) {
            case 0:
              strategy = StrategyConfig::None();
              break;
            case 1:
              strategy = StrategyConfig::DropEdge(0.3f);
              break;
            case 2:
              strategy = StrategyConfig::SkipNodeU(rho_u);
              break;
            default:
              strategy = StrategyConfig::SkipNodeB(rho_b);
              break;
          }
          const double acc = bench::RunCell(
              backbone, graph, split, strategy, depth, hidden, epochs,
              /*seed=*/9, /*dropout=*/0.3f);
          cells.push_back(ResultTable::Cell(acc));
        }
        table.AddRow(std::move(cells));
      }
    }
  }
  std::printf(
      "\nExpected shape (paper Table 6): vanilla GCN collapses to ~chance "
      "by L=16-32; SkipNode keeps the same backbone far above it. "
      "JKNet/IncepGCN/GCNII resist depth by design, and SkipNode still "
      "nudges their best cells upward.\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
