// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Ablation study for SkipNode's design choices (beyond the paper's tables;
// DESIGN.md calls these out):
//   1. sampling rate rho at a fixed depth (coarse view of Figure 5),
//   2. uniform vs degree-biased sampling,
//   3. constant rho vs a per-layer ramp (rho_growth extension): early layers
//      convolve more, deep layers skip more,
//   4. which layers skip: the middle-layer placement of Eq. 4 is compared
//      against skipping with the same budget spread as a residual add
//      (SkipConnection), isolating the value of *replacing* vs *adding*.

#include <vector>

#include "base/result_table.h"
#include "bench_common.h"

namespace skipnode {
namespace {

void Main() {
  bench::Begin("ablation");

  Graph graph =
      BuildDatasetByName("cora_like", bench::Pick(0.25, 1.0), /*seed=*/15);
  Rng split_rng(15);
  Split split = PublicSplit(graph, 20, bench::Pick(150, 500),
                            bench::Pick(250, 1000), split_rng);
  const int depth = 16;
  const int epochs = bench::Pick(150, 400);
  const int hidden = bench::Pick(32, 64);

  struct Arm {
    const char* label;
    StrategyConfig config;
  };
  std::vector<Arm> arms;
  arms.push_back({"vanilla", StrategyConfig::None()});
  arms.push_back({"skip-connection", StrategyConfig::SkipConnection()});
  for (const float rho : {0.5f, 0.7f, 0.9f}) {
    StrategyConfig u = StrategyConfig::SkipNodeU(rho);
    StrategyConfig b = StrategyConfig::SkipNodeB(rho);
    static char labels[64][32];
    static int next = 0;
    char* lu = labels[next++];
    std::snprintf(lu, 32, "uniform rho=%.1f", rho);
    char* lb = labels[next++];
    std::snprintf(lb, 32, "biased  rho=%.1f", rho);
    arms.push_back({lu, u});
    arms.push_back({lb, b});
  }
  // Ramped rho: start at 0.4, grow by 0.04 per middle layer (reaches ~0.95
  // at the deepest middle layer of a 16-layer stack).
  StrategyConfig ramp = StrategyConfig::SkipNodeU(0.4f);
  ramp.rho_growth = 0.04f;
  arms.push_back({"uniform ramp 0.4+0.04l", ramp});
  StrategyConfig ramp_b = StrategyConfig::SkipNodeB(0.4f);
  ramp_b.rho_growth = 0.04f;
  arms.push_back({"biased  ramp 0.4+0.04l", ramp_b});

  ResultTable table({"arm", "acc(%)"});
  table.StreamTo(stdout);
  for (const Arm& arm : arms) {
    const double acc =
        bench::RunCell("GCN", graph, split, arm.config, depth, hidden,
                       epochs, /*seed=*/33, /*dropout=*/0.2f);
    table.AddRow({arm.label, ResultTable::Cell(acc)});
  }
  const std::string csv = "/tmp/skipnode_ablation.csv";
  if (table.EmitToFile(TableFormat::kCsv, csv)) {
    std::printf("\nresults written to %s\n", csv.c_str());
  }
  std::printf(
      "\nExpected shape: larger rho helps at this depth (Fig. 5's lesson), "
      "with the best SkipNode arms well above vanilla; biased sampling "
      "peaks at a smaller rho than uniform; the ramp sits between its "
      "endpoint rhos. Plain skip connections are a strong baseline at this "
      "small-graph scale (they fix optimisation, and the shrunk graph's "
      "eval-time over-smoothing is milder than the paper's full-size "
      "setting, where Table 6 shows ResGCN still collapsing by L=32 while "
      "SkipNode variants survive).\n");
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
