// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The true-scale sweep (DESIGN §13/§15): streams DC-SBM graphs straight into
// CSR at 100k (smoke) / 1M (paper) nodes and trains GCNs on them, recording
// wall time, the resident footprint, and the process peak RSS. Panels:
//
//   * sampled_train — minibatch neighbor-sampled training (DESIGN §15) on
//     the big graph: L=3 with fanout 4, batch 128, SkipNode-U rho=0.5 so the
//     skip-aware frontier pruning fires. Records ms_per_epoch (one pass over
//     the train split) and rss_over_footprint against the graph + sampler
//     footprint; the validator's check_sampled rule holds the epoch wall to
//     <= 0.5x the full-batch stream_train cell and the RSS ratio to <= 2x.
//     It runs FIRST: ru_maxrss is a process-lifetime high-water mark, so the
//     sampled cell's peak is only attributable while the full-batch working
//     set has not yet been resident.
//   * stream_train — the headline full-batch memory cell on the same graph.
//     Records rss_over_footprint = peak_rss / MemoryFootprintBytes(); the
//     validator's check_scale rule holds it to <= 2x (the
//     streaming-construction acceptance bound).
//   * depth_sweep — nodes x layers x rho: a mid-sized graph trained at
//     increasing depth with SkipNode off/on, exposing which kernels stop
//     scaling first (per-kernel telemetry rides along in each JSONL record).
//   * sampled_accuracy — full vs sampled training to convergence on the
//     mid-sized graph; the validator holds the sampled val accuracy to
//     within 0.15 of full-batch.
//
// The workspace pool is trimmed between cells so one cell's buffers don't
// count against the next cell's budget.

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/telemetry.h"
#include "bench_common.h"
#include "graph/sampler.h"
#include "tensor/pool.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

int64_t PeakRssBytes() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

ModelConfig ScaleConfig(const Graph& graph, int num_layers, int hidden) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = num_layers;
  // Dropout stays 0 at scale: the n x d mask and its Hadamard copy would
  // double the feature-sized working set for no benchmarking value.
  config.dropout = 0.0f;
  return config;
}

// Trains a GCN for `epochs` full-batch steps and returns the mean wall
// time per epoch (ms).
double TrainMsPerEpoch(const Graph& graph, const Split& split,
                       const StrategyConfig& strategy, int num_layers,
                       int hidden, int epochs) {
  Rng rng(3);
  auto model = MakeModel("GCN", ScaleConfig(graph, num_layers, hidden), rng);
  const std::vector<Parameter*> params = model->Parameters();
  Adam optimizer(0.01f, 5e-4f);

  const int64_t start_ns = MonotonicNanos();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    Tape tape;
    StrategyContext ctx(graph, strategy, /*training=*/true, rng);
    Var logits = model->Forward(tape, graph, ctx, /*training=*/true, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, graph.labels(), split.train);
    Optimizer::ZeroGrad(params);
    tape.Backward(loss);
    optimizer.Step(params);
  }
  return static_cast<double>(MonotonicNanos() - start_ns) / 1e6 /
         static_cast<double>(epochs);
}

// Minibatch neighbor-sampled counterpart (DESIGN §15): one epoch is one
// shuffled pass over the train split, one optimizer step per batch — the
// same loop TrainNodeClassifier runs in sampling mode, without the
// full-batch evaluation passes so the cell times training alone.
double SampledTrainMsPerEpoch(const Graph& graph, const Split& split,
                              const StrategyConfig& strategy,
                              NeighborSampler& sampler, int hidden,
                              int batch_size, int epochs) {
  const int num_layers = static_cast<int>(sampler.config().fanouts.size());
  Rng rng(3);
  auto model = MakeModel("GCN", ScaleConfig(graph, num_layers, hidden), rng);
  const std::vector<Parameter*> params = model->Parameters();
  Adam optimizer(0.01f, 5e-4f);
  const LayerSkipMaskFn mask_fn =
      MakeSampledSkipMaskFn(graph, strategy, num_layers, rng);
  std::vector<int> seed_order = split.train;

  const int64_t start_ns = MonotonicNanos();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = seed_order.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(rng.UniformInt(i));
      std::swap(seed_order[i - 1], seed_order[j]);
    }
    for (size_t start = 0; start < seed_order.size();
         start += static_cast<size_t>(batch_size)) {
      const size_t end = std::min(start + static_cast<size_t>(batch_size),
                                  seed_order.size());
      const std::vector<int> seeds(seed_order.begin() + start,
                                   seed_order.begin() + end);
      const SampledBatch batch =
          sampler.SampleBlocks(seeds, rng.Next(), mask_fn);
      Tape tape;
      Var logits = model->ForwardSampled(tape, graph, batch, strategy,
                                         /*training=*/true, rng);
      std::vector<int> batch_labels(seeds.size());
      std::vector<int> batch_nodes(seeds.size());
      for (size_t i = 0; i < seeds.size(); ++i) {
        batch_labels[i] = graph.labels()[static_cast<size_t>(seeds[i])];
        batch_nodes[i] = static_cast<int>(i);
      }
      Var loss = tape.SoftmaxCrossEntropy(logits, batch_labels, batch_nodes);
      Optimizer::ZeroGrad(params);
      tape.Backward(loss);
      optimizer.Step(params);
    }
  }
  return static_cast<double>(MonotonicNanos() - start_ns) / 1e6 /
         static_cast<double>(epochs);
}

void RecordRss(bench::CellRecorder& recorder, int64_t footprint_bytes,
               double* ratio_out) {
  const int64_t peak = PeakRssBytes();
  const double ratio =
      static_cast<double>(peak) / static_cast<double>(footprint_bytes);
  recorder.Record("footprint_bytes", static_cast<double>(footprint_bytes));
  recorder.Record("peak_rss_bytes", static_cast<double>(peak));
  recorder.Record("rss_over_footprint", ratio);
  if (ratio_out != nullptr) *ratio_out = ratio;
}

// Panel 1: the big streaming graph, built once and shared by the sampled
// and full-batch training cells. Degree is high by design: the memory
// budget is relative to the resident graph, so the adjacency has to
// outweigh the training working set (DESIGN §13 derives the bound). Scoped
// in its own frame so the big graph is released before the mid-sized
// panels run.
void RunBigGraphPanel(int64_t big_nodes, double big_degree, int epochs) {
  DatasetRequest request;
  request.name = "synth";
  request.seed = 12;
  request.nodes = big_nodes;
  request.avg_degree = big_degree;
  const int64_t build_start_ns = MonotonicNanos();
  Graph graph = DatasetRegistry::Global().Build(request);
  const double build_ms =
      static_cast<double>(MonotonicNanos() - build_start_ns) / 1e6;
  Rng split_rng(12);
  Split split = PublicSplit(graph, 20, 300, 500, split_rng);

  const auto stamp_graph = [&](bench::CellRecorder& recorder) -> auto& {
    return recorder.Param("nodes", big_nodes)
        .Param("avg_degree", big_degree)
        .Param("hidden", 8)
        .Param("epochs", epochs)
        .Param("edges", static_cast<int64_t>(graph.num_edges()))
        .Param("index_width", graph.normalized_adjacency()->index_width());
  };

  // sampled_train runs FIRST (see file comment: RSS attribution).
  {
    const int fanout = 4;
    const int batch_size = 128;
    const float rho = 0.5f;
    bench::CellRecorder recorder("sampled_train");
    stamp_graph(recorder)
        .Param("layers", 3)
        .Param("fanout", fanout)
        .Param("batch_size", batch_size)
        .Param("rho", static_cast<double>(rho));
    NeighborSampler sampler(graph, {{fanout, fanout, fanout}});
    const double ms =
        SampledTrainMsPerEpoch(graph, split, StrategyConfig::SkipNodeU(rho),
                               sampler, /*hidden=*/8, batch_size, epochs);
    recorder.Record("ms_per_epoch", ms);
    double ratio = 0.0;
    RecordRss(recorder,
              graph.MemoryFootprintBytes() + sampler.MemoryFootprintBytes(),
              &ratio);
    std::printf(
        "sampled_train: synth @ %lld nodes, L=3 fanout=%d batch=%d "
        "rho=%.1f\n  %.1f ms/epoch, RSS ratio %.2f (budget 2.00)\n\n",
        static_cast<long long>(big_nodes), fanout, batch_size,
        static_cast<double>(rho), ms, ratio);
  }
  GlobalMatrixPool().Trim();

  // stream_train — the full-batch headline cell on the same graph.
  {
    bench::CellRecorder recorder("stream_train");
    stamp_graph(recorder).Param("layers", 2).Param("checked", 1);
    recorder.Record("build_ms", build_ms);
    const double ms = TrainMsPerEpoch(graph, split, StrategyConfig::None(),
                                      /*num_layers=*/2, /*hidden=*/8, epochs);
    recorder.Record("ms_per_epoch", ms);
    double ratio = 0.0;
    RecordRss(recorder, graph.MemoryFootprintBytes(), &ratio);
    std::printf(
        "stream_train: synth @ %lld nodes, avg degree %.0f\n"
        "  built in %.0f ms, %.1f ms/epoch, footprint %.1f MB, "
        "RSS ratio %.2f (budget 2.00)\n\n",
        static_cast<long long>(big_nodes), big_degree, build_ms, ms,
        static_cast<double>(graph.MemoryFootprintBytes()) / 1e6, ratio);
  }
  GlobalMatrixPool().Trim();
}

void Main() {
  bench::Begin("scale");

  const int64_t big_nodes = bench::Pick<int64_t>(100000, 1000000);
  const double big_degree = bench::Pick(150.0, 100.0);
  const int epochs = bench::Pick(2, 3);
  RunBigGraphPanel(big_nodes, big_degree, epochs);

  // --- Panel 2: depth x rho at a mid-sized graph (default degree 10).
  const int64_t sweep_nodes = bench::Pick<int64_t>(20000, 250000);
  const std::vector<int> depths =
      bench::PaperScale() ? std::vector<int>{2, 8, 32}
                          : std::vector<int>{2, 8, 16};
  const int hidden = 16;

  DatasetRequest request;
  request.name = "synth";
  request.seed = 12;
  request.nodes = sweep_nodes;
  Graph sweep_graph = DatasetRegistry::Global().Build(request);
  Rng sweep_split_rng(12);
  Split sweep_split = PublicSplit(sweep_graph, 20, 300, 500, sweep_split_rng);
  std::printf("depth_sweep: synth @ %lld nodes, layers x rho\n",
              static_cast<long long>(sweep_nodes));

  for (const int depth : depths) {
    for (const float rho : {0.0f, 0.5f}) {
      const StrategyConfig strategy =
          rho > 0.0f ? StrategyConfig::SkipNodeU(rho) : StrategyConfig::None();
      bench::CellRecorder recorder("depth_sweep");
      recorder.Param("nodes", sweep_nodes)
          .Param("layers", depth)
          .Param("rho", static_cast<double>(rho))
          .Param("hidden", hidden)
          .Param("epochs", epochs);
      const double ms = TrainMsPerEpoch(sweep_graph, sweep_split, strategy,
                                        depth, hidden, epochs);
      recorder.Record("ms_per_epoch", ms);
      recorder.Record("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
      std::printf("  L=%-3d rho=%.1f  %.1f ms/epoch\n", depth, rho, ms);
      GlobalMatrixPool().Trim();
    }
  }

  // --- Panel 3: sampled vs full-batch accuracy to convergence (the
  // validator holds sampled within 0.15 of full; DESIGN §15).
  const int acc_epochs = bench::Pick(40, 100);
  std::printf("\nsampled_accuracy: synth @ %lld nodes, L=3, %d epochs\n",
              static_cast<long long>(sweep_nodes), acc_epochs);
  for (const bool sampled : {false, true}) {
    bench::CellRecorder recorder("sampled_accuracy");
    recorder.Param("nodes", sweep_nodes)
        .Param("layers", 3)
        .Param("hidden", hidden)
        .Param("epochs", acc_epochs)
        .Param("mode", sampled ? "sampled" : "full")
        .Param("rho", 0.5);
    Rng rng(3);
    auto model = MakeModel("GCN", ScaleConfig(sweep_graph, 3, hidden), rng);
    TrainRun run{.options = {.epochs = acc_epochs, .seed = 7}};
    if (sampled) run.sampling = {.fanouts = {4, 4, 4}, .batch_size = 128};
    const TrainResult result =
        TrainNodeClassifier(*model, sweep_graph, sweep_split,
                            StrategyConfig::SkipNodeU(0.5f), run);
    recorder.Record("val_accuracy", result.best_val_accuracy);
    recorder.Record("test_accuracy", result.test_accuracy);
    std::printf("  %-7s val %.1f%%, test %.1f%%\n",
                sampled ? "sampled" : "full",
                100.0 * result.best_val_accuracy,
                100.0 * result.test_accuracy);
    GlobalMatrixPool().Trim();
  }
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
