// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The true-scale sweep (DESIGN §13): streams DC-SBM graphs straight into
// CSR at 100k (smoke) / 1M (paper) nodes and trains full-batch GCNs on
// them, recording wall time, the resident graph footprint, and the process
// peak RSS. Two panels:
//
//   * stream_train — the headline memory cell: a dense high-degree synth
//     graph is generated (no intermediate COO edge list) and trained for a
//     few epochs. The first cell records rss_over_footprint =
//     peak_rss / MemoryFootprintBytes(); the validator's check_scale rule
//     holds it to <= 2x (the streaming-construction acceptance bound). It
//     runs FIRST because ru_maxrss is a process-lifetime high-water mark —
//     later, smaller cells cannot retroactively shrink it.
//   * depth_sweep — nodes x layers x rho: a mid-sized graph trained at
//     increasing depth with SkipNode off/on, exposing which kernels stop
//     scaling first (per-kernel telemetry rides along in each JSONL
//     record).
//
// The workspace pool is trimmed between cells so one cell's buffers don't
// count against the next cell's budget.

#include <sys/resource.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/telemetry.h"
#include "bench_common.h"
#include "tensor/pool.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

int64_t PeakRssBytes() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

// Trains a GCN for `epochs` full-batch steps and returns the mean wall
// time per epoch (ms). Dropout stays 0 at scale: the n x d mask and its
// Hadamard copy would double the feature-sized working set for no
// benchmarking value.
double TrainMsPerEpoch(const Graph& graph, const Split& split,
                       const StrategyConfig& strategy, int num_layers,
                       int hidden, int epochs) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = num_layers;
  config.dropout = 0.0f;

  Rng rng(3);
  auto model = MakeModel("GCN", config, rng);
  const std::vector<Parameter*> params = model->Parameters();
  Adam optimizer(0.01f, 5e-4f);

  const int64_t start_ns = MonotonicNanos();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    Tape tape;
    StrategyContext ctx(graph, strategy, /*training=*/true, rng);
    Var logits = model->Forward(tape, graph, ctx, /*training=*/true, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, graph.labels(), split.train);
    Optimizer::ZeroGrad(params);
    tape.Backward(loss);
    optimizer.Step(params);
  }
  return static_cast<double>(MonotonicNanos() - start_ns) / 1e6 /
         static_cast<double>(epochs);
}

struct StreamCellResult {
  int64_t footprint_bytes = 0;
  int64_t peak_rss_bytes = 0;
  double ratio = 0.0;
};

// One generate-then-train cell on the streaming synth DC-SBM.
StreamCellResult RunStreamTrainCell(int64_t nodes, double avg_degree,
                                    int num_layers, int hidden, int epochs,
                                    bool checked) {
  bench::CellRecorder recorder("stream_train");
  recorder.Param("nodes", nodes)
      .Param("avg_degree", avg_degree)
      .Param("layers", num_layers)
      .Param("hidden", hidden)
      .Param("epochs", epochs)
      .Param("checked", checked ? 1 : 0);

  DatasetRequest request;
  request.name = "synth";
  request.seed = 12;
  request.nodes = nodes;
  request.avg_degree = avg_degree;

  const int64_t build_start_ns = MonotonicNanos();
  Graph graph = DatasetRegistry::Global().Build(request);
  const double build_ms =
      static_cast<double>(MonotonicNanos() - build_start_ns) / 1e6;
  recorder.Param("edges", static_cast<int64_t>(graph.num_edges()))
      .Param("index_width", graph.normalized_adjacency()->index_width());
  recorder.Record("build_ms", build_ms);

  Rng split_rng(12);
  Split split = PublicSplit(graph, 20, 300, 500, split_rng);
  const double ms = TrainMsPerEpoch(graph, split, StrategyConfig::None(),
                                    num_layers, hidden, epochs);
  recorder.Record("ms_per_epoch", ms);

  StreamCellResult result;
  result.footprint_bytes = graph.MemoryFootprintBytes();
  result.peak_rss_bytes = PeakRssBytes();
  result.ratio = static_cast<double>(result.peak_rss_bytes) /
                 static_cast<double>(result.footprint_bytes);
  recorder.Record("footprint_bytes",
                  static_cast<double>(result.footprint_bytes));
  recorder.Record("peak_rss_bytes",
                  static_cast<double>(result.peak_rss_bytes));
  if (checked) {
    // Only the first cell's high-water mark is attributable to one graph.
    recorder.Record("rss_over_footprint", result.ratio);
  }
  return result;
}

void Main() {
  bench::Begin("scale");

  // --- Panel 1: the streaming-memory acceptance cell (must run first; see
  // file comment). Degree is high by design: the budget is relative to the
  // resident graph, so the adjacency has to outweigh the training
  // working set (DESIGN §13 derives the bound).
  const int64_t big_nodes = bench::Pick<int64_t>(100000, 1000000);
  const double big_degree = bench::Pick(150.0, 100.0);
  std::printf("stream_train: synth @ %lld nodes, avg degree %.0f\n",
              static_cast<long long>(big_nodes), big_degree);
  const StreamCellResult big = RunStreamTrainCell(
      big_nodes, big_degree, /*num_layers=*/2, /*hidden=*/8,
      /*epochs=*/bench::Pick(2, 3), /*checked=*/true);
  std::printf(
      "  footprint %.1f MB, peak RSS %.1f MB, ratio %.2f (budget 2.00)\n\n",
      static_cast<double>(big.footprint_bytes) / 1e6,
      static_cast<double>(big.peak_rss_bytes) / 1e6, big.ratio);
  GlobalMatrixPool().Trim();

  // --- Panel 2: depth x rho at a mid-sized graph (default degree 10).
  const int64_t sweep_nodes = bench::Pick<int64_t>(20000, 250000);
  const std::vector<int> depths =
      bench::PaperScale() ? std::vector<int>{2, 8, 32}
                          : std::vector<int>{2, 8, 16};
  const int hidden = 16;
  const int epochs = bench::Pick(2, 3);

  DatasetRequest request;
  request.name = "synth";
  request.seed = 12;
  request.nodes = sweep_nodes;
  Graph graph = DatasetRegistry::Global().Build(request);
  Rng split_rng(12);
  Split split = PublicSplit(graph, 20, 300, 500, split_rng);
  std::printf("depth_sweep: synth @ %lld nodes, layers x rho\n",
              static_cast<long long>(sweep_nodes));

  for (const int depth : depths) {
    for (const float rho : {0.0f, 0.5f}) {
      const StrategyConfig strategy =
          rho > 0.0f ? StrategyConfig::SkipNodeU(rho) : StrategyConfig::None();
      bench::CellRecorder recorder("depth_sweep");
      recorder.Param("nodes", sweep_nodes)
          .Param("layers", depth)
          .Param("rho", static_cast<double>(rho))
          .Param("hidden", hidden)
          .Param("epochs", epochs);
      const double ms =
          TrainMsPerEpoch(graph, split, strategy, depth, hidden, epochs);
      recorder.Record("ms_per_epoch", ms);
      recorder.Record("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
      std::printf("  L=%-3d rho=%.1f  %.1f ms/epoch\n", depth, rho, ms);
      GlobalMatrixPool().Trim();
    }
  }
}

}  // namespace
}  // namespace skipnode

int main() {
  skipnode::Main();
  return 0;
}
