// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "bench_common.h"

#include <cstdlib>
#include <cstring>

#include "base/check.h"
#include "base/json.h"
#include "base/parallel.h"
#include "base/simd.h"
#include "base/telemetry.h"

namespace skipnode::bench {
namespace {

bool EnvSet(const char* name) { return std::getenv(name) != nullptr; }

// The bench name passed to Begin and the open JSONL sink (if any); plain
// globals — bench binaries are single-threaded at the harness level.
std::string g_bench_name = "bench";
std::FILE* g_json_sink = nullptr;

void CloseJsonSink() {
  if (g_json_sink != nullptr) {
    std::fclose(g_json_sink);
    g_json_sink = nullptr;
  }
}

std::string EncodeNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  if (const char* env = std::getenv("SKIPNODE_BENCH_SCALE")) {
    if (std::strcmp(env, "paper") == 0) {
      config.scale = Scale::kPaper;
    } else if (std::strcmp(env, "smoke") == 0) {
      config.scale = Scale::kSmoke;
    } else {
      SKIPNODE_CHECK_MSG(
          false, "SKIPNODE_BENCH_SCALE must be \"smoke\" or \"paper\", got "
          "\"%s\"", env);
    }
  }
  config.simd = simd::ParseEnabledEnv(std::getenv("SKIPNODE_SIMD"));
  config.guard = EnvSet("SKIPNODE_BENCH_GUARD");
  config.trace = EnvSet("SKIPNODE_BENCH_TRACE");
  if (const char* env = std::getenv("SKIPNODE_BENCH_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) config.threads = parsed;
  }
  if (const char* env = std::getenv("SKIPNODE_BENCH_JSON")) {
    config.json_path = env;
  }
  return config;
}

const BenchConfig& Config() {
  static const BenchConfig config = BenchConfig::FromEnv();
  return config;
}

void Begin(const char* name) {
  const BenchConfig& config = Config();
  g_bench_name = name;
  if (config.threads >= 1) SetParallelThreadCount(config.threads);
  simd::SetEnabled(config.simd);
  if (!config.json_path.empty() && g_json_sink == nullptr) {
    g_json_sink = std::fopen(config.json_path.c_str(), "a");
    SKIPNODE_CHECK(g_json_sink != nullptr);
    std::atexit(CloseJsonSink);
    // Per-cell snapshots need the registry live; the timers stay off the
    // numeric path, so the reported numbers do not move (DESIGN §9).
    SetTelemetryEnabled(true);
  }
  std::printf("==== %s ====\n", name);
  std::printf("scale: %s%s\n", PaperScale() ? "paper" : "smoke",
              PaperScale()
                  ? ""
                  : " (set SKIPNODE_BENCH_SCALE=paper for the full sweep)");
  std::printf("simd:  %s (compiled: %s)\n", config.simd ? "on" : "off",
              simd::CompiledMode());
  if (g_json_sink != nullptr) {
    std::printf("jsonl: %s\n", config.json_path.c_str());
  }
  std::printf("\n");
}

std::FILE* JsonSink() { return g_json_sink; }

CellRecorder::CellRecorder(std::string cell) : cell_(std::move(cell)) {
  if (g_json_sink == nullptr) return;
  if (TelemetryEnabled()) ResetTelemetry();
  start_ns_ = MonotonicNanos();
}

CellRecorder& CellRecorder::Param(const std::string& key,
                                  const std::string& value) {
  params_.emplace_back(key, "\"" + JsonObject::Escape(value) + "\"");
  return *this;
}

CellRecorder& CellRecorder::Param(const std::string& key, const char* value) {
  return Param(key, std::string(value));
}

CellRecorder& CellRecorder::Param(const std::string& key, double value) {
  params_.emplace_back(key, EncodeNumber(value));
  return *this;
}

CellRecorder& CellRecorder::Param(const std::string& key, int64_t value) {
  params_.emplace_back(key, std::to_string(value));
  return *this;
}

CellRecorder& CellRecorder::Param(const std::string& key, int value) {
  return Param(key, static_cast<int64_t>(value));
}

void CellRecorder::Record(const std::string& metric, double value) {
  if (g_json_sink == nullptr) return;
  JsonObject params;
  for (const auto& [key, raw] : params_) params.AddRaw(key, raw);
  JsonObject record;
  record.Add("bench", g_bench_name)
      .Add("cell", cell_)
      .Add("scale", PaperScale() ? "paper" : "smoke")
      .Add("threads", ParallelThreadCount())
      .AddRaw("params", params.Finish())
      .Add("metric", metric)
      .Add("value", value)
      .Add("elapsed_ns", MonotonicNanos() - start_ns_);
  if (TelemetryEnabled()) {
    record.AddRaw("telemetry", SnapshotTelemetry().ToJson());
  }
  std::fputs(record.Finish().c_str(), g_json_sink);
  std::fputc('\n', g_json_sink);
  std::fflush(g_json_sink);
}

double RunCell(const std::string& backbone, const Graph& graph,
               const Split& split, const StrategyConfig& strategy,
               int num_layers, int hidden, int epochs, uint64_t seed,
               float dropout, float weight_decay) {
  CellRecorder recorder(backbone);
  recorder.Param("backbone", backbone)
      .Param("strategy", StrategyName(strategy.kind))
      .Param("rate", static_cast<double>(strategy.rate))
      .Param("layers", num_layers)
      .Param("hidden", hidden)
      .Param("epochs", epochs)
      .Param("seed", static_cast<int64_t>(seed));

  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = num_layers;
  config.dropout = dropout;

  // Tracing observes only (it never touches the Rng) and the guardrail scans
  // are pure reads with no fault planted, so neither knob moves a reported
  // number (guarded cells stay bitwise identical to unguarded ones).
  TrainRun run;
  run.options.epochs = epochs;
  run.options.eval_every = 2;
  run.options.weight_decay = weight_decay;
  run.options.seed = seed;
  if (Config().trace) {
    run.on_epoch = [](int epoch, double loss, double val, double test) {
      std::printf("    epoch %4d | loss %.4f | val %.2f%% | test %.2f%%\n",
                  epoch, loss, 100.0 * val, 100.0 * test);
    };
  }
  run.health.enabled = Config().guard;

  Rng rng(seed * 7919 + 13);
  auto model = MakeModel(backbone, config, rng);
  const double accuracy =
      100.0 *
      TrainNodeClassifier(*model, graph, split, strategy, run).test_accuracy;
  recorder.Record("test_accuracy", accuracy);
  return accuracy;
}

double RunCellTuned(const std::string& backbone, const Graph& graph,
                    const Split& split, StrategyKind kind,
                    const std::vector<float>& rates, int num_layers,
                    int hidden, int epochs, uint64_t seed) {
  CellRecorder recorder(backbone);
  double best_val = -1.0, best_test = 0.0;
  float best_rate = 0.0f;
  for (const float rate : rates) {
    StrategyConfig strategy;
    strategy.kind = kind;
    strategy.rate = rate;

    ModelConfig config;
    config.in_dim = graph.feature_dim();
    config.hidden_dim = hidden;
    config.out_dim = graph.num_classes();
    config.num_layers = num_layers;

    TrainRun run;
    run.options.epochs = epochs;
    run.options.eval_every = 2;
    run.options.seed = seed;
    run.health.enabled = Config().guard;

    Rng rng(seed * 7919 + 13);
    auto model = MakeModel(backbone, config, rng);
    const TrainResult result =
        TrainNodeClassifier(*model, graph, split, strategy, run);
    if (result.best_val_accuracy > best_val) {
      best_val = result.best_val_accuracy;
      best_test = result.test_accuracy;
      best_rate = rate;
    }
  }
  recorder.Param("backbone", backbone)
      .Param("strategy", StrategyName(kind))
      .Param("best_rate", static_cast<double>(best_rate))
      .Param("layers", num_layers)
      .Param("hidden", hidden)
      .Param("epochs", epochs)
      .Param("seed", static_cast<int64_t>(seed));
  recorder.Record("test_accuracy", 100.0 * best_test);
  return 100.0 * best_test;
}

}  // namespace skipnode::bench
