#!/usr/bin/env bash
# Runs every paper bench at smoke scale with JSONL output enabled and
# validates the emitted records: every line must be a JSON object carrying
# the full per-cell schema (bench/cell/scale/threads/params/metric/value/
# elapsed_ns/telemetry), table8 must report per-kernel telemetry
# (tensor.gemm, sparse.spmm) plus positive per-epoch timings, micro must
# show the fused SkipNode propagation beating the naive path at rho=0.5,
# and serve must show 8-client batched serving at >= 2x the EvaluateLogits
# baseline throughput. scale must keep peak RSS within 2x of the resident
# CSR+features footprint at its checked streaming cell, and its
# sampled_train cell must hold the minibatch-sampling acceptance (epoch
# wall <= 0.5x full-batch, RSS ratio <= 2x, pruning telemetry at rho > 0,
# sampled accuracy within 0.15 of full).
# When tools/BENCH_baseline.jsonl exists each run is also diffed against it:
# missing (cell, metric) pairs fail (schema drift), slow cells only warn.
# Refresh the baseline by re-running this script with
# BENCH_BASELINE_REFRESH=1 (writes the merged smoke JSONL back to the file).
#
# Usage: tools/check_bench_smoke.sh [build_dir]
#   BENCHES="fig2_three_issues table8_efficiency" overrides the bench list.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found; build first" >&2
  exit 1
fi

DEFAULT_BENCHES="ablation_skipnode fig2_three_issues fig4_distance_ratio \
fig5_rho_sensitivity micro_kernels table3_full_supervised table4_arxiv_depth \
table5_link_prediction table6_semi_supervised_depth \
table7_strategy_comparison table8_efficiency serve_latency \
scale_depth_size"
BENCHES="${BENCHES:-$DEFAULT_BENCHES}"
BASELINE="tools/BENCH_baseline.jsonl"

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

export SKIPNODE_BENCH_SCALE=smoke

for bench in $BENCHES; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: missing bench binary $bin" >&2
    exit 1
  fi
  jsonl="$OUT_DIR/$bench.jsonl"
  echo "== $bench"
  SKIPNODE_BENCH_JSON="$jsonl" "$bin" >"$OUT_DIR/$bench.log" 2>&1 || {
    echo "error: $bench failed; last lines of log:" >&2
    tail -20 "$OUT_DIR/$bench.log" >&2
    exit 1
  }
  # Each bench registers itself under the short paper name (table8, fig2...),
  # the first token of the binary name.
  if [[ -f "$BASELINE" && -z "${BENCH_BASELINE_REFRESH:-}" ]]; then
    python3 tools/validate_bench_jsonl.py "${bench%%_*}" "$jsonl" \
        --baseline "$BASELINE"
  else
    python3 tools/validate_bench_jsonl.py "${bench%%_*}" "$jsonl"
  fi
done

if [[ -n "${BENCH_BASELINE_REFRESH:-}" ]]; then
  cat "$OUT_DIR"/*.jsonl > "$BASELINE"
  echo "bench smoke: baseline refreshed ($BASELINE, $(wc -l < "$BASELINE") records)."
fi

echo "bench smoke: all benches ran and emitted valid JSONL."
