// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/cli_flags.h"

#include <cstdlib>

#include "base/check.h"
#include "nn/model_factory.h"

namespace skipnode {

void FlagParser::Add(std::string name, bool boolean,
                     std::function<void(const char*)> set) {
  SKIPNODE_CHECK(Find(name) == nullptr);  // One registration per flag.
  flags_.push_back({std::move(name), boolean, std::move(set)});
}

void FlagParser::AddString(const std::string& name, std::string* target) {
  Add(name, false, [target](const char* value) { *target = value; });
}

void FlagParser::AddInt(const std::string& name, int* target) {
  Add(name, false, [target](const char* value) { *target = std::atoi(value); });
}

void FlagParser::AddInt64(const std::string& name, int64_t* target) {
  Add(name, false,
      [target](const char* value) { *target = std::atoll(value); });
}

void FlagParser::AddUint64(const std::string& name, uint64_t* target) {
  Add(name, false, [target](const char* value) {
    *target = std::strtoull(value, nullptr, 10);
  });
}

void FlagParser::AddDouble(const std::string& name, double* target) {
  Add(name, false, [target](const char* value) { *target = std::atof(value); });
}

void FlagParser::AddFloat(const std::string& name, float* target) {
  Add(name, false, [target](const char* value) {
    *target = static_cast<float>(std::atof(value));
  });
}

void FlagParser::AddBool(const std::string& name, bool* target) {
  Add(name, true, [target](const char*) { *target = true; });
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagParser::Parse(int argc, const char* const* argv,
                       std::FILE* out) const {
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    if (name == "--help") {
      std::fputs(usage_.c_str(), out);
      return false;
    }
    const Flag* flag = Find(name);
    if (flag != nullptr && flag->boolean) {
      flag->set(nullptr);
      continue;
    }
    // A trailing flag with no value reports missing-value even when the
    // name is unknown — the behaviour both hand-rolled parsers had.
    if (i + 1 >= argc) {
      std::fprintf(out, "error: flag %s needs a value\n", name.c_str());
      return false;
    }
    const char* value = argv[++i];
    if (flag == nullptr) {
      std::fprintf(out, "error: unknown flag %s (try --help)\n", name.c_str());
      return false;
    }
    flag->set(value);
  }
  return true;
}

void ModelDataFlags::RegisterOn(FlagParser* parser) {
  parser->AddString("--dataset", &dataset);
  parser->AddDouble("--scale", &scale);
  parser->AddUint64("--seed", &seed);
  parser->AddString("--model", &model);
  parser->AddInt("--layers", &layers);
  parser->AddInt("--hidden", &hidden);
  parser->AddFloat("--dropout", &dropout);
  parser->AddString("--strategy", &strategy);
  parser->AddFloat("--rate", &rate);
  parser->AddInt("--epochs", &epochs);
  parser->AddInt64("--nodes", &nodes);
  parser->AddDouble("--avg-degree", &avg_degree);
}

bool ModelDataFlags::BuildGraph(std::unique_ptr<Graph>* graph,
                                std::FILE* out) const {
  DatasetRequest request;
  request.scale = scale;
  request.seed = seed;
  request.avg_degree = avg_degree;
  if (!ParseDatasetRequest(dataset, &request)) {
    std::fprintf(out, "error: bad dataset size suffix in '%s'\n",
                 dataset.c_str());
    return false;
  }
  if (nodes > 0) request.nodes = nodes;  // Explicit flag beats @SIZE.
  if (!DatasetRegistry::Global().Contains(request.name)) {
    std::fprintf(out, "error: unknown dataset '%s'\n", request.name.c_str());
    return false;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(out, "error: --scale must be in (0, 1]\n");
    return false;
  }
  if (nodes < 0 || avg_degree < 0.0) {
    std::fprintf(out, "error: --nodes/--avg-degree must be >= 0\n");
    return false;
  }
  *graph = std::make_unique<Graph>(DatasetRegistry::Global().Build(request));
  return true;
}

bool MakeStrategyFromName(const std::string& name, float rate,
                          StrategyConfig* strategy, std::FILE* out) {
  if (name == "none") {
    *strategy = StrategyConfig::None();
  } else if (name == "dropedge") {
    *strategy = StrategyConfig::DropEdge(rate);
  } else if (name == "dropnode") {
    *strategy = StrategyConfig::DropNode(rate);
  } else if (name == "pairnorm") {
    *strategy = StrategyConfig::PairNorm();
  } else if (name == "skipconn") {
    *strategy = StrategyConfig::SkipConnection();
  } else if (name == "skipnode-u") {
    *strategy = StrategyConfig::SkipNodeU(rate);
  } else if (name == "skipnode-b") {
    *strategy = StrategyConfig::SkipNodeB(rate);
  } else {
    std::fprintf(out, "error: unknown strategy '%s'\n", name.c_str());
    return false;
  }
  return true;
}

bool KnownModelName(const std::string& name) {
  for (const std::string& known : AllModelNames()) {
    if (known == name) return true;
  }
  return false;
}

}  // namespace skipnode
