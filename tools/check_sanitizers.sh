#!/usr/bin/env bash
# Runs the test suite under both sanitizer modes:
#   * address: ASan + UBSan over the full ctest suite (memory bugs, UB);
#   * thread:  TSan over the pool-exercising tests (delegates to
#     tools/check_tsan.sh, which forces SKIPNODE_NUM_THREADS=4).
# Any report aborts the run.
#
# Usage: tools/check_sanitizers.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

echo "== address (ASan + UBSan) =="
cmake -B "$BUILD_DIR" -DSKIPNODE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
echo "ASan/UBSan: clean."

echo "== thread (TSan) =="
tools/check_tsan.sh "$@"

echo "Sanitizers: all clean."
