#!/usr/bin/env bash
# Builds the library under ThreadSanitizer and runs the tests that exercise
# the thread pool and the inference server. Any data race in ParallelFor, a
# parallel kernel, or the serve queue/batching path aborts the run with a
# TSan report.
#
# Usage: tools/check_tsan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" -DSKIPNODE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  parallel_test telemetry_test tensor_ops_test csr_matrix_test \
  spmm_transposed_parallel_test spmm_rowselect_test \
  graph_ops_test optimizer_test trainer_test trainer_metrics_test \
  sampler_test sampled_train_test \
  frozen_model_test serve_concurrency_test serve_robustness_test

# Force multi-threaded execution even on single-core hosts so the pool's
# synchronisation actually gets exercised.
export SKIPNODE_NUM_THREADS=4

ctest --test-dir "$BUILD_DIR" --output-on-failure -R \
  '^(parallel_test|telemetry_test|tensor_ops_test|csr_matrix_test|spmm_transposed_parallel_test|spmm_rowselect_test|graph_ops_test|optimizer_test|trainer_test|trainer_metrics_test|sampler_test|sampled_train_test|frozen_model_test|serve_concurrency_test|serve_robustness_test)$' \
  "$@"

echo "TSan: no data races detected."
