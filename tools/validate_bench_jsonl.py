#!/usr/bin/env python3
"""Validates a bench JSONL file produced via SKIPNODE_BENCH_JSON.

Usage: validate_bench_jsonl.py BENCH_NAME FILE.jsonl

Checks every line parses as a JSON object with the per-cell schema from
DESIGN.md section 9, and bench-specific invariants: table8 records must carry
per-kernel telemetry (tensor.gemm and sparse.spmm with positive counts) and a
positive ms_per_epoch headline value.
"""
import json
import sys

REQUIRED_KEYS = (
    "bench", "cell", "scale", "threads", "params", "metric", "value",
    "elapsed_ns", "telemetry",
)


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} BENCH_NAME FILE.jsonl")
    bench_name, path = sys.argv[1], sys.argv[2]

    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(record, dict):
                fail(f"{path}:{lineno}: record is not an object")
            for key in REQUIRED_KEYS:
                if key not in record:
                    fail(f"{path}:{lineno}: missing key {key!r}")
            if record["bench"] != bench_name:
                fail(f"{path}:{lineno}: bench={record['bench']!r}, "
                     f"expected {bench_name!r}")
            if not isinstance(record["params"], dict):
                fail(f"{path}:{lineno}: params is not an object")
            if not isinstance(record["telemetry"], dict):
                fail(f"{path}:{lineno}: telemetry is not an object")
            if not isinstance(record["value"], (int, float)):
                fail(f"{path}:{lineno}: value is not numeric")
            if not isinstance(record["elapsed_ns"], int) or \
                    record["elapsed_ns"] < 0:
                fail(f"{path}:{lineno}: elapsed_ns is not a non-negative int")
            for name, stat in record["telemetry"].items():
                for field in ("count", "items", "total_ns", "max_ns"):
                    if field not in stat:
                        fail(f"{path}:{lineno}: telemetry[{name!r}] "
                             f"missing {field!r}")
            records.append(record)

    if not records:
        fail(f"{path}: no records emitted")

    if bench_name == "table8":
        epochs = [r for r in records if r["metric"] == "ms_per_epoch"]
        if not epochs:
            fail(f"{path}: table8 emitted no ms_per_epoch records")
        for r in epochs:
            if r["value"] <= 0:
                fail(f"{path}: ms_per_epoch not positive in cell "
                     f"{r['cell']!r}")
            for kernel in ("tensor.gemm", "sparse.spmm"):
                stat = r["telemetry"].get(kernel)
                if stat is None or stat["count"] <= 0:
                    fail(f"{path}: cell {r['cell']!r} missing per-kernel "
                         f"telemetry for {kernel}")

    print(f"   {len(records)} records ok")


if __name__ == "__main__":
    main()
