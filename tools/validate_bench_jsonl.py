#!/usr/bin/env python3
"""Validates a bench JSONL file produced via SKIPNODE_BENCH_JSON.

Usage: validate_bench_jsonl.py BENCH_NAME FILE.jsonl [--baseline FILE.jsonl]

Checks every line parses as a JSON object with the per-cell schema from
DESIGN.md section 9, plus bench-specific invariants:
  * table8 records must carry per-kernel telemetry (tensor.gemm and
    sparse.spmm with positive counts) and a positive ms_per_epoch headline.
  * micro must show the fused SkipNode propagation beating the naive
    SpMM + RowSelect at rho=0.5 with spmm.rows_skipped > 0 in the fused
    cell's telemetry (the DESIGN section 10 acceptance signal).
  * micro must also emit transposed-SpMM cells (spmm_t at 1 and 4 threads,
    spmm_t_masked over rho) with the rho=1.0 masked gather beating the
    unmasked one and spmm_t.rows_skipped > 0 at rho=0.5. Thread speedup is
    NOT hard-checked: CI hosts may be single-core.
  * micro must emit the SIMD sweep (DESIGN section 14): simd_gemm /
    simd_axpby / simd_adam in both simd=0 and simd=1 variants, with the
    vectorized variant >= 1.5x faster on each of those three cells
    (simd_spmm / simd_relu are informational, presence-checked only).
  * serve must show batched serving at 8 client threads reaching >= 2x the
    one-request-at-a-time EvaluateLogits baseline throughput, with p50/p99
    latency records present (the DESIGN section 11 acceptance signal).
  * serve must also emit the serve_overload cells (DESIGN section 12): past
    capacity the shed policies reject structurally (shed_rate > 0) with
    queue_peak <= capacity and a survivor p99 no worse than the block
    policy's; block and the above-capacity control cell shed nothing and
    complete everything.
  * scale must emit a checked stream_train cell whose
    rss_over_footprint stays <= 2.0 — peak RSS within 2x of the resident
    CSR+features footprint, the streaming-construction acceptance bound
    (DESIGN section 13) — plus depth_sweep ms_per_epoch cells at rho 0
    and rho > 0.
  * scale must also pass the minibatch-sampling acceptance (DESIGN
    section 15): the sampled_train cell's ms_per_epoch <= 0.5x the
    full-batch stream_train cell on the same graph, its
    rss_over_footprint <= 2.0 against the graph + sampler footprint,
    sampler.edges_pruned > 0 in its telemetry whenever rho > 0, and the
    sampled_accuracy val_accuracy within 0.15 of the full-batch run.

With --baseline, diffs the run against a committed baseline (filtered to
BENCH_NAME): a (cell, metric) pair present in the baseline but missing from
the run is schema drift and fails; a cell that got much slower than the
baseline elapsed_ns only warns (timing noise is expected across machines).
"""
import json
import sys

REQUIRED_KEYS = (
    "bench", "cell", "scale", "threads", "params", "metric", "value",
    "elapsed_ns", "telemetry",
)

# A run must be this many times slower than the baseline before the
# regression warning fires; smoke cells are tiny and noisy.
ELAPSED_WARN_FACTOR = 5.0


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(1)


def load_records(path, bench_name=None, validate=False):
    """Parses a JSONL file; optionally schema-validates every record.

    When bench_name is given, records for other benches are dropped (the
    committed baseline holds every bench in one file).
    """
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(record, dict):
                fail(f"{path}:{lineno}: record is not an object")
            if validate:
                for key in REQUIRED_KEYS:
                    if key not in record:
                        fail(f"{path}:{lineno}: missing key {key!r}")
                if record["bench"] != bench_name:
                    fail(f"{path}:{lineno}: bench={record['bench']!r}, "
                         f"expected {bench_name!r}")
                if not isinstance(record["params"], dict):
                    fail(f"{path}:{lineno}: params is not an object")
                if not isinstance(record["telemetry"], dict):
                    fail(f"{path}:{lineno}: telemetry is not an object")
                if not isinstance(record["value"], (int, float)):
                    fail(f"{path}:{lineno}: value is not numeric")
                if not isinstance(record["elapsed_ns"], int) or \
                        record["elapsed_ns"] < 0:
                    fail(f"{path}:{lineno}: elapsed_ns is not a "
                         f"non-negative int")
                for name, stat in record["telemetry"].items():
                    for field in ("count", "items", "total_ns", "max_ns"):
                        if field not in stat:
                            fail(f"{path}:{lineno}: telemetry[{name!r}] "
                                 f"missing {field!r}")
            if bench_name is not None and record.get("bench") != bench_name:
                continue
            records.append(record)
    return records


def check_table8(path, records):
    epochs = [r for r in records if r["metric"] == "ms_per_epoch"]
    if not epochs:
        fail(f"{path}: table8 emitted no ms_per_epoch records")
    for r in epochs:
        if r["value"] <= 0:
            fail(f"{path}: ms_per_epoch not positive in cell {r['cell']!r}")
        for kernel in ("tensor.gemm", "sparse.spmm"):
            stat = r["telemetry"].get(kernel)
            if stat is None or stat["count"] <= 0:
                fail(f"{path}: cell {r['cell']!r} missing per-kernel "
                     f"telemetry for {kernel}")


def check_micro(path, records):
    """The fused-propagation acceptance check (DESIGN section 10)."""
    def sweep_cell(cell, rho):
        for r in records:
            if r["cell"] == cell and r["metric"] == "ns_per_op" and \
                    r["params"].get("rho") == rho:
                return r
        fail(f"{path}: micro emitted no {cell!r} ns_per_op record "
             f"at rho={rho}")

    naive = sweep_cell("spmm_naive", 0.5)
    fused = sweep_cell("spmm_fused", 0.5)
    if fused["value"] >= naive["value"]:
        fail(f"{path}: fused propagation ({fused['value']:.0f} ns) did not "
             f"beat naive ({naive['value']:.0f} ns) at rho=0.5")
    skipped = fused["telemetry"].get("spmm.rows_skipped")
    if skipped is None or skipped["items"] <= 0:
        fail(f"{path}: fused rho=0.5 cell reports no spmm.rows_skipped "
             f"telemetry")

    # Transposed-SpMM sweep (the backward gather). Presence at 1 and 4
    # threads is required; the 4-thread cell is not required to be faster —
    # CI hosts may be single-core (see EXPERIMENTS.md), so the only timing
    # invariant hard-checked is work-proportional: the masked gather at
    # rho=0.5 skips ~half the plan entries and must beat the unmasked
    # gather regardless of core count.
    spmm_t = {}
    for threads in (1, 4):
        for r in records:
            if r["cell"] == "spmm_t" and r["metric"] == "ns_per_op" and \
                    r["threads"] == threads:
                spmm_t[threads] = r
                break
        else:
            fail(f"{path}: micro emitted no 'spmm_t' ns_per_op record "
                 f"at threads={threads}")
    # Timing is hard-checked at rho=1.0 (everything skipped, ~5x margin);
    # rho=0.5 pays maximal skip-branch misprediction and its ~1.1-1.5x win
    # flakes on noisy hosts, so it only contributes the telemetry signal.
    masked_half = sweep_cell("spmm_t_masked", 0.5)
    masked_all = sweep_cell("spmm_t_masked", 1.0)
    unmasked_ns = min(r["value"] for r in spmm_t.values())
    if masked_all["value"] >= unmasked_ns:
        fail(f"{path}: fully-masked transposed gather "
             f"({masked_all['value']:.0f} ns) did not beat unmasked "
             f"({unmasked_ns:.0f} ns) at rho=1.0")
    t_skipped = masked_half["telemetry"].get("spmm_t.rows_skipped")
    if t_skipped is None or t_skipped["items"] <= 0:
        fail(f"{path}: spmm_t_masked rho=0.5 cell reports no "
             f"spmm_t.rows_skipped telemetry")

    # SIMD sweep (DESIGN section 14): the vectorized microkernels must beat
    # the retained scalar references by >= 1.5x single-threaded on the three
    # gate cells. The margin is conservative — the portable build's
    # compiler-vectorized strips measure ~3-4x on a 4-lane SSE2 baseline.
    SIMD_SPEEDUP_FLOOR = 1.5

    def simd_cell(cell, simd_on):
        for r in records:
            if r["cell"] == cell and r["metric"] == "ns_per_op" and \
                    r["params"].get("simd") == simd_on:
                return r
        fail(f"{path}: micro emitted no {cell!r} ns_per_op record "
             f"at simd={simd_on}")

    for cell in ("simd_gemm", "simd_axpby", "simd_adam"):
        scalar = simd_cell(cell, 0)
        vector = simd_cell(cell, 1)
        if vector["value"] <= 0:
            fail(f"{path}: {cell} simd=1 ns_per_op is not positive")
        speedup = scalar["value"] / vector["value"]
        if speedup < SIMD_SPEEDUP_FLOOR:
            fail(f"{path}: {cell} vectorized speedup {speedup:.2f}x is "
                 f"below the {SIMD_SPEEDUP_FLOOR}x floor "
                 f"({scalar['value']:.0f} ns scalar vs "
                 f"{vector['value']:.0f} ns vectorized)")
    for cell in ("simd_spmm", "simd_relu"):
        simd_cell(cell, 0)
        simd_cell(cell, 1)


def check_serve(path, records):
    """The serving-layer acceptance check (DESIGN section 11): batched
    serving at 8 client threads must beat the one-request-at-a-time
    EvaluateLogits baseline by >= 2x throughput. The margin is huge by
    construction (the baseline re-runs the full forward per request, the
    server reads precomputed tables), so 2x holds on any host."""
    def throughput(cell, clients):
        for r in records:
            if r["cell"] == cell and r["metric"] == "throughput_rps" and \
                    r["params"].get("clients") == clients:
                return r["value"]
        fail(f"{path}: serve emitted no {cell!r} throughput_rps record "
             f"at clients={clients}")

    baseline = throughput("eval_baseline", 1)
    batched = throughput("serve", 8)
    if baseline <= 0:
        fail(f"{path}: eval_baseline throughput is not positive")
    if batched < 2.0 * baseline:
        fail(f"{path}: batched serving at 8 clients ({batched:.0f} req/s) "
             f"did not reach 2x the EvaluateLogits baseline "
             f"({baseline:.0f} req/s)")
    for metric in ("p50_us", "p99_us"):
        if not any(r["metric"] == metric and r["cell"] == "serve"
                   for r in records):
            fail(f"{path}: serve emitted no {metric} records")
    # The baseline cell must actually be re-running the forward: its
    # telemetry carries one serve.freeze per request.
    for r in records:
        if r["cell"] == "eval_baseline" and \
                r["metric"] == "throughput_rps":
            freeze = r["telemetry"].get("serve.freeze")
            if freeze is None or freeze["count"] < \
                    r["params"].get("requests", 1):
                fail(f"{path}: eval_baseline telemetry does not show one "
                     f"serve.freeze per request")

    # Overload cells (DESIGN section 12): admission control must actually
    # bound the queue and shed structurally past capacity, and only there.
    def overload_cell(policy, tight):
        by_metric = {}
        for r in records:
            if r["cell"] != "serve_overload" or \
                    r["params"].get("policy") != policy:
                continue
            capacity = r["params"].get("capacity", 0)
            requests = r["params"].get("requests", 0)
            if tight != (capacity < requests):
                continue
            by_metric[r["metric"]] = r
        if not by_metric:
            fail(f"{path}: serve emitted no serve_overload cell for "
                 f"policy={policy!r} ({'tight' if tight else 'ample'} "
                 f"capacity)")
        for metric in ("throughput_rps", "p99_us", "shed_rate",
                       "completion_rate", "queue_peak"):
            if metric not in by_metric:
                fail(f"{path}: serve_overload policy={policy!r} cell is "
                     f"missing metric {metric!r}")
        capacity = by_metric["shed_rate"]["params"]["capacity"]
        if by_metric["queue_peak"]["value"] > capacity:
            fail(f"{path}: serve_overload policy={policy!r} queue_peak "
                 f"{by_metric['queue_peak']['value']:.0f} exceeds the "
                 f"capacity {capacity}")
        return by_metric

    block = overload_cell("block", tight=True)
    if block["shed_rate"]["value"] != 0.0:
        fail(f"{path}: the block policy shed requests "
             f"(shed_rate={block['shed_rate']['value']})")
    if block["completion_rate"]["value"] != 1.0:
        fail(f"{path}: the block policy did not complete every request "
             f"(completion_rate={block['completion_rate']['value']})")
    shed_p99s = []
    for policy in ("shed-newest", "shed-oldest"):
        cell = overload_cell(policy, tight=True)
        if cell["shed_rate"]["value"] <= 0.0:
            fail(f"{path}: policy {policy!r} shed nothing past capacity "
                 f"under burst load")
        shed_p99s.append(cell["p99_us"]["value"])
    # The point of shedding: survivors' tail latency is bounded by the
    # queue cap, so the best shed policy cannot be worse than block's p99.
    if min(shed_p99s) > block["p99_us"]["value"]:
        fail(f"{path}: shedding did not bound p99 (best shed "
             f"{min(shed_p99s):.0f} us vs block "
             f"{block['p99_us']['value']:.0f} us)")
    ample = overload_cell("shed-newest", tight=False)
    if ample["shed_rate"]["value"] != 0.0:
        fail(f"{path}: requests were shed below capacity "
             f"(shed_rate={ample['shed_rate']['value']})")


def check_scale(path, records):
    """The streaming-construction acceptance check (DESIGN section 13):
    generating + training the dense synth graph must keep the process peak
    RSS within 2x of the resident CSR+features footprint. The checked cell
    runs first in the binary, so its ru_maxrss high-water mark is
    attributable to that one graph."""
    RSS_BUDGET_FACTOR = 2.0
    checked = [r for r in records
               if r["cell"] == "stream_train" and
               r["metric"] == "rss_over_footprint" and
               r["params"].get("checked") == 1]
    if not checked:
        fail(f"{path}: scale emitted no checked rss_over_footprint record")
    for r in checked:
        if r["value"] <= 0:
            fail(f"{path}: rss_over_footprint is not positive")
        if r["value"] > RSS_BUDGET_FACTOR:
            fail(f"{path}: peak RSS is {r['value']:.2f}x the resident "
                 f"CSR+features footprint at {r['params'].get('nodes')} "
                 f"nodes (budget {RSS_BUDGET_FACTOR:.1f}x) — streaming "
                 f"construction is leaking working memory")
    for metric in ("build_ms", "footprint_bytes", "peak_rss_bytes"):
        if not any(r["cell"] == "stream_train" and r["metric"] == metric
                   for r in records):
            fail(f"{path}: scale emitted no stream_train {metric} record")
    # The depth sweep must cover both the vanilla and the SkipNode rho.
    for want_skip in (False, True):
        if not any(r["cell"] == "depth_sweep" and
                   r["metric"] == "ms_per_epoch" and
                   (r["params"].get("rho", 0) > 0) == want_skip
                   for r in records):
            fail(f"{path}: depth_sweep has no ms_per_epoch cell with "
                 f"rho {'>' if want_skip else '='} 0")


def check_sampled(path, records):
    """The minibatch-sampling acceptance check (DESIGN section 15): one
    sampled epoch (a pass over the train split) must cost at most half a
    full-batch epoch on the same graph, stay within the 2x RSS budget
    against the graph + sampler footprint, actually prune expansion work
    whenever rho > 0, and converge to within 0.15 of full-batch val
    accuracy."""
    SAMPLED_EPOCH_FACTOR = 0.5
    RSS_BUDGET_FACTOR = 2.0
    ACCURACY_TOLERANCE = 0.15

    def one(cell, metric, **params):
        for r in records:
            if r["cell"] == cell and r["metric"] == metric and \
                    all(r["params"].get(k) == v for k, v in params.items()):
                return r
        fail(f"{path}: scale emitted no {cell!r} {metric} record"
             + (f" with {params}" if params else ""))

    sampled = one("sampled_train", "ms_per_epoch")
    full = one("stream_train", "ms_per_epoch",
               nodes=sampled["params"].get("nodes"))
    if sampled["value"] <= 0:
        fail(f"{path}: sampled_train ms_per_epoch is not positive")
    if sampled["value"] > SAMPLED_EPOCH_FACTOR * full["value"]:
        fail(f"{path}: sampled epoch ({sampled['value']:.1f} ms) exceeds "
             f"{SAMPLED_EPOCH_FACTOR}x the full-batch epoch "
             f"({full['value']:.1f} ms) on the same graph")

    ratio = one("sampled_train", "rss_over_footprint")
    if not 0 < ratio["value"] <= RSS_BUDGET_FACTOR:
        fail(f"{path}: sampled_train peak RSS is {ratio['value']:.2f}x the "
             f"graph + sampler footprint (budget {RSS_BUDGET_FACTOR:.1f}x)")

    if sampled["params"].get("rho", 0) > 0:
        pruned = sampled["telemetry"].get("sampler.edges_pruned")
        if pruned is None or pruned["items"] <= 0:
            fail(f"{path}: sampled_train at rho="
                 f"{sampled['params'].get('rho')} reports no "
                 f"sampler.edges_pruned telemetry — skip-aware frontier "
                 f"pruning never fired")

    full_acc = one("sampled_accuracy", "val_accuracy", mode="full")
    sampled_acc = one("sampled_accuracy", "val_accuracy", mode="sampled")
    if sampled_acc["value"] < full_acc["value"] - ACCURACY_TOLERANCE:
        fail(f"{path}: sampled val accuracy {sampled_acc['value']:.3f} "
             f"fell more than {ACCURACY_TOLERANCE} below full-batch "
             f"{full_acc['value']:.3f}")


def diff_against_baseline(path, records, baseline_path, bench_name):
    baseline = load_records(baseline_path, bench_name=bench_name)
    if not baseline:
        # The baseline predates this bench; nothing to diff (adding a brand
        # new bench must not fail until the baseline is refreshed).
        print(f"   baseline has no {bench_name!r} records; diff skipped")
        return

    def keyed(recs):
        by_key = {}
        for r in recs:
            by_key.setdefault((r["cell"], r["metric"]), []).append(r)
        return by_key

    run_keys = keyed(records)
    base_keys = keyed(baseline)

    missing = sorted(set(base_keys) - set(run_keys))
    if missing:
        fail(f"{path}: schema drift vs {baseline_path}: baseline "
             f"(cell, metric) pairs missing from this run: {missing}")

    warned = 0
    for key, base_recs in base_keys.items():
        base_ns = min(r["elapsed_ns"] for r in base_recs)
        run_ns = min(r["elapsed_ns"] for r in run_keys[key])
        if base_ns > 0 and run_ns > ELAPSED_WARN_FACTOR * base_ns:
            print(f"warning: {path}: cell {key[0]!r} metric {key[1]!r} took "
                  f"{run_ns} ns vs baseline {base_ns} ns "
                  f"(> {ELAPSED_WARN_FACTOR:.0f}x)", file=sys.stderr)
            warned += 1
    extra = sorted(set(run_keys) - set(base_keys))
    if extra:
        print(f"   note: cells not in baseline (refresh it): {extra}")
    print(f"   baseline diff ok ({len(base_keys)} keys, "
          f"{warned} slow-cell warnings)")


def main():
    args = sys.argv[1:]
    baseline_path = None
    if "--baseline" in args:
        i = args.index("--baseline")
        if i + 1 >= len(args):
            fail("--baseline needs a path")
        baseline_path = args[i + 1]
        del args[i:i + 2]
    if len(args) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_NAME FILE.jsonl "
             f"[--baseline FILE.jsonl]")
    bench_name, path = args

    records = load_records(path, bench_name=bench_name, validate=True)
    if not records:
        fail(f"{path}: no records emitted")

    if bench_name == "table8":
        check_table8(path, records)
    if bench_name == "micro":
        check_micro(path, records)
    if bench_name == "serve":
        check_serve(path, records)
    if bench_name == "scale":
        check_scale(path, records)
        check_sampled(path, records)
    if baseline_path is not None:
        diff_against_baseline(path, records, baseline_path, bench_name)

    print(f"   {len(records)} records ok")


if __name__ == "__main__":
    main()
