// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared flag-parsing substrate for the skipnode_train / skipnode_serve
// CLIs. FlagParser maps --flag names to typed targets with the CLIs'
// long-standing behaviour (atoi/atof-style coercion, boolean flags take no
// value, --help prints usage, missing-value and unknown-flag errors);
// ModelDataFlags bundles the model/dataset flags both CLIs share, including
// dataset resolution through DatasetRegistry with the @SIZE / --nodes /
// --avg-degree size overrides (DESIGN §13).

#ifndef SKIPNODE_TOOLS_CLI_FLAGS_H_
#define SKIPNODE_TOOLS_CLI_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/strategies.h"
#include "graph/datasets.h"

namespace skipnode {

class FlagParser {
 public:
  explicit FlagParser(std::string usage) : usage_(std::move(usage)) {}

  void AddString(const std::string& name, std::string* target);
  void AddInt(const std::string& name, int* target);
  void AddInt64(const std::string& name, int64_t* target);
  void AddUint64(const std::string& name, uint64_t* target);
  void AddDouble(const std::string& name, double* target);
  void AddFloat(const std::string& name, float* target);
  // Boolean flag: takes no value; seeing it sets *target = true.
  void AddBool(const std::string& name, bool* target);

  // Parses argv. Returns false after printing the usage (--help), a
  // missing-value error, or an unknown-flag error; callers exit 1.
  bool Parse(int argc, const char* const* argv, std::FILE* out) const;

 private:
  struct Flag {
    std::string name;
    bool boolean;
    std::function<void(const char*)> set;
  };
  void Add(std::string name, bool boolean,
           std::function<void(const char*)> set);
  const Flag* Find(const std::string& name) const;

  std::string usage_;
  std::vector<Flag> flags_;
};

// The model/data flag set both CLIs share. Construct, adjust the per-CLI
// defaults (serve: model "SGC", epochs 50, dataset "cora_like"), call
// RegisterOn, parse, then BuildGraph.
struct ModelDataFlags {
  std::string dataset;  // Registry name, optionally with an @SIZE suffix.
  double scale = 1.0;
  uint64_t seed = 1;
  std::string model = "GCN";
  int layers = 2;
  int hidden = 64;
  float dropout = 0.5f;
  std::string strategy = "none";
  float rate = 0.5f;
  int epochs = 200;
  // Size overrides: either switches the dataset to the streaming CSR path.
  int64_t nodes = 0;        // --nodes: node-count override (0 = spec size).
  double avg_degree = 0.0;  // --avg-degree: average degree (0 = spec ratio).

  // Registers --dataset --scale --seed --model --layers --hidden --dropout
  // --strategy --rate --epochs --nodes --avg-degree on `parser`.
  void RegisterOn(FlagParser* parser);

  // Resolves `dataset` (name or name@SIZE; an explicit --nodes beats the
  // suffix) through DatasetRegistry::Global(). False, with the usual error
  // message, on a malformed suffix, unknown name, or out-of-range --scale.
  bool BuildGraph(std::unique_ptr<Graph>* graph, std::FILE* out) const;
};

// Shared name -> StrategyConfig resolution; false (with message) on unknown
// names.
bool MakeStrategyFromName(const std::string& name, float rate,
                          StrategyConfig* strategy, std::FILE* out);

// True when `name` is one of AllModelNames().
bool KnownModelName(const std::string& name);

}  // namespace skipnode

#endif  // SKIPNODE_TOOLS_CLI_FLAGS_H_
