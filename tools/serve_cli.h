// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The `skipnode_serve` command-line tool, as a library so tests can drive
// it directly. Freezes a model — either trained in-process or restored from
// a `skipnode_train --save-dir` checkpoint — and serves deterministic
// synthetic traffic through the InferenceServer, reporting throughput,
// latency percentiles, and batching behaviour.
//
//   skipnode_serve --dataset cora_like --model SGC --layers 2 --epochs 30
//       --clients 8 --requests 64 --window-us 500
//   skipnode_serve --load-dir ckpt --model GCN --layers 4 ...
//
// Run with --help for the full flag list.

#ifndef SKIPNODE_TOOLS_SERVE_CLI_H_
#define SKIPNODE_TOOLS_SERVE_CLI_H_

#include <cstdio>

namespace skipnode {

// Parses argv, runs the serving session, and writes human-readable results
// to `out`. Returns a process exit code (0 on success, 1 on bad flags or a
// served result that failed verification).
int RunServeCli(int argc, const char* const* argv, std::FILE* out = stdout);

}  // namespace skipnode

#endif  // SKIPNODE_TOOLS_SERVE_CLI_H_
