// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/serve_cli.h"

int main(int argc, char** argv) { return skipnode::RunServeCli(argc, argv); }
