// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/cli.h"

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "base/json.h"
#include "base/telemetry.h"
#include "core/oversmoothing.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/splits.h"
#include "nn/checkpoint.h"
#include "nn/model_factory.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

constexpr char kUsage[] = R"(skipnode_train: train a GNN with a plug-and-play strategy.

Data source (pick one):
  --dataset NAME        built-in synthetic dataset (cora_like, citeseer_like,
                        pubmed_like, chameleon_like, cornell_like, texas_like,
                        wisconsin_like, arxiv_like, ppa_like)
  --edges FILE --features FILE --labels FILE
                        user files: edge list ("u v" per line), CSV feature
                        matrix, one integer label per line
Options:
  --scale F             dataset scale in (0, 1] for built-ins   (default 1.0)
  --seed N              RNG seed for data/init/training         (default 1)
  --model NAME          GCN GAT ResGCN JKNet IncepGCN GCNII APPNP GPRGNN
                        GRAND SGC                               (default GCN)
  --layers N            convolution/propagation layers         (default 2)
  --hidden N            hidden width                            (default 64)
  --dropout F           dropout rate                            (default 0.5)
  --strategy NAME       none dropedge dropnode pairnorm skipconn skipnode-u
                        skipnode-b                              (default none)
  --rate F              strategy sampling rate rho              (default 0.5)
  --epochs N            training epochs                         (default 200)
  --lr F                learning rate                           (default 0.01)
  --weight-decay F      L2 coefficient                          (default 5e-4)
  --log-every N         print loss/val/test every N evaluated
                        epochs (0 = silent)                     (default 0)
  --metrics-out FILE    write training telemetry as JSONL: one "epoch" record
                        per epoch (forward/backward/step/health/eval ns) and
                        a final "summary" record with accuracies and the
                        aggregated kernel-timer snapshot
  --split NAME          public | random                         (default public)
  --save-dir DIR        checkpoint the trained model into DIR (created if
                        missing; saves are atomic)
  --load-dir DIR        warm-start from a checkpoint in DIR before training
Numerical health (DESIGN §8):
  --health              enable guardrails: non-finite loss/grad/param scans,
                        rollback to last good snapshot, LR backoff
  --check-every N       scan/snapshot cadence in epochs          (default 1)
  --max-rollbacks N     rollbacks before giving up               (default 3)
  --lr-backoff F        LR multiplier per rollback in (0,1]      (default 0.5)
  --grad-clip F         global gradient-norm clip (0 = off)      (default 0)
Fault injection (testing the guardrails):
  --inject SITE         arm one fault: activation | gradient | update
  --inject-epoch N      epoch at which it fires                  (default 0)
  --inject-kind K       nan | inf                                (default nan)
  --help                print this message
)";

struct CliOptions {
  std::string dataset;
  std::string edges_path, features_path, labels_path;
  double scale = 1.0;
  uint64_t seed = 1;
  std::string model = "GCN";
  int layers = 2;
  int hidden = 64;
  float dropout = 0.5f;
  std::string strategy = "none";
  float rate = 0.5f;
  int epochs = 200;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  int log_every = 0;
  std::string metrics_out;
  std::string split = "public";
  std::string save_dir;
  std::string load_dir;
  bool health = false;
  int check_every = 1;
  int max_rollbacks = 3;
  float lr_backoff = 0.5f;
  float grad_clip = 0.0f;
  std::string inject_site;
  int inject_epoch = 0;
  std::string inject_kind = "nan";
};

// Parses flags into `options`; returns false (with a message) on errors.
bool ParseFlags(int argc, const char* const* argv, CliOptions* options,
                std::FILE* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help") {
      std::fputs(kUsage, out);
      return false;
    }
    if (flag == "--health") {  // Boolean flag: takes no value.
      options->health = true;
      continue;
    }
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* value = next();
    if (value == nullptr) {
      std::fprintf(out, "error: flag %s needs a value\n", flag.c_str());
      return false;
    }
    if (flag == "--dataset") {
      options->dataset = value;
    } else if (flag == "--edges") {
      options->edges_path = value;
    } else if (flag == "--features") {
      options->features_path = value;
    } else if (flag == "--labels") {
      options->labels_path = value;
    } else if (flag == "--scale") {
      options->scale = std::atof(value);
    } else if (flag == "--seed") {
      options->seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--model") {
      options->model = value;
    } else if (flag == "--layers") {
      options->layers = std::atoi(value);
    } else if (flag == "--hidden") {
      options->hidden = std::atoi(value);
    } else if (flag == "--dropout") {
      options->dropout = static_cast<float>(std::atof(value));
    } else if (flag == "--strategy") {
      options->strategy = value;
    } else if (flag == "--rate") {
      options->rate = static_cast<float>(std::atof(value));
    } else if (flag == "--epochs") {
      options->epochs = std::atoi(value);
    } else if (flag == "--lr") {
      options->learning_rate = static_cast<float>(std::atof(value));
    } else if (flag == "--weight-decay") {
      options->weight_decay = static_cast<float>(std::atof(value));
    } else if (flag == "--log-every") {
      options->log_every = std::atoi(value);
    } else if (flag == "--metrics-out") {
      options->metrics_out = value;
    } else if (flag == "--split") {
      options->split = value;
    } else if (flag == "--save-dir") {
      options->save_dir = value;
    } else if (flag == "--load-dir") {
      options->load_dir = value;
    } else if (flag == "--check-every") {
      options->check_every = std::atoi(value);
    } else if (flag == "--max-rollbacks") {
      options->max_rollbacks = std::atoi(value);
    } else if (flag == "--lr-backoff") {
      options->lr_backoff = static_cast<float>(std::atof(value));
    } else if (flag == "--grad-clip") {
      options->grad_clip = static_cast<float>(std::atof(value));
    } else if (flag == "--inject") {
      options->inject_site = value;
    } else if (flag == "--inject-epoch") {
      options->inject_epoch = std::atoi(value);
    } else if (flag == "--inject-kind") {
      options->inject_kind = value;
    } else {
      std::fprintf(out, "error: unknown flag %s (try --help)\n",
                   flag.c_str());
      return false;
    }
  }
  return true;
}

bool MakeStrategy(const std::string& name, float rate,
                  StrategyConfig* strategy, std::FILE* out) {
  if (name == "none") {
    *strategy = StrategyConfig::None();
  } else if (name == "dropedge") {
    *strategy = StrategyConfig::DropEdge(rate);
  } else if (name == "dropnode") {
    *strategy = StrategyConfig::DropNode(rate);
  } else if (name == "pairnorm") {
    *strategy = StrategyConfig::PairNorm();
  } else if (name == "skipconn") {
    *strategy = StrategyConfig::SkipConnection();
  } else if (name == "skipnode-u") {
    *strategy = StrategyConfig::SkipNodeU(rate);
  } else if (name == "skipnode-b") {
    *strategy = StrategyConfig::SkipNodeB(rate);
  } else {
    std::fprintf(out, "error: unknown strategy '%s'\n", name.c_str());
    return false;
  }
  return true;
}

bool KnownModel(const std::string& name) {
  for (const std::string& known : AllModelNames()) {
    if (known == name) return true;
  }
  return false;
}

// Writes the per-epoch phase timings and a final summary (with the
// aggregated telemetry snapshot) as JSONL; false on I/O failure.
bool WriteMetricsJsonl(const std::string& path, const TrainResult& result) {
  std::FILE* sink = std::fopen(path.c_str(), "w");
  if (sink == nullptr) return false;
  for (const EpochMetrics& epoch : result.epoch_metrics) {
    JsonObject record;
    record.Add("type", "epoch")
        .Add("epoch", epoch.epoch)
        .Add("forward_ns", epoch.forward_ns)
        .Add("backward_ns", epoch.backward_ns)
        .Add("step_ns", epoch.step_ns)
        .Add("health_ns", epoch.health_ns)
        .Add("eval_ns", epoch.eval_ns)
        .Add("train_loss", epoch.train_loss);
    std::fputs(record.Finish().c_str(), sink);
    std::fputc('\n', sink);
  }
  JsonObject summary;
  summary.Add("type", "summary")
      .Add("epochs_run", result.epochs_run)
      .Add("best_epoch", result.best_epoch)
      .Add("best_val_accuracy", result.best_val_accuracy)
      .Add("test_accuracy", result.test_accuracy)
      .Add("final_train_loss", result.final_train_loss)
      .Add("rollbacks", result.rollbacks)
      .AddRaw("telemetry", SnapshotTelemetry().ToJson());
  std::fputs(summary.Finish().c_str(), sink);
  std::fputc('\n', sink);
  const bool ok = std::ferror(sink) == 0;
  return std::fclose(sink) == 0 && ok;
}

bool KnownDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return true;
  }
  return false;
}

}  // namespace

int RunCli(int argc, const char* const* argv, std::FILE* out) {
  CliOptions options;
  if (!ParseFlags(argc, argv, &options, out)) return 1;

  // --- Data ---------------------------------------------------------------
  std::unique_ptr<Graph> graph;
  if (!options.dataset.empty()) {
    if (!KnownDataset(options.dataset)) {
      std::fprintf(out, "error: unknown dataset '%s'\n",
                   options.dataset.c_str());
      return 1;
    }
    if (options.scale <= 0.0 || options.scale > 1.0) {
      std::fprintf(out, "error: --scale must be in (0, 1]\n");
      return 1;
    }
    graph = std::make_unique<Graph>(
        BuildDatasetByName(options.dataset, options.scale, options.seed));
  } else if (!options.edges_path.empty()) {
    if (options.features_path.empty() || options.labels_path.empty()) {
      std::fprintf(out,
                   "error: --edges needs --features and --labels too\n");
      return 1;
    }
    if (!LoadGraph("user_graph", options.edges_path, options.features_path,
                   options.labels_path, &graph)) {
      std::fprintf(out, "error: failed to load graph files\n");
      return 1;
    }
  } else {
    std::fprintf(out, "error: pass --dataset or --edges/... (see --help)\n");
    return 1;
  }
  std::fprintf(out, "graph: %s | %d nodes | %d edges | %d classes | "
                    "homophily %.2f\n",
               graph->name().c_str(), graph->num_nodes(), graph->num_edges(),
               graph->num_classes(), graph->EdgeHomophily());

  // --- Split --------------------------------------------------------------
  Rng split_rng(options.seed);
  Split split;
  if (options.split == "public") {
    split = PublicSplit(*graph, 20, 500, 1000, split_rng);
  } else if (options.split == "random") {
    split = RandomSplit(*graph, 0.6, 0.2, split_rng);
  } else {
    std::fprintf(out, "error: unknown split '%s'\n", options.split.c_str());
    return 1;
  }

  // --- Model & strategy ---------------------------------------------------
  if (!KnownModel(options.model)) {
    std::fprintf(out, "error: unknown model '%s'\n", options.model.c_str());
    return 1;
  }
  if (options.layers < 2) {
    std::fprintf(out, "error: --layers must be >= 2\n");
    return 1;
  }
  StrategyConfig strategy;
  if (!MakeStrategy(options.strategy, options.rate, &strategy, out)) {
    return 1;
  }

  ModelConfig config;
  config.in_dim = graph->feature_dim();
  config.hidden_dim = options.hidden;
  config.out_dim = graph->num_classes();
  config.num_layers = options.layers;
  config.dropout = options.dropout;

  Rng model_rng(options.seed + 7);
  auto model = MakeModel(options.model, config, model_rng);
  if (!options.load_dir.empty()) {
    if (!LoadModelParameters(*model, options.load_dir)) {
      std::fprintf(out,
                   "error: failed to restore checkpoint from '%s' "
                   "(model left untouched)\n",
                   options.load_dir.c_str());
      return 1;
    }
    std::fprintf(out, "warm-started from %s\n", options.load_dir.c_str());
  }

  // --- Train --------------------------------------------------------------
  TrainRun train_run;
  train_run.options.epochs = options.epochs;
  train_run.options.learning_rate = options.learning_rate;
  train_run.options.weight_decay = options.weight_decay;
  train_run.options.seed = options.seed;
  if (options.check_every < 1 || options.max_rollbacks < 0 ||
      options.lr_backoff <= 0.0f || options.lr_backoff > 1.0f ||
      options.grad_clip < 0.0f) {
    std::fprintf(out, "error: bad health flags (see --help)\n");
    return 1;
  }
  train_run.health.enabled = options.health;
  train_run.health.check_every = options.check_every;
  train_run.health.max_rollbacks = options.max_rollbacks;
  train_run.health.lr_backoff = options.lr_backoff;
  train_run.health.grad_clip_norm = options.grad_clip;
  if (!options.inject_site.empty()) {
    FaultPlan plan;
    plan.enabled = true;
    if (!ParseFaultSite(options.inject_site, &plan.site)) {
      std::fprintf(out, "error: unknown --inject site '%s'\n",
                   options.inject_site.c_str());
      return 1;
    }
    if (!ParseFaultKind(options.inject_kind, &plan.kind)) {
      std::fprintf(out, "error: unknown --inject-kind '%s'\n",
                   options.inject_kind.c_str());
      return 1;
    }
    plan.epoch = options.inject_epoch;
    plan.seed = options.seed + 41;
    train_run.fault = plan;
  }
  if (options.log_every > 0) {
    const int log_every = options.log_every;
    train_run.on_epoch = [out, log_every](int epoch, double train_loss,
                                          double val_acc, double test_acc) {
      if (epoch % log_every != 0) return;
      std::fprintf(out, "epoch %4d | loss %.4f | val %.2f%% | test %.2f%%\n",
                   epoch, train_loss, 100.0 * val_acc, 100.0 * test_acc);
    };
  }
  if (!options.metrics_out.empty()) {
    // Per-epoch metrics plus kernel-level timers; both stay off the numeric
    // path, so the trained model is bitwise identical to an uninstrumented
    // run (tests/train/trainer_metrics_test.cc asserts this).
    train_run.collect_metrics = true;
    SetTelemetryEnabled(true);
    ResetTelemetry();
  }
  std::fprintf(out, "training %s (L=%d, hidden=%d) + %s for %d epochs\n",
               options.model.c_str(), options.layers, options.hidden,
               StrategyName(strategy.kind), options.epochs);
  const TrainResult result =
      TrainNodeClassifier(*model, *graph, split, strategy, train_run);
  if (!options.metrics_out.empty() &&
      !WriteMetricsJsonl(options.metrics_out, result)) {
    std::fprintf(out, "error: could not write metrics to '%s'\n",
                 options.metrics_out.c_str());
    return 1;
  }
  for (const HealthEvent& event : result.health_log) {
    std::fprintf(out, "health: epoch %4d | %-20s | %s\n", event.epoch,
                 HealthEventKindName(event.kind), event.detail.c_str());
  }
  if (result.rollbacks > 0) {
    std::fprintf(out, "health: %d rollback(s); final lr %g\n",
                 result.rollbacks, result.final_learning_rate);
  }

  // --- Report -------------------------------------------------------------
  // Eval mode draws no randomness, so this is deterministic and
  // Penultimate() is refreshed as an owned copy by the forward inside.
  const Matrix logits = EvaluateLogits(*model, *graph, strategy);
  std::fprintf(out, "best val accuracy : %.2f%% (epoch %d)\n",
               100.0 * result.best_val_accuracy, result.best_epoch);
  std::fprintf(out, "test accuracy     : %.2f%%\n",
               100.0 * result.test_accuracy);
  std::fprintf(out, "test macro-F1     : %.3f\n",
               MacroF1(logits, graph->labels(), split.test,
                       graph->num_classes()));
  std::fprintf(out, "penultimate MAD   : %.4f\n",
               MeanAverageDistance(*graph, model->Penultimate()));

  if (!options.save_dir.empty()) {
    if (!SaveModelParameters(*model, options.save_dir)) {
      std::fprintf(out, "error: checkpoint to '%s' failed\n",
                   options.save_dir.c_str());
      return 1;
    }
    std::fprintf(out, "checkpoint saved to %s\n", options.save_dir.c_str());
  }
  return 0;
}

}  // namespace skipnode
