// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/cli.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/json.h"
#include "base/telemetry.h"
#include "core/oversmoothing.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/splits.h"
#include "nn/checkpoint.h"
#include "nn/model_factory.h"
#include "tools/cli_flags.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

constexpr char kUsage[] = R"(skipnode_train: train a GNN with a plug-and-play strategy.

Data source (pick one):
  --dataset NAME        built-in synthetic dataset (cora_like, citeseer_like,
                        pubmed_like, chameleon_like, cornell_like, texas_like,
                        wisconsin_like, arxiv_like, ppa_like, synth); NAME may
                        carry an @SIZE node-count suffix ("arxiv_like@169k",
                        "synth@1m"), which builds through the streaming CSR
                        path
  --edges FILE --features FILE --labels FILE
                        user files: edge list ("u v" per line), CSV feature
                        matrix, one integer label per line
Options:
  --scale F             dataset scale in (0, 1] for built-ins   (default 1.0)
  --nodes N             node-count override (0 = spec size); any override
                        switches to the streaming CSR path      (default 0)
  --avg-degree F        average-degree override (0 = spec edge/node ratio)
  --seed N              RNG seed for data/init/training         (default 1)
  --model NAME          GCN GAT ResGCN JKNet IncepGCN GCNII APPNP GPRGNN
                        GRAND SGC                               (default GCN)
  --layers N            convolution/propagation layers         (default 2)
  --hidden N            hidden width                            (default 64)
  --dropout F           dropout rate                            (default 0.5)
  --strategy NAME       none dropedge dropnode pairnorm skipconn skipnode-u
                        skipnode-b                              (default none)
  --rate F              strategy sampling rate rho              (default 0.5)
  --epochs N            training epochs                         (default 200)
  --sample-fanout N     minibatch neighbor sampling: cap every layer's
                        sampled non-self neighbors at N (0 = full-batch;
                        GCN/ResGCN with strategy none/skipnode-u/skipnode-b
                        only; eval stays full-batch)            (default 0)
  --batch-size N        seed nodes per minibatch when sampling  (default 512)
  --lr F                learning rate                           (default 0.01)
  --weight-decay F      L2 coefficient                          (default 5e-4)
  --log-every N         print loss/val/test every N evaluated
                        epochs (0 = silent)                     (default 0)
  --metrics-out FILE    write training telemetry as JSONL: one "epoch" record
                        per epoch (forward/backward/step/health/eval ns) and
                        a final "summary" record with accuracies and the
                        aggregated kernel-timer snapshot
  --split NAME          public | random                         (default public)
  --save-dir DIR        checkpoint the trained model into DIR (created if
                        missing; saves are atomic)
  --load-dir DIR        warm-start from a checkpoint in DIR before training
Numerical health (DESIGN §8):
  --health              enable guardrails: non-finite loss/grad/param scans,
                        rollback to last good snapshot, LR backoff
  --check-every N       scan/snapshot cadence in epochs          (default 1)
  --max-rollbacks N     rollbacks before giving up               (default 3)
  --lr-backoff F        LR multiplier per rollback in (0,1]      (default 0.5)
  --grad-clip F         global gradient-norm clip (0 = off)      (default 0)
Fault injection (testing the guardrails):
  --inject SITE         arm one fault: activation | gradient | update
  --inject-epoch N      epoch at which it fires                  (default 0)
  --inject-kind K       nan | inf                                (default nan)
  --help                print this message
)";

struct CliOptions {
  ModelDataFlags md;
  std::string edges_path, features_path, labels_path;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  int log_every = 0;
  std::string metrics_out;
  std::string split = "public";
  std::string save_dir;
  std::string load_dir;
  bool health = false;
  int check_every = 1;
  int max_rollbacks = 3;
  float lr_backoff = 0.5f;
  float grad_clip = 0.0f;
  std::string inject_site;
  int inject_epoch = 0;
  std::string inject_kind = "nan";
  int sample_fanout = 0;
  int batch_size = 512;
};

// Writes the per-epoch phase timings and a final summary (with the
// aggregated telemetry snapshot) as JSONL; false on I/O failure.
bool WriteMetricsJsonl(const std::string& path, const TrainResult& result) {
  std::FILE* sink = std::fopen(path.c_str(), "w");
  if (sink == nullptr) return false;
  for (const EpochMetrics& epoch : result.epoch_metrics) {
    JsonObject record;
    record.Add("type", "epoch")
        .Add("epoch", epoch.epoch)
        .Add("forward_ns", epoch.forward_ns)
        .Add("backward_ns", epoch.backward_ns)
        .Add("step_ns", epoch.step_ns)
        .Add("health_ns", epoch.health_ns)
        .Add("eval_ns", epoch.eval_ns)
        .Add("train_loss", epoch.train_loss);
    std::fputs(record.Finish().c_str(), sink);
    std::fputc('\n', sink);
  }
  JsonObject summary;
  summary.Add("type", "summary")
      .Add("epochs_run", result.epochs_run)
      .Add("best_epoch", result.best_epoch)
      .Add("best_val_accuracy", result.best_val_accuracy)
      .Add("test_accuracy", result.test_accuracy)
      .Add("final_train_loss", result.final_train_loss)
      .Add("rollbacks", result.rollbacks)
      .AddRaw("telemetry", SnapshotTelemetry().ToJson());
  std::fputs(summary.Finish().c_str(), sink);
  std::fputc('\n', sink);
  const bool ok = std::ferror(sink) == 0;
  return std::fclose(sink) == 0 && ok;
}

}  // namespace

int RunCli(int argc, const char* const* argv, std::FILE* out) {
  CliOptions options;
  FlagParser parser(kUsage);
  options.md.RegisterOn(&parser);
  parser.AddString("--edges", &options.edges_path);
  parser.AddString("--features", &options.features_path);
  parser.AddString("--labels", &options.labels_path);
  parser.AddFloat("--lr", &options.learning_rate);
  parser.AddFloat("--weight-decay", &options.weight_decay);
  parser.AddInt("--log-every", &options.log_every);
  parser.AddString("--metrics-out", &options.metrics_out);
  parser.AddString("--split", &options.split);
  parser.AddString("--save-dir", &options.save_dir);
  parser.AddString("--load-dir", &options.load_dir);
  parser.AddBool("--health", &options.health);
  parser.AddInt("--check-every", &options.check_every);
  parser.AddInt("--max-rollbacks", &options.max_rollbacks);
  parser.AddFloat("--lr-backoff", &options.lr_backoff);
  parser.AddFloat("--grad-clip", &options.grad_clip);
  parser.AddString("--inject", &options.inject_site);
  parser.AddInt("--inject-epoch", &options.inject_epoch);
  parser.AddString("--inject-kind", &options.inject_kind);
  parser.AddInt("--sample-fanout", &options.sample_fanout);
  parser.AddInt("--batch-size", &options.batch_size);
  if (!parser.Parse(argc, argv, out)) return 1;

  // --- Data ---------------------------------------------------------------
  std::unique_ptr<Graph> graph;
  if (!options.md.dataset.empty()) {
    if (!options.md.BuildGraph(&graph, out)) return 1;
  } else if (!options.edges_path.empty()) {
    if (options.features_path.empty() || options.labels_path.empty()) {
      std::fprintf(out,
                   "error: --edges needs --features and --labels too\n");
      return 1;
    }
    if (!LoadGraph("user_graph", options.edges_path, options.features_path,
                   options.labels_path, &graph)) {
      std::fprintf(out, "error: failed to load graph files\n");
      return 1;
    }
  } else {
    std::fprintf(out, "error: pass --dataset or --edges/... (see --help)\n");
    return 1;
  }
  std::fprintf(out, "graph: %s | %d nodes | %d edges | %d classes | "
                    "homophily %.2f\n",
               graph->name().c_str(), graph->num_nodes(), graph->num_edges(),
               graph->num_classes(), graph->EdgeHomophily());

  // --- Split --------------------------------------------------------------
  Rng split_rng(options.md.seed);
  Split split;
  if (options.split == "public") {
    split = PublicSplit(*graph, 20, 500, 1000, split_rng);
  } else if (options.split == "random") {
    split = RandomSplit(*graph, 0.6, 0.2, split_rng);
  } else {
    std::fprintf(out, "error: unknown split '%s'\n", options.split.c_str());
    return 1;
  }

  // --- Model & strategy ---------------------------------------------------
  if (!KnownModelName(options.md.model)) {
    std::fprintf(out, "error: unknown model '%s'\n",
                 options.md.model.c_str());
    return 1;
  }
  if (options.md.layers < 2) {
    std::fprintf(out, "error: --layers must be >= 2\n");
    return 1;
  }
  StrategyConfig strategy;
  if (!MakeStrategyFromName(options.md.strategy, options.md.rate, &strategy,
                            out)) {
    return 1;
  }

  ModelConfig config;
  config.in_dim = graph->feature_dim();
  config.hidden_dim = options.md.hidden;
  config.out_dim = graph->num_classes();
  config.num_layers = options.md.layers;
  config.dropout = options.md.dropout;

  Rng model_rng(options.md.seed + 7);
  auto model = MakeModel(options.md.model, config, model_rng);
  if (!options.load_dir.empty()) {
    if (!LoadModelParameters(*model, options.load_dir)) {
      std::fprintf(out,
                   "error: failed to restore checkpoint from '%s' "
                   "(model left untouched)\n",
                   options.load_dir.c_str());
      return 1;
    }
    std::fprintf(out, "warm-started from %s\n", options.load_dir.c_str());
  }

  // --- Train --------------------------------------------------------------
  TrainRun train_run;
  train_run.options.epochs = options.md.epochs;
  train_run.options.learning_rate = options.learning_rate;
  train_run.options.weight_decay = options.weight_decay;
  train_run.options.seed = options.md.seed;
  if (options.check_every < 1 || options.max_rollbacks < 0 ||
      options.lr_backoff <= 0.0f || options.lr_backoff > 1.0f ||
      options.grad_clip < 0.0f) {
    std::fprintf(out, "error: bad health flags (see --help)\n");
    return 1;
  }
  train_run.health.enabled = options.health;
  train_run.health.check_every = options.check_every;
  train_run.health.max_rollbacks = options.max_rollbacks;
  train_run.health.lr_backoff = options.lr_backoff;
  train_run.health.grad_clip_norm = options.grad_clip;
  if (!options.inject_site.empty()) {
    FaultPlan plan;
    plan.enabled = true;
    if (!ParseFaultSite(options.inject_site, &plan.site)) {
      std::fprintf(out, "error: unknown --inject site '%s'\n",
                   options.inject_site.c_str());
      return 1;
    }
    if (!ParseFaultKind(options.inject_kind, &plan.kind)) {
      std::fprintf(out, "error: unknown --inject-kind '%s'\n",
                   options.inject_kind.c_str());
      return 1;
    }
    plan.epoch = options.inject_epoch;
    plan.seed = options.md.seed + 41;
    train_run.fault = plan;
  }
  if (options.sample_fanout < 0 || options.batch_size < 1) {
    std::fprintf(out, "error: bad sampling flags (see --help)\n");
    return 1;
  }
  if (options.sample_fanout > 0) {
    if (!model->SupportsSampledForward()) {
      std::fprintf(out,
                   "error: --sample-fanout is not supported by model '%s'\n",
                   options.md.model.c_str());
      return 1;
    }
    if (strategy.kind != StrategyKind::kNone &&
        strategy.kind != StrategyKind::kSkipNodeUniform &&
        strategy.kind != StrategyKind::kSkipNodeBiased) {
      std::fprintf(out,
                   "error: --sample-fanout supports only strategies none / "
                   "skipnode-u / skipnode-b\n");
      return 1;
    }
    train_run.sampling.fanouts.assign(
        static_cast<size_t>(options.md.layers), options.sample_fanout);
    train_run.sampling.batch_size = options.batch_size;
  }
  if (options.log_every > 0) {
    const int log_every = options.log_every;
    train_run.on_epoch = [out, log_every](int epoch, double train_loss,
                                          double val_acc, double test_acc) {
      if (epoch % log_every != 0) return;
      std::fprintf(out, "epoch %4d | loss %.4f | val %.2f%% | test %.2f%%\n",
                   epoch, train_loss, 100.0 * val_acc, 100.0 * test_acc);
    };
  }
  if (!options.metrics_out.empty()) {
    // Per-epoch metrics plus kernel-level timers; both stay off the numeric
    // path, so the trained model is bitwise identical to an uninstrumented
    // run (tests/train/trainer_metrics_test.cc asserts this).
    train_run.collect_metrics = true;
    SetTelemetryEnabled(true);
    ResetTelemetry();
  }
  std::fprintf(out, "training %s (L=%d, hidden=%d) + %s for %d epochs\n",
               options.md.model.c_str(), options.md.layers, options.md.hidden,
               StrategyName(strategy.kind), options.md.epochs);
  if (train_run.sampling.enabled()) {
    std::fprintf(out, "sampling: fanout %d, batch size %d\n",
                 options.sample_fanout, train_run.sampling.batch_size);
  }
  const TrainResult result =
      TrainNodeClassifier(*model, *graph, split, strategy, train_run);
  if (!options.metrics_out.empty() &&
      !WriteMetricsJsonl(options.metrics_out, result)) {
    std::fprintf(out, "error: could not write metrics to '%s'\n",
                 options.metrics_out.c_str());
    return 1;
  }
  for (const HealthEvent& event : result.health_log) {
    std::fprintf(out, "health: epoch %4d | %-20s | %s\n", event.epoch,
                 HealthEventKindName(event.kind), event.detail.c_str());
  }
  if (result.rollbacks > 0) {
    std::fprintf(out, "health: %d rollback(s); final lr %g\n",
                 result.rollbacks, result.final_learning_rate);
  }

  // --- Report -------------------------------------------------------------
  // Eval mode draws no randomness, so this is deterministic and
  // Penultimate() is refreshed as an owned copy by the forward inside.
  const Matrix logits = EvaluateLogits(*model, *graph, strategy);
  std::fprintf(out, "best val accuracy : %.2f%% (epoch %d)\n",
               100.0 * result.best_val_accuracy, result.best_epoch);
  std::fprintf(out, "test accuracy     : %.2f%%\n",
               100.0 * result.test_accuracy);
  std::fprintf(out, "test macro-F1     : %.3f\n",
               MacroF1(logits, graph->labels(), split.test,
                       graph->num_classes()));
  std::fprintf(out, "penultimate MAD   : %.4f\n",
               MeanAverageDistance(*graph, model->Penultimate()));

  if (!options.save_dir.empty()) {
    if (!SaveModelParameters(*model, options.save_dir)) {
      std::fprintf(out, "error: checkpoint to '%s' failed\n",
                   options.save_dir.c_str());
      return 1;
    }
    std::fprintf(out, "checkpoint saved to %s\n", options.save_dir.c_str());
  }
  return 0;
}

}  // namespace skipnode
