// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/serve_cli.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/telemetry.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "serve/inference_server.h"
#include "tensor/ops.h"
#include "tools/cli_flags.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

constexpr char kUsage[] = R"(skipnode_serve: frozen-model inference service.

Model source:
  --load-dir DIR        freeze from a skipnode_train --save-dir checkpoint
                        (the manifest is validated against --model/--layers/
                        --hidden before loading)
  (no --load-dir)       train in-process for --epochs, then freeze
Model / data:
  --dataset NAME        built-in synthetic dataset          (default cora_like)
                        NAME may carry an @SIZE node-count suffix
                        ("arxiv_like@169k", "synth@1m"): streaming CSR path
  --scale F             dataset scale in (0, 1]             (default 1.0)
  --nodes N             node-count override (0 = spec size) (default 0)
  --avg-degree F        average-degree override (0 = spec edge/node ratio)
  --seed N              RNG seed for data/init/training     (default 1)
  --model NAME          GCN GAT ResGCN JKNet IncepGCN GCNII APPNP GPRGNN
                        GRAND SGC                           (default SGC)
  --layers N            convolution/propagation layers      (default 2)
  --hidden N            hidden width                        (default 64)
  --dropout F           training dropout rate               (default 0.5)
  --strategy NAME       none dropedge dropnode pairnorm skipconn skipnode-u
                        skipnode-b                          (default none)
  --rate F              strategy sampling rate rho          (default 0.5)
  --epochs N            training epochs before freezing     (default 50)
Traffic:
  --clients N           concurrent client threads           (default 4)
  --requests N          requests per client                 (default 64)
  --batch-ids N         node ids per request                (default 4)
  --burst               open-loop traffic: each client submits all its
                        requests before waiting on any response
  --deadline-us N       per-request deadline in microseconds; 0 = none
                        (default 0)
Server:
  --workers N           server worker threads               (default 1)
  --window-us N         batching window in microseconds; 0 disables
                        coalescing                          (default 500)
  --batch-rows N        soft cap on coalesced rows          (default 256)
  --queue-cap N         max queued requests; 0 = unbounded  (default 0)
  --policy NAME         block shed-newest shed-oldest       (default block)
Hot swap / fault injection:
  --swap-dir DIR        after traffic starts, validate the checkpoint at DIR
                        (same --model/--layers/--hidden) and hot-swap to it;
                        a corrupt candidate is rejected without downtime
  --inject SITE         serve-worker-stall | serve-batch-drop
  --inject-batch N      batch ordinal the fault fires at    (default 0)
  --inject-stall-us N   stall length for serve-worker-stall (default 10000)
  --help                print this message
)";

struct ServeCliOptions {
  ModelDataFlags md;
  std::string load_dir;
  int clients = 4;
  int requests = 64;
  int batch_ids = 4;
  int workers = 1;
  int window_us = 500;
  int batch_rows = 256;
  int queue_cap = 0;
  std::string policy = "block";
  bool burst = false;
  int64_t deadline_us = 0;
  std::string swap_dir;
  std::string inject_site;
  int64_t inject_batch = 0;
  int inject_stall_us = 10000;
};

bool ParseFlags(int argc, const char* const* argv, ServeCliOptions* options,
                std::FILE* out) {
  FlagParser parser(kUsage);
  options->md.RegisterOn(&parser);
  parser.AddString("--load-dir", &options->load_dir);
  parser.AddInt("--clients", &options->clients);
  parser.AddInt("--requests", &options->requests);
  parser.AddInt("--batch-ids", &options->batch_ids);
  parser.AddInt("--workers", &options->workers);
  parser.AddInt("--window-us", &options->window_us);
  parser.AddInt("--batch-rows", &options->batch_rows);
  parser.AddInt("--queue-cap", &options->queue_cap);
  parser.AddString("--policy", &options->policy);
  parser.AddBool("--burst", &options->burst);
  parser.AddInt64("--deadline-us", &options->deadline_us);
  parser.AddString("--swap-dir", &options->swap_dir);
  parser.AddString("--inject", &options->inject_site);
  parser.AddInt64("--inject-batch", &options->inject_batch);
  parser.AddInt("--inject-stall-us", &options->inject_stall_us);
  if (!parser.Parse(argc, argv, out)) return false;
  if (options->clients < 1 || options->requests < 1 ||
      options->batch_ids < 1) {
    std::fprintf(out, "error: --clients/--requests/--batch-ids must be >= 1\n");
    return false;
  }
  return true;
}

std::vector<int> RequestIds(uint64_t seed, int client, int request, int count,
                            int num_nodes) {
  Rng rng(seed * 7919 + 131 * static_cast<uint64_t>(client) + request);
  std::vector<int> ids(static_cast<size_t>(count));
  for (int& id : ids) {
    id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
  }
  return ids;
}

}  // namespace

int RunServeCli(int argc, const char* const* argv, std::FILE* out) {
  ServeCliOptions options;
  // Serve-flavoured defaults on the shared flag set.
  options.md.dataset = "cora_like";
  options.md.model = "SGC";
  options.md.epochs = 50;
  if (!ParseFlags(argc, argv, &options, out)) return 1;
  if (!KnownModelName(options.md.model)) {
    std::fprintf(out, "error: unknown model '%s'\n", options.md.model.c_str());
    return 1;
  }
  StrategyConfig strategy;
  if (!MakeStrategyFromName(options.md.strategy, options.md.rate, &strategy,
                            out)) {
    return 1;
  }

  std::unique_ptr<Graph> graph_owner;
  if (!options.md.BuildGraph(&graph_owner, out)) return 1;
  const Graph& graph = *graph_owner;
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = options.md.hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = options.md.layers;
  config.dropout = options.md.dropout;

  OverloadPolicy policy;
  if (!ParseOverloadPolicy(options.policy, &policy)) {
    std::fprintf(out, "error: unknown policy '%s'\n", options.policy.c_str());
    return 1;
  }
  ServeFaultPlan fault;
  if (!options.inject_site.empty()) {
    fault.enabled = true;
    if (!ParseServeFaultSite(options.inject_site, &fault.site)) {
      std::fprintf(out, "error: unknown serve fault site '%s'\n",
                   options.inject_site.c_str());
      return 1;
    }
    fault.batch_index = options.inject_batch;
    fault.stall_us = options.inject_stall_us;
  }

  std::shared_ptr<FrozenModel> frozen;
  if (!options.load_dir.empty()) {
    frozen = std::make_shared<FrozenModel>(FrozenModel::FromCheckpoint(
        options.load_dir, options.md.model, config, graph, strategy));
    std::fprintf(out, "frozen %s from checkpoint %s\n",
                 frozen->model_name().c_str(), options.load_dir.c_str());
  } else {
    Rng rng(options.md.seed);
    auto model = MakeModel(options.md.model, config, rng);
    Rng split_rng(options.md.seed);
    const Split split = PublicSplit(
        graph, 10, std::max(10, graph.num_nodes() / 10),
        std::max(10, graph.num_nodes() / 10), split_rng);
    const TrainResult trained = TrainNodeClassifier(
        *model, graph, split, strategy,
        {.options = {.epochs = options.md.epochs, .seed = options.md.seed}});
    frozen = std::make_shared<FrozenModel>(
        FrozenModel::Freeze(*model, graph, strategy));
    std::fprintf(out, "trained %s for %d epochs (test acc %.1f%%), frozen\n",
                 frozen->model_name().c_str(), trained.epochs_run,
                 100.0 * trained.test_accuracy);
  }
  std::fprintf(out, "frozen model: %d nodes, %d classes, %s path\n",
               frozen->num_nodes(), frozen->num_classes(),
               frozen->has_linear_head() ? "linear-head" : "logit-gather");

  ServeOptions serve_options{.workers = options.workers,
                             .max_batch_rows = options.batch_rows,
                             .batch_window_us = options.window_us,
                             .max_queue_requests = options.queue_cap,
                             .overload_policy = policy,
                             .default_deadline_us = options.deadline_us};
  serve_options.fault = fault;
  InferenceServer server(frozen, serve_options);

  // Hot-swap watcher: once traffic is in flight, validate the candidate
  // checkpoint and retarget the server. A corrupt/mismatched candidate is
  // rejected without disturbing serving. The outcome message is printed
  // after the traffic report (stdio is not synchronised with the clients).
  std::shared_ptr<FrozenModel> swapped;
  std::string swap_report;
  std::thread watcher;
  if (!options.swap_dir.empty()) {
    watcher = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::string error;
      std::unique_ptr<FrozenModel> candidate = FrozenModel::TryFromCheckpoint(
          options.swap_dir, options.md.model, config, graph, strategy, &error);
      if (candidate == nullptr) {
        swap_report = "hot-swap rejected: " + error;
        return;
      }
      swapped = std::move(candidate);
      server.SwapModel(swapped);
      swap_report = "hot-swap: now serving checkpoint " + options.swap_dir;
    });
  }

  const int total_requests = options.clients * options.requests;
  std::vector<PredictionHandle> handles(static_cast<size_t>(total_requests));
  std::vector<int64_t> latencies_ns(static_cast<size_t>(total_requests), 0);

  const int64_t start_ns = MonotonicNanos();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      const int base = c * options.requests;
      std::vector<int64_t> submit_ns(static_cast<size_t>(options.requests));
      for (int r = 0; r < options.requests; ++r) {
        const std::vector<int> ids =
            RequestIds(options.md.seed, c, r, options.batch_ids,
                       frozen->num_nodes());
        submit_ns[static_cast<size_t>(r)] = MonotonicNanos();
        handles[static_cast<size_t>(base + r)] = server.Submit(ids);
        if (!options.burst) {
          handles[static_cast<size_t>(base + r)].status();  // Closed loop.
          latencies_ns[static_cast<size_t>(base + r)] =
              MonotonicNanos() - submit_ns[static_cast<size_t>(r)];
        }
      }
      if (options.burst) {
        for (int r = 0; r < options.requests; ++r) {
          handles[static_cast<size_t>(base + r)].status();
          latencies_ns[static_cast<size_t>(base + r)] =
              MonotonicNanos() - submit_ns[static_cast<size_t>(r)];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const int64_t elapsed_ns = MonotonicNanos() - start_ns;
  if (watcher.joinable()) watcher.join();
  server.Shutdown();

  // Post-join verification: every kOk response must bitwise match one of
  // the snapshots the server ever held (primary, or the swap candidate).
  int64_t ok = 0, rejected = 0, deadline_exceeded = 0, invalid = 0;
  int total_mismatches = 0;
  std::vector<int64_t> ok_latencies_ns;
  ok_latencies_ns.reserve(static_cast<size_t>(total_requests));
  for (int c = 0; c < options.clients; ++c) {
    for (int r = 0; r < options.requests; ++r) {
      const PredictionHandle& handle =
          handles[static_cast<size_t>(c * options.requests + r)];
      switch (handle.status()) {
        case ServeStatus::kOk: {
          ++ok;
          ok_latencies_ns.push_back(
              latencies_ns[static_cast<size_t>(c * options.requests + r)]);
          const std::vector<int> ids =
              RequestIds(options.md.seed, c, r, options.batch_ids,
                         frozen->num_nodes());
          const bool matches_primary =
              MaxAbsDiff(handle.logits(), frozen->Logits(ids)) == 0.0f;
          const bool matches_swapped =
              swapped != nullptr &&
              MaxAbsDiff(handle.logits(), swapped->Logits(ids)) == 0.0f;
          if (!matches_primary && !matches_swapped) ++total_mismatches;
          break;
        }
        case ServeStatus::kDeadlineExceeded:
          ++deadline_exceeded;
          break;
        case ServeStatus::kInvalidArgument:
          ++invalid;
          break;
        default:
          ++rejected;  // kRejected / kShutdown.
          break;
      }
    }
  }

  const ServeStats stats = server.stats();
  std::sort(ok_latencies_ns.begin(), ok_latencies_ns.end());
  const auto percentile = [&](double p) {
    if (ok_latencies_ns.empty()) return 0.0;
    const size_t index = std::min(
        ok_latencies_ns.size() - 1,
        static_cast<size_t>(p * static_cast<double>(ok_latencies_ns.size())));
    return static_cast<double>(ok_latencies_ns[index]) / 1e3;
  };
  std::fprintf(out,
               "served %lld requests (%lld rows) from %d clients in %.1f ms: "
               "%.0f req/s\n",
               static_cast<long long>(stats.requests),
               static_cast<long long>(stats.rows), options.clients,
               static_cast<double>(elapsed_ns) / 1e6,
               1e9 * static_cast<double>(stats.requests) /
                   static_cast<double>(elapsed_ns));
  std::fprintf(out, "latency p50 %.0f us | p99 %.0f us (ok responses)\n",
               percentile(0.5), percentile(0.99));
  std::fprintf(out, "batches %lld (%.2f requests/batch, window %d us)\n",
               static_cast<long long>(stats.batches),
               static_cast<double>(stats.requests) /
                   static_cast<double>(std::max<int64_t>(stats.batches, 1)),
               options.window_us);
  std::fprintf(out,
               "status: ok %lld | rejected %lld | deadline %lld | "
               "invalid %lld (policy %s, queue cap %d, peak %lld)\n",
               static_cast<long long>(ok), static_cast<long long>(rejected),
               static_cast<long long>(deadline_exceeded),
               static_cast<long long>(invalid), OverloadPolicyName(policy),
               options.queue_cap, static_cast<long long>(stats.queue_peak));
  for (const ServeFaultEvent& event : server.fault_events()) {
    std::fprintf(out, "fault fired: %s at batch %lld\n",
                 ServeFaultSiteName(event.site),
                 static_cast<long long>(event.batch_index));
  }
  if (!swap_report.empty()) {
    std::fprintf(out, "%s (swaps %lld)\n", swap_report.c_str(),
                 static_cast<long long>(stats.swaps));
  }

  if (total_mismatches > 0) {
    std::fprintf(out, "verification FAILED: %d mismatched responses\n",
                 total_mismatches);
    return 1;
  }
  std::fprintf(out, "verification OK: every ok response bitwise matches a "
                    "frozen-model snapshot\n");
  return 0;
}

}  // namespace skipnode
