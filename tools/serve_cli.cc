// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/serve_cli.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/telemetry.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "serve/inference_server.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

constexpr char kUsage[] = R"(skipnode_serve: frozen-model inference service.

Model source:
  --load-dir DIR        freeze from a skipnode_train --save-dir checkpoint
                        (the manifest is validated against --model/--layers/
                        --hidden before loading)
  (no --load-dir)       train in-process for --epochs, then freeze
Model / data:
  --dataset NAME        built-in synthetic dataset          (default cora_like)
  --scale F             dataset scale in (0, 1]             (default 1.0)
  --seed N              RNG seed for data/init/training     (default 1)
  --model NAME          GCN GAT ResGCN JKNet IncepGCN GCNII APPNP GPRGNN
                        GRAND SGC                           (default SGC)
  --layers N            convolution/propagation layers      (default 2)
  --hidden N            hidden width                        (default 64)
  --dropout F           training dropout rate               (default 0.5)
  --strategy NAME       none dropedge dropnode pairnorm skipconn skipnode-u
                        skipnode-b                          (default none)
  --rate F              strategy sampling rate rho          (default 0.5)
  --epochs N            training epochs before freezing     (default 50)
Traffic:
  --clients N           concurrent client threads           (default 4)
  --requests N          requests per client                 (default 64)
  --batch-ids N         node ids per request                (default 4)
Server:
  --workers N           server worker threads               (default 1)
  --window-us N         batching window in microseconds; 0 disables
                        coalescing                          (default 500)
  --batch-rows N        soft cap on coalesced rows          (default 256)
  --help                print this message
)";

struct ServeCliOptions {
  std::string dataset = "cora_like";
  double scale = 1.0;
  uint64_t seed = 1;
  std::string model = "SGC";
  int layers = 2;
  int hidden = 64;
  float dropout = 0.5f;
  std::string strategy = "none";
  float rate = 0.5f;
  int epochs = 50;
  std::string load_dir;
  int clients = 4;
  int requests = 64;
  int batch_ids = 4;
  int workers = 1;
  int window_us = 500;
  int batch_rows = 256;
};

bool ParseFlags(int argc, const char* const* argv, ServeCliOptions* options,
                std::FILE* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help") {
      std::fputs(kUsage, out);
      return false;
    }
    if (i + 1 >= argc) {
      std::fprintf(out, "error: flag %s needs a value\n", flag.c_str());
      return false;
    }
    const char* value = argv[++i];
    if (flag == "--dataset") {
      options->dataset = value;
    } else if (flag == "--scale") {
      options->scale = std::atof(value);
    } else if (flag == "--seed") {
      options->seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--model") {
      options->model = value;
    } else if (flag == "--layers") {
      options->layers = std::atoi(value);
    } else if (flag == "--hidden") {
      options->hidden = std::atoi(value);
    } else if (flag == "--dropout") {
      options->dropout = static_cast<float>(std::atof(value));
    } else if (flag == "--strategy") {
      options->strategy = value;
    } else if (flag == "--rate") {
      options->rate = static_cast<float>(std::atof(value));
    } else if (flag == "--epochs") {
      options->epochs = std::atoi(value);
    } else if (flag == "--load-dir") {
      options->load_dir = value;
    } else if (flag == "--clients") {
      options->clients = std::atoi(value);
    } else if (flag == "--requests") {
      options->requests = std::atoi(value);
    } else if (flag == "--batch-ids") {
      options->batch_ids = std::atoi(value);
    } else if (flag == "--workers") {
      options->workers = std::atoi(value);
    } else if (flag == "--window-us") {
      options->window_us = std::atoi(value);
    } else if (flag == "--batch-rows") {
      options->batch_rows = std::atoi(value);
    } else {
      std::fprintf(out, "error: unknown flag %s (try --help)\n",
                   flag.c_str());
      return false;
    }
  }
  if (options->clients < 1 || options->requests < 1 ||
      options->batch_ids < 1) {
    std::fprintf(out, "error: --clients/--requests/--batch-ids must be >= 1\n");
    return false;
  }
  return true;
}

bool MakeStrategy(const std::string& name, float rate,
                  StrategyConfig* strategy, std::FILE* out) {
  if (name == "none") {
    *strategy = StrategyConfig::None();
  } else if (name == "dropedge") {
    *strategy = StrategyConfig::DropEdge(rate);
  } else if (name == "dropnode") {
    *strategy = StrategyConfig::DropNode(rate);
  } else if (name == "pairnorm") {
    *strategy = StrategyConfig::PairNorm();
  } else if (name == "skipconn") {
    *strategy = StrategyConfig::SkipConnection();
  } else if (name == "skipnode-u") {
    *strategy = StrategyConfig::SkipNodeU(rate);
  } else if (name == "skipnode-b") {
    *strategy = StrategyConfig::SkipNodeB(rate);
  } else {
    std::fprintf(out, "error: unknown strategy '%s'\n", name.c_str());
    return false;
  }
  return true;
}

bool KnownModel(const std::string& name) {
  for (const std::string& known : AllModelNames()) {
    if (known == name) return true;
  }
  return false;
}

std::vector<int> RequestIds(uint64_t seed, int client, int request, int count,
                            int num_nodes) {
  Rng rng(seed * 7919 + 131 * static_cast<uint64_t>(client) + request);
  std::vector<int> ids(static_cast<size_t>(count));
  for (int& id : ids) {
    id = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
  }
  return ids;
}

}  // namespace

int RunServeCli(int argc, const char* const* argv, std::FILE* out) {
  ServeCliOptions options;
  if (!ParseFlags(argc, argv, &options, out)) return 1;
  if (!KnownModel(options.model)) {
    std::fprintf(out, "error: unknown model '%s'\n", options.model.c_str());
    return 1;
  }
  StrategyConfig strategy;
  if (!MakeStrategy(options.strategy, options.rate, &strategy, out)) return 1;

  const Graph graph =
      BuildDatasetByName(options.dataset, options.scale, options.seed);
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = options.hidden;
  config.out_dim = graph.num_classes();
  config.num_layers = options.layers;
  config.dropout = options.dropout;

  std::unique_ptr<FrozenModel> frozen;
  if (!options.load_dir.empty()) {
    frozen = std::make_unique<FrozenModel>(FrozenModel::FromCheckpoint(
        options.load_dir, options.model, config, graph, strategy));
    std::fprintf(out, "frozen %s from checkpoint %s\n",
                 frozen->model_name().c_str(), options.load_dir.c_str());
  } else {
    Rng rng(options.seed);
    auto model = MakeModel(options.model, config, rng);
    Rng split_rng(options.seed);
    const Split split = PublicSplit(
        graph, 10, std::max(10, graph.num_nodes() / 10),
        std::max(10, graph.num_nodes() / 10), split_rng);
    const TrainResult trained = TrainNodeClassifier(
        *model, graph, split, strategy,
        {.options = {.epochs = options.epochs, .seed = options.seed}});
    frozen = std::make_unique<FrozenModel>(
        FrozenModel::Freeze(*model, graph, strategy));
    std::fprintf(out, "trained %s for %d epochs (test acc %.1f%%), frozen\n",
                 frozen->model_name().c_str(), trained.epochs_run,
                 100.0 * trained.test_accuracy);
  }
  std::fprintf(out, "frozen model: %d nodes, %d classes, %s path\n",
               frozen->num_nodes(), frozen->num_classes(),
               frozen->has_linear_head() ? "linear-head" : "logit-gather");

  InferenceServer server(*frozen,
                         {.workers = options.workers,
                          .max_batch_rows = options.batch_rows,
                          .batch_window_us = options.window_us});
  const int total_requests = options.clients * options.requests;
  std::vector<int64_t> latencies_ns(static_cast<size_t>(total_requests), 0);
  std::vector<int> mismatches(static_cast<size_t>(options.clients), 0);

  const int64_t start_ns = MonotonicNanos();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < options.requests; ++r) {
        const std::vector<int> ids =
            RequestIds(options.seed, c, r, options.batch_ids,
                       frozen->num_nodes());
        const int64_t submit_ns = MonotonicNanos();
        PredictionHandle handle = server.Submit(ids);
        const Matrix& logits = handle.logits();
        latencies_ns[static_cast<size_t>(c * options.requests + r)] =
            MonotonicNanos() - submit_ns;
        // Every served row must be bitwise the direct FrozenModel read.
        if (MaxAbsDiff(logits, frozen->Logits(ids)) != 0.0f) {
          ++mismatches[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const int64_t elapsed_ns = MonotonicNanos() - start_ns;
  server.Shutdown();

  const ServeStats stats = server.stats();
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto percentile = [&](double p) {
    const size_t index = std::min(
        latencies_ns.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ns.size())));
    return static_cast<double>(latencies_ns[index]) / 1e3;
  };
  std::fprintf(out,
               "served %lld requests (%lld rows) from %d clients in %.1f ms: "
               "%.0f req/s\n",
               static_cast<long long>(stats.requests),
               static_cast<long long>(stats.rows), options.clients,
               static_cast<double>(elapsed_ns) / 1e6,
               1e9 * static_cast<double>(stats.requests) /
                   static_cast<double>(elapsed_ns));
  std::fprintf(out, "latency p50 %.0f us | p99 %.0f us\n", percentile(0.5),
               percentile(0.99));
  std::fprintf(out, "batches %lld (%.2f requests/batch, window %d us)\n",
               static_cast<long long>(stats.batches),
               static_cast<double>(stats.requests) /
                   static_cast<double>(std::max<int64_t>(stats.batches, 1)),
               options.window_us);

  int total_mismatches = 0;
  for (const int m : mismatches) total_mismatches += m;
  if (total_mismatches > 0) {
    std::fprintf(out, "verification FAILED: %d mismatched responses\n",
                 total_mismatches);
    return 1;
  }
  std::fprintf(out, "verification OK: every response bitwise matches the "
                    "direct frozen-model read\n");
  return 0;
}

}  // namespace skipnode
