#!/usr/bin/env bash
# Proves the exact-path SIMD contract (DESIGN §14) end to end: builds the
# tree twice — -DSKIPNODE_SIMD=scalar (every kernel pinned to the scalar
# reference) and the default portable flavour (compiler-vectorized strips) —
# trains the same SkipNode model with each binary at 1/4/8 threads, and
# diffs the saved checkpoints bit for bit. Any reassociation smuggled into a
# vectorized kernel shows up as a byte difference here.
#
# Also checks the runtime kill-switch: the vectorized binary run under
# SKIPNODE_SIMD=0 must reproduce the scalar build's bytes exactly (it routes
# every kernel through the same simd_ref.cc code).
#
# Usage: tools/check_simd.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SCALAR_DIR=build-simd-scalar
VEC_DIR=build-simd-vec
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

cmake -B "$SCALAR_DIR" -DCMAKE_BUILD_TYPE=Release \
  -DSKIPNODE_SIMD=scalar >/dev/null
cmake --build "$SCALAR_DIR" -j "$(nproc)" --target skipnode_train_cli \
  >/dev/null
cmake -B "$VEC_DIR" -DCMAKE_BUILD_TYPE=Release \
  -DSKIPNODE_SIMD=portable >/dev/null
cmake --build "$VEC_DIR" -j "$(nproc)" --target skipnode_train_cli \
  >/dev/null

# A SkipNode run touches every vectorized family: Gemm (dense layers), the
# masked + unmasked SpMM forward and transposed backward (fused propagation),
# the elementwise tape ops, and Adam. fast_math stays off — this is the
# exact path.
TRAIN_ARGS=(--dataset cora_like --model GCN --layers 4 --hidden 64
  --strategy skipnode-u --rate 0.5 --epochs 8 --seed 7)

for threads in 1 4 8; do
  export SKIPNODE_NUM_THREADS=$threads
  "$SCALAR_DIR/tools/skipnode_train" "${TRAIN_ARGS[@]}" \
    --save-dir "$OUT/scalar-$threads" >/dev/null
  "$VEC_DIR/tools/skipnode_train" "${TRAIN_ARGS[@]}" \
    --save-dir "$OUT/vec-$threads" >/dev/null
  diff -r "$OUT/scalar-$threads" "$OUT/vec-$threads" || {
    echo "SIMD: scalar and vectorized checkpoints differ at" \
      "$threads threads" >&2
    exit 1
  }
  SKIPNODE_SIMD=0 "$VEC_DIR/tools/skipnode_train" "${TRAIN_ARGS[@]}" \
    --save-dir "$OUT/kill-$threads" >/dev/null
  diff -r "$OUT/scalar-$threads" "$OUT/kill-$threads" || {
    echo "SIMD: the SKIPNODE_SIMD=0 kill-switch did not reproduce the" \
      "scalar build at $threads threads" >&2
    exit 1
  }
  echo "SIMD: bitwise identical at $threads threads (scalar build," \
    "vectorized build, kill-switch)."
done

# Cross-thread-count determinism within one build (DESIGN §7) is already
# pinned by the unit suite; the cross-build diffs above are this script's
# contribution.
echo "SIMD: exact-path training is bitwise independent of the kernel build."
