// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tools/cli.h"

int main(int argc, char** argv) { return skipnode::RunCli(argc, argv); }
