// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The `skipnode_train` command-line tool, as a library so tests can drive
// it directly. Trains any backbone x strategy combination on a built-in
// synthetic dataset or user-supplied files, reports metrics, and optionally
// checkpoints the model.
//
//   skipnode_train --dataset cora_like --model GCN --layers 8
//       --strategy skipnode-u --rate 0.5 --epochs 200
//   skipnode_train --edges g.txt --features f.csv --labels y.txt ...
//
// Run with --help for the full flag list.

#ifndef SKIPNODE_TOOLS_CLI_H_
#define SKIPNODE_TOOLS_CLI_H_

#include <cstdio>

namespace skipnode {

// Parses argv, runs the requested training job, and writes human-readable
// results to `out`. Returns a process exit code (0 on success, 1 on bad
// flags or I/O failure).
int RunCli(int argc, const char* const* argv, std::FILE* out = stdout);

}  // namespace skipnode

#endif  // SKIPNODE_TOOLS_CLI_H_
