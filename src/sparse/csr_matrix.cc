// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/csr_matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "base/check.h"
#include "base/parallel.h"
#include "base/simd.h"
#include "base/telemetry.h"
#include "sparse/csr_builder.h"

namespace skipnode {

CsrMatrix CsrMatrix::Identity(int n) {
  CsrBuilder builder(n, n);
  for (int i = 0; i < n; ++i) builder.CountEntry(i);
  builder.FinishCounting();
  for (int i = 0; i < n; ++i) builder.AddEntry(i, i, 1.0f);
  return builder.Build();
}

int64_t CsrMatrix::MemoryBytes() const {
  const int64_t offset_bytes =
      static_cast<int64_t>(row_ptr_.size()) * (row_ptr_.wide() ? 8 : 4);
  return offset_bytes + static_cast<int64_t>(col_idx_.size()) * sizeof(int) +
         static_cast<int64_t>(values_.size()) * sizeof(float);
}

void CsrMatrix::MultiplyAccumulate(const Matrix& dense, Matrix& out) const {
  const ScopedTimer timer("sparse.spmm", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == cols_);
  SKIPNODE_CHECK(out.rows() == rows_ && out.cols() == dense.cols());
  const int d = dense.cols();
  // Row-parallel: each thread owns a contiguous block of output rows, and a
  // row's neighbours accumulate in CSR order whatever the thread count, so
  // the SpMM is bitwise reproducible across SKIPNODE_NUM_THREADS settings.
  // Chunks are balanced by nnz (row_ptr_ is the cost prefix), so a hub row
  // cannot serialise its whole chunk on power-law-ish graphs. The per-entry
  // row update is the simd Axpy microkernel (vector lanes are independent
  // output columns, so vectorizing reorders nothing — DESIGN §14).
  const bool vec = simd::Enabled();
  WithOffsets(row_ptr_, [&](const auto* rp) {
    ParallelForBalanced(
        rows_, rp,
        [&](int64_t row_begin, int64_t row_end) {
          for (int r = static_cast<int>(row_begin); r < row_end; ++r) {
            float* __restrict or_ = out.row(r);
            for (int64_t e = rp[r]; e < rp[r + 1]; ++e) {
              const float w = values_[static_cast<size_t>(e)];
              const float* __restrict src =
                  dense.row(col_idx_[static_cast<size_t>(e)]);
              if (vec) {
                simd::Axpy(w, src, or_, d);
              } else {
                simd::AxpyRef(w, src, or_, d);
              }
            }
          }
        },
        SpmmChunkCost(d));
  });
}

Matrix CsrMatrix::Multiply(const Matrix& dense) const {
  Matrix out(rows_, dense.cols());
  MultiplyAccumulate(dense, out);
  return out;
}

void CsrMatrix::MultiplyAccumulateMasked(const Matrix& dense,
                                         const std::vector<uint8_t>& skip_rows,
                                         Matrix& out) const {
  const ScopedTimer timer("sparse.spmm_masked", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == cols_);
  SKIPNODE_CHECK(out.rows() == rows_ && out.cols() == dense.cols());
  SKIPNODE_CHECK(static_cast<int>(skip_rows.size()) == rows_);
  const int d = dense.cols();
  // Same row-ownership partition as MultiplyAccumulate; a computed row's
  // neighbour sum never depends on which rows were skipped, so kept rows are
  // bitwise identical to the full multiply. Skipped rows are counted inside
  // the existing row loop (no extra O(rows) telemetry pass); the relaxed
  // atomic merge is integer-only, so it stays off the numeric path.
  const bool count_skips = TelemetryEnabled();
  const bool vec = simd::Enabled();
  std::atomic<int64_t> skipped{0};
  WithOffsets(row_ptr_, [&](const auto* rp) {
    ParallelForBalanced(
        rows_, rp,
        [&](int64_t row_begin, int64_t row_end) {
          int64_t chunk_skipped = 0;
          for (int r = static_cast<int>(row_begin); r < row_end; ++r) {
            if (skip_rows[r]) {
              ++chunk_skipped;
              continue;
            }
            float* __restrict or_ = out.row(r);
            for (int64_t e = rp[r]; e < rp[r + 1]; ++e) {
              const float w = values_[static_cast<size_t>(e)];
              const float* __restrict src =
                  dense.row(col_idx_[static_cast<size_t>(e)]);
              if (vec) {
                simd::Axpy(w, src, or_, d);
              } else {
                simd::AxpyRef(w, src, or_, d);
              }
            }
          }
          if (count_skips) {
            skipped.fetch_add(chunk_skipped, std::memory_order_relaxed);
          }
        },
        SpmmChunkCost(d));
  });
  if (count_skips) {
    CountMetric("spmm.rows_skipped", skipped.load(std::memory_order_relaxed));
  }
}

const CsrMatrix::TransposePlan& CsrMatrix::transpose_plan() const {
  PlanCache* cache = plan_cache_.get();
  std::call_once(cache->once, [&] { BuildTransposePlan(&cache->plan); });
  return cache->plan;
}

namespace {

// Counting sort by column at the given offset width. Walking rows in
// ascending order fills each transposed row with its source rows ascending —
// the order the serial scatter accumulated them, which the gather kernels
// rely on.
template <typename Offset>
void BuildPlanArrays(int rows, int cols, const Offset* row_ptr,
                     const std::vector<int>& col_idx,
                     std::vector<Offset>* t_ptr, std::vector<int>* t_src,
                     std::vector<Offset>* t_perm) {
  t_ptr->assign(static_cast<size_t>(cols) + 1, 0);
  t_src->resize(col_idx.size());
  t_perm->resize(col_idx.size());
  for (const int c : col_idx) (*t_ptr)[static_cast<size_t>(c) + 1] += 1;
  for (int c = 0; c < cols; ++c) {
    (*t_ptr)[static_cast<size_t>(c) + 1] += (*t_ptr)[static_cast<size_t>(c)];
  }
  std::vector<Offset> cursor(t_ptr->begin(), t_ptr->end() - 1);
  for (int r = 0; r < rows; ++r) {
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const Offset pos = cursor[static_cast<size_t>(
          col_idx[static_cast<size_t>(e)])]++;
      (*t_src)[static_cast<size_t>(pos)] = r;
      (*t_perm)[static_cast<size_t>(pos)] = static_cast<Offset>(e);
    }
  }
}

}  // namespace

void CsrMatrix::BuildTransposePlan(TransposePlan* plan) const {
  const ScopedTimer timer("sparse.transpose_plan.build", /*items=*/nnz());
  // Exact symmetry (tolerance 0: float-equal mirrored values) lets the
  // forward CSR double as the transposed view. Equality must be exact, not
  // approximate — the gather reads A[c][r] where the scatter read A[r][c],
  // and only bit-identical weights keep the kernels bitwise interchangeable
  // (±0.0 compare equal, but a zero weight contributes +0.0 to a +0.0-seeded
  // accumulator either way).
  if (rows_ == cols_ && IsSymmetric(/*tolerance=*/0.0f)) {
    plan->symmetric_alias = true;
    return;
  }
  // The plan inherits the matrix's offset width: its row_ptr and value_perm
  // also count stored entries.
  if (row_ptr_.wide()) {
    std::vector<int64_t> t_ptr, t_perm;
    BuildPlanArrays(rows_, cols_, row_ptr_.data64(), col_idx_, &t_ptr,
                    &plan->src_row, &t_perm);
    plan->row_ptr = OffsetVec::Wide(std::move(t_ptr));
    plan->value_perm = OffsetVec::Wide(std::move(t_perm));
  } else {
    std::vector<int> t_ptr, t_perm;
    BuildPlanArrays(rows_, cols_, row_ptr_.data32(), col_idx_, &t_ptr,
                    &plan->src_row, &t_perm);
    plan->row_ptr = OffsetVec::Narrow(std::move(t_ptr));
    plan->value_perm = OffsetVec::Narrow(std::move(t_perm));
  }
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& dense) const {
  const ScopedTimer timer("sparse.spmm_t", /*items=*/cols_);
  SKIPNODE_CHECK(dense.rows() == rows_);
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  const TransposePlan& plan = transpose_plan();
  // Row-owned gather over the transpose plan: output row c is written by
  // exactly one thread and accumulates column c's entries in increasing
  // source-row order — the order the serial scatter wrote them — so the
  // result is bitwise identical at any thread count (DESIGN §7).
  // t_val == nullptr means "the plan is the matrix itself" (symmetric alias).
  const bool vec = simd::Enabled();
  const auto run = [&](const auto* t_ptr, const int* t_src,
                       const auto* t_val) {
    ParallelForBalanced(
        cols_, t_ptr,
        [&](int64_t col_begin, int64_t col_end) {
          for (int c = static_cast<int>(col_begin); c < col_end; ++c) {
            float* __restrict or_ = out.row(c);
            for (int64_t e = t_ptr[c]; e < t_ptr[c + 1]; ++e) {
              const float w = values_[static_cast<size_t>(
                  t_val != nullptr ? t_val[e] : e)];
              const float* __restrict src =
                  dense.row(t_src[static_cast<size_t>(e)]);
              if (vec) {
                simd::Axpy(w, src, or_, d);
              } else {
                simd::AxpyRef(w, src, or_, d);
              }
            }
          }
        },
        SpmmChunkCost(d));
  };
  if (plan.symmetric_alias) {
    if (row_ptr_.wide()) {
      run(row_ptr_.data64(), col_idx_.data(),
          static_cast<const int64_t*>(nullptr));
    } else {
      run(row_ptr_.data32(), col_idx_.data(),
          static_cast<const int*>(nullptr));
    }
  } else if (plan.row_ptr.wide()) {
    run(plan.row_ptr.data64(), plan.src_row.data(), plan.value_perm.data64());
  } else {
    run(plan.row_ptr.data32(), plan.src_row.data(), plan.value_perm.data32());
  }
  return out;
}

// Same gather as MultiplyTransposed, dropping entries whose source row is
// skipped — those rows of `dense` are never even read. Skipping an entry is
// bitwise equivalent to multiplying the zeroed row through: the dropped
// addend would be w * 0.0f = +0.0f, and the accumulators can never hold
// -0.0 (they start at +0.0 and IEEE round-to-nearest sums of finite values
// only produce -0.0 from two -0.0 addends), so x += +0.0f leaves every
// accumulator bit unchanged.
Matrix CsrMatrix::MultiplyTransposedMasked(
    const Matrix& dense, const std::vector<uint8_t>& skip_rows) const {
  const ScopedTimer timer("sparse.spmm_t_masked", /*items=*/cols_);
  SKIPNODE_CHECK(dense.rows() == rows_);
  SKIPNODE_CHECK(static_cast<int>(skip_rows.size()) == rows_);
  if (TelemetryEnabled()) {
    // The gather never iterates source rows, so the skipped-row count (items
    // = rows of `dense` masked off) takes one O(rows) pass — telemetry-gated
    // and integer-only, off the numeric path.
    int64_t skipped = 0;
    for (const uint8_t skip : skip_rows) skipped += skip != 0;
    CountMetric("spmm_t.rows_skipped", skipped);
  }
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  const TransposePlan& plan = transpose_plan();
  const bool vec = simd::Enabled();
  const auto run = [&](const auto* t_ptr, const int* t_src,
                       const auto* t_val) {
    ParallelForBalanced(
        cols_, t_ptr,
        [&](int64_t col_begin, int64_t col_end) {
          for (int c = static_cast<int>(col_begin); c < col_end; ++c) {
            float* __restrict or_ = out.row(c);
            for (int64_t e = t_ptr[c]; e < t_ptr[c + 1]; ++e) {
              const int r = t_src[static_cast<size_t>(e)];
              if (skip_rows[r]) continue;
              const float w = values_[static_cast<size_t>(
                  t_val != nullptr ? t_val[e] : e)];
              const float* __restrict src = dense.row(r);
              if (vec) {
                simd::Axpy(w, src, or_, d);
              } else {
                simd::AxpyRef(w, src, or_, d);
              }
            }
          }
        },
        SpmmChunkCost(d));
  };
  if (plan.symmetric_alias) {
    if (row_ptr_.wide()) {
      run(row_ptr_.data64(), col_idx_.data(),
          static_cast<const int64_t*>(nullptr));
    } else {
      run(row_ptr_.data32(), col_idx_.data(),
          static_cast<const int*>(nullptr));
    }
  } else if (plan.row_ptr.wide()) {
    run(plan.row_ptr.data64(), plan.src_row.data(), plan.value_perm.data64());
  } else {
    run(plan.row_ptr.data32(), plan.src_row.data(), plan.value_perm.data32());
  }
  return out;
}

Matrix CsrMatrix::RowSums() const {
  Matrix out(rows_, 1);
  for (int r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (int64_t e = RowBegin(r); e < RowEnd(r); ++e) {
      total += values_[static_cast<size_t>(e)];
    }
    out(r, 0) = static_cast<float>(total);
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t e = RowBegin(r); e < RowEnd(r); ++e) {
      out(r, col_idx_[static_cast<size_t>(e)]) +=
          values_[static_cast<size_t>(e)];
    }
  }
  return out;
}

bool CsrMatrix::IsSymmetric(float tolerance) const {
  if (rows_ != cols_) return false;
  // O(nnz log deg): for each entry (r, c, v), binary-search (c, r).
  for (int r = 0; r < rows_; ++r) {
    for (int64_t e = RowBegin(r); e < RowEnd(r); ++e) {
      const int c = col_idx_[static_cast<size_t>(e)];
      const auto begin = col_idx_.begin() + RowBegin(c);
      const auto end = col_idx_.begin() + RowEnd(c);
      const auto it = std::lower_bound(begin, end, r);
      if (it == end || *it != r) return false;
      const float mirrored = values_[static_cast<size_t>(
          it - col_idx_.begin())];
      if (std::fabs(mirrored - values_[static_cast<size_t>(e)]) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace skipnode
