// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/csr_matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>

#include "base/check.h"
#include "base/parallel.h"
#include "base/telemetry.h"

namespace skipnode {

CsrMatrix CsrMatrix::FromCoo(int rows, int cols,
                             std::vector<std::pair<int, int>> coords,
                             std::vector<float> values) {
  SKIPNODE_CHECK(coords.size() == values.size());
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;

  // Sort triplets by (row, col) via an index permutation.
  std::vector<int> order(coords.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&coords](int a, int b) {
    return coords[a] < coords[b];
  });

  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(coords.size());
  m.values_.reserve(coords.size());
  int prev_row = -1, prev_col = -1;
  for (const int idx : order) {
    const auto [r, c] = coords[idx];
    SKIPNODE_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    if (r == prev_row && c == prev_col) {
      m.values_.back() += values[idx];  // Merge duplicates.
      continue;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(values[idx]);
    m.row_ptr_[r + 1] += 1;
    prev_row = r;
    prev_col = c;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int n) {
  std::vector<std::pair<int, int>> coords(n);
  std::vector<float> values(n, 1.0f);
  for (int i = 0; i < n; ++i) coords[i] = {i, i};
  return FromCoo(n, n, std::move(coords), std::move(values));
}

void CsrMatrix::MultiplyAccumulate(const Matrix& dense, Matrix& out) const {
  const ScopedTimer timer("sparse.spmm", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == cols_);
  SKIPNODE_CHECK(out.rows() == rows_ && out.cols() == dense.cols());
  const int d = dense.cols();
  // Row-parallel: each thread owns a contiguous block of output rows, and a
  // row's neighbours accumulate in CSR order whatever the thread count, so
  // the SpMM is bitwise reproducible across SKIPNODE_NUM_THREADS settings.
  // Chunks are balanced by nnz (row_ptr_ is the cost prefix), so a hub row
  // cannot serialise its whole chunk on power-law-ish graphs.
  ParallelForBalanced(
      rows_, row_ptr_.data(),
      [&](int64_t row_begin, int64_t row_end) {
        for (int r = static_cast<int>(row_begin); r < row_end; ++r) {
          float* __restrict or_ = out.row(r);
          for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
            const float w = values_[e];
            const float* __restrict src = dense.row(col_idx_[e]);
            for (int j = 0; j < d; ++j) or_[j] += w * src[j];
          }
        }
      },
      SpmmChunkCost(d));
}

Matrix CsrMatrix::Multiply(const Matrix& dense) const {
  Matrix out(rows_, dense.cols());
  MultiplyAccumulate(dense, out);
  return out;
}

void CsrMatrix::MultiplyAccumulateMasked(const Matrix& dense,
                                         const std::vector<uint8_t>& skip_rows,
                                         Matrix& out) const {
  const ScopedTimer timer("sparse.spmm_masked", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == cols_);
  SKIPNODE_CHECK(out.rows() == rows_ && out.cols() == dense.cols());
  SKIPNODE_CHECK(static_cast<int>(skip_rows.size()) == rows_);
  const int d = dense.cols();
  // Same row-ownership partition as MultiplyAccumulate; a computed row's
  // neighbour sum never depends on which rows were skipped, so kept rows are
  // bitwise identical to the full multiply. Skipped rows are counted inside
  // the existing row loop (no extra O(rows) telemetry pass); the relaxed
  // atomic merge is integer-only, so it stays off the numeric path.
  const bool count_skips = TelemetryEnabled();
  std::atomic<int64_t> skipped{0};
  ParallelForBalanced(
      rows_, row_ptr_.data(),
      [&](int64_t row_begin, int64_t row_end) {
        int64_t chunk_skipped = 0;
        for (int r = static_cast<int>(row_begin); r < row_end; ++r) {
          if (skip_rows[r]) {
            ++chunk_skipped;
            continue;
          }
          float* __restrict or_ = out.row(r);
          for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
            const float w = values_[e];
            const float* __restrict src = dense.row(col_idx_[e]);
            for (int j = 0; j < d; ++j) or_[j] += w * src[j];
          }
        }
        if (count_skips) {
          skipped.fetch_add(chunk_skipped, std::memory_order_relaxed);
        }
      },
      SpmmChunkCost(d));
  if (count_skips) {
    CountMetric("spmm.rows_skipped", skipped.load(std::memory_order_relaxed));
  }
}

const CsrMatrix::TransposePlan& CsrMatrix::transpose_plan() const {
  PlanCache* cache = plan_cache_.get();
  std::call_once(cache->once, [&] { BuildTransposePlan(&cache->plan); });
  return cache->plan;
}

void CsrMatrix::BuildTransposePlan(TransposePlan* plan) const {
  const ScopedTimer timer("sparse.transpose_plan.build", /*items=*/nnz());
  // Exact symmetry (tolerance 0: float-equal mirrored values) lets the
  // forward CSR double as the transposed view. Equality must be exact, not
  // approximate — the gather reads A[c][r] where the scatter read A[r][c],
  // and only bit-identical weights keep the kernels bitwise interchangeable
  // (±0.0 compare equal, but a zero weight contributes +0.0 to a +0.0-seeded
  // accumulator either way).
  if (rows_ == cols_ && IsSymmetric(/*tolerance=*/0.0f)) {
    plan->symmetric_alias = true;
    return;
  }
  // Counting sort by column. Walking rows in ascending order fills each
  // transposed row with its source rows ascending — the order the serial
  // scatter accumulated them, which the gather kernels rely on.
  plan->row_ptr.assign(cols_ + 1, 0);
  plan->src_row.resize(col_idx_.size());
  plan->value_perm.resize(col_idx_.size());
  for (const int c : col_idx_) plan->row_ptr[c + 1] += 1;
  for (int c = 0; c < cols_; ++c) plan->row_ptr[c + 1] += plan->row_ptr[c];
  std::vector<int> cursor(plan->row_ptr.begin(), plan->row_ptr.end() - 1);
  for (int r = 0; r < rows_; ++r) {
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const int pos = cursor[col_idx_[e]]++;
      plan->src_row[pos] = r;
      plan->value_perm[pos] = e;
    }
  }
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& dense) const {
  const ScopedTimer timer("sparse.spmm_t", /*items=*/cols_);
  SKIPNODE_CHECK(dense.rows() == rows_);
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  const TransposePlan& plan = transpose_plan();
  const int* t_ptr =
      plan.symmetric_alias ? row_ptr_.data() : plan.row_ptr.data();
  const int* t_src =
      plan.symmetric_alias ? col_idx_.data() : plan.src_row.data();
  const int* t_val = plan.symmetric_alias ? nullptr : plan.value_perm.data();
  // Row-owned gather over the transpose plan: output row c is written by
  // exactly one thread and accumulates column c's entries in increasing
  // source-row order — the order the serial scatter wrote them — so the
  // result is bitwise identical at any thread count (DESIGN §7).
  ParallelForBalanced(
      cols_, t_ptr,
      [&](int64_t col_begin, int64_t col_end) {
        for (int c = static_cast<int>(col_begin); c < col_end; ++c) {
          float* __restrict or_ = out.row(c);
          for (int e = t_ptr[c]; e < t_ptr[c + 1]; ++e) {
            const float w = values_[t_val != nullptr ? t_val[e] : e];
            const float* __restrict src = dense.row(t_src[e]);
            for (int j = 0; j < d; ++j) or_[j] += w * src[j];
          }
        }
      },
      SpmmChunkCost(d));
  return out;
}

// Same gather as MultiplyTransposed, dropping entries whose source row is
// skipped — those rows of `dense` are never even read. Skipping an entry is
// bitwise equivalent to multiplying the zeroed row through: the dropped
// addend would be w * 0.0f = +0.0f, and the accumulators can never hold
// -0.0 (they start at +0.0 and IEEE round-to-nearest sums of finite values
// only produce -0.0 from two -0.0 addends), so x += +0.0f leaves every
// accumulator bit unchanged.
Matrix CsrMatrix::MultiplyTransposedMasked(
    const Matrix& dense, const std::vector<uint8_t>& skip_rows) const {
  const ScopedTimer timer("sparse.spmm_t_masked", /*items=*/cols_);
  SKIPNODE_CHECK(dense.rows() == rows_);
  SKIPNODE_CHECK(static_cast<int>(skip_rows.size()) == rows_);
  if (TelemetryEnabled()) {
    // The gather never iterates source rows, so the skipped-row count (items
    // = rows of `dense` masked off) takes one O(rows) pass — telemetry-gated
    // and integer-only, off the numeric path.
    int64_t skipped = 0;
    for (const uint8_t skip : skip_rows) skipped += skip != 0;
    CountMetric("spmm_t.rows_skipped", skipped);
  }
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  const TransposePlan& plan = transpose_plan();
  const int* t_ptr =
      plan.symmetric_alias ? row_ptr_.data() : plan.row_ptr.data();
  const int* t_src =
      plan.symmetric_alias ? col_idx_.data() : plan.src_row.data();
  const int* t_val = plan.symmetric_alias ? nullptr : plan.value_perm.data();
  ParallelForBalanced(
      cols_, t_ptr,
      [&](int64_t col_begin, int64_t col_end) {
        for (int c = static_cast<int>(col_begin); c < col_end; ++c) {
          float* __restrict or_ = out.row(c);
          for (int e = t_ptr[c]; e < t_ptr[c + 1]; ++e) {
            const int r = t_src[e];
            if (skip_rows[r]) continue;
            const float w = values_[t_val != nullptr ? t_val[e] : e];
            const float* __restrict src = dense.row(r);
            for (int j = 0; j < d; ++j) or_[j] += w * src[j];
          }
        }
      },
      SpmmChunkCost(d));
  return out;
}

Matrix CsrMatrix::RowSums() const {
  Matrix out(rows_, 1);
  for (int r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) total += values_[e];
    out(r, 0) = static_cast<float>(total);
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      out(r, col_idx_[e]) += values_[e];
    }
  }
  return out;
}

bool CsrMatrix::IsSymmetric(float tolerance) const {
  if (rows_ != cols_) return false;
  // O(nnz log deg): for each entry (r, c, v), binary-search (c, r).
  for (int r = 0; r < rows_; ++r) {
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const int c = col_idx_[e];
      const auto begin = col_idx_.begin() + row_ptr_[c];
      const auto end = col_idx_.begin() + row_ptr_[c + 1];
      const auto it = std::lower_bound(begin, end, r);
      if (it == end || *it != r) return false;
      const float mirrored = values_[it - col_idx_.begin()];
      if (std::fabs(mirrored - values_[e]) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace skipnode
