// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"
#include "base/parallel.h"
#include "base/telemetry.h"

namespace skipnode {

CsrMatrix CsrMatrix::FromCoo(int rows, int cols,
                             std::vector<std::pair<int, int>> coords,
                             std::vector<float> values) {
  SKIPNODE_CHECK(coords.size() == values.size());
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;

  // Sort triplets by (row, col) via an index permutation.
  std::vector<int> order(coords.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&coords](int a, int b) {
    return coords[a] < coords[b];
  });

  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(coords.size());
  m.values_.reserve(coords.size());
  int prev_row = -1, prev_col = -1;
  for (const int idx : order) {
    const auto [r, c] = coords[idx];
    SKIPNODE_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    if (r == prev_row && c == prev_col) {
      m.values_.back() += values[idx];  // Merge duplicates.
      continue;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(values[idx]);
    m.row_ptr_[r + 1] += 1;
    prev_row = r;
    prev_col = c;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Identity(int n) {
  std::vector<std::pair<int, int>> coords(n);
  std::vector<float> values(n, 1.0f);
  for (int i = 0; i < n; ++i) coords[i] = {i, i};
  return FromCoo(n, n, std::move(coords), std::move(values));
}

void CsrMatrix::MultiplyAccumulate(const Matrix& dense, Matrix& out) const {
  const ScopedTimer timer("sparse.spmm", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == cols_);
  SKIPNODE_CHECK(out.rows() == rows_ && out.cols() == dense.cols());
  const int d = dense.cols();
  // Row-parallel: each thread owns a contiguous block of output rows, and a
  // row's neighbours accumulate in CSR order whatever the thread count, so
  // the SpMM is bitwise reproducible across SKIPNODE_NUM_THREADS settings.
  // Rows are balanced by count, not nnz; adjacency rows are near-uniform
  // (datasets are degree-corrected SBMs), so static partitioning is fine.
  const int64_t avg_nnz = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  ParallelFor(
      0, rows_,
      [&](int64_t row_begin, int64_t row_end) {
        for (int r = static_cast<int>(row_begin); r < row_end; ++r) {
          float* __restrict or_ = out.row(r);
          for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
            const float w = values_[e];
            const float* __restrict src = dense.row(col_idx_[e]);
            for (int j = 0; j < d; ++j) or_[j] += w * src[j];
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / (avg_nnz * d + 1)));
}

Matrix CsrMatrix::Multiply(const Matrix& dense) const {
  Matrix out(rows_, dense.cols());
  MultiplyAccumulate(dense, out);
  return out;
}

void CsrMatrix::MultiplyAccumulateMasked(const Matrix& dense,
                                         const std::vector<uint8_t>& skip_rows,
                                         Matrix& out) const {
  const ScopedTimer timer("sparse.spmm_masked", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == cols_);
  SKIPNODE_CHECK(out.rows() == rows_ && out.cols() == dense.cols());
  SKIPNODE_CHECK(static_cast<int>(skip_rows.size()) == rows_);
  if (TelemetryEnabled()) {
    int64_t skipped = 0;
    for (const uint8_t skip : skip_rows) skipped += skip != 0;
    CountMetric("spmm.rows_skipped", skipped);
  }
  const int d = dense.cols();
  // Same row-ownership partition as MultiplyAccumulate; a computed row's
  // neighbour sum never depends on which rows were skipped, so kept rows are
  // bitwise identical to the full multiply.
  const int64_t avg_nnz = rows_ > 0 ? nnz() / rows_ + 1 : 1;
  ParallelFor(
      0, rows_,
      [&](int64_t row_begin, int64_t row_end) {
        for (int r = static_cast<int>(row_begin); r < row_end; ++r) {
          if (skip_rows[r]) continue;
          float* __restrict or_ = out.row(r);
          for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
            const float w = values_[e];
            const float* __restrict src = dense.row(col_idx_[e]);
            for (int j = 0; j < d; ++j) or_[j] += w * src[j];
          }
        }
      },
      std::max<int64_t>(1, (1 << 14) / (avg_nnz * d + 1)));
}

// Serial: the transpose scatters row r of `dense` into output row
// col_idx_[e], so output rows are not owned by a single input row and a
// row partition would both race and reorder the accumulation.
Matrix CsrMatrix::MultiplyTransposed(const Matrix& dense) const {
  const ScopedTimer timer("sparse.spmm_t", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == rows_);
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  for (int r = 0; r < rows_; ++r) {
    const float* __restrict src = dense.row(r);
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const float w = values_[e];
      float* __restrict dst = out.row(col_idx_[e]);
      for (int j = 0; j < d; ++j) dst[j] += w * src[j];
    }
  }
  return out;
}

// Serial for the same reason as MultiplyTransposed. Skipping a source row is
// bitwise equivalent to multiplying it through as zeros: the scatter adds
// w * 0.0f = +0.0f, and the accumulators can never hold -0.0 (they start at
// +0.0 and IEEE round-to-nearest sums of finite values only produce -0.0
// from two -0.0 addends), so x += +0.0f leaves every accumulator unchanged.
Matrix CsrMatrix::MultiplyTransposedMasked(
    const Matrix& dense, const std::vector<uint8_t>& skip_rows) const {
  const ScopedTimer timer("sparse.spmm_t_masked", /*items=*/rows_);
  SKIPNODE_CHECK(dense.rows() == rows_);
  SKIPNODE_CHECK(static_cast<int>(skip_rows.size()) == rows_);
  Matrix out(cols_, dense.cols());
  const int d = dense.cols();
  for (int r = 0; r < rows_; ++r) {
    if (skip_rows[r]) continue;
    const float* __restrict src = dense.row(r);
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const float w = values_[e];
      float* __restrict dst = out.row(col_idx_[e]);
      for (int j = 0; j < d; ++j) dst[j] += w * src[j];
    }
  }
  return out;
}

Matrix CsrMatrix::RowSums() const {
  Matrix out(rows_, 1);
  for (int r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) total += values_[e];
    out(r, 0) = static_cast<float>(total);
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      out(r, col_idx_[e]) += values_[e];
    }
  }
  return out;
}

bool CsrMatrix::IsSymmetric(float tolerance) const {
  if (rows_ != cols_) return false;
  // O(nnz log deg): for each entry (r, c, v), binary-search (c, r).
  for (int r = 0; r < rows_; ++r) {
    for (int e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const int c = col_idx_[e];
      const auto begin = col_idx_.begin() + row_ptr_[c];
      const auto end = col_idx_.begin() + row_ptr_[c + 1];
      const auto it = std::lower_bound(begin, end, r);
      if (it == end || *it != r) return false;
      const float mirrored = values_[it - col_idx_.begin()];
      if (std::fabs(mirrored - values_[e]) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace skipnode
