// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/graph_ops.h"

#include <cmath>
#include <queue>

#include "base/check.h"
#include "base/parallel.h"
#include "base/telemetry.h"
#include "sparse/csr_builder.h"

namespace skipnode {
namespace {

// Builds (D+I)^{-1/2}(A+I)(D+I)^{-1/2} (or D^{-1/2} A D^{-1/2}) over the
// subgraph induced by `keep_node` (nullptr keeps everything). Nodes outside
// the subgraph get all-zero rows and columns.
//
// Streams both directions of every kept edge through CsrBuilder twice (count
// then fill) instead of materialising the symmetric COO triplet vector; the
// float math is unchanged from the COO path — degrees are raw symmetric-entry
// counts (duplicate edges counted), inv_sqrt is computed per node once, and
// each entry's value is the same two-factor product — so the result is
// bitwise identical.
CsrMatrix NormalizeImpl(int num_nodes, const EdgeList& edges,
                        bool add_self_loops,
                        const std::vector<bool>* keep_node) {
  const ScopedTimer timer("sparse.adjacency_normalize", /*items=*/num_nodes);
  CsrBuilder builder(num_nodes, num_nodes);
  const auto edge_kept = [&](int u, int v) {
    return keep_node == nullptr || ((*keep_node)[u] && (*keep_node)[v]);
  };
  for (const auto& [u, v] : edges) {
    if (!edge_kept(u, v)) continue;
    builder.CountEntry(u);
    builder.CountEntry(v);
  }

  // Degrees of the (possibly sub-sampled) simple graph, read from the raw
  // counts before the self-loop entries join them. Per-node map with no
  // cross-element accumulation: safe to chunk across threads without
  // perturbing any value.
  std::vector<float> inv_sqrt(num_nodes, 0.0f);
  ParallelFor(
      0, num_nodes,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const bool node_kept = keep_node == nullptr || (*keep_node)[i];
          const int64_t d = builder.RowCount(i) + (add_self_loops ? 1 : 0);
          if (node_kept && d > 0) {
            inv_sqrt[i] = 1.0f / std::sqrt(static_cast<float>(d));
          }
        }
      },
      /*min_per_thread=*/1 << 13);

  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) {
      if (keep_node == nullptr || (*keep_node)[i]) builder.CountEntry(i);
    }
  }
  builder.FinishCounting();

  for (const auto& [u, v] : edges) {
    if (!edge_kept(u, v)) continue;
    builder.AddEntry(u, v, inv_sqrt[u] * inv_sqrt[v]);
    builder.AddEntry(v, u, inv_sqrt[v] * inv_sqrt[u]);
  }
  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) {
      if (keep_node == nullptr || (*keep_node)[i]) {
        builder.AddEntry(i, i, inv_sqrt[i] * inv_sqrt[i]);
      }
    }
  }
  return builder.Build();
}

}  // namespace

std::vector<int> Degrees(int num_nodes, const EdgeList& edges) {
  std::vector<int> degree(num_nodes, 0);
  for (const auto& [u, v] : edges) {
    SKIPNODE_CHECK(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    degree[u] += 1;
    degree[v] += 1;
  }
  return degree;
}

CsrMatrix BuildAdjacency(int num_nodes, const EdgeList& edges) {
  CsrBuilder builder(num_nodes, num_nodes);
  for (const auto& [u, v] : edges) {
    builder.CountEntry(u);
    builder.CountEntry(v);
  }
  builder.FinishCounting();
  for (const auto& [u, v] : edges) {
    builder.AddEntry(u, v, 1.0f);
    builder.AddEntry(v, u, 1.0f);
  }
  return builder.Build();
}

CsrMatrix NormalizedAdjacency(int num_nodes, const EdgeList& edges,
                              bool add_self_loops) {
  return NormalizeImpl(num_nodes, edges, add_self_loops, nullptr);
}

CsrMatrix RandomWalkAdjacency(int num_nodes, const EdgeList& edges,
                              bool add_self_loops) {
  const ScopedTimer timer("sparse.adjacency_random_walk", /*items=*/num_nodes);
  CsrBuilder builder(num_nodes, num_nodes);
  for (const auto& [u, v] : edges) {
    builder.CountEntry(u);
    builder.CountEntry(v);
  }
  // Every entry in row i carries the same 1/(d_i + loops) weight, so the
  // per-coordinate division of the COO path folds into one per-node map.
  std::vector<float> inv_deg(num_nodes, 0.0f);
  ParallelFor(
      0, num_nodes,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const int64_t d = builder.RowCount(i) + (add_self_loops ? 1 : 0);
          inv_deg[i] = d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
        }
      },
      /*min_per_thread=*/1 << 13);
  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) builder.CountEntry(i);
  }
  builder.FinishCounting();
  for (const auto& [u, v] : edges) {
    builder.AddEntry(u, v, inv_deg[u]);
    builder.AddEntry(v, u, inv_deg[v]);
  }
  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) builder.AddEntry(i, i, inv_deg[i]);
  }
  return builder.Build();
}

CsrMatrix DropEdgeAdjacency(int num_nodes, const EdgeList& edges,
                            double drop_rate, Rng& rng) {
  SKIPNODE_CHECK(drop_rate >= 0.0 && drop_rate < 1.0);
  EdgeList kept;
  kept.reserve(edges.size());
  for (const auto& edge : edges) {
    if (!rng.Bernoulli(drop_rate)) kept.push_back(edge);
  }
  return NormalizeImpl(num_nodes, kept, /*add_self_loops=*/true, nullptr);
}

CsrMatrix DropNodeAdjacency(int num_nodes, const EdgeList& edges,
                            double drop_rate, Rng& rng) {
  SKIPNODE_CHECK(drop_rate >= 0.0 && drop_rate < 1.0);
  std::vector<bool> keep(num_nodes, true);
  for (int i = 0; i < num_nodes; ++i) {
    if (rng.Bernoulli(drop_rate)) keep[i] = false;
  }
  return NormalizeImpl(num_nodes, edges, /*add_self_loops=*/true, &keep);
}

std::vector<int> ConnectedComponents(int num_nodes, const EdgeList& edges) {
  std::vector<std::vector<int>> neighbors(num_nodes);
  for (const auto& [u, v] : edges) {
    neighbors[u].push_back(v);
    neighbors[v].push_back(u);
  }
  std::vector<int> component(num_nodes, -1);
  int next_id = 0;
  std::queue<int> frontier;
  for (int start = 0; start < num_nodes; ++start) {
    if (component[start] >= 0) continue;
    component[start] = next_id;
    frontier.push(start);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (const int v : neighbors[u]) {
        if (component[v] < 0) {
          component[v] = next_id;
          frontier.push(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

std::vector<int> ConnectedComponentsCsr(const CsrMatrix& adjacency) {
  const int n = adjacency.rows();
  SKIPNODE_CHECK(adjacency.cols() == n);
  const std::vector<int>& cols = adjacency.col_idx();
  std::vector<int> component(n, -1);
  int next_id = 0;
  std::queue<int> frontier;
  for (int start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    component[start] = next_id;
    frontier.push(start);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      const int64_t end = adjacency.RowEnd(u);
      for (int64_t e = adjacency.RowBegin(u); e < end; ++e) {
        const int v = cols[static_cast<size_t>(e)];
        if (component[v] < 0) {
          component[v] = next_id;
          frontier.push(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

}  // namespace skipnode
