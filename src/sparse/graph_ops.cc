// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/graph_ops.h"

#include <cmath>
#include <queue>

#include "base/check.h"
#include "base/parallel.h"
#include "base/telemetry.h"

namespace skipnode {
namespace {

// Expands an undirected edge list into symmetric COO triplets (both
// directions), optionally appending self-loops for `loop_nodes`.
void SymmetricCoo(const EdgeList& edges, const std::vector<bool>* keep_node,
                  std::vector<std::pair<int, int>>& coords) {
  for (const auto& [u, v] : edges) {
    if (keep_node != nullptr && (!(*keep_node)[u] || !(*keep_node)[v])) {
      continue;
    }
    coords.emplace_back(u, v);
    coords.emplace_back(v, u);
  }
}

// Builds (D+I)^{-1/2}(A+I)(D+I)^{-1/2} (or D^{-1/2} A D^{-1/2}) over the
// subgraph induced by `keep_node` (nullptr keeps everything). Nodes outside
// the subgraph get all-zero rows and columns.
CsrMatrix NormalizeImpl(int num_nodes, const EdgeList& edges,
                        bool add_self_loops,
                        const std::vector<bool>* keep_node) {
  const ScopedTimer timer("sparse.adjacency_normalize", /*items=*/num_nodes);
  std::vector<std::pair<int, int>> coords;
  coords.reserve(edges.size() * 2 + (add_self_loops ? num_nodes : 0));
  SymmetricCoo(edges, keep_node, coords);

  // Degrees of the (possibly sub-sampled) simple graph.
  std::vector<int> degree(num_nodes, 0);
  for (const auto& [r, c] : coords) {
    (void)c;
    degree[r] += 1;
  }

  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) {
      if (keep_node == nullptr || (*keep_node)[i]) coords.emplace_back(i, i);
    }
  }

  // Per-node and per-entry maps with no cross-element accumulation: safe to
  // chunk across threads without perturbing any value.
  std::vector<float> inv_sqrt(num_nodes, 0.0f);
  ParallelFor(
      0, num_nodes,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const bool kept = keep_node == nullptr || (*keep_node)[i];
          const int d = degree[i] + (add_self_loops ? 1 : 0);
          if (kept && d > 0) {
            inv_sqrt[i] = 1.0f / std::sqrt(static_cast<float>(d));
          }
        }
      },
      /*min_per_thread=*/1 << 13);

  std::vector<float> values(coords.size());
  ParallelFor(
      0, static_cast<int64_t>(coords.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t k = lo; k < hi; ++k) {
          values[k] = inv_sqrt[coords[k].first] * inv_sqrt[coords[k].second];
        }
      },
      /*min_per_thread=*/1 << 13);
  return CsrMatrix::FromCoo(num_nodes, num_nodes, std::move(coords),
                            std::move(values));
}

}  // namespace

std::vector<int> Degrees(int num_nodes, const EdgeList& edges) {
  std::vector<int> degree(num_nodes, 0);
  for (const auto& [u, v] : edges) {
    SKIPNODE_CHECK(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    degree[u] += 1;
    degree[v] += 1;
  }
  return degree;
}

CsrMatrix BuildAdjacency(int num_nodes, const EdgeList& edges) {
  std::vector<std::pair<int, int>> coords;
  coords.reserve(edges.size() * 2);
  SymmetricCoo(edges, nullptr, coords);
  std::vector<float> values(coords.size(), 1.0f);
  CsrMatrix a = CsrMatrix::FromCoo(num_nodes, num_nodes, std::move(coords),
                                   std::move(values));
  return a;
}

CsrMatrix NormalizedAdjacency(int num_nodes, const EdgeList& edges,
                              bool add_self_loops) {
  return NormalizeImpl(num_nodes, edges, add_self_loops, nullptr);
}

CsrMatrix RandomWalkAdjacency(int num_nodes, const EdgeList& edges,
                              bool add_self_loops) {
  const ScopedTimer timer("sparse.adjacency_random_walk", /*items=*/num_nodes);
  std::vector<std::pair<int, int>> coords;
  coords.reserve(edges.size() * 2 + (add_self_loops ? num_nodes : 0));
  SymmetricCoo(edges, nullptr, coords);
  std::vector<int> degree(num_nodes, 0);
  for (const auto& [r, c] : coords) {
    (void)c;
    degree[r] += 1;
  }
  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) coords.emplace_back(i, i);
  }
  std::vector<float> values(coords.size());
  ParallelFor(
      0, static_cast<int64_t>(coords.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t k = lo; k < hi; ++k) {
          const int d = degree[coords[k].first] + (add_self_loops ? 1 : 0);
          values[k] = d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
        }
      },
      /*min_per_thread=*/1 << 13);
  return CsrMatrix::FromCoo(num_nodes, num_nodes, std::move(coords),
                            std::move(values));
}

CsrMatrix DropEdgeAdjacency(int num_nodes, const EdgeList& edges,
                            double drop_rate, Rng& rng) {
  SKIPNODE_CHECK(drop_rate >= 0.0 && drop_rate < 1.0);
  EdgeList kept;
  kept.reserve(edges.size());
  for (const auto& edge : edges) {
    if (!rng.Bernoulli(drop_rate)) kept.push_back(edge);
  }
  return NormalizeImpl(num_nodes, kept, /*add_self_loops=*/true, nullptr);
}

CsrMatrix DropNodeAdjacency(int num_nodes, const EdgeList& edges,
                            double drop_rate, Rng& rng) {
  SKIPNODE_CHECK(drop_rate >= 0.0 && drop_rate < 1.0);
  std::vector<bool> keep(num_nodes, true);
  for (int i = 0; i < num_nodes; ++i) {
    if (rng.Bernoulli(drop_rate)) keep[i] = false;
  }
  return NormalizeImpl(num_nodes, edges, /*add_self_loops=*/true, &keep);
}

std::vector<int> ConnectedComponents(int num_nodes, const EdgeList& edges) {
  std::vector<std::vector<int>> neighbors(num_nodes);
  for (const auto& [u, v] : edges) {
    neighbors[u].push_back(v);
    neighbors[v].push_back(u);
  }
  std::vector<int> component(num_nodes, -1);
  int next_id = 0;
  std::queue<int> frontier;
  for (int start = 0; start < num_nodes; ++start) {
    if (component[start] >= 0) continue;
    component[start] = next_id;
    frontier.push(start);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (const int v : neighbors[u]) {
        if (component[v] < 0) {
          component[v] = next_id;
          frontier.push(v);
        }
      }
    }
    ++next_id;
  }
  return component;
}

}  // namespace skipnode
