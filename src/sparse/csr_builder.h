// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Streaming two-pass CSR constructor: the single construction path for
// CsrMatrix (DESIGN §13). Callers stream their entries twice — once to
// count per-row degrees, once to fill — and the builder lays the matrix out
// directly in compact CSR form, so no intermediate COO triplet vector is
// ever materialised (the retired FromCoo path peaked at ~3x the final
// footprint at 10M edges). The offset width (32- vs 64-bit) is chosen once
// when counting finishes and flows through CsrMatrix unchanged.
//
// Two fill modes, chosen by which Add call the second pass uses:
//   * Value mode  — AddEntry(r, c, v); Build() sorts each row by column and
//     sums duplicate coordinates in per-row insertion order (every producer
//     of duplicates in this codebase emits float-equal values per
//     coordinate, so the sum is order-independent anyway). BeginRowFill /
//     AddRowEntries switch the fill pass to row-owner mode, where parallel
//     code may fill disjoint rows concurrently (the sampler's block build).
//   * Pattern mode — AddPatternEntry(r, c); FinalizePattern() collapses
//     duplicates to a single entry, after which FinalRowNnz exposes the
//     deduplicated degrees and BuildWithValues(fn) assigns each surviving
//     entry's weight as fn(r, c). This is the streaming-generator path:
//     degree-dependent weights (the Â normalisation) need the *final*
//     degrees, which only exist after deduplication.
//
// The two passes must stream identical entry sequences; the builder checks
// the counts line up. Per-row sorting/merging fans out with
// ParallelForBalanced over rows (row segments are disjoint), so building is
// parallel yet bitwise deterministic at any thread count (DESIGN §7).

#ifndef SKIPNODE_SPARSE_CSR_BUILDER_H_
#define SKIPNODE_SPARSE_CSR_BUILDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/check.h"
#include "sparse/csr_matrix.h"
#include "sparse/offset_vec.h"

namespace skipnode {

class CsrBuilder {
 public:
  struct Options {
    // Forces 64-bit offsets regardless of the entry count; tests use this to
    // pin the wide kernels against the narrow ones on small matrices.
    bool force_wide_offsets = false;
  };

  CsrBuilder(int rows, int cols) : CsrBuilder(rows, cols, Options()) {}
  CsrBuilder(int rows, int cols, Options options);

  // --- Pass 1: counting -----------------------------------------------
  void CountEntry(int row) {
    SKIPNODE_CHECK(phase_ == Phase::kCounting);
    SKIPNODE_CHECK(row >= 0 && row < rows_);
    ++counts_[row];
    ++total_count_;
  }

  // Raw (pre-deduplication) entries counted so far for `row`. Valid during
  // counting; graph normalisation reads these as degrees before appending
  // the self-loop counts.
  int64_t RowCount(int row) const {
    SKIPNODE_CHECK(row >= 0 && row < rows_);
    return counts_[row];
  }
  int64_t total_count() const { return total_count_; }

  // Freezes the counts: picks the offset width, prefix-sums the row
  // pointers, and allocates the fill buffers.
  void FinishCounting();

  // --- Pass 2: filling ------------------------------------------------
  // Exactly total_count() Add*Entry calls must follow FinishCounting, with
  // per-row multiplicity matching the counting pass (order within and
  // across rows is free).
  void AddEntry(int row, int col, float value);
  void AddPatternEntry(int row, int col);

  // Switches the fill pass to row-owner value mode: allocates the value
  // buffer up front so the AddRowEntries calls below may run from parallel
  // code. Call once, serially, after FinishCounting; AddEntry /
  // AddPatternEntry are disallowed afterwards.
  void BeginRowFill();

  // Appends `n` (col, value) entries to `row`'s segment in one call. Safe to
  // call concurrently for *different* rows — each row must be filled by
  // exactly one thread (ParallelFor row ownership, DESIGN §7); the per-row
  // cursors and segments are disjoint, so no synchronisation is needed.
  // Requires BeginRowFill; Build() verifies every row's segment filled up
  // exactly.
  void AddRowEntries(int row, const int* cols, const float* values, int n);

  // --- Finish: value mode ---------------------------------------------
  // Sorts each row by column, sums duplicates in per-row insertion order,
  // and returns the matrix. The builder is consumed.
  CsrMatrix Build();

  // --- Finish: pattern mode -------------------------------------------
  // Sorts each row and collapses duplicate coordinates to one entry.
  void FinalizePattern();
  // Post-deduplication entries in `row`; valid after FinalizePattern.
  int FinalRowNnz(int row) const;
  int64_t final_nnz() const { return final_nnz_; }
  // Assigns every surviving entry's weight as value_fn(row, col) (invoked
  // row-parallel; it must be pure) and returns the matrix. The builder is
  // consumed.
  CsrMatrix BuildWithValues(const std::function<float(int, int)>& value_fn);

  bool wide_offsets() const { return wide_; }

 private:
  enum class Phase { kCounting, kFilling, kPatternFinal, kDone };

  // Shared sort/merge/compact tail. In value mode duplicate coordinates sum
  // (insertion order); in pattern mode they collapse.
  void MergeRows(bool with_values);
  CsrMatrix TakeMatrix();

  int rows_;
  int cols_;
  Options options_;
  Phase phase_ = Phase::kCounting;
  bool wide_ = false;
  int64_t total_count_ = 0;
  int64_t added_ = 0;
  bool has_values_ = false;
  // Set by BeginRowFill: fill completeness is verified per row (cursor ==
  // segment end) instead of via the shared added_ counter, which parallel
  // AddRowEntries calls must not touch.
  bool row_fill_ = false;

  // Counting pass: per-row raw counts; after FinishCounting, reused as the
  // per-row fill cursors; after MergeRows, holds per-row unique counts.
  std::vector<int64_t> counts_;
  // Raw row segments [raw_offsets_[r], raw_offsets_[r+1]).
  std::vector<int64_t> raw_offsets_;
  std::vector<int> cols_buf_;
  std::vector<float> vals_buf_;

  // Final CSR arrays (populated by MergeRows).
  OffsetVec offsets_;
  std::vector<int> final_cols_;
  std::vector<float> final_vals_;
  int64_t final_nnz_ = 0;
};

}  // namespace skipnode

#endif  // SKIPNODE_SPARSE_CSR_BUILDER_H_
