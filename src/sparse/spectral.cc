// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/spectral.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "tensor/ops.h"

namespace skipnode {

Matrix TopEigenvectors(const std::vector<int>& components,
                       const std::vector<int>& degrees) {
  SKIPNODE_CHECK(components.size() == degrees.size());
  const int n = static_cast<int>(components.size());
  int num_components = 0;
  for (const int c : components) num_components = std::max(num_components, c + 1);

  Matrix basis(n, num_components);
  std::vector<double> norms(num_components, 0.0);
  for (int i = 0; i < n; ++i) {
    const double v = std::sqrt(static_cast<double>(degrees[i]) + 1.0);
    basis(i, components[i]) = static_cast<float>(v);
    norms[components[i]] += v * v;
  }
  for (int i = 0; i < n; ++i) {
    const int c = components[i];
    basis(i, c) /= static_cast<float>(std::sqrt(norms[c]));
  }
  return basis;
}

Matrix ProjectOntoM(const Matrix& top_eigenvectors, const Matrix& x) {
  SKIPNODE_CHECK(top_eigenvectors.rows() == x.rows());
  // proj = E (E^T X), with E the N x M basis. M is small (number of
  // connected components), so this is cheap.
  Matrix coefficients = MatMulTransposeA(top_eigenvectors, x);  // M x d
  return MatMul(top_eigenvectors, coefficients);                // N x d
}

float DistanceToM(const Matrix& top_eigenvectors, const Matrix& x) {
  const Matrix residual = Sub(x, ProjectOntoM(top_eigenvectors, x));
  return residual.Norm();
}

float SecondLargestEigenvalueMagnitude(const CsrMatrix& a_hat,
                                       const Matrix& top_eigenvectors,
                                       int iterations, Rng* rng) {
  SKIPNODE_CHECK(a_hat.rows() == a_hat.cols());
  SKIPNODE_CHECK(a_hat.rows() == top_eigenvectors.rows());
  Rng local(777);
  Rng& r = rng != nullptr ? *rng : local;

  Matrix v = Matrix::RandomNormal(a_hat.rows(), 1, r);
  // Deflate, normalise, iterate v <- deflate(A_hat v). Because A_hat is
  // symmetric and U is an invariant subspace, deflation keeps the iterate in
  // U's orthogonal complement, where the dominant eigenvalue is the one the
  // paper calls lambda (in magnitude).
  auto deflate = [&top_eigenvectors](Matrix& vec) {
    const Matrix coeff = MatMulTransposeA(top_eigenvectors, vec);  // M x 1
    const Matrix proj = MatMul(top_eigenvectors, coeff);           // N x 1
    vec = Sub(vec, proj);
  };

  deflate(v);
  float norm = v.Norm();
  if (norm <= 1e-20f) return 0.0f;
  v = Scale(v, 1.0f / norm);

  float rayleigh = 0.0f;
  for (int it = 0; it < iterations; ++it) {
    Matrix av = a_hat.Multiply(v);
    deflate(av);
    rayleigh = RowDots(v, av).Sum();  // v^T A v with unit v.
    norm = av.Norm();
    if (norm <= 1e-20f) return 0.0f;
    v = Scale(av, 1.0f / norm);
  }
  return std::fabs(rayleigh);
}

}  // namespace skipnode
