// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Spectral quantities of the normalised adjacency A_hat used by the paper's
// over-smoothing theory:
//   * the eigenvalue-1 eigenvectors e_m (one per connected component, entries
//     proportional to sqrt(deg_i + 1)), which span the subspace U;
//   * lambda, the second-largest eigenvalue magnitude, estimated by power
//     iteration on the operator deflated by span{e_m}.

#ifndef SKIPNODE_SPARSE_SPECTRAL_H_
#define SKIPNODE_SPARSE_SPECTRAL_H_

#include <vector>

#include "base/rng.h"
#include "sparse/csr_matrix.h"
#include "sparse/graph_ops.h"
#include "tensor/matrix.h"

namespace skipnode {

// Orthonormal basis of U, the eigenspace of A_hat for eigenvalue 1: one
// column per connected component, entry i = sqrt(deg_i + 1) restricted to the
// component, L2-normalised. `degrees` are simple-graph degrees (no self-loop).
// Returns an N x M matrix whose columns are the e_m.
Matrix TopEigenvectors(const std::vector<int>& components,
                       const std::vector<int>& degrees);

// Projects X onto the subspace M = U (x) R^d: proj = sum_m e_m e_m^T X.
Matrix ProjectOntoM(const Matrix& top_eigenvectors, const Matrix& x);

// d_M(X) = ||X - proj_M(X)||_F, the distance driving Eq. (3) of the paper.
float DistanceToM(const Matrix& top_eigenvectors, const Matrix& x);

// Second-largest eigenvalue magnitude of a_hat via power iteration deflated
// by the eigenvalue-1 eigenvectors. a_hat must be symmetric.
float SecondLargestEigenvalueMagnitude(const CsrMatrix& a_hat,
                                       const Matrix& top_eigenvectors,
                                       int iterations = 200,
                                       Rng* rng = nullptr);

}  // namespace skipnode

#endif  // SKIPNODE_SPARSE_SPECTRAL_H_
