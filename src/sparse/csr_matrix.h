// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Compressed-sparse-row matrix used for graph adjacency operators. The GCN
// forward pass is dominated by SpMM with these matrices.
//
// Index-width contract (DESIGN §13): row/column ids are always `int` (node
// counts are ints everywhere), but the *offset* arrays — row_ptr and the
// transpose plan's row_ptr/value_perm, which count stored entries — are
// stored 32-bit while the entry count fits and 64-bit past INT32_MAX
// entries. The width is fixed at construction by CsrBuilder and is purely a
// storage choice: every kernel binds the raw offset pointer once per call
// (WithOffsets) and runs the same loop body, so numeric results are bitwise
// identical across widths (pinned by csr_builder_test).

#ifndef SKIPNODE_SPARSE_CSR_MATRIX_H_
#define SKIPNODE_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sparse/offset_vec.h"
#include "tensor/matrix.h"

namespace skipnode {

// A weighted sparse matrix in CSR layout. Immutable after construction
// (copies may share the lazily-built transpose plan below, which is safe
// precisely because nothing ever mutates a built matrix).
class CsrMatrix {
 public:
  // Transposed-CSR view of the matrix: row c of the plan enumerates the
  // stored entries of column c in increasing source-row order — exactly the
  // order the serial scatter kernel visits them — which is what lets the
  // MultiplyTransposed* gathers run row-parallel (DESIGN §7) while staying
  // bitwise identical to the old serial scatters at any thread count.
  struct TransposePlan {
    // True when the matrix is *exactly* symmetric (same sparsity pattern,
    // float-equal mirrored values): the forward row_ptr()/col_idx()/values()
    // arrays double as the transposed view, the vectors below stay empty,
    // and no second index set is materialised. Normalised adjacencies
    // Â = (D+I)^{-1/2}(A+I)(D+I)^{-1/2} always hit this path.
    bool symmetric_alias = false;
    // cols() + 1 offsets into the arrays below; same width as the matrix.
    OffsetVec row_ptr;
    std::vector<int> src_row;  // source row of each transposed entry
    OffsetVec value_perm;  // index of the entry's weight in values()
  };

  // Empty 0x0 matrix.
  CsrMatrix()
      : rows_(0), cols_(0),
        row_ptr_(OffsetVec::Narrow(std::vector<int>(1, 0))),
        plan_cache_(std::make_shared<PlanCache>()) {}

  // Identity matrix of size n.
  static CsrMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  // 32 or 64: the stored offset width.
  int index_width() const { return row_ptr_.wide() ? 64 : 32; }

  const OffsetVec& row_offsets() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  // Entry range of row r (width-erased; not for inner loops).
  int64_t RowBegin(int r) const { return row_ptr_[static_cast<size_t>(r)]; }
  int64_t RowEnd(int r) const { return row_ptr_[static_cast<size_t>(r) + 1]; }

  // Number of stored entries in row r (fits int: at most cols()).
  int RowNnz(int r) const { return static_cast<int>(RowEnd(r) - RowBegin(r)); }

  // Heap bytes held by the index and value arrays (footprint accounting for
  // the scale bench; excludes the lazily-built transpose plan).
  int64_t MemoryBytes() const;

  // Returns this * dense. dense is cols() x d.
  Matrix Multiply(const Matrix& dense) const;

  // out += this * dense.
  void MultiplyAccumulate(const Matrix& dense, Matrix& out) const;

  // out.row(r) += (this * dense).row(r) for every row with skip_rows[r] == 0;
  // rows with skip_rows[r] != 0 are not touched at all — the SkipNode fused
  // forward (DESIGN §10). Computed rows accumulate in exactly the same order
  // as MultiplyAccumulate, so the kept rows are bitwise identical to a full
  // multiply at any thread count. Bumps the spmm.rows_skipped counter.
  void MultiplyAccumulateMasked(const Matrix& dense,
                                const std::vector<uint8_t>& skip_rows,
                                Matrix& out) const;

  // Returns this^T * dense, as a row-parallel gather over the cached
  // transpose plan (no dense transpose materialised). Bitwise identical to
  // the serial scatter formulation at any thread count: output row c
  // accumulates its contributions in increasing source-row order either way.
  Matrix MultiplyTransposed(const Matrix& dense) const;

  // this^T * dense with rows of `dense` where skip_rows[r] != 0 treated as
  // zero (they are never read — the gather skips their plan entries
  // outright). Bitwise identical to MultiplyTransposed on a copy of `dense`
  // with those rows zeroed — the SkipNode fused backward, where the output
  // gradient of a skipped row must not reach the convolution input. Bumps
  // the spmm_t.rows_skipped counter.
  Matrix MultiplyTransposedMasked(const Matrix& dense,
                                  const std::vector<uint8_t>& skip_rows) const;

  // The cached transpose plan, built on first use (thread-safe via
  // std::call_once; one build per matrix, shared by copies).
  const TransposePlan& transpose_plan() const;

  // Sum of stored values in each row (rows x 1). Contract: each row
  // accumulates in double and rounds to float once at the end — this feeds
  // the degree terms of adjacency normalisation, so the extra precision (and
  // its independence from entry count) is load-bearing for bitwise
  // reproducibility of every Â downstream. Pinned by csr_matrix_test.
  Matrix RowSums() const;

  // Dense copy (tests / tiny matrices only).
  Matrix ToDense() const;

  // True if the sparsity pattern and values are symmetric (square only).
  bool IsSymmetric(float tolerance = 1e-6f) const;

 private:
  friend class CsrBuilder;  // The single construction path (DESIGN §13).

  // Heap cell owning the lazily-built transpose plan and its build-once
  // flag. Held by shared_ptr so the (non-copyable) std::once_flag never
  // blocks CsrMatrix copies; copies share the cell, which is sound because
  // they share the index arrays the plan describes.
  struct PlanCache {
    std::once_flag once;
    TransposePlan plan;
  };

  void BuildTransposePlan(TransposePlan* plan) const;

  int rows_;
  int cols_;
  OffsetVec row_ptr_;
  std::vector<int> col_idx_;
  std::vector<float> values_;
  std::shared_ptr<PlanCache> plan_cache_;
};

}  // namespace skipnode

#endif  // SKIPNODE_SPARSE_CSR_MATRIX_H_
