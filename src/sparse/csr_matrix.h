// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Compressed-sparse-row matrix used for graph adjacency operators. The GCN
// forward pass is dominated by SpMM with these matrices.

#ifndef SKIPNODE_SPARSE_CSR_MATRIX_H_
#define SKIPNODE_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace skipnode {

// A weighted sparse matrix in CSR layout. Immutable after construction.
class CsrMatrix {
 public:
  // Empty 0x0 matrix.
  CsrMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  // Builds from coordinate triplets (row, col, value). Duplicate coordinates
  // are summed. Entries with value 0 are kept (callers rarely produce them).
  static CsrMatrix FromCoo(int rows, int cols,
                           std::vector<std::pair<int, int>> coords,
                           std::vector<float> values);

  // Identity matrix of size n.
  static CsrMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  // Number of stored entries in row r.
  int RowNnz(int r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  // Returns this * dense. dense is cols() x d.
  Matrix Multiply(const Matrix& dense) const;

  // out += this * dense.
  void MultiplyAccumulate(const Matrix& dense, Matrix& out) const;

  // out.row(r) += (this * dense).row(r) for every row with skip_rows[r] == 0;
  // rows with skip_rows[r] != 0 are not touched at all — the SkipNode fused
  // forward (DESIGN §10). Computed rows accumulate in exactly the same order
  // as MultiplyAccumulate, so the kept rows are bitwise identical to a full
  // multiply at any thread count. Bumps the spmm.rows_skipped counter.
  void MultiplyAccumulateMasked(const Matrix& dense,
                                const std::vector<uint8_t>& skip_rows,
                                Matrix& out) const;

  // Returns this^T * dense (no explicit transpose materialised).
  Matrix MultiplyTransposed(const Matrix& dense) const;

  // this^T * dense with rows of `dense` where skip_rows[r] != 0 treated as
  // zero (they are never read). Bitwise identical to MultiplyTransposed on a
  // copy of `dense` with those rows zeroed — the SkipNode fused backward,
  // where the output gradient of a skipped row must not reach the
  // convolution input.
  Matrix MultiplyTransposedMasked(const Matrix& dense,
                                  const std::vector<uint8_t>& skip_rows) const;

  // Sum of stored values in each row (rows x 1).
  Matrix RowSums() const;

  // Dense copy (tests / tiny matrices only).
  Matrix ToDense() const;

  // True if the sparsity pattern and values are symmetric (square only).
  bool IsSymmetric(float tolerance = 1e-6f) const;

 private:
  int rows_;
  int cols_;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<float> values_;
};

}  // namespace skipnode

#endif  // SKIPNODE_SPARSE_CSR_MATRIX_H_
