// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Width-adaptive offset array for CSR index structures (row pointers and
// transpose-plan permutations). Offsets count stored entries, so they only
// need 64 bits once a matrix holds more than INT32_MAX entries; everything
// smaller stays on compact 32-bit storage (half the index memory and twice
// the prefix-scan cache density at 10M+ edges). The width is chosen once at
// build time by CsrBuilder and never changes afterwards, and kernels bind
// the raw pointer of the active width exactly once per call (WithOffsets),
// so inner loops are width-monomorphic — no per-element branch.

#ifndef SKIPNODE_SPARSE_OFFSET_VEC_H_
#define SKIPNODE_SPARSE_OFFSET_VEC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/check.h"

namespace skipnode {

class OffsetVec {
 public:
  // Empty narrow vector (matches a default CsrMatrix's {0} row_ptr once
  // assigned).
  OffsetVec() = default;

  static OffsetVec Narrow(std::vector<int> v) {
    OffsetVec out;
    out.v32_ = std::move(v);
    return out;
  }

  static OffsetVec Wide(std::vector<int64_t> v) {
    OffsetVec out;
    out.wide_ = true;
    out.v64_ = std::move(v);
    return out;
  }

  bool wide() const { return wide_; }
  size_t size() const { return wide_ ? v64_.size() : v32_.size(); }
  bool empty() const { return size() == 0; }

  int64_t operator[](size_t i) const {
    return wide_ ? v64_[i] : static_cast<int64_t>(v32_[i]);
  }
  int64_t back() const { return wide_ ? v64_.back() : v32_.back(); }

  const int* data32() const {
    SKIPNODE_CHECK(!wide_);
    return v32_.data();
  }
  const int64_t* data64() const {
    SKIPNODE_CHECK(wide_);
    return v64_.data();
  }

  // Narrow-only vector view for legacy callers (autograd's GAT pattern walk,
  // tests). Wide matrices have no int vector to hand out; callers on the
  // wide path must go through WithOffsets instead.
  const std::vector<int>& narrow_vector() const {
    SKIPNODE_CHECK(!wide_);
    return v32_;
  }

  // Width-erased copy for tests and diagnostics (never on a hot path).
  std::vector<int64_t> ToVector() const {
    if (wide_) return v64_;
    return std::vector<int64_t>(v32_.begin(), v32_.end());
  }

 private:
  bool wide_ = false;
  std::vector<int> v32_;
  std::vector<int64_t> v64_;
};

// Invokes fn with the raw offset pointer of the active width; fn is a
// generic lambda instantiated once per width, so the dispatch happens once
// per kernel call, outside the loops.
template <typename Fn>
decltype(auto) WithOffsets(const OffsetVec& offsets, Fn&& fn) {
  return offsets.wide() ? fn(offsets.data64()) : fn(offsets.data32());
}

}  // namespace skipnode

#endif  // SKIPNODE_SPARSE_OFFSET_VEC_H_
