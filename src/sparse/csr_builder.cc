// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/csr_builder.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "base/parallel.h"
#include "base/telemetry.h"

namespace skipnode {

CsrBuilder::CsrBuilder(int rows, int cols, Options options)
    : rows_(rows), cols_(cols), options_(options) {
  SKIPNODE_CHECK(rows >= 0 && cols >= 0);
  counts_.assign(static_cast<size_t>(rows) + 1, 0);
}

void CsrBuilder::FinishCounting() {
  SKIPNODE_CHECK(phase_ == Phase::kCounting);
  phase_ = Phase::kFilling;
  wide_ = options_.force_wide_offsets ||
          total_count_ > std::numeric_limits<int>::max();
  // Raw offsets stay 64-bit internally whatever the final width; they exist
  // only while the builder is alive.
  raw_offsets_.assign(static_cast<size_t>(rows_) + 1, 0);
  for (int r = 0; r < rows_; ++r) {
    raw_offsets_[static_cast<size_t>(r) + 1] =
        raw_offsets_[static_cast<size_t>(r)] + counts_[static_cast<size_t>(r)];
  }
  SKIPNODE_CHECK(raw_offsets_[static_cast<size_t>(rows_)] == total_count_);
  cols_buf_.resize(static_cast<size_t>(total_count_));
  // Reuse counts_ as the per-row fill cursors.
  for (int r = 0; r < rows_; ++r) {
    counts_[static_cast<size_t>(r)] = raw_offsets_[static_cast<size_t>(r)];
  }
}

void CsrBuilder::AddEntry(int row, int col, float value) {
  SKIPNODE_CHECK(phase_ == Phase::kFilling && !row_fill_);
  if (!has_values_) {
    SKIPNODE_CHECK(added_ == 0);  // No mixing with AddPatternEntry.
    has_values_ = true;
    vals_buf_.resize(cols_buf_.size());
  }
  SKIPNODE_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const int64_t pos = counts_[static_cast<size_t>(row)]++;
  SKIPNODE_CHECK(pos < raw_offsets_[static_cast<size_t>(row) + 1]);
  cols_buf_[static_cast<size_t>(pos)] = col;
  vals_buf_[static_cast<size_t>(pos)] = value;
  ++added_;
}

void CsrBuilder::BeginRowFill() {
  SKIPNODE_CHECK(phase_ == Phase::kFilling);
  SKIPNODE_CHECK(added_ == 0 && !has_values_ && !row_fill_);
  row_fill_ = true;
  has_values_ = true;
  vals_buf_.resize(cols_buf_.size());
}

void CsrBuilder::AddRowEntries(int row, const int* cols, const float* values,
                               int n) {
  SKIPNODE_CHECK(phase_ == Phase::kFilling && row_fill_);
  SKIPNODE_CHECK(row >= 0 && row < rows_ && n >= 0);
  const int64_t pos = counts_[static_cast<size_t>(row)];
  SKIPNODE_CHECK(pos + n <= raw_offsets_[static_cast<size_t>(row) + 1]);
  for (int i = 0; i < n; ++i) {
    SKIPNODE_CHECK(cols[i] >= 0 && cols[i] < cols_);
    cols_buf_[static_cast<size_t>(pos + i)] = cols[i];
    vals_buf_[static_cast<size_t>(pos + i)] = values[i];
  }
  counts_[static_cast<size_t>(row)] = pos + n;
}

void CsrBuilder::AddPatternEntry(int row, int col) {
  SKIPNODE_CHECK(phase_ == Phase::kFilling && !row_fill_);
  SKIPNODE_CHECK(!has_values_);
  SKIPNODE_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const int64_t pos = counts_[static_cast<size_t>(row)]++;
  SKIPNODE_CHECK(pos < raw_offsets_[static_cast<size_t>(row) + 1]);
  cols_buf_[static_cast<size_t>(pos)] = col;
  ++added_;
}

void CsrBuilder::MergeRows(bool with_values) {
  SKIPNODE_CHECK(phase_ == Phase::kFilling);
  if (row_fill_) {
    // Row-owner fill: the shared added_ counter stays untouched (parallel
    // writers), so completeness is every per-row cursor at its segment end.
    for (int r = 0; r < rows_; ++r) {
      SKIPNODE_CHECK(counts_[static_cast<size_t>(r)] ==
                     raw_offsets_[static_cast<size_t>(r) + 1]);
    }
  } else {
    SKIPNODE_CHECK(added_ == total_count_);  // Fill matched the count pass.
  }
  const ScopedTimer timer("sparse.csr_build", /*items=*/total_count_);

  // Sort each raw row segment by column and merge duplicates in place (the
  // unique entries compact to the segment's front). Rows are disjoint, so
  // this fans out over rows; within a row everything is sequential, keeping
  // the merge (and any duplicate sums) bitwise identical at any thread
  // count. counts_ becomes the per-row unique count.
  ParallelForBalanced(
      rows_, raw_offsets_.data(),
      [&](int64_t row_begin, int64_t row_end) {
        std::vector<std::pair<int, int>> order;  // (col, arrival rank)
        for (int64_t r = row_begin; r < row_end; ++r) {
          const int64_t b = raw_offsets_[static_cast<size_t>(r)];
          const int64_t e = raw_offsets_[static_cast<size_t>(r) + 1];
          if (b == e) {
            counts_[static_cast<size_t>(r)] = 0;
            continue;
          }
          if (!with_values) {
            // Pattern mode: duplicates collapse, so a plain sort + unique.
            std::sort(cols_buf_.begin() + b, cols_buf_.begin() + e);
            const auto last =
                std::unique(cols_buf_.begin() + b, cols_buf_.begin() + e);
            counts_[static_cast<size_t>(r)] = last - (cols_buf_.begin() + b);
            continue;
          }
          // Value mode: sort (col, arrival rank) pairs — the rank makes the
          // sort stable, so duplicate coordinates sum in insertion order.
          order.clear();
          order.reserve(static_cast<size_t>(e - b));
          for (int64_t i = b; i < e; ++i) {
            order.emplace_back(cols_buf_[static_cast<size_t>(i)],
                               static_cast<int>(i - b));
          }
          std::sort(order.begin(), order.end());
          int64_t unique = 0;
          int prev_col = -1;
          // Scratch-free in-place compaction is unsafe here (a merged value
          // may still be read later), so stage through small per-row copies.
          std::vector<int> merged_cols;
          std::vector<float> merged_vals;
          merged_cols.reserve(order.size());
          merged_vals.reserve(order.size());
          for (const auto& [col, rank] : order) {
            const float v = vals_buf_[static_cast<size_t>(b + rank)];
            if (col == prev_col) {
              merged_vals.back() += v;
              continue;
            }
            merged_cols.push_back(col);
            merged_vals.push_back(v);
            prev_col = col;
            ++unique;
          }
          std::copy(merged_cols.begin(), merged_cols.end(),
                    cols_buf_.begin() + b);
          std::copy(merged_vals.begin(), merged_vals.end(),
                    vals_buf_.begin() + b);
          counts_[static_cast<size_t>(r)] = unique;
        }
      },
      /*min_cost_per_chunk=*/1 << 12);

  // Final offsets in the chosen width, then a row-parallel compaction into
  // tight arrays (the raw buffers still hold per-row gaps).
  final_nnz_ = 0;
  for (int r = 0; r < rows_; ++r) final_nnz_ += counts_[static_cast<size_t>(r)];
  if (wide_) {
    std::vector<int64_t> offsets(static_cast<size_t>(rows_) + 1, 0);
    for (int r = 0; r < rows_; ++r) {
      offsets[static_cast<size_t>(r) + 1] =
          offsets[static_cast<size_t>(r)] + counts_[static_cast<size_t>(r)];
    }
    offsets_ = OffsetVec::Wide(std::move(offsets));
  } else {
    std::vector<int> offsets(static_cast<size_t>(rows_) + 1, 0);
    for (int r = 0; r < rows_; ++r) {
      offsets[static_cast<size_t>(r) + 1] =
          offsets[static_cast<size_t>(r)] +
          static_cast<int>(counts_[static_cast<size_t>(r)]);
    }
    offsets_ = OffsetVec::Narrow(std::move(offsets));
  }
  final_cols_.resize(static_cast<size_t>(final_nnz_));
  if (with_values) final_vals_.resize(static_cast<size_t>(final_nnz_));
  WithOffsets(offsets_, [&](const auto* offsets) {
    ParallelForBalanced(
        rows_, offsets,
        [&](int64_t row_begin, int64_t row_end) {
          for (int64_t r = row_begin; r < row_end; ++r) {
            const int64_t src = raw_offsets_[static_cast<size_t>(r)];
            const int64_t dst = offsets[r];
            const int64_t n = counts_[static_cast<size_t>(r)];
            std::copy_n(cols_buf_.begin() + src, n, final_cols_.begin() + dst);
            if (with_values) {
              std::copy_n(vals_buf_.begin() + src, n,
                          final_vals_.begin() + dst);
            }
          }
        },
        /*min_cost_per_chunk=*/1 << 12);
  });
  cols_buf_.clear();
  cols_buf_.shrink_to_fit();
  vals_buf_.clear();
  vals_buf_.shrink_to_fit();
}

CsrMatrix CsrBuilder::TakeMatrix() {
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_ = std::move(offsets_);
  m.col_idx_ = std::move(final_cols_);
  m.values_ = std::move(final_vals_);
  phase_ = Phase::kDone;
  return m;
}

CsrMatrix CsrBuilder::Build() {
  SKIPNODE_CHECK(has_values_ || total_count_ == 0);
  if (!has_values_) vals_buf_.resize(cols_buf_.size());
  MergeRows(/*with_values=*/true);
  return TakeMatrix();
}

void CsrBuilder::FinalizePattern() {
  SKIPNODE_CHECK(!has_values_);
  MergeRows(/*with_values=*/false);
  phase_ = Phase::kPatternFinal;
}

int CsrBuilder::FinalRowNnz(int row) const {
  SKIPNODE_CHECK(phase_ == Phase::kPatternFinal);
  SKIPNODE_CHECK(row >= 0 && row < rows_);
  return static_cast<int>(counts_[static_cast<size_t>(row)]);
}

CsrMatrix CsrBuilder::BuildWithValues(
    const std::function<float(int, int)>& value_fn) {
  SKIPNODE_CHECK(phase_ == Phase::kPatternFinal);
  final_vals_.resize(static_cast<size_t>(final_nnz_));
  // Weights are a pure per-entry map — safe to fan out over rows.
  WithOffsets(offsets_, [&](const auto* offsets) {
    ParallelForBalanced(
        rows_, offsets,
        [&](int64_t row_begin, int64_t row_end) {
          for (int64_t r = row_begin; r < row_end; ++r) {
            for (int64_t e = offsets[r]; e < offsets[r + 1]; ++e) {
              final_vals_[static_cast<size_t>(e)] = value_fn(
                  static_cast<int>(r), final_cols_[static_cast<size_t>(e)]);
            }
          }
        },
        /*min_cost_per_chunk=*/1 << 12);
  });
  return TakeMatrix();
}

}  // namespace skipnode
