// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Graph-structure operators: adjacency normalisation (the GCN re-normalisation
// trick), per-epoch edge sampling (DropEdge) and node down-sampling (DropNode),
// degree computation, and connected components. Graphs are represented here by
// an undirected edge list {u, v} with u != v; each listed edge stands for both
// directions.

#ifndef SKIPNODE_SPARSE_GRAPH_OPS_H_
#define SKIPNODE_SPARSE_GRAPH_OPS_H_

#include <utility>
#include <vector>

#include "base/rng.h"
#include "sparse/csr_matrix.h"

namespace skipnode {

using EdgeList = std::vector<std::pair<int, int>>;

// Degree of each node counting each undirected edge once per endpoint
// (self-loops excluded; the normalisation adds them separately).
std::vector<int> Degrees(int num_nodes, const EdgeList& edges);

// Builds the symmetric binary adjacency A (no self-loops) from an undirected
// edge list. Duplicate listed edges sum their unit weights (the COO-era
// semantics, preserved bit for bit by the streaming builder).
CsrMatrix BuildAdjacency(int num_nodes, const EdgeList& edges);

// GCN re-normalised adjacency: A_hat = (D+I)^{-1/2} (A+I) (D+I)^{-1/2}.
// If `add_self_loops` is false, computes D^{-1/2} A D^{-1/2} instead
// (isolated nodes contribute zero rows).
CsrMatrix NormalizedAdjacency(int num_nodes, const EdgeList& edges,
                              bool add_self_loops = true);

// Random-walk normalisation (D+I)^{-1} (A+I): row-stochastic, used by
// GRAND-style mean propagation. Not symmetric in general.
CsrMatrix RandomWalkAdjacency(int num_nodes, const EdgeList& edges,
                              bool add_self_loops = true);

// DropEdge: keeps each undirected edge independently with probability
// (1 - drop_rate) and returns the re-normalised adjacency of the sampled
// graph — the per-epoch renormalisation is exactly the cost Table 8 measures.
CsrMatrix DropEdgeAdjacency(int num_nodes, const EdgeList& edges,
                            double drop_rate, Rng& rng);

// DropNode (Do et al. 2021 variant): removes `drop_rate * N` nodes uniformly;
// removed nodes lose all incident edges *and* their self-loop, then the
// remaining subgraph is re-normalised. Removed node rows of A_hat are all
// zero, so their features vanish after propagation — matching the
// instability of DropNode in deep stacks observed in the paper (Table 7).
CsrMatrix DropNodeAdjacency(int num_nodes, const EdgeList& edges,
                            double drop_rate, Rng& rng);

// Connected components via BFS; returns per-node component id in [0, k).
std::vector<int> ConnectedComponents(int num_nodes, const EdgeList& edges);

// Connected components over a CSR adjacency pattern (values and self-loops
// are irrelevant to connectivity). The edge-list-free variant for CSR-backed
// graphs whose edge list was never materialised (DESIGN §13).
std::vector<int> ConnectedComponentsCsr(const CsrMatrix& adjacency);

}  // namespace skipnode

#endif  // SKIPNODE_SPARSE_GRAPH_OPS_H_
