// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/telemetry.h"

namespace skipnode {
namespace {

// Set while a thread is executing a ParallelFor chunk; nested calls from
// kernels that compose other kernels then run inline instead of deadlocking
// on (or oversubscribing) the pool.
thread_local bool in_parallel_region = false;

int ResolveDefaultThreadCount() {
  if (const char* env = std::getenv("SKIPNODE_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// Explicit override from SetParallelThreadCount; 0 means "use the default".
std::atomic<int> thread_count_override{0};

// Lazily-resolved env/hardware default; 0 means "not yet resolved".
std::atomic<int> default_thread_count{0};

// Reusable worker pool. Workers are spawned on first demand and park on a
// condition variable between jobs; one job (a ParallelFor call) is active at
// a time, protected by run_mu_. Chunks are claimed atomically, so which
// worker runs which chunk is timing-dependent — but chunk *boundaries* are
// not, and chunks write disjoint output rows, so results never depend on the
// schedule.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  // Runs fn(chunk) for every chunk in [0, num_chunks). The calling thread
  // participates; at most num_chunks - 1 workers are woken.
  void Run(int num_chunks, const std::function<void(int)>& fn) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    EnsureWorkers(num_chunks - 1);
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      job_chunks_ = num_chunks;
      next_chunk_ = 0;
      pending_ = num_chunks;
      id = ++job_id_;
    }
    work_cv_.notify_all();
    RunChunks(fn, id);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void EnsureWorkers(int count) {
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  // Claims and runs chunks of job `id` until it is exhausted. The id guard
  // keeps a worker that woke up late (or raced past the end of one job) from
  // claiming chunks of a newer job while holding the older job's function:
  // once a chunk of `id` is claimed, pending_ > 0 pins that job's function
  // alive in Run until the chunk completes.
  void RunChunks(const std::function<void(int)>& fn, uint64_t id) {
    while (true) {
      int chunk;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (job_id_ != id || next_chunk_ >= job_chunks_) return;
        chunk = next_chunk_++;
      }
      in_parallel_region = true;
      fn(chunk);
      in_parallel_region = false;
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  void WorkerLoop() {
    while (true) {
      const std::function<void(int)>* job;
      uint64_t id;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] {
          return stop_ || (job_ != nullptr && next_chunk_ < job_chunks_);
        });
        if (stop_) return;
        job = job_;
        id = job_id_;
      }
      RunChunks(*job, id);
    }
  }

  std::mutex run_mu_;  // Serializes top-level Run calls.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t job_id_ = 0;
  int job_chunks_ = 0;
  int next_chunk_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

// Dispatches `chunks` chunk jobs through the pool. Under telemetry each
// chunk is timed (disjoint slots, so no write races) and the per-task shard
// imbalance — the gap between the slowest and fastest chunk, i.e. wall-clock
// the other threads spent idle at the barrier — is reported. All of it is
// off the numeric path: run_chunk is invoked identically either way.
void RunPoolChunks(int chunks, const std::function<void(int)>& run_chunk) {
  if (!TelemetryEnabled()) {
    ThreadPool::Instance().Run(chunks, run_chunk);
    return;
  }
  std::vector<int64_t> chunk_ns(static_cast<size_t>(chunks), 0);
  const int64_t task_start = MonotonicNanos();
  ThreadPool::Instance().Run(chunks, [&](int chunk) {
    const int64_t start = MonotonicNanos();
    run_chunk(chunk);
    chunk_ns[chunk] = MonotonicNanos() - start;
  });
  const int64_t task_ns = MonotonicNanos() - task_start;
  const auto [min_it, max_it] =
      std::minmax_element(chunk_ns.begin(), chunk_ns.end());
  RecordTiming("parallel.task", task_ns, /*items=*/chunks);
  RecordTiming("parallel.imbalance", *max_it - *min_it, /*items=*/chunks);
}

}  // namespace

int ParallelThreadCount() {
  const int forced = thread_count_override.load(std::memory_order_relaxed);
  if (forced >= 1) return forced;
  const int cached = default_thread_count.load(std::memory_order_relaxed);
  if (cached >= 1) return cached;
  const int resolved = ResolveDefaultThreadCount();
  default_thread_count.store(resolved, std::memory_order_relaxed);
  return resolved;
}

void SetParallelThreadCount(int count) {
  SKIPNODE_CHECK(count >= 0);
  thread_count_override.store(count, std::memory_order_relaxed);
  // Dropping the override also re-resolves the default, so tests can change
  // SKIPNODE_NUM_THREADS and observe the new value.
  if (count == 0) default_thread_count.store(0, std::memory_order_relaxed);
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_per_thread) {
  SKIPNODE_CHECK(min_per_thread >= 1);
  if (begin >= end) return;
  const int64_t n = end - begin;
  const int threads = ParallelThreadCount();
  int64_t chunks = n / min_per_thread;
  if (chunks > threads) chunks = threads;
  if (chunks <= 1 || in_parallel_region) {
    fn(begin, end);
    return;
  }
  // Balanced static partition: the first n % chunks chunks get one extra
  // element. Boundaries depend only on (n, chunks).
  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;
  RunPoolChunks(static_cast<int>(chunks), [&](int chunk) {
    const int64_t lo = begin + chunk * base + std::min<int64_t>(chunk, extra);
    const int64_t hi = lo + base + (chunk < extra ? 1 : 0);
    fn(lo, hi);
  });
}

namespace {

// Shared by the int and int64_t prefix overloads. All split arithmetic runs
// in int64_t regardless of the stored prefix width, so a logical prefix
// yields identical chunk boundaries through either entry point.
template <typename Offset>
void ParallelForBalancedImpl(int64_t n, const Offset* cost_prefix,
                             const std::function<void(int64_t, int64_t)>& fn,
                             int64_t min_cost_per_chunk) {
  SKIPNODE_CHECK(min_cost_per_chunk >= 1);
  if (n <= 0) return;
  SKIPNODE_CHECK(cost_prefix != nullptr);
  const int64_t total =
      static_cast<int64_t>(cost_prefix[n]) - cost_prefix[0];
  const int threads = ParallelThreadCount();
  int64_t chunks = total / min_cost_per_chunk;
  if (chunks > threads) chunks = threads;
  if (chunks > n) chunks = n;
  if (chunks <= 1 || in_parallel_region) {
    fn(0, n);
    return;
  }
  // Chunk k owns [bounds[k], bounds[k+1]): the elements whose cumulative
  // cost falls in the k-th equal share of the total. Searching from the
  // previous boundary keeps the bounds monotone when zero-cost elements tie;
  // boundaries depend only on (prefix, n, chunks), never on timing.
  std::vector<int64_t> bounds(static_cast<size_t>(chunks) + 1);
  bounds[0] = 0;
  bounds[static_cast<size_t>(chunks)] = n;
  for (int64_t k = 1; k < chunks; ++k) {
    const int64_t target = cost_prefix[0] + total * k / chunks;
    bounds[static_cast<size_t>(k)] =
        std::lower_bound(cost_prefix + bounds[static_cast<size_t>(k - 1)],
                         cost_prefix + n, static_cast<Offset>(target)) -
        cost_prefix;
  }
  RunPoolChunks(static_cast<int>(chunks), [&](int chunk) {
    const int64_t lo = bounds[static_cast<size_t>(chunk)];
    const int64_t hi = bounds[static_cast<size_t>(chunk) + 1];
    // A pathologically heavy element can starve its neighbours into empty
    // chunks; they simply do nothing.
    if (lo < hi) fn(lo, hi);
  });
}

}  // namespace

void ParallelForBalanced(int64_t n, const int* cost_prefix,
                         const std::function<void(int64_t, int64_t)>& fn,
                         int64_t min_cost_per_chunk) {
  ParallelForBalancedImpl(n, cost_prefix, fn, min_cost_per_chunk);
}

void ParallelForBalanced(int64_t n, const int64_t* cost_prefix,
                         const std::function<void(int64_t, int64_t)>& fn,
                         int64_t min_cost_per_chunk) {
  ParallelForBalancedImpl(n, cost_prefix, fn, min_cost_per_chunk);
}

}  // namespace skipnode
