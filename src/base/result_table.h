// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Result-table builder used by the benchmark harness: collects rows of
// string cells and emits them in any supported format through one API —
// column-aligned text for the terminal, CSV for post-processing, and JSONL
// (one object per row, numeric-looking cells emitted as numbers) for the
// machine-readable bench trajectory.

#ifndef SKIPNODE_BASE_RESULT_TABLE_H_
#define SKIPNODE_BASE_RESULT_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace skipnode {

enum class TableFormat {
  kText,   // column-aligned, human-readable
  kCsv,    // header + comma-separated rows
  kJsonl,  // one JSON object per row keyed by column name
};

class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  // Appends a row; must have exactly one cell per column. When streaming
  // (see StreamTo) the row is also printed immediately.
  void AddRow(std::vector<std::string> cells);

  // Formats a double with fixed precision (helper for AddRow callers).
  static std::string Cell(double value, int precision = 1);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  // Live mode for long-running benches: prints the header now and every
  // subsequent AddRow as it lands (text format, fixed-width columns), so
  // progress stays visible without per-bench printf formatting.
  void StreamTo(std::FILE* out);

  // Writes the whole table in `format` to `out`.
  void Emit(TableFormat format, std::FILE* out = stdout) const;

  // Writes the whole table in `format` to `path`; false on I/O failure.
  bool EmitToFile(TableFormat format, const std::string& path) const;

 private:
  void EmitText(std::FILE* out) const;
  void EmitCsv(std::FILE* out) const;
  void EmitJsonl(std::FILE* out) const;
  void PrintStreamRow(const std::vector<std::string>& cells) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::FILE* stream_ = nullptr;
  std::vector<int> stream_widths_;
};

}  // namespace skipnode

#endif  // SKIPNODE_BASE_RESULT_TABLE_H_
