// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Small result-table builder used by the benchmark harness: collects rows of
// string cells, prints them column-aligned, and exports CSV so experiment
// results can be post-processed (plotting, diffing against the paper).

#ifndef SKIPNODE_BASE_RESULT_TABLE_H_
#define SKIPNODE_BASE_RESULT_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace skipnode {

class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  // Appends a row; must have exactly one cell per column.
  void AddRow(std::vector<std::string> cells);

  // Formats a double with fixed precision (helper for AddRow callers).
  static std::string Cell(double value, int precision = 1);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  // Column-aligned text output.
  void Print(std::FILE* out = stdout) const;

  // Comma-separated export (header + rows); returns false on I/O failure.
  bool SaveCsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skipnode

#endif  // SKIPNODE_BASE_RESULT_TABLE_H_
