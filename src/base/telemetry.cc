// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "base/json.h"

namespace skipnode {
namespace {

bool ResolveInitialEnabled() {
  const char* env = std::getenv("SKIPNODE_TELEMETRY");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool> g_enabled{ResolveInitialEnabled()};

// Stats owned by one thread. The mutex is uncontended on the hot path (only
// the owning thread updates); snapshots and resets from other threads take
// it briefly.
struct ThreadStats {
  std::mutex mu;
  std::unordered_map<std::string, MetricStat> stats;
};

// Process-wide registry of per-thread stats. Intentionally leaked: thread
// pool workers run thread_local destructors during static teardown, and a
// leaked singleton is reachable at any point of that sequence.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();
    return *instance;
  }

  std::shared_ptr<ThreadStats> RegisterThread() {
    auto stats = std::make_shared<ThreadStats>();
    std::lock_guard<std::mutex> lock(mu_);
    threads_.push_back(stats);
    return stats;
  }

  // Folds a dying thread's stats into the retired pool so they survive the
  // thread and drops the registry's reference.
  void RetireThread(const std::shared_ptr<ThreadStats>& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> stats_lock(stats->mu);
      for (const auto& [name, stat] : stats->stats) {
        retired_[name].Merge(stat);
      }
    }
    threads_.erase(std::remove(threads_.begin(), threads_.end(), stats),
                   threads_.end());
  }

  TelemetrySnapshot Snapshot() {
    // std::map keeps the merged view sorted by name.
    std::map<std::string, MetricStat> merged;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, stat] : retired_) merged[name].Merge(stat);
    for (const auto& thread : threads_) {
      std::lock_guard<std::mutex> stats_lock(thread->mu);
      for (const auto& [name, stat] : thread->stats) {
        merged[name].Merge(stat);
      }
    }
    TelemetrySnapshot snapshot;
    snapshot.metrics.assign(merged.begin(), merged.end());
    return snapshot;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.clear();
    for (const auto& thread : threads_) {
      std::lock_guard<std::mutex> stats_lock(thread->mu);
      thread->stats.clear();
    }
  }

 private:
  Registry() = default;

  std::mutex mu_;
  std::vector<std::shared_ptr<ThreadStats>> threads_;
  std::unordered_map<std::string, MetricStat> retired_;
};

// Lazily registers this thread's stats block; the handle's destructor
// retires it when the thread exits.
ThreadStats& LocalStats() {
  struct Handle {
    std::shared_ptr<ThreadStats> stats = Registry::Instance().RegisterThread();
    ~Handle() { Registry::Instance().RetireThread(stats); }
  };
  thread_local Handle handle;
  return *handle.stats;
}

void Accumulate(const char* name, int64_t count, int64_t items,
                int64_t elapsed_ns) {
  ThreadStats& local = LocalStats();
  std::lock_guard<std::mutex> lock(local.mu);
  MetricStat& stat = local.stats[name];
  stat.count += count;
  stat.items += items;
  if (elapsed_ns > 0) {
    stat.total_ns += elapsed_ns;
    stat.max_ns = std::max(stat.max_ns, elapsed_ns);
  }
}

}  // namespace

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TelemetryEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void SetTelemetryEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void MetricStat::Merge(const MetricStat& other) {
  count += other.count;
  items += other.items;
  total_ns += other.total_ns;
  max_ns = std::max(max_ns, other.max_ns);
}

const MetricStat* TelemetrySnapshot::Find(const std::string& name) const {
  for (const auto& [metric_name, stat] : metrics) {
    if (metric_name == name) return &stat;
  }
  return nullptr;
}

std::string TelemetrySnapshot::ToJson() const {
  JsonObject object;
  for (const auto& [name, stat] : metrics) {
    JsonObject entry;
    entry.Add("count", stat.count);
    entry.Add("items", stat.items);
    entry.Add("total_ns", stat.total_ns);
    entry.Add("max_ns", stat.max_ns);
    object.AddRaw(name, entry.Finish());
  }
  return object.Finish();
}

TelemetrySnapshot SnapshotTelemetry() { return Registry::Instance().Snapshot(); }

void ResetTelemetry() { Registry::Instance().Reset(); }

void CountMetric(const char* name, int64_t items) {
  if (!TelemetryEnabled()) return;
  Accumulate(name, /*count=*/1, items, /*elapsed_ns=*/0);
}

void RecordTiming(const char* name, int64_t elapsed_ns, int64_t items) {
  if (!TelemetryEnabled()) return;
  Accumulate(name, /*count=*/1, items, std::max<int64_t>(elapsed_ns, 0));
}

}  // namespace skipnode
