// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "base/check.h"

namespace skipnode {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed expansion via SplitMix64 as recommended by the xoshiro authors; it
  // guarantees a non-zero state for any seed.
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(Uniform()) * (hi - lo);
}

uint64_t Rng::UniformInt(uint64_t n) {
  SKIPNODE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~0ULL - ~0ULL % n;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return value % n;
}

double Rng::Normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  SKIPNODE_CHECK(k >= 0 && k <= n);
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + static_cast<int>(UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<int> Rng::WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int k) {
  // Efraimidis-Spirakis: draw key_i = log(u_i) / w_i and keep the k largest.
  // Equivalent to sequential weighted sampling without replacement but runs
  // in O(n log n) instead of O(n * k), which matters because SkipNode's
  // biased sampler runs once per layer per training step.
  const int n = static_cast<int>(weights.size());
  SKIPNODE_CHECK(k >= 0 && k <= n);
  std::vector<std::pair<double, int>> keyed(n);
  for (int i = 0; i < n; ++i) {
    SKIPNODE_CHECK(weights[i] >= 0.0);
    // Zero-weight items get an effectively -inf key so they are only chosen
    // once every positive-weight item has been taken.
    const double w = weights[i] > 0.0 ? weights[i] : 1e-12;
    double u = Uniform();
    while (u <= 1e-300) u = Uniform();
    keyed[i] = {std::log(u) / w, i};
  }
  std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<int> result(k);
  for (int i = 0; i < k; ++i) result[i] = keyed[i].second;
  return result;
}

void Rng::Shuffle(std::vector<int>& values) {
  const int n = static_cast<int>(values.size());
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(UniformInt(i + 1));
    std::swap(values[i], values[j]);
  }
}

}  // namespace skipnode
