// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// 64-byte-aligned allocation for numeric buffers (DESIGN §14). Every Matrix
// and MatrixPool buffer allocates through AlignedAllocator so vector loads
// on the flat float arrays never straddle a cache line; alignment is a
// storage property only and never changes a computed value.

#ifndef SKIPNODE_BASE_ALIGNED_H_
#define SKIPNODE_BASE_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace skipnode {

// One cache line on every target we build for; also the widest vector
// register (AVX-512) so the choice never needs to grow per-ISA.
inline constexpr std::size_t kBufferAlignment = 64;

// True when `p` sits on a kBufferAlignment boundary (tests and asserts).
inline bool IsBufferAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kBufferAlignment == 0;
}

// Minimal std::allocator drop-in whose allocations are kBufferAlignment-
// aligned. Stateless: all instances are interchangeable.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kBufferAlignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kBufferAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace skipnode

#endif  // SKIPNODE_BASE_ALIGNED_H_
