// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal JSON object writer for the telemetry / bench JSONL outputs. Emits
// one flat or nested object per builder; no parsing, no DOM — every sink in
// this repo only ever appends records line by line.

#ifndef SKIPNODE_BASE_JSON_H_
#define SKIPNODE_BASE_JSON_H_

#include <cstdint>
#include <string>

namespace skipnode {

// Builds one JSON object left to right. Keys arrive in call order;
// Finish() closes the object and returns it. A finished builder must not be
// added to again.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& value);
  JsonObject& Add(const std::string& key, const char* value);
  JsonObject& Add(const std::string& key, int64_t value);
  JsonObject& Add(const std::string& key, int value);
  JsonObject& Add(const std::string& key, double value);  // non-finite -> null
  JsonObject& Add(const std::string& key, bool value);
  // Splices pre-serialized JSON (an object/array from another builder).
  JsonObject& AddRaw(const std::string& key, const std::string& json);

  const std::string& Finish();

  // JSON string escaping (quotes, backslash, control characters).
  static std::string Escape(const std::string& value);

 private:
  void AppendKey(const std::string& key);

  std::string out_ = "{";
  bool finished_ = false;
};

}  // namespace skipnode

#endif  // SKIPNODE_BASE_JSON_H_
