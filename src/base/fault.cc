// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/fault.h"

#include <algorithm>
#include <limits>

#include "base/check.h"

namespace skipnode {

void FaultInjector::Corrupt(float* data, int64_t size, int epoch) {
  SKIPNODE_CHECK(plan_.enabled && !fired_);
  SKIPNODE_CHECK(data != nullptr && size > 0);
  fired_ = true;

  const int count =
      static_cast<int>(std::min<int64_t>(std::max(plan_.elements, 1), size));
  const float payload = plan_.kind == FaultKind::kNaN
                            ? std::numeric_limits<float>::quiet_NaN()
                            : std::numeric_limits<float>::infinity();

  FaultEvent event;
  event.site = plan_.site;
  event.kind = plan_.kind;
  event.epoch = epoch;
  // Sampling via the injector's private Rng keeps positions deterministic
  // per seed and leaves the caller's random streams untouched.
  std::vector<int> picks =
      rng_.SampleWithoutReplacement(static_cast<int>(size), count);
  std::sort(picks.begin(), picks.end());
  for (const int index : picks) {
    data[index] = payload;
    event.indices.push_back(index);
  }
  events_.push_back(std::move(event));
}

bool ParseFaultSite(const std::string& name, FaultSite* site) {
  if (name == "activation") {
    *site = FaultSite::kActivation;
  } else if (name == "gradient") {
    *site = FaultSite::kGradient;
  } else if (name == "update") {
    *site = FaultSite::kUpdate;
  } else {
    return false;
  }
  return true;
}

bool ParseFaultKind(const std::string& name, FaultKind* kind) {
  if (name == "nan") {
    *kind = FaultKind::kNaN;
  } else if (name == "inf") {
    *kind = FaultKind::kInf;
  } else {
    return false;
  }
  return true;
}

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kActivation:
      return "activation";
    case FaultSite::kGradient:
      return "gradient";
    case FaultSite::kUpdate:
      return "update";
  }
  return "?";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNaN:
      return "nan";
    case FaultKind::kInf:
      return "inf";
  }
  return "?";
}

bool ServeFaultInjector::ShouldFire(ServeFaultSite site, int64_t batch_index) {
  if (!plan_.enabled) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (fired_ || site != plan_.site || batch_index != plan_.batch_index) {
    return false;
  }
  fired_ = true;
  events_.push_back(ServeFaultEvent{site, batch_index});
  return true;
}

std::vector<ServeFaultEvent> ServeFaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

bool ParseServeFaultSite(const std::string& name, ServeFaultSite* site) {
  if (name == "serve-worker-stall" || name == "worker-stall") {
    *site = ServeFaultSite::kWorkerStall;
  } else if (name == "serve-batch-drop" || name == "batch-drop") {
    *site = ServeFaultSite::kBatchDrop;
  } else {
    return false;
  }
  return true;
}

const char* ServeFaultSiteName(ServeFaultSite site) {
  switch (site) {
    case ServeFaultSite::kWorkerStall:
      return "serve-worker-stall";
    case ServeFaultSite::kBatchDrop:
      return "serve-batch-drop";
  }
  return "?";
}

}  // namespace skipnode
