// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/json.h"

#include <cmath>
#include <cstdio>

#include "base/check.h"

namespace skipnode {

void JsonObject::AppendKey(const std::string& key) {
  SKIPNODE_CHECK(!finished_);
  if (out_.size() > 1) out_ += ',';
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
}

JsonObject& JsonObject::Add(const std::string& key, const std::string& value) {
  AppendKey(key);
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, const char* value) {
  return Add(key, std::string(value));
}

JsonObject& JsonObject::Add(const std::string& key, int64_t value) {
  AppendKey(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

JsonObject& JsonObject::Add(const std::string& key, double value) {
  AppendKey(key);
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out_ += buffer;
  }
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, bool value) {
  AppendKey(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::AddRaw(const std::string& key,
                               const std::string& json) {
  AppendKey(key);
  out_ += json;
  return *this;
}

const std::string& JsonObject::Finish() {
  SKIPNODE_CHECK(!finished_);
  finished_ = true;
  out_ += '}';
  return out_;
}

std::string JsonObject::Escape(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace skipnode
