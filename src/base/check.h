// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Contract-checking macros. The library does not use exceptions; violated
// preconditions are programming errors and abort with a diagnostic.

#ifndef SKIPNODE_BASE_CHECK_H_
#define SKIPNODE_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `condition` is false. Always enabled (the cost
// of the checks that guard public APIs is negligible next to the math).
#define SKIPNODE_CHECK(condition)                                             \
  do {                                                                        \
    if (!(condition)) {                                                       \
      std::fprintf(stderr, "SKIPNODE_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #condition);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

// Like SKIPNODE_CHECK but with a printf-style explanation appended.
#define SKIPNODE_CHECK_MSG(condition, ...)                                    \
  do {                                                                        \
    if (!(condition)) {                                                       \
      std::fprintf(stderr, "SKIPNODE_CHECK failed at %s:%d: %s: ", __FILE__,  \
                   __LINE__, #condition);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      std::fprintf(stderr, "\n");                                             \
      std::abort();                                                           \
    }                                                                         \
  } while (false)

#endif  // SKIPNODE_BASE_CHECK_H_
