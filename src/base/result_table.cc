// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/result_table.h"

#include <algorithm>
#include <fstream>

#include "base/check.h"

namespace skipnode {

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  SKIPNODE_CHECK(!columns_.empty());
}

void ResultTable::AddRow(std::vector<std::string> cells) {
  SKIPNODE_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ResultTable::Cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void ResultTable::Print(std::FILE* out) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

bool ResultTable::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const auto write_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

}  // namespace skipnode
