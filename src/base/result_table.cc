// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/result_table.h"

#include <algorithm>
#include <cstdlib>

#include "base/check.h"
#include "base/json.h"

namespace skipnode {
namespace {

// A cell is emitted as a bare JSON number iff the whole string parses as a
// finite double ("86.1", "-3", "1e-4"); everything else stays a string.
bool IsNumericCell(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  SKIPNODE_CHECK(!columns_.empty());
}

void ResultTable::AddRow(std::vector<std::string> cells) {
  SKIPNODE_CHECK(cells.size() == columns_.size());
  if (stream_ != nullptr) PrintStreamRow(cells);
  rows_.push_back(std::move(cells));
}

std::string ResultTable::Cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void ResultTable::StreamTo(std::FILE* out) {
  stream_ = out;
  stream_widths_.clear();
  for (const std::string& column : columns_) {
    // Fixed widths chosen up front: wide enough for the header and typical
    // numeric cells. Oversized cells overflow their column but stay on one
    // row.
    stream_widths_.push_back(
        std::max(static_cast<int>(column.size()), 9));
  }
  PrintStreamRow(columns_);
}

void ResultTable::PrintStreamRow(const std::vector<std::string>& cells) const {
  for (size_t c = 0; c < cells.size(); ++c) {
    std::fprintf(stream_, "%s%-*s", c == 0 ? "" : "  ", stream_widths_[c],
                 cells[c].c_str());
  }
  std::fprintf(stream_, "\n");
  std::fflush(stream_);
}

void ResultTable::Emit(TableFormat format, std::FILE* out) const {
  switch (format) {
    case TableFormat::kText:
      EmitText(out);
      return;
    case TableFormat::kCsv:
      EmitCsv(out);
      return;
    case TableFormat::kJsonl:
      EmitJsonl(out);
      return;
  }
}

bool ResultTable::EmitToFile(TableFormat format,
                             const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  Emit(format, out);
  const bool ok = std::ferror(out) == 0;
  return std::fclose(out) == 0 && ok;
}

void ResultTable::EmitText(std::FILE* out) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

void ResultTable::EmitCsv(std::FILE* out) const {
  const auto write_row = [out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) std::fputc(',', out);
      std::fputs(cells[c].c_str(), out);
    }
    std::fputc('\n', out);
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

void ResultTable::EmitJsonl(std::FILE* out) const {
  for (const auto& row : rows_) {
    JsonObject object;
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (IsNumericCell(row[c])) {
        object.AddRaw(columns_[c], row[c]);
      } else {
        object.Add(columns_[c], row[c]);
      }
    }
    std::fputs(object.Finish().c_str(), out);
    std::fputc('\n', out);
  }
}

}  // namespace skipnode
