// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared-state thread pool behind every parallel kernel in the library.
//
// Threading model (the determinism contract):
//   * ParallelFor splits [begin, end) into at most ParallelThreadCount()
//     contiguous chunks, each handed to exactly one thread. Kernels
//     partition over *output rows*, so every output row is written by a
//     single thread and the float accumulation order within a row is the
//     sequential loop order regardless of the thread count. Results are
//     therefore bitwise identical for 1, 2, or N threads.
//   * Reductions that cross the partition axis (e.g. ColumnMeans) stay
//     serial — a parallel tree reduction would reorder float sums.
//   * The pool's workers are started lazily and reused across calls; the
//     main thread participates, so ParallelThreadCount() == 1 never touches
//     a worker and adds no overhead.
//
// The thread count resolves, in priority order: SetParallelThreadCount()
// (tests/benches), the SKIPNODE_NUM_THREADS environment variable, then
// std::thread::hardware_concurrency().

#ifndef SKIPNODE_BASE_PARALLEL_H_
#define SKIPNODE_BASE_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace skipnode {

// Number of threads ParallelFor may fan out across (>= 1).
int ParallelThreadCount();

// Overrides the thread count (count >= 1), or restores the default
// env/hardware resolution when count == 0. Not thread-safe against
// concurrent ParallelFor calls; intended for tests and benchmarks.
void SetParallelThreadCount(int count);

// Invokes fn(chunk_begin, chunk_end) over a static partition of
// [begin, end) into contiguous chunks, one chunk per thread at most.
// `min_per_thread` caps the fan-out for small ranges: no chunk is smaller
// than it (except the last). Chunk boundaries depend only on the range and
// the thread count, never on timing. Nested calls (from inside a chunk)
// run inline on the calling thread, so kernels may compose freely.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_per_thread = 1);

}  // namespace skipnode

#endif  // SKIPNODE_BASE_PARALLEL_H_
