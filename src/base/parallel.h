// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared-state thread pool behind every parallel kernel in the library.
//
// Threading model (the determinism contract):
//   * ParallelFor splits [begin, end) into at most ParallelThreadCount()
//     contiguous chunks, each handed to exactly one thread. Kernels
//     partition over *output rows*, so every output row is written by a
//     single thread and the float accumulation order within a row is the
//     sequential loop order regardless of the thread count. Results are
//     therefore bitwise identical for 1, 2, or N threads.
//   * Reductions that cross the partition axis (e.g. ColumnMeans) stay
//     serial — a parallel tree reduction would reorder float sums.
//   * The pool's workers are started lazily and reused across calls; the
//     main thread participates, so ParallelThreadCount() == 1 never touches
//     a worker and adds no overhead.
//
// The thread count resolves, in priority order: SetParallelThreadCount()
// (tests/benches), the SKIPNODE_NUM_THREADS environment variable, then
// std::thread::hardware_concurrency().

#ifndef SKIPNODE_BASE_PARALLEL_H_
#define SKIPNODE_BASE_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>

namespace skipnode {

// Number of threads ParallelFor may fan out across (>= 1).
int ParallelThreadCount();

// Overrides the thread count (count >= 1), or restores the default
// env/hardware resolution when count == 0. Not thread-safe against
// concurrent ParallelFor calls; intended for tests and benchmarks.
void SetParallelThreadCount(int count);

// Invokes fn(chunk_begin, chunk_end) over a static partition of
// [begin, end) into contiguous chunks, one chunk per thread at most.
// `min_per_thread` caps the fan-out for small ranges: no chunk is smaller
// than it (except the last). Chunk boundaries depend only on the range and
// the thread count, never on timing. Nested calls (from inside a chunk)
// run inline on the calling thread, so kernels may compose freely.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_per_thread = 1);

// Like ParallelFor over [0, n), but chunk boundaries balance a
// caller-supplied cost instead of the element count: `cost_prefix` is a
// non-decreasing array of n + 1 partial sums (a CSR row_ptr qualifies
// verbatim), and element i costs cost_prefix[i + 1] - cost_prefix[i]. Each
// chunk receives approximately total_cost / chunks cost, so one heavy
// element (a hub row) no longer serialises its whole equal-count chunk.
// `min_cost_per_chunk` caps the fan-out for small problems the way
// min_per_thread does for ParallelFor. Boundaries depend only on the prefix
// array, n, and the thread count — never on timing — so element ownership
// is deterministic and the DESIGN §7 bitwise contract holds unchanged. fn
// is never invoked on an empty range; nested calls run inline.
void ParallelForBalanced(int64_t n, const int* cost_prefix,
                         const std::function<void(int64_t, int64_t)>& fn,
                         int64_t min_cost_per_chunk = 1);

// 64-bit-prefix overload for matrices whose offset arrays outgrow int (the
// CsrMatrix wide-index path). Chunk boundaries for the same logical prefix
// are identical across the two overloads — the split arithmetic is carried
// out in int64_t either way — so a matrix produces the same row ownership
// whether its offsets are stored narrow or wide.
void ParallelForBalanced(int64_t n, const int64_t* cost_prefix,
                         const std::function<void(int64_t, int64_t)>& fn,
                         int64_t min_cost_per_chunk = 1);

// Grain for SpMM-shaped kernels partitioned with ParallelForBalanced over a
// CSR row_ptr: every stored entry costs `cols` inner-loop float ops, and a
// chunk should amortise roughly 2^14 of them so pool dispatch never
// dominates skinny matrices. Shared by all four CsrMatrix SpMM variants
// (it replaces the per-kernel `(1 << 14) / (avg_nnz * d + 1)` row grains).
inline int64_t SpmmChunkCost(int64_t cols) {
  return std::max<int64_t>(1, (int64_t{1} << 14) / (cols + 1));
}

}  // namespace skipnode

#endif  // SKIPNODE_BASE_PARALLEL_H_
