// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic pseudo-random number generation used throughout the library.
// All stochastic components (weight init, dataset generation, Dropout,
// DropEdge, SkipNode sampling, ...) draw from an explicitly-passed Rng so
// every experiment is reproducible from a single seed.

#ifndef SKIPNODE_BASE_RNG_H_
#define SKIPNODE_BASE_RNG_H_

#include <cstdint>
#include <vector>

namespace skipnode {

// Small, fast, seedable generator (xoshiro256**). Not copy-protected: copying
// forks the stream, which is occasionally useful in tests.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed'0001ULL);

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller.
  double Normal();

  // Bernoulli(p).
  bool Bernoulli(double p);

  // Returns `k` distinct indices sampled uniformly from [0, n) without
  // replacement (partial Fisher-Yates). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Returns `k` distinct indices from [0, n) sampled without replacement with
  // probability proportional to `weights` (sequential weighted sampling).
  // Requires k <= n and all weights >= 0 with a positive total.
  std::vector<int> WeightedSampleWithoutReplacement(
      const std::vector<double>& weights, int k);

  // Shuffles `values` in place.
  void Shuffle(std::vector<int>& values);

 private:
  uint64_t state_[4];
};

}  // namespace skipnode

#endif  // SKIPNODE_BASE_RNG_H_
