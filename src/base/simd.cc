// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "base/check.h"

namespace skipnode::simd {
namespace {

// -1 = not yet initialised from the environment; 0/1 = resolved.
std::atomic<int> g_enabled{-1};

}  // namespace

bool ParseEnabledEnv(const char* value) {
  if (value == nullptr || std::strcmp(value, "1") == 0) return true;
  if (std::strcmp(value, "0") == 0) return false;
  SKIPNODE_CHECK_MSG(false, "SKIPNODE_SIMD must be \"0\" or \"1\", got \"%s\"",
                     value);
  return true;  // Unreachable.
}

bool Enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    // Parsed lazily (not in a static initialiser) so tests can setenv first.
    state = ParseEnabledEnv(std::getenv("SKIPNODE_SIMD")) ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

const char* CompiledMode() {
#if defined(SKIPNODE_SIMD_SCALAR)
  return "scalar";
#elif defined(SKIPNODE_SIMD_AVX2)
  return "avx2";
#elif defined(SKIPNODE_SIMD_NEON)
  return "neon";
#else
  return "portable";
#endif
}

}  // namespace skipnode::simd
