// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Zero-overhead-when-disabled observability layer (DESIGN §9): scoped RAII
// timers and monotonic counters that accumulate into per-thread stats and
// aggregate, on demand, into a process-wide TelemetrySnapshot.
//
// The contract every instrumentation site obeys:
//   * Off the numeric path. Telemetry reads the clock and bumps integer
//     counters — it never touches an Rng, a float, or any kernel input or
//     output, so every result is bitwise identical with telemetry on or off
//     at any thread count (asserted by trainer_metrics_test).
//   * Zero overhead when disabled. TelemetryEnabled() is one relaxed atomic
//     load; a disabled ScopedTimer reads no clock, takes no lock, and
//     allocates nothing (asserted by telemetry_test).
//   * Thread-safe aggregation. Each thread owns its stats map (guarded by a
//     per-thread mutex that only snapshots contend on); SnapshotTelemetry()
//     merges live threads plus the stats of threads that have exited.
//
// Telemetry starts disabled unless the SKIPNODE_TELEMETRY environment
// variable is set to a non-empty, non-"0" value.

#ifndef SKIPNODE_BASE_TELEMETRY_H_
#define SKIPNODE_BASE_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace skipnode {

// Monotonic wall clock in nanoseconds (std::chrono::steady_clock). The one
// clock every timer in the repo reads — benches included — so all reported
// timings are comparable.
int64_t MonotonicNanos();

// Process-wide enable switch.
bool TelemetryEnabled();
void SetTelemetryEnabled(bool enabled);

// Accumulated stats of one named metric.
struct MetricStat {
  int64_t count = 0;     // timer completions / counter increments
  int64_t items = 0;     // caller-supplied work units (rows, elements, ...)
  int64_t total_ns = 0;  // summed elapsed time (timers only)
  int64_t max_ns = 0;    // worst single scope (timers only)

  void Merge(const MetricStat& other);
};

// Point-in-time aggregate across all threads, sorted by metric name.
struct TelemetrySnapshot {
  std::vector<std::pair<std::string, MetricStat>> metrics;

  // Returns the named metric or nullptr.
  const MetricStat* Find(const std::string& name) const;

  // {"name":{"count":N,"items":N,"total_ns":N,"max_ns":N},...}
  std::string ToJson() const;
};

// Aggregates every thread's stats (live and exited) into one snapshot.
TelemetrySnapshot SnapshotTelemetry();

// Zeroes all accumulated stats on every thread.
void ResetTelemetry();

// Bumps the named counter: count += 1, items += items. No-op when disabled.
void CountMetric(const char* name, int64_t items = 1);

// Records one completed timing against the named metric. No-op when
// disabled.
void RecordTiming(const char* name, int64_t elapsed_ns, int64_t items = 0);

// RAII timer for one instrumented scope. When telemetry is disabled at
// construction the timer is fully inert: no clock read, no lock, no
// allocation.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, int64_t items = 0)
      : name_(TelemetryEnabled() ? name : nullptr),
        items_(items),
        start_ns_(name_ != nullptr ? MonotonicNanos() : 0) {}

  ~ScopedTimer() {
    if (name_ != nullptr) {
      RecordTiming(name_, MonotonicNanos() - start_ns_, items_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;  // nullptr when the timer is inert
  int64_t items_;
  int64_t start_ns_;
};

}  // namespace skipnode

#endif  // SKIPNODE_BASE_TELEMETRY_H_
