// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic fault injection for the training loop. A FaultPlan names a
// single site (activations, gradients, or parameter updates), an epoch, and
// a corruption kind (NaN / Inf); the FaultInjector then overwrites a seeded
// random subset of one tensor's elements when the trainer reaches that
// point. The injector draws from its own Rng, so enabling it never perturbs
// the training stream — a run with a plan that fires at epoch k is bitwise
// identical to the unfaulted run up to epoch k.
//
// This layer exists so failure paths are testable, not theoretical: every
// recovery feature (non-finite scans, rollback, LR backoff) is exercised by
// injecting the fault it defends against. Sits in base below tensor, so it
// corrupts raw float spans rather than Matrix objects.

#ifndef SKIPNODE_BASE_FAULT_H_
#define SKIPNODE_BASE_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"

namespace skipnode {

// Where in the training step the fault strikes.
enum class FaultSite {
  kActivation,  // forward activations (the logits feeding the loss)
  kGradient,    // a parameter gradient after the backward pass
  kUpdate,      // a parameter value after the optimizer step
};

// What gets written into the corrupted elements.
enum class FaultKind {
  kNaN,
  kInf,
};

// A single scheduled fault. Default-constructed plans are disabled; flip
// `enabled` (or parse CLI flags via the helpers below) to arm one.
struct FaultPlan {
  bool enabled = false;
  FaultSite site = FaultSite::kActivation;
  FaultKind kind = FaultKind::kNaN;
  // Epoch (0-based) at which the fault fires, once.
  int epoch = 0;
  // For kGradient / kUpdate: index into Model::Parameters() of the tensor
  // to corrupt. Ignored for kActivation (the logits are the target).
  int parameter_index = 0;
  // Number of elements overwritten (clamped to the tensor size).
  int elements = 1;
  // Seed for the injector's private Rng (element positions).
  uint64_t seed = 0x0bad'f00dULL;
};

// Record of one fired fault, mirrored into the trainer's health log.
struct FaultEvent {
  FaultSite site;
  FaultKind kind;
  int epoch = 0;
  // Flat indices that were overwritten.
  std::vector<int64_t> indices;
};

// Executes a FaultPlan deterministically. Not thread-safe; owned by one
// training loop.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  const FaultPlan& plan() const { return plan_; }

  // True iff the plan is armed for `site` at `epoch` and has not fired yet.
  bool ShouldFire(FaultSite site, int epoch) const {
    return plan_.enabled && !fired_ && site == plan_.site &&
           epoch == plan_.epoch;
  }

  // Overwrites up to plan().elements distinct elements of data[0, size) with
  // the plan's payload and records a FaultEvent. Call only when ShouldFire()
  // returned true for the current site/epoch.
  void Corrupt(float* data, int64_t size, int epoch);

  // Every fault fired so far (at most one under the current plan shape).
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  bool fired_ = false;
  std::vector<FaultEvent> events_;
};

// CLI / logging helpers. The parsers return false on unknown names.
bool ParseFaultSite(const std::string& name, FaultSite* site);
bool ParseFaultKind(const std::string& name, FaultKind* kind);
const char* FaultSiteName(FaultSite site);
const char* FaultKindName(FaultKind kind);

}  // namespace skipnode

#endif  // SKIPNODE_BASE_FAULT_H_
