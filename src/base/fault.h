// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Deterministic fault injection for the training loop. A FaultPlan names a
// single site (activations, gradients, or parameter updates), an epoch, and
// a corruption kind (NaN / Inf); the FaultInjector then overwrites a seeded
// random subset of one tensor's elements when the trainer reaches that
// point. The injector draws from its own Rng, so enabling it never perturbs
// the training stream — a run with a plan that fires at epoch k is bitwise
// identical to the unfaulted run up to epoch k.
//
// This layer exists so failure paths are testable, not theoretical: every
// recovery feature (non-finite scans, rollback, LR backoff) is exercised by
// injecting the fault it defends against. Sits in base below tensor, so it
// corrupts raw float spans rather than Matrix objects.

#ifndef SKIPNODE_BASE_FAULT_H_
#define SKIPNODE_BASE_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/rng.h"

namespace skipnode {

// Where in the training step the fault strikes.
enum class FaultSite {
  kActivation,  // forward activations (the logits feeding the loss)
  kGradient,    // a parameter gradient after the backward pass
  kUpdate,      // a parameter value after the optimizer step
};

// What gets written into the corrupted elements.
enum class FaultKind {
  kNaN,
  kInf,
};

// A single scheduled fault. Default-constructed plans are disabled; flip
// `enabled` (or parse CLI flags via the helpers below) to arm one.
struct FaultPlan {
  bool enabled = false;
  FaultSite site = FaultSite::kActivation;
  FaultKind kind = FaultKind::kNaN;
  // Epoch (0-based) at which the fault fires, once.
  int epoch = 0;
  // For kGradient / kUpdate: index into Model::Parameters() of the tensor
  // to corrupt. Ignored for kActivation (the logits are the target).
  int parameter_index = 0;
  // Number of elements overwritten (clamped to the tensor size).
  int elements = 1;
  // Seed for the injector's private Rng (element positions).
  uint64_t seed = 0x0bad'f00dULL;
};

// Record of one fired fault, mirrored into the trainer's health log.
struct FaultEvent {
  FaultSite site;
  FaultKind kind;
  int epoch = 0;
  // Flat indices that were overwritten.
  std::vector<int64_t> indices;
};

// Executes a FaultPlan deterministically. Not thread-safe; owned by one
// training loop.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  const FaultPlan& plan() const { return plan_; }

  // True iff the plan is armed for `site` at `epoch` and has not fired yet.
  bool ShouldFire(FaultSite site, int epoch) const {
    return plan_.enabled && !fired_ && site == plan_.site &&
           epoch == plan_.epoch;
  }

  // Overwrites up to plan().elements distinct elements of data[0, size) with
  // the plan's payload and records a FaultEvent. Call only when ShouldFire()
  // returned true for the current site/epoch.
  void Corrupt(float* data, int64_t size, int epoch);

  // Every fault fired so far (at most one under the current plan shape).
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  bool fired_ = false;
  std::vector<FaultEvent> events_;
};

// CLI / logging helpers. The parsers return false on unknown names.
bool ParseFaultSite(const std::string& name, FaultSite* site);
bool ParseFaultKind(const std::string& name, FaultKind* kind);
const char* FaultSiteName(FaultSite site);
const char* FaultKindName(FaultKind kind);

// ---------------------------------------------------------------------------
// Serve-side fault injection (DESIGN §12). The serving counterpart of the
// training FaultPlan: where the trainer indexes faults by epoch, the server
// indexes them by the worker's *formed-batch ordinal* (assigned under the
// queue lock, so it is unique and totally ordered even with many workers).
// Serve faults never corrupt a float — they exercise the overload and
// structured-error paths (deadline expiry under a stalled worker, client
// handling of a failed batch), so every affected request resolves with a
// ServeStatus error and accepted requests stay bitwise exact.

// Where in the serving path the fault strikes.
enum class ServeFaultSite {
  // The worker sleeps stall_us between forming a batch and the batch-close
  // deadline check, so armed deadlines expire deterministically.
  kWorkerStall,
  // The worker fails the batch: every member resolves kRejected, nothing is
  // computed.
  kBatchDrop,
};

// A single scheduled serving fault. Default-constructed plans are disabled.
struct ServeFaultPlan {
  bool enabled = false;
  ServeFaultSite site = ServeFaultSite::kWorkerStall;
  // 0-based formed-batch ordinal at which the fault fires, once. Ordinals
  // count every formed batch, including ones later dropped or expired.
  int64_t batch_index = 0;
  // kWorkerStall: how long the worker sleeps, in microseconds.
  int stall_us = 0;
};

// Record of one fired serving fault.
struct ServeFaultEvent {
  ServeFaultSite site;
  int64_t batch_index = 0;
};

// Executes a ServeFaultPlan at most once. Thread-safe: the server's worker
// threads share one injector.
class ServeFaultInjector {
 public:
  explicit ServeFaultInjector(const ServeFaultPlan& plan) : plan_(plan) {}

  const ServeFaultPlan& plan() const { return plan_; }

  // True exactly once, when `site` and `batch_index` match the armed plan;
  // the fault is consumed by the call that returns true.
  bool ShouldFire(ServeFaultSite site, int64_t batch_index);

  // Every fault fired so far (at most one under the current plan shape).
  std::vector<ServeFaultEvent> events() const;

 private:
  const ServeFaultPlan plan_;
  mutable std::mutex mu_;
  bool fired_ = false;
  std::vector<ServeFaultEvent> events_;
};

// CLI / logging helpers. The parser accepts the canonical `serve-` prefixed
// names ("serve-worker-stall", "serve-batch-drop") and the bare forms.
bool ParseServeFaultSite(const std::string& name, ServeFaultSite* site);
const char* ServeFaultSiteName(ServeFaultSite site);

}  // namespace skipnode

#endif  // SKIPNODE_BASE_FAULT_H_
