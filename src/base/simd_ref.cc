// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Scalar reference kernels: the retired inline loops, verbatim. This file is
// compiled with auto-vectorization disabled (see src/CMakeLists.txt) so the
// reference stays genuinely scalar — it is both the bitwise pin for the
// vectorized kernels and the baseline the micro_kernels bench measures
// speedups against. Keep each body a plain element loop; do not "optimize".

#include "base/simd.h"

namespace skipnode::simd {

void AxpyRef(float a, const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += a * x[i];
}

void AccumulateRef(const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] += x[i];
}

void SubtractRef(const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] -= x[i];
}

void ScaleRef(const float* x, float s, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] * s;
}

void ScaleInPlaceRef(float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= s;
}

void AddScalarInPlaceRef(float* x, float b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] += b;
}

void AddRef(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void MulRef(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void AxpbyRef(float alpha, const float* a, float beta, const float* b,
              float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = alpha * a[i] + beta * b[i];
}

void ReluRef(const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] < 0.0f ? 0.0f : x[i];
}

void ReluGradInPlaceRef(const float* x, float* g, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
}

void SgdStepRef(float* value, const float* grad, int64_t n,
                float learning_rate, float weight_decay) {
  for (int64_t i = 0; i < n; ++i) {
    value[i] -= learning_rate * (grad[i] + weight_decay * value[i]);
  }
}

void AdamStepRef(float* value, const float* grad, float* m, float* v,
                 int64_t n, const AdamConstants& k) {
  for (int64_t i = 0; i < n; ++i) {
    const float g =
        grad[i] + (k.decoupled ? 0.0f : k.weight_decay * value[i]);
    m[i] = k.beta1 * m[i] + k.one_minus_beta1 * g;
    v[i] = k.beta2 * v[i] + k.one_minus_beta2 * g * g;
    const float m_hat = m[i] / k.bias1;
    const float v_hat = v[i] / k.bias2;
    value[i] -= k.learning_rate * m_hat / (std::sqrt(v_hat) + k.epsilon);
    if (k.decoupled) value[i] -= k.lr_weight_decay * value[i];
  }
}

float DotFastRef(const float* a, const float* b, int64_t n) {
  // Same lane-then-tree accumulation order as DotFast (that is the point:
  // the fast_math sum is a deterministic function of n, not of the compile
  // mode or runtime switch), just never vectorized.
  float acc[kLanes] = {};
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) acc[l] += a[i + l] * b[i + l];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  for (int w = kLanes / 2; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) acc[l] += acc[l + w];
  }
  return acc[0] + tail;
}

}  // namespace skipnode::simd
