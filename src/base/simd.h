// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Width-N microkernels for the hot inner loops (DESIGN §14). Every kernel
// exists twice:
//
//   * simd::Foo     — the vectorized form: a stripmined loop of kLanes
//     independent lanes plus a scalar tail (or guarded AVX2/NEON intrinsics
//     when the SKIPNODE_SIMD CMake knob selects them). Lanes are
//     independent output elements, so vectorizing reorders nothing: every
//     kernel here is bitwise identical to its scalar twin.
//   * simd::FooRef  — the retained scalar reference (simd_ref.cc, compiled
//     with auto-vectorization disabled). This is the retired inline loop,
//     kept callable so tests pin Foo == FooRef bitwise and benches measure
//     the speedup against a genuinely scalar baseline.
//
// Call sites hoist `const bool vec = simd::Enabled()` once per kernel
// invocation and branch to Foo or FooRef; the runtime switch (SKIPNODE_SIMD
// env: unset/"1" on, "0" scalar reference, anything else aborts) exists so
// one binary can A/B the two paths and tools/check_simd.sh can prove them
// bitwise interchangeable.
//
// The one deliberate exception is DotFast: a reassociated kLanes-accumulator
// dot product for the reduction-shaped Gemm paths, where vectorization
// *must* reorder the sum. It ships behind the fast_math opt-in
// (GemmOptions::fast_math / StrategyConfig::fast_math, default off), and its
// fixed lane-then-tree order makes it deterministic at any thread count and
// bitwise identical across compile modes and the runtime switch — just not
// to the exact serial path.
//
// No kernel may use an FMA contraction: fusing skips the intermediate
// rounding and breaks Foo == FooRef. The build forces -ffp-contract=off and
// the intrinsic bodies use separate mul/add, never _mm256_fmadd_ps.

#ifndef SKIPNODE_BASE_SIMD_H_
#define SKIPNODE_BASE_SIMD_H_

#include <cmath>
#include <cstdint>

#if defined(SKIPNODE_SIMD_AVX2)
#if !defined(__AVX2__)
#error "SKIPNODE_SIMD=avx2 requires an AVX2 target (the build adds -mavx2)"
#endif
#include <immintrin.h>
#elif defined(SKIPNODE_SIMD_NEON)
#if !defined(__ARM_NEON)
#error "SKIPNODE_SIMD=neon requires a NEON target"
#endif
#include <arm_neon.h>
#endif

namespace skipnode::simd {

// Stripmine width. Wide enough to fill an AVX2 register; SSE2 and NEON
// targets vectorize the same kLanes-trip inner loop as two native vectors.
inline constexpr int kLanes = 8;

// --- Runtime dispatch -------------------------------------------------------

// Whether call sites should take the vectorized kernels. Initialised from
// the SKIPNODE_SIMD environment variable on first use (unset/"1" = on,
// "0" = scalar reference, anything else aborts).
bool Enabled();
// Overrides the runtime switch (tests, the micro_kernels A/B sweep).
void SetEnabled(bool enabled);
// Parses a SKIPNODE_SIMD value: nullptr/"1" -> true, "0" -> false, anything
// else aborts with a clear message. Shared with bench::BenchConfig::FromEnv
// so the bench harness rejects bad values instead of silently defaulting.
bool ParseEnabledEnv(const char* value);
// The compile-time kernel flavour: "scalar", "portable", "avx2", or "neon".
const char* CompiledMode();

// --- Scalar reference kernels (simd_ref.cc, never auto-vectorized) ---------

void AxpyRef(float a, const float* x, float* out, int64_t n);
void AccumulateRef(const float* x, float* out, int64_t n);
void SubtractRef(const float* x, float* out, int64_t n);
void ScaleRef(const float* x, float s, float* out, int64_t n);
void ScaleInPlaceRef(float* x, float s, int64_t n);
void AddScalarInPlaceRef(float* x, float b, int64_t n);
void AddRef(const float* a, const float* b, float* out, int64_t n);
void MulRef(const float* a, const float* b, float* out, int64_t n);
void AxpbyRef(float alpha, const float* a, float beta, const float* b,
              float* out, int64_t n);
void ReluRef(const float* x, float* out, int64_t n);
void ReluGradInPlaceRef(const float* x, float* g, int64_t n);
void SgdStepRef(float* value, const float* grad, int64_t n,
                float learning_rate, float weight_decay);

// Constants of one Adam step, precomputed outside the element loop. Every
// field is derived so the per-element arithmetic matches the historical
// inline expressions bit for bit (e.g. one_minus_beta1 == 1.0f - beta1, the
// exact float the old loop recomputed each iteration).
struct AdamConstants {
  float beta1;
  float one_minus_beta1;
  float beta2;
  float one_minus_beta2;
  float bias1;  // 1 - beta1^t
  float bias2;  // 1 - beta2^t
  float learning_rate;
  float epsilon;
  float weight_decay;     // coupled L2 term folded into the gradient
  float lr_weight_decay;  // decoupled (AdamW) shrink factor: lr * wd
  bool decoupled;
};

void AdamStepRef(float* value, const float* grad, float* m, float* v,
                 int64_t n, const AdamConstants& k);
float DotFastRef(const float* a, const float* b, int64_t n);

// --- Portable stripmined bodies --------------------------------------------
// Always compiled (the scalar/AVX2/NEON modes fall back to them for any
// kernel without a hand-written body). Each is the Ref loop stripmined into
// kLanes independent lanes — same per-element expression, so bitwise
// identical — with a scalar tail for n % kLanes.

namespace detail {

inline void AxpyPortable(float a, const float* __restrict x,
                         float* __restrict out, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) out[i + l] += a * x[i + l];
  }
  for (; i < n; ++i) out[i] += a * x[i];
}

inline void AccumulatePortable(const float* __restrict x,
                               float* __restrict out, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) out[i + l] += x[i + l];
  }
  for (; i < n; ++i) out[i] += x[i];
}

inline void SubtractPortable(const float* __restrict x, float* __restrict out,
                             int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) out[i + l] -= x[i + l];
  }
  for (; i < n; ++i) out[i] -= x[i];
}

inline void ScalePortable(const float* __restrict x, float s,
                          float* __restrict out, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) out[i + l] = x[i + l] * s;
  }
  for (; i < n; ++i) out[i] = x[i] * s;
}

inline void ScaleInPlacePortable(float* x, float s, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) x[i + l] *= s;
  }
  for (; i < n; ++i) x[i] *= s;
}

inline void AddScalarInPlacePortable(float* x, float b, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) x[i + l] += b;
  }
  for (; i < n; ++i) x[i] += b;
}

inline void AddPortable(const float* __restrict a, const float* __restrict b,
                        float* __restrict out, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) out[i + l] = a[i + l] + b[i + l];
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

inline void MulPortable(const float* __restrict a, const float* __restrict b,
                        float* __restrict out, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) out[i + l] = a[i + l] * b[i + l];
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

inline void AxpbyPortable(float alpha, const float* __restrict a, float beta,
                          const float* __restrict b, float* __restrict out,
                          int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      out[i + l] = alpha * a[i + l] + beta * b[i + l];
    }
  }
  for (; i < n; ++i) out[i] = alpha * a[i] + beta * b[i];
}

inline void ReluPortable(const float* __restrict x, float* __restrict out,
                         int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      out[i + l] = x[i + l] < 0.0f ? 0.0f : x[i + l];
    }
  }
  for (; i < n; ++i) out[i] = x[i] < 0.0f ? 0.0f : x[i];
}

inline void ReluGradInPlacePortable(const float* x, float* g, int64_t n) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      g[i + l] = x[i + l] <= 0.0f ? 0.0f : g[i + l];
    }
  }
  for (; i < n; ++i) g[i] = x[i] <= 0.0f ? 0.0f : g[i];
}

inline void SgdStepPortable(float* value, const float* grad, int64_t n,
                            float learning_rate, float weight_decay) {
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      value[i + l] -=
          learning_rate * (grad[i + l] + weight_decay * value[i + l]);
    }
  }
  for (; i < n; ++i) {
    value[i] -= learning_rate * (grad[i] + weight_decay * value[i]);
  }
}

// Hoisting the coupled/decoupled branch gives the compiler two straight-line
// loops it can vectorize (vsqrtps/vdivps are correctly rounded per IEEE 754,
// so the vector forms are bitwise identical to the scalar ones).
inline void AdamStepPortable(float* value, const float* grad, float* m,
                             float* v, int64_t n, const AdamConstants& k) {
  if (!k.decoupled) {
    for (int64_t i = 0; i < n; ++i) {
      const float g = grad[i] + k.weight_decay * value[i];
      m[i] = k.beta1 * m[i] + k.one_minus_beta1 * g;
      v[i] = k.beta2 * v[i] + k.one_minus_beta2 * g * g;
      const float m_hat = m[i] / k.bias1;
      const float v_hat = v[i] / k.bias2;
      value[i] -= k.learning_rate * m_hat / (std::sqrt(v_hat) + k.epsilon);
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      const float g = grad[i] + 0.0f;
      m[i] = k.beta1 * m[i] + k.one_minus_beta1 * g;
      v[i] = k.beta2 * v[i] + k.one_minus_beta2 * g * g;
      const float m_hat = m[i] / k.bias1;
      const float v_hat = v[i] / k.bias2;
      value[i] -= k.learning_rate * m_hat / (std::sqrt(v_hat) + k.epsilon);
      value[i] -= k.lr_weight_decay * value[i];
    }
  }
}

// Reassociated dot: kLanes independent partial sums accumulated in lane
// order, reduced by a fixed halving tree, tail added last. The order is a
// function of n alone — never the thread count, compile mode, or runtime
// switch — so fast_math results are deterministic, just not equal to the
// exact serial double-precision path.
inline float DotFastPortable(const float* __restrict a,
                             const float* __restrict b, int64_t n) {
  float acc[kLanes] = {};
  int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (int l = 0; l < kLanes; ++l) acc[l] += a[i + l] * b[i + l];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  for (int w = kLanes / 2; w > 0; w /= 2) {
    for (int l = 0; l < w; ++l) acc[l] += acc[l + w];
  }
  return acc[0] + tail;
}

}  // namespace detail

// --- Vectorized kernels -----------------------------------------------------

#if defined(SKIPNODE_SIMD_SCALAR)

// Scalar compile mode: the whole binary runs the reference kernels, giving
// tools/check_simd.sh a build whose every path is provably scalar.
inline void Axpy(float a, const float* x, float* out, int64_t n) {
  AxpyRef(a, x, out, n);
}
inline void Accumulate(const float* x, float* out, int64_t n) {
  AccumulateRef(x, out, n);
}
inline void Subtract(const float* x, float* out, int64_t n) {
  SubtractRef(x, out, n);
}
inline void Scale(const float* x, float s, float* out, int64_t n) {
  ScaleRef(x, s, out, n);
}
inline void ScaleInPlace(float* x, float s, int64_t n) {
  ScaleInPlaceRef(x, s, n);
}
inline void AddScalarInPlace(float* x, float b, int64_t n) {
  AddScalarInPlaceRef(x, b, n);
}
inline void Add(const float* a, const float* b, float* out, int64_t n) {
  AddRef(a, b, out, n);
}
inline void Mul(const float* a, const float* b, float* out, int64_t n) {
  MulRef(a, b, out, n);
}
inline void Axpby(float alpha, const float* a, float beta, const float* b,
                  float* out, int64_t n) {
  AxpbyRef(alpha, a, beta, b, out, n);
}
inline void Relu(const float* x, float* out, int64_t n) { ReluRef(x, out, n); }
inline void ReluGradInPlace(const float* x, float* g, int64_t n) {
  ReluGradInPlaceRef(x, g, n);
}
inline void SgdStep(float* value, const float* grad, int64_t n,
                    float learning_rate, float weight_decay) {
  SgdStepRef(value, grad, n, learning_rate, weight_decay);
}
inline void AdamStep(float* value, const float* grad, float* m, float* v,
                     int64_t n, const AdamConstants& k) {
  AdamStepRef(value, grad, m, v, n, k);
}
inline float DotFast(const float* a, const float* b, int64_t n) {
  return DotFastRef(a, b, n);
}

#elif defined(SKIPNODE_SIMD_AVX2)

// Hand-vectorized 8-lane bodies. Separate mul + add everywhere (no FMA —
// fusing would skip a rounding and break bitwise identity with the scalar
// reference). The Adam/SGD state updates keep the portable stripmined form:
// under -mavx2 the compiler already emits vsqrtps/vdivps for them.

inline void Axpy(float a, const float* x, float* out, int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(out + i), prod));
  }
  for (; i < n; ++i) out[i] += a * x[i];
}

inline void Accumulate(const float* x, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i),
                                            _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] += x[i];
}

inline void Subtract(const float* x, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(out + i),
                                            _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] -= x[i];
}

inline void Scale(const float* x, float s, float* out, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) out[i] = x[i] * s;
}

inline void ScaleInPlace(float* x, float s, int64_t n) { Scale(x, s, x, n); }

inline void AddScalarInPlace(float* x, float b, int64_t n) {
  const __m256 vb = _mm256_set1_ps(b);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), vb));
  }
  for (; i < n; ++i) x[i] += b;
}

inline void Add(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

inline void Mul(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

inline void Axpby(float alpha, const float* a, float beta, const float* b,
                  float* out, int64_t n) {
  const __m256 valpha = _mm256_set1_ps(alpha);
  const __m256 vbeta = _mm256_set1_ps(beta);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 pa = _mm256_mul_ps(valpha, _mm256_loadu_ps(a + i));
    const __m256 pb = _mm256_mul_ps(vbeta, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(pa, pb));
  }
  for (; i < n; ++i) out[i] = alpha * a[i] + beta * b[i];
}

inline void Relu(const float* x, float* out, int64_t n) {
  // max_ps(0, x) returns the second operand when x is a NaN or a zero of
  // either sign — exactly the scalar (x < 0 ? 0 : x), including Relu(-0).
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(zero, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = x[i] < 0.0f ? 0.0f : x[i];
}

inline void ReluGradInPlace(const float* x, float* g, int64_t n) {
  // Zero g where x <= 0. The ordered-quiet compare is false on NaN, which
  // keeps g — matching the scalar (x <= 0 ? 0 : g) on NaN inputs.
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 le =
        _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_LE_OQ);
    _mm256_storeu_ps(g + i, _mm256_andnot_ps(le, _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) g[i] = x[i] <= 0.0f ? 0.0f : g[i];
}

inline void SgdStep(float* value, const float* grad, int64_t n,
                    float learning_rate, float weight_decay) {
  detail::SgdStepPortable(value, grad, n, learning_rate, weight_decay);
}

inline void AdamStep(float* value, const float* grad, float* m, float* v,
                     int64_t n, const AdamConstants& k) {
  detail::AdamStepPortable(value, grad, m, v, n, k);
}

inline float DotFast(const float* a, const float* b, int64_t n) {
  // Lane l accumulates elements i with i % 8 == l, then the halving tree
  // (lanes += lanes+4, +2, +1) — the exact order of DotFastPortable, so the
  // fast_math result is identical across compile modes.
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, prod);
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  __m128 lo = _mm256_castps256_ps128(acc);
  lo = _mm_add_ps(lo, _mm256_extractf128_ps(acc, 1));   // l += l+4
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));           // l += l+2
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x1));     // 0 += 1
  return _mm_cvtss_f32(lo) + tail;
}

#elif defined(SKIPNODE_SIMD_NEON)

// 4-lane NEON bodies for the elementwise family (two vectors per kLanes
// strip); the branchy/sqrt-heavy kernels keep the portable form, which the
// compiler vectorizes for NEON targets. No vfmaq (same no-FMA rule).

inline void Axpy(float a, const float* x, float* out, int64_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(out + i), prod));
  }
  for (; i < n; ++i) out[i] += a * x[i];
}

inline void Accumulate(const float* x, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(out + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) out[i] += x[i];
}

inline void Subtract(const float* x, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(out + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) out[i] -= x[i];
}

inline void Scale(const float* x, float s, float* out, int64_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(x + i), vs));
  }
  for (; i < n; ++i) out[i] = x[i] * s;
}

inline void ScaleInPlace(float* x, float s, int64_t n) { Scale(x, s, x, n); }

inline void AddScalarInPlace(float* x, float b, int64_t n) {
  const float32x4_t vb = vdupq_n_f32(b);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vaddq_f32(vld1q_f32(x + i), vb));
  }
  for (; i < n; ++i) x[i] += b;
}

inline void Add(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

inline void Mul(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

inline void Axpby(float alpha, const float* a, float beta, const float* b,
                  float* out, int64_t n) {
  const float32x4_t valpha = vdupq_n_f32(alpha);
  const float32x4_t vbeta = vdupq_n_f32(beta);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t pa = vmulq_f32(valpha, vld1q_f32(a + i));
    const float32x4_t pb = vmulq_f32(vbeta, vld1q_f32(b + i));
    vst1q_f32(out + i, vaddq_f32(pa, pb));
  }
  for (; i < n; ++i) out[i] = alpha * a[i] + beta * b[i];
}

inline void Relu(const float* x, float* out, int64_t n) {
  // Select (not vmaxq, whose -0/NaN handling differs from the scalar
  // expression): x < 0 ? 0 : x, NaN compares false and passes through.
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    vst1q_f32(out + i, vbslq_f32(vcltq_f32(vx, zero), zero, vx));
  }
  for (; i < n; ++i) out[i] = x[i] < 0.0f ? 0.0f : x[i];
}

inline void ReluGradInPlace(const float* x, float* g, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t le = vcleq_f32(vld1q_f32(x + i), zero);
    vst1q_f32(g + i, vbslq_f32(le, zero, vld1q_f32(g + i)));
  }
  for (; i < n; ++i) g[i] = x[i] <= 0.0f ? 0.0f : g[i];
}

inline void SgdStep(float* value, const float* grad, int64_t n,
                    float learning_rate, float weight_decay) {
  detail::SgdStepPortable(value, grad, n, learning_rate, weight_decay);
}

inline void AdamStep(float* value, const float* grad, float* m, float* v,
                     int64_t n, const AdamConstants& k) {
  detail::AdamStepPortable(value, grad, m, v, n, k);
}

inline float DotFast(const float* a, const float* b, int64_t n) {
  return detail::DotFastPortable(a, b, n);
}

#else  // portable (the default): compiler-vectorized stripmined loops.

inline void Axpy(float a, const float* x, float* out, int64_t n) {
  detail::AxpyPortable(a, x, out, n);
}
inline void Accumulate(const float* x, float* out, int64_t n) {
  detail::AccumulatePortable(x, out, n);
}
inline void Subtract(const float* x, float* out, int64_t n) {
  detail::SubtractPortable(x, out, n);
}
inline void Scale(const float* x, float s, float* out, int64_t n) {
  detail::ScalePortable(x, s, out, n);
}
inline void ScaleInPlace(float* x, float s, int64_t n) {
  detail::ScaleInPlacePortable(x, s, n);
}
inline void AddScalarInPlace(float* x, float b, int64_t n) {
  detail::AddScalarInPlacePortable(x, b, n);
}
inline void Add(const float* a, const float* b, float* out, int64_t n) {
  detail::AddPortable(a, b, out, n);
}
inline void Mul(const float* a, const float* b, float* out, int64_t n) {
  detail::MulPortable(a, b, out, n);
}
inline void Axpby(float alpha, const float* a, float beta, const float* b,
                  float* out, int64_t n) {
  detail::AxpbyPortable(alpha, a, beta, b, out, n);
}
inline void Relu(const float* x, float* out, int64_t n) {
  detail::ReluPortable(x, out, n);
}
inline void ReluGradInPlace(const float* x, float* g, int64_t n) {
  detail::ReluGradInPlacePortable(x, g, n);
}
inline void SgdStep(float* value, const float* grad, int64_t n,
                    float learning_rate, float weight_decay) {
  detail::SgdStepPortable(value, grad, n, learning_rate, weight_decay);
}
inline void AdamStep(float* value, const float* grad, float* m, float* v,
                     int64_t n, const AdamConstants& k) {
  detail::AdamStepPortable(value, grad, m, v, n, k);
}
inline float DotFast(const float* a, const float* b, int64_t n) {
  return detail::DotFastPortable(a, b, n);
}

#endif

}  // namespace skipnode::simd

#endif  // SKIPNODE_BASE_SIMD_H_
