// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Gradient- and parameter-health probes for the training loop's guardrails
// (DESIGN §8). A probe is a pure read over the Parameter set: it never
// touches values, gradients, or any Rng, so attaching one to a training run
// cannot change a single bit of the result. The only mutating helper is
// ScaleGradients, used by the trainer's gradient clipping.

#ifndef SKIPNODE_AUTOGRAD_HEALTH_H_
#define SKIPNODE_AUTOGRAD_HEALTH_H_

#include <string>
#include <vector>

#include "autograd/tape.h"

namespace skipnode {

// Snapshot of the gradient state after a backward pass.
struct GradientHealth {
  // False iff some gradient holds a NaN or an Inf.
  bool finite = true;
  // Name of the first offending parameter (empty when finite).
  std::string first_bad;
  // Global L2 norm over every gradient, accumulated serially in double so
  // the value is identical at any thread count. Meaningless when !finite
  // (a NaN poisons the sum) — consult `finite` first.
  double global_norm = 0.0;
};

// Scans every parameter's gradient: non-finite flags (parallel per-row,
// serially reduced — see tensor/ops HasNonFinite) plus the global norm.
GradientHealth ProbeGradients(const std::vector<Parameter*>& parameters);

// True iff every parameter *value* is finite; on failure `first_bad` (when
// non-null) receives the first offending parameter's name.
bool ParametersFinite(const std::vector<Parameter*>& parameters,
                      std::string* first_bad = nullptr);

// grad *= factor for every parameter — the commit step of gradient-norm
// clipping (factor = clip / global_norm).
void ScaleGradients(const std::vector<Parameter*>& parameters, float factor);

}  // namespace skipnode

#endif  // SKIPNODE_AUTOGRAD_HEALTH_H_
