// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "autograd/health.h"

#include <cmath>

#include "tensor/ops.h"

namespace skipnode {

GradientHealth ProbeGradients(const std::vector<Parameter*>& parameters) {
  GradientHealth health;
  double squared = 0.0;
  for (const Parameter* p : parameters) {
    if (health.finite && HasNonFinite(p->grad)) {
      health.finite = false;
      health.first_bad = p->name;
    }
    // Serial double accumulation over the flat buffer: the order is fixed by
    // the parameter list, never by the thread count.
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      squared += static_cast<double>(g[i]) * g[i];
    }
  }
  health.global_norm = std::sqrt(squared);
  return health;
}

bool ParametersFinite(const std::vector<Parameter*>& parameters,
                      std::string* first_bad) {
  for (const Parameter* p : parameters) {
    if (HasNonFinite(p->value)) {
      if (first_bad != nullptr) *first_bad = p->name;
      return false;
    }
  }
  return true;
}

void ScaleGradients(const std::vector<Parameter*>& parameters, float factor) {
  for (Parameter* p : parameters) {
    float* g = p->grad.data();
    for (int64_t i = 0; i < p->grad.size(); ++i) g[i] *= factor;
  }
}

}  // namespace skipnode
