// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "autograd/tape.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace skipnode {

// Every buffer the tape owns goes back to the pool; the next step's tape
// (same model, same graph) re-acquires the identical shapes.
Tape::~Tape() {
  MatrixPool& pool = GlobalMatrixPool();
  for (auto& node : nodes_) {
    pool.Release(std::move(node->value));
    if (node->grad_ready) pool.Release(std::move(node->grad));
  }
}

const Matrix& Var::value() const {
  SKIPNODE_CHECK(tape_ != nullptr);
  return tape_->node(index_).value;
}

const Matrix& Var::grad() const {
  SKIPNODE_CHECK(tape_ != nullptr);
  // Lazily materialise a zero gradient for nodes the backward pass never
  // reached so callers can treat grad() uniformly.
  return tape_->EnsureGrad(index_);
}

Var Tape::Emplace(Matrix value) {
  auto node = std::make_unique<Node>();
  node->value = std::move(value);
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size()) - 1);
}

Matrix& Tape::EnsureGrad(int index) {
  Node& n = node(index);
  if (!n.grad_ready) {
    n.grad = GlobalMatrixPool().Acquire(n.value.rows(), n.value.cols());
    n.grad_ready = true;
  }
  return n.grad;
}

Matrix Tape::AcquireOutput(int rows, int cols) {
  return GlobalMatrixPool().Acquire(rows, cols);
}

Var Tape::Leaf(Parameter& parameter) {
  Var v = Emplace(parameter.value);
  Node& n = node(v.index_);
  Parameter* param = &parameter;
  Tape* tape = this;
  const int index = v.index_;
  n.backward = [tape, param, index]() {
    const Matrix& g = tape->node(index).grad;
    SKIPNODE_CHECK(g.SameShape(param->grad));
    AddScaled(g, 1.0f, param->grad);
  };
  return v;
}

Var Tape::Constant(const Matrix& value) {
  Matrix copy = AcquireOutput(value.rows(), value.cols());
  std::copy_n(value.data(), value.size(), copy.data());
  return Emplace(std::move(copy));
}

Var Tape::Constant(Matrix&& value) { return Emplace(std::move(value)); }

Matrix& Tape::MutableValue(Var v) {
  SKIPNODE_CHECK(v.tape_ == this);
  return node(v.index_).value;
}

void Tape::Backward(Var loss) {
  SKIPNODE_CHECK(loss.tape_ == this);
  SKIPNODE_CHECK(!backward_done_);
  SKIPNODE_CHECK(loss.rows() == 1 && loss.cols() == 1);
  backward_done_ = true;
  EnsureGrad(loss.index_)(0, 0) = 1.0f;
  for (int i = loss.index_; i >= 0; --i) {
    Node& n = node(i);
    if (!n.grad_ready || !n.backward) continue;
    n.backward();
  }
}

}  // namespace skipnode
