// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

namespace skipnode {

GradCheckResult CheckGradient(const std::function<float()>& loss_fn,
                              Parameter& parameter, float epsilon) {
  GradCheckResult result;
  for (int64_t i = 0; i < parameter.value.size(); ++i) {
    float& entry = parameter.value.data()[i];
    const float original = entry;
    entry = original + epsilon;
    const double loss_plus = loss_fn();
    entry = original - epsilon;
    const double loss_minus = loss_fn();
    entry = original;

    const float numeric =
        static_cast<float>((loss_plus - loss_minus) / (2.0 * epsilon));
    const float analytic = parameter.grad.data()[i];
    const float abs_err = std::fabs(numeric - analytic);
    const float denom = std::max({std::fabs(numeric), std::fabs(analytic),
                                  1e-4f});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  return result;
}

}  // namespace skipnode
