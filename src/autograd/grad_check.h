// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Finite-difference gradient checking used by the property tests: every
// autograd op is validated against central differences.

#ifndef SKIPNODE_AUTOGRAD_GRAD_CHECK_H_
#define SKIPNODE_AUTOGRAD_GRAD_CHECK_H_

#include <functional>

#include "autograd/tape.h"

namespace skipnode {

// Result of comparing an analytic gradient with central differences.
struct GradCheckResult {
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
};

// Checks d(loss)/d(parameter) for a scalar-valued forward function.
//
// `loss_fn` must rebuild the computation from the *current* parameter values
// and return the scalar loss; it is called O(parameter.size()) times. The
// analytic gradient must already be accumulated in `parameter.grad` (i.e.
// run one forward+Backward before calling). `epsilon` is the perturbation.
GradCheckResult CheckGradient(const std::function<float()>& loss_fn,
                              Parameter& parameter, float epsilon = 1e-3f);

}  // namespace skipnode

#endif  // SKIPNODE_AUTOGRAD_GRAD_CHECK_H_
