// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Implementations of every differentiable op on the Tape. Each op computes
// its value eagerly and registers a closure that pushes the output gradient
// into its parents.

#include <cmath>
#include <limits>
#include <utility>

#include "autograd/tape.h"
#include "base/check.h"
#include "base/simd.h"
#include "base/telemetry.h"
#include "sparse/offset_vec.h"
#include "tensor/ops.h"

namespace skipnode {

Var Tape::MatMul(Var a, Var b) {
  SKIPNODE_CHECK(a.tape_ == this && b.tape_ == this);
  // fast_math (set from StrategyConfig) only changes the reduction-shaped
  // A * B^T variant; the other Gemm paths ignore it.
  const bool fast_math = fast_math_;
  Matrix value = AcquireOutput(a.rows(), b.cols());
  Gemm(a.value(), b.value(), value, {.fast_math = fast_math});
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_, bi = b.index_;
  node(oi).backward = [tape, oi, ai, bi, fast_math]() {
    const Matrix& g = tape->node(oi).grad;
    // dA += g * B^T ; dB += A^T * g (both row-parallel through Gemm).
    Gemm(g, tape->node(bi).value, tape->EnsureGrad(ai),
         {.transpose_b = true, .accumulate = true, .fast_math = fast_math});
    Gemm(tape->node(ai).value, g, tape->EnsureGrad(bi),
         {.transpose_a = true, .accumulate = true, .fast_math = fast_math});
  };
  return out;
}

Var Tape::SpMM(std::shared_ptr<const CsrMatrix> a, Var x) {
  SKIPNODE_CHECK(a != nullptr);
  SKIPNODE_CHECK(x.tape_ == this);
  Matrix value = AcquireOutput(a->rows(), x.cols());
  a->MultiplyAccumulate(x.value(), value);
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, xi = x.index_;
  node(oi).backward = [tape, oi, xi, a = std::move(a)]() {
    // Labels the whole backward hop (parallel gather + accumulate) so the
    // per-op cost is separable from the raw sparse.spmm_t kernel timer.
    const ScopedTimer timer("autograd.spmm_backward", /*items=*/a->cols());
    const Matrix& g = tape->node(oi).grad;
    Matrix gx = a->MultiplyTransposed(g);
    AddScaled(gx, 1.0f, tape->EnsureGrad(xi));
  };
  return out;
}

Var Tape::SpMMRowSelect(std::shared_ptr<const CsrMatrix> a, Var x, Var pre,
                        std::vector<uint8_t> skip_mask) {
  SKIPNODE_CHECK(a != nullptr);
  SKIPNODE_CHECK(x.tape_ == this && pre.tape_ == this);
  SKIPNODE_CHECK(pre.rows() == a->rows() && pre.cols() == x.cols());
  SKIPNODE_CHECK(static_cast<int>(skip_mask.size()) == a->rows());
  // Skipped rows copy through from `pre`; only the kept rows pay for the
  // convolution. Disjoint row sets, so the order of the two kernels is
  // irrelevant.
  Matrix value = AcquireOutput(a->rows(), x.cols());
  CopyRowsWhere(pre.value(), skip_mask, value);
  a->MultiplyAccumulateMasked(x.value(), skip_mask, value);
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, xi = x.index_, pi = pre.index_;
  node(oi).backward = [tape, oi, xi, pi, a = std::move(a),
                       mask = std::move(skip_mask)]() {
    const ScopedTimer timer("autograd.spmm_rowselect_backward",
                            /*items=*/a->cols());
    const Matrix& g = tape->node(oi).grad;
    // dX += A^T * (g with skipped rows zeroed): the masked transpose never
    // reads the skipped rows, matching the zero rows RowSelect's backward
    // would have left in the convolution gradient.
    Matrix gx = a->MultiplyTransposedMasked(g, mask);
    AddScaled(gx, 1.0f, tape->EnsureGrad(xi));
    // Skipped rows bypass the convolution entirely — SkipNode's gradient
    // highway (Eq. 4).
    AddRowsWhere(g, mask, tape->EnsureGrad(pi));
  };
  return out;
}

Var Tape::Add(Var a, Var b) { return Axpby(a, b, 1.0f, 1.0f); }

Var Tape::Sub(Var a, Var b) { return Axpby(a, b, 1.0f, -1.0f); }

Var Tape::AddRowBroadcast(Var x, Var bias) {
  SKIPNODE_CHECK(x.tape_ == this && bias.tape_ == this);
  SKIPNODE_CHECK(bias.rows() == 1 && bias.cols() == x.cols());
  Matrix value = AcquireOutput(x.rows(), x.cols());
  const Matrix& xv = x.value();
  const Matrix& bv = bias.value();
  const bool vec = simd::Enabled();
  const float* bd = bv.row(0);
  for (int r = 0; r < value.rows(); ++r) {
    if (vec) {
      simd::Add(xv.row(r), bd, value.row(r), value.cols());
    } else {
      simd::AddRef(xv.row(r), bd, value.row(r), value.cols());
    }
  }
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, xi = x.index_, bi = bias.index_;
  node(oi).backward = [tape, oi, xi, bi]() {
    const Matrix& g = tape->node(oi).grad;
    AddScaled(g, 1.0f, tape->EnsureGrad(xi));
    // Column accumulation: rows add into the bias gradient in ascending row
    // order (each element's sum order is fixed — vector lanes are distinct
    // columns), preserving the serial kernel's bits.
    Matrix& gb = tape->EnsureGrad(bi);
    const bool vec = simd::Enabled();
    float* gbd = gb.row(0);
    for (int r = 0; r < g.rows(); ++r) {
      if (vec) {
        simd::Accumulate(g.row(r), gbd, g.cols());
      } else {
        simd::AccumulateRef(g.row(r), gbd, g.cols());
      }
    }
  };
  return out;
}

Var Tape::Axpby(Var a, Var b, float alpha, float beta) {
  SKIPNODE_CHECK(a.tape_ == this && b.tape_ == this);
  SKIPNODE_CHECK(a.value().SameShape(b.value()));
  Matrix value = AcquireOutput(a.rows(), a.cols());
  AxpbyInto(a.value(), b.value(), alpha, beta, value);
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_, bi = b.index_;
  node(oi).backward = [tape, oi, ai, bi, alpha, beta]() {
    const Matrix& g = tape->node(oi).grad;
    AddScaled(g, alpha, tape->EnsureGrad(ai));
    AddScaled(g, beta, tape->EnsureGrad(bi));
  };
  return out;
}

Var Tape::Scale(Var a, float s) {
  SKIPNODE_CHECK(a.tape_ == this);
  Var out = Emplace(skipnode::Scale(a.value(), s));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_;
  node(oi).backward = [tape, oi, ai, s]() {
    AddScaled(tape->node(oi).grad, s, tape->EnsureGrad(ai));
  };
  return out;
}

Var Tape::Relu(Var a) {
  SKIPNODE_CHECK(a.tape_ == this);
  Matrix value = AcquireOutput(a.rows(), a.cols());
  ReluInto(a.value(), value);
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_;
  node(oi).backward = [tape, oi, ai]() {
    // Pass-through where the *input* was positive.
    Matrix masked = ReluBackward(tape->node(ai).value, tape->node(oi).grad);
    AddScaled(masked, 1.0f, tape->EnsureGrad(ai));
  };
  return out;
}

Var Tape::Dropout(Var a, float rate, bool training, Rng& rng) {
  SKIPNODE_CHECK(a.tape_ == this);
  SKIPNODE_CHECK(rate >= 0.0f && rate < 1.0f);
  if (!training || rate == 0.0f) return a;
  const float keep_scale = 1.0f / (1.0f - rate);
  Matrix mask(a.rows(), a.cols());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.Bernoulli(rate) ? 0.0f : keep_scale;
  }
  Matrix value = AcquireOutput(a.rows(), a.cols());
  HadamardInto(a.value(), mask, value);
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_;
  node(oi).backward = [tape, oi, ai, mask = std::move(mask)]() {
    Matrix ga = Hadamard(tape->node(oi).grad, mask);
    AddScaled(ga, 1.0f, tape->EnsureGrad(ai));
  };
  return out;
}

Var Tape::ConcatCols(const std::vector<Var>& parts) {
  SKIPNODE_CHECK(!parts.empty());
  std::vector<const Matrix*> values;
  std::vector<int> indices;
  values.reserve(parts.size());
  for (const Var& part : parts) {
    SKIPNODE_CHECK(part.tape_ == this);
    values.push_back(&part.value());
    indices.push_back(part.index_);
  }
  Var out = Emplace(skipnode::ConcatCols(values));
  Tape* tape = this;
  const int oi = out.index_;
  node(oi).backward = [tape, oi, indices = std::move(indices)]() {
    const Matrix& g = tape->node(oi).grad;
    const bool vec = simd::Enabled();
    int col_offset = 0;
    for (const int pi : indices) {
      Matrix& gp = tape->EnsureGrad(pi);
      for (int r = 0; r < gp.rows(); ++r) {
        const float* src = g.row(r) + col_offset;
        float* dst = gp.row(r);
        if (vec) {
          simd::Accumulate(src, dst, gp.cols());
        } else {
          simd::AccumulateRef(src, dst, gp.cols());
        }
      }
      col_offset += gp.cols();
    }
  };
  return out;
}

Var Tape::LinearCombination(const std::vector<Var>& parts, Var coefficients) {
  SKIPNODE_CHECK(!parts.empty());
  SKIPNODE_CHECK(coefficients.tape_ == this);
  SKIPNODE_CHECK(coefficients.rows() == 1);
  SKIPNODE_CHECK(coefficients.cols() == static_cast<int>(parts.size()));
  const Matrix& coeff = coefficients.value();
  Matrix value(parts[0].rows(), parts[0].cols());
  std::vector<int> indices;
  for (size_t k = 0; k < parts.size(); ++k) {
    SKIPNODE_CHECK(parts[k].tape_ == this);
    SKIPNODE_CHECK(parts[k].value().SameShape(value));
    AddScaled(parts[k].value(), coeff(0, static_cast<int>(k)), value);
    indices.push_back(parts[k].index_);
  }
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, ci = coefficients.index_;
  node(oi).backward = [tape, oi, ci, indices = std::move(indices)]() {
    const Matrix& g = tape->node(oi).grad;
    const Matrix& coeff = tape->node(ci).value;
    Matrix& gc = tape->EnsureGrad(ci);
    for (size_t k = 0; k < indices.size(); ++k) {
      const Matrix& xk = tape->node(indices[k]).value;
      AddScaled(g, coeff(0, static_cast<int>(k)),
                tape->EnsureGrad(indices[k]));
      // d/dc_k = <g, X_k>.
      double dot = 0.0;
      for (int64_t i = 0; i < g.size(); ++i) {
        dot += static_cast<double>(g.data()[i]) * xk.data()[i];
      }
      gc(0, static_cast<int>(k)) += static_cast<float>(dot);
    }
  };
  return out;
}

Var Tape::GatherRows(Var x, std::vector<int> rows) {
  SKIPNODE_CHECK(x.tape_ == this);
  Var out = Emplace(skipnode::GatherRows(x.value(), rows));
  Tape* tape = this;
  const int oi = out.index_, xi = x.index_;
  node(oi).backward = [tape, oi, xi, rows = std::move(rows)]() {
    ScatterAddRows(tape->node(oi).grad, rows, tape->EnsureGrad(xi));
  };
  return out;
}

Var Tape::GatAggregate(std::shared_ptr<const CsrMatrix> pattern, Var h,
                       Var score_src, Var score_dst, float leaky_slope) {
  SKIPNODE_CHECK(pattern != nullptr);
  SKIPNODE_CHECK(h.tape_ == this);
  SKIPNODE_CHECK(score_src.tape_ == this && score_dst.tape_ == this);
  const int n = h.rows();
  SKIPNODE_CHECK(pattern->rows() == n && pattern->cols() == n);
  SKIPNODE_CHECK(score_src.rows() == n && score_src.cols() == 1);
  SKIPNODE_CHECK(score_dst.rows() == n && score_dst.cols() == 1);

  const std::vector<int>& col_idx = pattern->col_idx();
  const Matrix& hv = h.value();
  const Matrix& src = score_src.value();
  const Matrix& dst = score_dst.value();

  // Per-edge raw scores (pre-LeakyReLU sign decides the backward slope) and
  // row-softmax attention weights, cached for the backward pass. Offsets
  // resolve through WithOffsets so wide-offset patterns take the same path.
  std::vector<float> raw(col_idx.size());
  std::vector<float> alpha(col_idx.size());
  Matrix value(n, hv.cols());
  const bool vec = simd::Enabled();
  WithOffsets(pattern->row_offsets(), [&](const auto* row_ptr) {
    for (int i = 0; i < n; ++i) {
      const int64_t begin = row_ptr[i], end = row_ptr[i + 1];
      if (begin == end) continue;
      float max_e = -std::numeric_limits<float>::infinity();
      for (int64_t e = begin; e < end; ++e) {
        const size_t se = static_cast<size_t>(e);
        const float pre = src(i, 0) + dst(col_idx[se], 0);
        raw[se] = pre;
        const float activated = pre > 0.0f ? pre : leaky_slope * pre;
        alpha[se] = activated;
        max_e = std::max(max_e, activated);
      }
      double total = 0.0;
      for (int64_t e = begin; e < end; ++e) {
        const size_t se = static_cast<size_t>(e);
        alpha[se] = std::exp(alpha[se] - max_e);
        total += alpha[se];
      }
      const float inv = static_cast<float>(1.0 / total);
      float* out_row = value.row(i);
      for (int64_t e = begin; e < end; ++e) {
        const size_t se = static_cast<size_t>(e);
        alpha[se] *= inv;
        const float* neighbor = hv.row(col_idx[se]);
        if (vec) {
          simd::Axpy(alpha[se], neighbor, out_row, hv.cols());
        } else {
          simd::AxpyRef(alpha[se], neighbor, out_row, hv.cols());
        }
      }
    }
  });
  Var out = Emplace(std::move(value));

  Tape* tape = this;
  const int oi = out.index_, hi = h.index_;
  const int si = score_src.index_, di = score_dst.index_;
  node(oi).backward = [tape, oi, hi, si, di, leaky_slope,
                       pattern = std::move(pattern), raw = std::move(raw),
                       alpha = std::move(alpha)]() {
    const Matrix& g = tape->node(oi).grad;
    const Matrix& hv = tape->node(hi).value;
    Matrix& gh = tape->EnsureGrad(hi);
    Matrix& gs = tape->EnsureGrad(si);
    Matrix& gd = tape->EnsureGrad(di);
    const std::vector<int>& col_idx = pattern->col_idx();
    const int n = hv.rows(), d = hv.cols();
    std::vector<float> dalpha(col_idx.size());
    WithOffsets(pattern->row_offsets(), [&](const auto* row_ptr) {
      for (int i = 0; i < n; ++i) {
        const int64_t begin = row_ptr[i], end = row_ptr[i + 1];
        const float* gi = g.row(i);
        // d out_i / d h_j = alpha_ij; d out_i / d alpha_ij = h_j. The fused
        // dual loop stays a serial scalar kernel: the double-precision dot
        // is an order-sensitive reduction.
        double weighted = 0.0;  // sum_k alpha_ik * dalpha_ik (softmax term).
        for (int64_t e = begin; e < end; ++e) {
          const size_t se = static_cast<size_t>(e);
          const int j = col_idx[se];
          const float* hj = hv.row(j);
          float* ghj = gh.row(j);
          double dot = 0.0;
          for (int c = 0; c < d; ++c) {
            ghj[c] += alpha[se] * gi[c];
            dot += static_cast<double>(gi[c]) * hj[c];
          }
          dalpha[se] = static_cast<float>(dot);
          weighted += alpha[se] * dot;
        }
        for (int64_t e = begin; e < end; ++e) {
          const size_t se = static_cast<size_t>(e);
          // Softmax backward, then the LeakyReLU slope.
          float de = alpha[se] * (dalpha[se] - static_cast<float>(weighted));
          if (raw[se] <= 0.0f) de *= leaky_slope;
          gs(i, 0) += de;
          gd(col_idx[se], 0) += de;
        }
      }
    });
  };
  return out;
}

Var Tape::RowDots(Var a, Var b) {
  SKIPNODE_CHECK(a.tape_ == this && b.tape_ == this);
  Var out = Emplace(skipnode::RowDots(a.value(), b.value()));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_, bi = b.index_;
  node(oi).backward = [tape, oi, ai, bi]() {
    const Matrix& g = tape->node(oi).grad;  // N x 1
    const Matrix& av = tape->node(ai).value;
    const Matrix& bv = tape->node(bi).value;
    Matrix& ga = tape->EnsureGrad(ai);
    Matrix& gb = tape->EnsureGrad(bi);
    const bool vec = simd::Enabled();
    for (int r = 0; r < av.rows(); ++r) {
      const float gr = g(r, 0);
      const float* ar = av.row(r);
      const float* br = bv.row(r);
      if (vec) {
        simd::Axpy(gr, br, ga.row(r), av.cols());
        simd::Axpy(gr, ar, gb.row(r), av.cols());
      } else {
        simd::AxpyRef(gr, br, ga.row(r), av.cols());
        simd::AxpyRef(gr, ar, gb.row(r), av.cols());
      }
    }
  };
  return out;
}

Var Tape::RowSelect(const std::vector<uint8_t>& skip_mask, Var skipped,
                    Var convolved) {
  SKIPNODE_CHECK(skipped.tape_ == this && convolved.tape_ == this);
  SKIPNODE_CHECK(skipped.value().SameShape(convolved.value()));
  SKIPNODE_CHECK(static_cast<int>(skip_mask.size()) == skipped.rows());
  Matrix value = convolved.value();
  const Matrix& sv = skipped.value();
  for (int r = 0; r < value.rows(); ++r) {
    if (skip_mask[r]) {
      std::copy(sv.row(r), sv.row(r) + sv.cols(), value.row(r));
    }
  }
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, si = skipped.index_, ci = convolved.index_;
  node(oi).backward = [tape, oi, si, ci, mask = skip_mask]() {
    const Matrix& g = tape->node(oi).grad;
    Matrix& gs = tape->EnsureGrad(si);
    Matrix& gc = tape->EnsureGrad(ci);
    const bool vec = simd::Enabled();
    for (int r = 0; r < g.rows(); ++r) {
      const float* gr = g.row(r);
      float* dst = mask[r] ? gs.row(r) : gc.row(r);
      if (vec) {
        simd::Accumulate(gr, dst, g.cols());
      } else {
        simd::AccumulateRef(gr, dst, g.cols());
      }
    }
  };
  return out;
}

Var Tape::PairNorm(Var x, float scale, float epsilon) {
  SKIPNODE_CHECK(x.tape_ == this);
  const Matrix& xv = x.value();
  Matrix centered = SubtractRowVector(xv, ColumnMeans(xv));
  Matrix norms = RowNorms(centered);  // N x 1
  Matrix value = centered;
  const bool vec = simd::Enabled();
  for (int r = 0; r < value.rows(); ++r) {
    const float inv = scale / std::max(norms(r, 0), epsilon);
    if (vec) {
      simd::ScaleInPlace(value.row(r), inv, value.cols());
    } else {
      simd::ScaleInPlaceRef(value.row(r), inv, value.cols());
    }
  }
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, xi = x.index_;
  node(oi).backward = [tape, oi, xi, centered = std::move(centered),
                       norms = std::move(norms), scale, epsilon]() {
    const Matrix& g = tape->node(oi).grad;
    const int n = g.rows(), d = g.cols();
    // d/dc of out = s*c/r:  dc = s/r * (g - c * (c.g)/r^2).
    Matrix dc(n, d);
    for (int r = 0; r < n; ++r) {
      const float rn = std::max(norms(r, 0), epsilon);
      const float* gr = g.row(r);
      const float* cr = centered.row(r);
      float* dcr = dc.row(r);
      double cg = 0.0;
      for (int c = 0; c < d; ++c) cg += static_cast<double>(cr[c]) * gr[c];
      const float cg_over_r2 = static_cast<float>(cg) / (rn * rn);
      const float s_over_r = scale / rn;
      for (int c = 0; c < d; ++c) {
        dcr[c] = s_over_r * (gr[c] - cr[c] * cg_over_r2);
      }
    }
    // Centering backward: dx = dc - column_mean(dc).
    Matrix dx = SubtractRowVector(dc, ColumnMeans(dc));
    AddScaled(dx, 1.0f, tape->EnsureGrad(xi));
  };
  return out;
}

Var Tape::SoftmaxCrossEntropy(Var logits, const std::vector<int>& labels,
                              const std::vector<int>& nodes) {
  SKIPNODE_CHECK(logits.tape_ == this);
  SKIPNODE_CHECK(!nodes.empty());
  SKIPNODE_CHECK(static_cast<int>(labels.size()) == logits.rows());
  const Matrix& z = logits.value();
  const int num_classes = z.cols();
  // Cache softmax rows for the selected nodes only.
  Matrix probs(static_cast<int>(nodes.size()), num_classes);
  double loss = 0.0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int node_id = nodes[i];
    SKIPNODE_CHECK(node_id >= 0 && node_id < z.rows());
    const int label = labels[node_id];
    SKIPNODE_CHECK(label >= 0 && label < num_classes);
    const float* zr = z.row(node_id);
    float max_v = zr[0];
    for (int c = 1; c < num_classes; ++c) max_v = std::max(max_v, zr[c]);
    double total = 0.0;
    float* pr = probs.row(static_cast<int>(i));
    for (int c = 0; c < num_classes; ++c) {
      pr[c] = std::exp(zr[c] - max_v);
      total += pr[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < num_classes; ++c) pr[c] *= inv;
    loss -= std::log(std::max(static_cast<double>(pr[label]), 1e-30));
  }
  Matrix value(1, 1);
  value(0, 0) = static_cast<float>(loss / static_cast<double>(nodes.size()));
  Var out = Emplace(std::move(value));

  Tape* tape = this;
  const int oi = out.index_, li = logits.index_;
  node(oi).backward = [tape, oi, li, probs = std::move(probs),
                       nodes = nodes, labels = labels]() mutable {
    const float g = tape->node(oi).grad(0, 0);
    const float inv_batch = 1.0f / static_cast<float>(nodes.size());
    // coef * (pr[c] - indicator) with coef = g * inv_batch, restructured as
    // an Axpy over probs with the label element pre-decremented — the same
    // three roundings per element as the historical inline loop, so bitwise
    // identical. Mutating probs is safe: Backward() runs at most once.
    const float coef = g * inv_batch;
    Matrix& gl = tape->EnsureGrad(li);
    const bool vec = simd::Enabled();
    for (size_t i = 0; i < nodes.size(); ++i) {
      const int node_id = nodes[i];
      float* pr = probs.row(static_cast<int>(i));
      const int label = labels[node_id];
      pr[label] -= 1.0f;
      if (vec) {
        simd::Axpy(coef, pr, gl.row(node_id), gl.cols());
      } else {
        simd::AxpyRef(coef, pr, gl.row(node_id), gl.cols());
      }
    }
  };
  return out;
}

Var Tape::BceWithLogits(Var logits, const std::vector<float>& targets) {
  SKIPNODE_CHECK(logits.tape_ == this);
  SKIPNODE_CHECK(logits.cols() == 1);
  SKIPNODE_CHECK(static_cast<int>(targets.size()) == logits.rows());
  const Matrix& z = logits.value();
  double loss = 0.0;
  for (int r = 0; r < z.rows(); ++r) {
    const double zr = z(r, 0), t = targets[r];
    // Stable: max(z,0) - t*z + log(1 + exp(-|z|)).
    loss += std::max(zr, 0.0) - t * zr + std::log1p(std::exp(-std::fabs(zr)));
  }
  Matrix value(1, 1);
  value(0, 0) = static_cast<float>(loss / z.rows());
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, li = logits.index_;
  node(oi).backward = [tape, oi, li, targets = targets]() {
    const float g = tape->node(oi).grad(0, 0);
    const Matrix& z = tape->node(li).value;
    Matrix& gl = tape->EnsureGrad(li);
    const float inv_n = 1.0f / static_cast<float>(z.rows());
    for (int r = 0; r < z.rows(); ++r) {
      const float sigmoid = 1.0f / (1.0f + std::exp(-z(r, 0)));
      gl(r, 0) += g * inv_n * (sigmoid - targets[r]);
    }
  };
  return out;
}

Var Tape::MseLoss(Var a, Var b) {
  SKIPNODE_CHECK(a.tape_ == this && b.tape_ == this);
  SKIPNODE_CHECK(a.value().SameShape(b.value()));
  const Matrix diff = skipnode::Sub(a.value(), b.value());
  Matrix value(1, 1);
  value(0, 0) = diff.SquaredNorm() / static_cast<float>(diff.size());
  Var out = Emplace(std::move(value));
  Tape* tape = this;
  const int oi = out.index_, ai = a.index_, bi = b.index_;
  node(oi).backward = [tape, oi, ai, bi, diff = std::move(diff)]() {
    const float g = tape->node(oi).grad(0, 0);
    const float factor = 2.0f * g / static_cast<float>(diff.size());
    AddScaled(diff, factor, tape->EnsureGrad(ai));
    AddScaled(diff, -factor, tape->EnsureGrad(bi));
  };
  return out;
}

}  // namespace skipnode
