// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Minimal reverse-mode automatic differentiation. A Tape records a forward
// computation as a sequence of nodes; Backward() replays it in reverse,
// accumulating exact gradients into Parameters. One Tape is built per
// training step and thrown away (define-by-run, like the frameworks the
// paper's experiments used).
//
// Usage:
//   Parameter w("w", Matrix::GlorotUniform(16, 4, rng));
//   Tape tape;
//   Var x = tape.Constant(features);
//   Var h = tape.Relu(tape.MatMul(x, tape.Leaf(w)));
//   Var loss = tape.SoftmaxCrossEntropy(h, labels, train_nodes);
//   tape.Backward(loss);          // w.grad now holds dLoss/dw
//
// All ops check shapes; sparse multiplication takes the adjacency by
// shared_ptr so per-epoch sampled adjacencies (DropEdge) stay alive for the
// backward pass.

#ifndef SKIPNODE_AUTOGRAD_TAPE_H_
#define SKIPNODE_AUTOGRAD_TAPE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "sparse/csr_matrix.h"
#include "tensor/matrix.h"

namespace skipnode {

// A named trainable tensor with a persistent gradient accumulator. Owned by
// the model; Tapes only reference it.
struct Parameter {
  Parameter(std::string name_in, Matrix value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.SetZero(); }

  std::string name;
  Matrix value;
  Matrix grad;
};

class Tape;

// Handle to a node on a Tape. Cheap to copy; invalid once the Tape dies.
class Var {
 public:
  Var() : tape_(nullptr), index_(-1) {}

  const Matrix& value() const;
  // Gradient of the last Backward() w.r.t. this node (zeros if unused).
  const Matrix& grad() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }
  bool valid() const { return tape_ != nullptr; }

 private:
  friend class Tape;
  Var(Tape* tape, int index) : tape_(tape), index_(index) {}

  Tape* tape_;
  int index_;
};

// Records a forward pass and differentiates it. Not reusable after
// Backward(); build a fresh Tape per step.
//
// Node value and gradient buffers are drawn from the global MatrixPool
// (tensor/pool.h) where the op computes into a fresh buffer, and every
// buffer is returned to the pool when the tape dies — the per-step
// allocation churn of the one-Tape-per-step design becomes pool hits after
// the first step. Pooling is invisible to results: recycled buffers are
// re-zeroed, so they are indistinguishable from fresh ones.
class Tape {
 public:
  Tape() = default;
  ~Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Graph inputs --------------------------------------------------------

  // Leaf node bound to a trainable parameter; Backward() accumulates into
  // `parameter.grad`. The parameter must outlive the tape.
  Var Leaf(Parameter& parameter);
  // Leaf with no gradient (inputs, labels-as-features, etc.). The copying
  // overload stages the copy in a pool-acquired buffer so repeated steps
  // recycle it instead of re-allocating feature-sized matrices each epoch.
  Var Constant(const Matrix& value);
  Var Constant(Matrix&& value);

  // --- Core ops ------------------------------------------------------------

  Var MatMul(Var a, Var b);
  // Sparse (adjacency) times dense. Gradient flows to `x` only.
  Var SpMM(std::shared_ptr<const CsrMatrix> a, Var x);
  // Fused SpMM + RowSelect (DESIGN §10): row r of the output is
  //   skip_mask[r] ? pre.row(r) : (a * x).row(r)          (Eq. 4)
  // and skipped rows of a*x are never computed — the work SkipNode's
  // sampling is supposed to save. Backward: dX += a^T * (g with skipped
  // rows zeroed), and skipped rows of g pass straight through to `pre`.
  // Bitwise identical, forward and backward, to
  //   RowSelect(skip_mask, pre, SpMM(a, x))
  // at any thread count and any mask (each computed row runs in the same
  // serial order as the full kernel).
  Var SpMMRowSelect(std::shared_ptr<const CsrMatrix> a, Var x, Var pre,
                    std::vector<uint8_t> skip_mask);
  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  // x + bias broadcast over rows; bias is 1 x cols.
  Var AddRowBroadcast(Var x, Var bias);
  // alpha * a + beta * b.
  Var Axpby(Var a, Var b, float alpha, float beta);
  Var Scale(Var a, float s);
  Var Relu(Var a);
  // Inverted dropout; identity when `training` is false.
  Var Dropout(Var a, float rate, bool training, Rng& rng);
  // Horizontal concatenation (JKNet).
  Var ConcatCols(const std::vector<Var>& parts);
  // sum_k coefficients[0][k] * parts[k], coefficients a 1 x K (learnable)
  // node (GPRGNN's propagation weights).
  Var LinearCombination(const std::vector<Var>& parts, Var coefficients);
  // Rows of `x` selected by `rows` (link-prediction endpoint lookup).
  Var GatherRows(Var x, std::vector<int> rows);
  // Graph-attention aggregation (Velickovic et al. 2018). `pattern` fixes
  // the sparsity (it should contain self-loops; its values are ignored),
  // `h` is the already-transformed node matrix W x, and `score_src` /
  // `score_dst` are N x 1 per-node attention scores. Computes
  //   e_ij   = LeakyReLU(score_src[i] + score_dst[j], leaky_slope)
  //   alpha_i = softmax over i's neighbours of e_i*
  //   out_i  = sum_j alpha_ij h_j.
  // Gradients flow to h and both score vectors.
  Var GatAggregate(std::shared_ptr<const CsrMatrix> pattern, Var h,
                   Var score_src, Var score_dst, float leaky_slope = 0.2f);
  // Per-row dot products of a and b -> N x 1 (dot-product decoder).
  Var RowDots(Var a, Var b);

  // --- The SkipNode combine -------------------------------------------------
  // out.row(i) = skip_mask[i] ? skipped.row(i) : convolved.row(i)   (Eq. 4).
  // Gradients route to `skipped` on masked rows and to `convolved` elsewhere,
  // which is exactly how SkipNode lets gradients bypass deep stacks.
  Var RowSelect(const std::vector<uint8_t>& skip_mask, Var skipped,
                Var convolved);

  // --- Normalisation --------------------------------------------------------
  // PairNorm (Zhao & Akoglu 2020), scale-individually variant:
  //   c = X - mean_row(X);  out_i = s * c_i / ||c_i||_2.
  Var PairNorm(Var x, float scale, float epsilon = 1e-6f);

  // --- Losses (return 1x1 scalars) ------------------------------------------

  // Mean cross-entropy over `nodes` between softmax(logits.row(node)) and
  // labels[node]. Also exposes the raw dL/dlogits via grad() after Backward.
  Var SoftmaxCrossEntropy(Var logits, const std::vector<int>& labels,
                          const std::vector<int>& nodes);
  // Mean binary cross-entropy with logits; `logits` is N x 1, targets in
  // {0, 1}.
  Var BceWithLogits(Var logits, const std::vector<float>& targets);
  // Mean squared error between two equal-shape nodes (GRAND consistency).
  Var MseLoss(Var a, Var b);

  // --- Differentiation ------------------------------------------------------

  // Seeds d(loss)/d(loss) = 1 and accumulates gradients for every node and
  // every Parameter leaf reached. `loss` must be 1x1. Call at most once.
  void Backward(Var loss);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Opt-in to the reassociated fast-math dot kernel for MatMul's
  // transpose-B (k-reduction) paths, forward and backward (DESIGN §14).
  // Off (the default) keeps the exact double-accumulation dot. Set before
  // recording ops; flipping it changes which floats MatMul produces.
  void set_fast_math(bool fast_math) { fast_math_ = fast_math; }
  bool fast_math() const { return fast_math_; }

  // Mutable access to a node's forward value, for the fault-injection layer
  // (base/fault.h): corrupting an activation *before* the ops consuming it
  // are recorded propagates the fault exactly as a kernel bug would. Not for
  // normal modelling code — ops must build values through the tape.
  Matrix& MutableValue(Var v);

 private:
  friend class Var;

  struct Node {
    Matrix value;
    Matrix grad;        // Allocated lazily by EnsureGrad().
    bool grad_ready = false;
    // Propagates this node's grad into its parents' grads (and Parameter
    // grads for leaves). Null for constants.
    std::function<void()> backward;
  };

  Node& node(int index) { return *nodes_[index]; }
  const Node& node(int index) const { return *nodes_[index]; }
  Var Emplace(Matrix value);
  // Ensures `grad` is allocated (zeroed) and returns it.
  Matrix& EnsureGrad(int index);
  // Zeroed rows x cols output buffer, drawn from the workspace pool.
  Matrix AcquireOutput(int rows, int cols);

  std::vector<std::unique_ptr<Node>> nodes_;
  bool backward_done_ = false;
  bool fast_math_ = false;
  // Storage keeping constant-shaped zero grads alive for Var::grad() calls
  // on untouched nodes.
  Matrix empty_grad_;
};

}  // namespace skipnode

#endif  // SKIPNODE_AUTOGRAD_TAPE_H_
