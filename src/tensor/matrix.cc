// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

namespace skipnode {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Ones(int rows, int cols) {
  Matrix m(rows, cols);
  m.Fill(1.0f);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Random(int rows, int cols, Rng& rng, float lo, float hi) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.UniformFloat(lo, hi);
  }
  return m;
}

Matrix Matrix::RandomNormal(int rows, int cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal()) * stddev;
  }
  return m;
}

Matrix Matrix::GlorotUniform(int rows, int cols, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return Random(rows, cols, rng, -a, a);
}

float Matrix::Sum() const {
  double total = 0.0;
  for (const float v : data_) total += v;
  return static_cast<float>(total);
}

float Matrix::Mean() const {
  SKIPNODE_CHECK(size() > 0);
  return Sum() / static_cast<float>(size());
}

float Matrix::AbsMax() const {
  float best = 0.0f;
  for (const float v : data_) best = std::max(best, std::fabs(v));
  return best;
}

float Matrix::SquaredNorm() const {
  double total = 0.0;
  for (const float v : data_) total += static_cast<double>(v) * v;
  return static_cast<float>(total);
}

float Matrix::Norm() const { return std::sqrt(SquaredNorm()); }

std::string Matrix::ShapeString() const {
  return "Matrix(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

}  // namespace skipnode
