// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dense row-major float matrix, the value type of the whole library. Node
// feature matrices X in R^{N x d}, weight matrices W, gradients, masks, and
// loss scalars (1x1) are all Matrix instances.

#ifndef SKIPNODE_TENSOR_MATRIX_H_
#define SKIPNODE_TENSOR_MATRIX_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "base/aligned.h"
#include "base/check.h"
#include "base/rng.h"

namespace skipnode {

// Backing storage of every Matrix: 64-byte-aligned so vectorized kernels
// (base/simd.h) load from cache-line boundaries. Alignment is a storage
// property only — values are unchanged.
using FloatBuffer = std::vector<float, AlignedAllocator<float>>;

// Dense row-major matrix of floats. Copyable and movable; copies are deep.
class Matrix {
 public:
  // Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  // Zero-initialised rows x cols matrix.
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    SKIPNODE_CHECK(rows >= 0 && cols >= 0);
  }

  // rows x cols matrix adopting the given aligned row-major storage.
  Matrix(int rows, int cols, FloatBuffer data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    SKIPNODE_CHECK(static_cast<size_t>(rows) * cols == data_.size());
  }

  // rows x cols matrix copying the given row-major contents into aligned
  // storage (loader-facing; the hot paths pass FloatBuffer).
  Matrix(int rows, int cols, const std::vector<float>& data)
      : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
    SKIPNODE_CHECK(static_cast<size_t>(rows) * cols == data_.size());
  }

  // Braced-list literal contents (tests and small fixtures).
  Matrix(int rows, int cols, std::initializer_list<float> data)
      : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
    SKIPNODE_CHECK(static_cast<size_t>(rows) * cols == data_.size());
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float& at(int r, int c) {
    SKIPNODE_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    SKIPNODE_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  // Unchecked access for hot loops.
  float& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Sets every element to `value`.
  void Fill(float value);
  // Sets every element to zero.
  void SetZero() { Fill(0.0f); }

  // Factory helpers -------------------------------------------------------

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Ones(int rows, int cols);
  static Matrix Identity(int n);
  // Entries ~ Uniform(lo, hi).
  static Matrix Random(int rows, int cols, Rng& rng, float lo = -1.0f,
                       float hi = 1.0f);
  // Entries ~ Normal(0, stddev).
  static Matrix RandomNormal(int rows, int cols, Rng& rng,
                             float stddev = 1.0f);
  // Glorot/Xavier uniform initialisation: U(-a, a), a = sqrt(6/(fan_in+out)).
  static Matrix GlorotUniform(int rows, int cols, Rng& rng);

  // Reductions / norms -----------------------------------------------------

  float Sum() const;
  float Mean() const;
  float AbsMax() const;
  // Frobenius norm.
  float Norm() const;
  float SquaredNorm() const;

  // Debug-printable summary such as "Matrix(3x4)".
  std::string ShapeString() const;

  // Moves the backing storage out, leaving a 0x0 matrix. Only the workspace
  // pool (tensor/pool.h) should need this.
  FloatBuffer TakeStorage() && {
    rows_ = 0;
    cols_ = 0;
    return std::move(data_);
  }

 private:
  int rows_;
  int cols_;
  FloatBuffer data_;
};

}  // namespace skipnode

#endif  // SKIPNODE_TENSOR_MATRIX_H_
