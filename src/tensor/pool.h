// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shape-bucketed workspace pool for node-sized Matrix buffers. The
// one-Tape-per-step design allocates and frees the same N x d value and
// gradient matrices every training step; the pool recycles that storage
// across steps instead (DESIGN §10).
//
// Contract:
//   * Acquire(rows, cols) returns a matrix that is bit-for-bit identical to
//     a freshly constructed Matrix(rows, cols): recycled storage is zeroed
//     before it is handed out, so pooling can never perturb a result.
//   * Release(m) returns m's storage to the bucket for its exact shape
//     (bounded per bucket; overflow storage is simply freed).
//   * The pool is only touched from the thread that builds and destroys
//     Tapes; a mutex makes it safe anyway (snapshots, tests).
//
// Telemetry: every Acquire bumps pool.hit (recycled storage) or pool.miss
// (fresh allocation); items carries the buffer element count. The signed
// counter pool.bytes_retained tracks bytes parked in the pool (positive on
// retain, negative on free), so a snapshot's running total is the resident
// pool footprint. Disable the pool entirely with
// SetMatrixPoolEnabled(false) or SKIPNODE_POOL=0 — Acquire then always
// allocates and Release frees, reproducing the pre-pool behaviour exactly.

#ifndef SKIPNODE_TENSOR_POOL_H_
#define SKIPNODE_TENSOR_POOL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace skipnode {

// Process-wide enable switch. Defaults to on unless the SKIPNODE_POOL
// environment variable is set to "0".
bool MatrixPoolEnabled();
void SetMatrixPoolEnabled(bool enabled);

class MatrixPool {
 public:
  // At most this many recycled buffers are kept per (rows, cols) bucket;
  // releases beyond the cap free their storage. Deep tapes release a few
  // hundred same-shaped buffers per step, so the cap is sized to hold one
  // full step of a deep stack.
  static constexpr int kMaxBuffersPerBucket = 512;

  // Byte ceiling per bucket: at streaming scale a single 1M x 64 buffer is
  // 256 MiB, so the count cap alone no longer bounds the pool's footprint.
  // A release that would push its bucket past the cap frees instead.
  static constexpr int64_t kMaxBytesPerBucket = int64_t{256} << 20;

  // Zero-filled rows x cols matrix, recycled when the bucket has storage.
  Matrix Acquire(int rows, int cols);

  // Returns the matrix's storage to its shape bucket (or frees it when the
  // bucket is at either cap or the pool is disabled). The moved-from matrix
  // is 0x0.
  void Release(Matrix m);

  // Frees pooled buffers (largest shapes first) until at most target_bytes
  // remain; returns the bytes freed. Trim(0) empties the pool — what
  // bench/scale calls between cells so one cell's workspaces don't count
  // against the next cell's peak-RSS budget.
  int64_t Trim(int64_t target_bytes = 0);

  // Frees every pooled buffer (tests, memory pressure). Same as Trim(0).
  void Clear();

  // Number of buffers currently pooled for the given shape.
  int BucketSize(int rows, int cols) const;

  // Total bytes currently parked in the pool.
  int64_t bytes_retained() const;

 private:
  struct Bucket {
    std::vector<FloatBuffer> buffers;
    int64_t bytes = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, Bucket> buckets_;
  int64_t bytes_retained_ = 0;
};

// The pool every Tape draws from.
MatrixPool& GlobalMatrixPool();

}  // namespace skipnode

#endif  // SKIPNODE_TENSOR_POOL_H_
