// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shape-bucketed workspace pool for node-sized Matrix buffers. The
// one-Tape-per-step design allocates and frees the same N x d value and
// gradient matrices every training step; the pool recycles that storage
// across steps instead (DESIGN §10).
//
// Contract:
//   * Acquire(rows, cols) returns a matrix that is bit-for-bit identical to
//     a freshly constructed Matrix(rows, cols): recycled storage is zeroed
//     before it is handed out, so pooling can never perturb a result.
//   * Release(m) returns m's storage to the bucket for its exact shape
//     (bounded per bucket; overflow storage is simply freed).
//   * The pool is only touched from the thread that builds and destroys
//     Tapes; a mutex makes it safe anyway (snapshots, tests).
//
// Telemetry: every Acquire bumps pool.hit (recycled storage) or pool.miss
// (fresh allocation); items carries the buffer element count. Disable the
// pool entirely with SetMatrixPoolEnabled(false) or SKIPNODE_POOL=0 —
// Acquire then always allocates and Release frees, reproducing the
// pre-pool behaviour exactly.

#ifndef SKIPNODE_TENSOR_POOL_H_
#define SKIPNODE_TENSOR_POOL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace skipnode {

// Process-wide enable switch. Defaults to on unless the SKIPNODE_POOL
// environment variable is set to "0".
bool MatrixPoolEnabled();
void SetMatrixPoolEnabled(bool enabled);

class MatrixPool {
 public:
  // At most this many recycled buffers are kept per (rows, cols) bucket;
  // releases beyond the cap free their storage. Deep tapes release a few
  // hundred same-shaped buffers per step, so the cap is sized to hold one
  // full step of a deep stack.
  static constexpr int kMaxBuffersPerBucket = 512;

  // Zero-filled rows x cols matrix, recycled when the bucket has storage.
  Matrix Acquire(int rows, int cols);

  // Returns the matrix's storage to its shape bucket (or frees it when the
  // bucket is full or the pool is disabled). The moved-from matrix is 0x0.
  void Release(Matrix m);

  // Frees every pooled buffer (tests, memory pressure).
  void Clear();

  // Number of buffers currently pooled for the given shape.
  int BucketSize(int rows, int cols) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, std::vector<std::vector<float>>> buckets_;
};

// The pool every Tape draws from.
MatrixPool& GlobalMatrixPool();

}  // namespace skipnode

#endif  // SKIPNODE_TENSOR_POOL_H_
