// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dense kernels over Matrix. These are the primitives the autograd ops and
// the analysis toolkit are built on. All functions check shapes.

#ifndef SKIPNODE_TENSOR_OPS_H_
#define SKIPNODE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace skipnode {

// --- GEMM family -----------------------------------------------------------

// Every dense product funnels through Gemm so the thread pool is wired in
// exactly one place. The historical MatMul* names below are inline wrappers.
struct GemmOptions {
  bool transpose_a = false;
  bool transpose_b = false;
  // false: out = op(A) * op(B);  true: out += op(A) * op(B).
  bool accumulate = false;
  // Opt-in (DESIGN §14): reduction-shaped variants (A * B^T) may use the
  // reassociated kLanes-accumulator dot instead of the exact serial
  // double-precision sum. Deterministic at any thread count (the lane order
  // is a function of the length alone) but not bitwise equal to the exact
  // path; default off, plumbed from StrategyConfig::fast_math.
  bool fast_math = false;
};

// out (+)= op(A) * op(B) with op fixed by `options`. Shapes are checked
// against the transposed views. Parallel over output rows: each thread owns
// a disjoint contiguous block of rows of `out`, and the accumulation order
// within any row is independent of the thread count, so results are bitwise
// identical for every SKIPNODE_NUM_THREADS (see base/parallel.h).
void Gemm(const Matrix& a, const Matrix& b, Matrix& out,
          const GemmOptions& options = {});

// Returns A * B. A is m x k, B is k x n.
inline Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  Gemm(a, b, out);
  return out;
}

// out += A * B (out must already be m x n).
inline void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  Gemm(a, b, out, {.accumulate = true});
}

// Returns A^T * B. A is m x k, B is m x n; result is k x n.
inline Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  Gemm(a, b, out, {.transpose_a = true});
  return out;
}

// out += A^T * B.
inline void MatMulTransposeAAccumulate(const Matrix& a, const Matrix& b,
                                       Matrix& out) {
  Gemm(a, b, out, {.transpose_a = true, .accumulate = true});
}

// Returns A * B^T. A is m x n, B is k x n; result is m x k.
inline Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  Gemm(a, b, out, {.transpose_b = true});
  return out;
}

// out += A * B^T.
inline void MatMulTransposeBAccumulate(const Matrix& a, const Matrix& b,
                                       Matrix& out) {
  Gemm(a, b, out, {.transpose_b = true, .accumulate = true});
}

// --- Element-wise ----------------------------------------------------------

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, float s);
// out += s * a.
void AddScaled(const Matrix& a, float s, Matrix& out);
// `Into` variants write into a caller-owned buffer (same shape required) so
// tape ops can stage results in pool-acquired matrices instead of fresh
// heap copies; every element is overwritten with the same arithmetic as the
// returning forms, so the results are bitwise identical.
void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out);
void ScaleInto(const Matrix& a, float s, Matrix& out);
// out = alpha * a + beta * b, fused in one pass. Bitwise identical to
// ScaleInto(a, alpha, out); AddScaled(b, beta, out) — same three roundings
// per element.
void AxpbyInto(const Matrix& a, const Matrix& b, float alpha, float beta,
               Matrix& out);

// ReLU(x) element-wise.
Matrix Relu(const Matrix& x);
void ReluInto(const Matrix& x, Matrix& out);
// Gradient pass-through: returns grad .* (x > 0).
Matrix ReluBackward(const Matrix& x, const Matrix& grad);

// --- Shape manipulation ----------------------------------------------------

Matrix Transpose(const Matrix& a);

// Horizontally concatenates matrices with equal row counts.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

// Returns x restricted to the given rows (len(rows) x cols).
Matrix GatherRows(const Matrix& x, const std::vector<int>& rows);

// out.row(rows[i]) += src.row(i) for every i. Used by gather's backward.
void ScatterAddRows(const Matrix& src, const std::vector<int>& rows,
                    Matrix& out);

// out.row(r) = src.row(r) for every row with mask[r] != 0; other rows are
// untouched. The skipped-row copy of the fused SkipNode forward.
void CopyRowsWhere(const Matrix& src, const std::vector<uint8_t>& mask,
                   Matrix& out);

// out.row(r) += src.row(r) for every row with mask[r] != 0. The skipped-row
// gradient passthrough of the fused SkipNode backward. Row-parallel: each
// output row is owned by one thread and written at most once.
void AddRowsWhere(const Matrix& src, const std::vector<uint8_t>& mask,
                  Matrix& out);

// --- Row-wise / reduction helpers -------------------------------------------

// Mean of each column (1 x cols).
Matrix ColumnMeans(const Matrix& x);

// x minus a 1 x cols row vector broadcast over rows.
Matrix SubtractRowVector(const Matrix& x, const Matrix& v);

// Numerically-stable row-wise softmax.
Matrix RowSoftmax(const Matrix& x);

// Numerically-stable row-wise log-softmax.
Matrix RowLogSoftmax(const Matrix& x);

// L2 norm of each row (rows x 1).
Matrix RowNorms(const Matrix& x);

// Dot products of corresponding rows of a and b (rows x 1).
Matrix RowDots(const Matrix& a, const Matrix& b);

// Cosine similarity of two equal-length float spans; 0 if either is zero.
float CosineSimilarity(const float* a, const float* b, int n);

// --- Numerical health scans -------------------------------------------------
// Cheap guardrail kernels for the trainer's health checks (DESIGN §8). All
// of them are pure reads and follow the row-ownership contract: per-row
// flags are computed under ParallelFor, then reduced serially, so the
// results are bitwise identical at any thread count.

// flags[i] = 1 iff row i contains a NaN or an Inf (rows x 1 of 0/1).
std::vector<uint8_t> RowNonFiniteFlags(const Matrix& x);

// True iff any element of x is NaN or Inf.
bool HasNonFinite(const Matrix& x);

// Number of NaN / Inf elements in x.
int64_t CountNonFinite(const Matrix& x);

// Largest row L2 norm (0 for empty matrices) — an overflow tripwire that
// trips before values actually reach Inf.
float MaxRowNorm(const Matrix& x);

// --- Spectral helper ---------------------------------------------------------

// Largest singular value of w via power iteration on w^T w.
float MaxSingularValue(const Matrix& w, int iterations = 50, Rng* rng = nullptr);

// Rescales w in place so its max singular value equals `target`.
void SetMaxSingularValue(Matrix& w, float target);

// --- Comparison (tests) ------------------------------------------------------

// Max absolute element-wise difference; requires equal shapes.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace skipnode

#endif  // SKIPNODE_TENSOR_OPS_H_
