// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "base/check.h"
#include "base/telemetry.h"

namespace skipnode {

namespace {

std::atomic<bool> g_pool_enabled{[]() {
  const char* env = std::getenv("SKIPNODE_POOL");
  return env == nullptr || std::strcmp(env, "0") != 0;
}()};

}  // namespace

bool MatrixPoolEnabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

void SetMatrixPoolEnabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

Matrix MatrixPool::Acquire(int rows, int cols) {
  SKIPNODE_CHECK(rows >= 0 && cols >= 0);
  const int64_t size = static_cast<int64_t>(rows) * cols;
  if (MatrixPoolEnabled() && size > 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = buckets_.find({rows, cols});
    if (it != buckets_.end() && !it->second.empty()) {
      std::vector<float> storage = std::move(it->second.back());
      it->second.pop_back();
      lock.unlock();
      CountMetric("pool.hit", size);
      // Zeroing keeps Acquire bit-for-bit equivalent to Matrix(rows, cols).
      std::fill(storage.begin(), storage.end(), 0.0f);
      return Matrix(rows, cols, std::move(storage));
    }
  }
  CountMetric("pool.miss", size);
  return Matrix(rows, cols);
}

void MatrixPool::Release(Matrix m) {
  if (!MatrixPoolEnabled() || m.size() == 0) return;
  const std::pair<int, int> key{m.rows(), m.cols()};
  std::vector<float> storage = std::move(m).TakeStorage();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::vector<float>>& bucket = buckets_[key];
  if (static_cast<int>(bucket.size()) < kMaxBuffersPerBucket) {
    bucket.push_back(std::move(storage));
  }
}

void MatrixPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
}

int MatrixPool::BucketSize(int rows, int cols) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = buckets_.find({rows, cols});
  return it == buckets_.end() ? 0 : static_cast<int>(it->second.size());
}

MatrixPool& GlobalMatrixPool() {
  static MatrixPool* pool = new MatrixPool();
  return *pool;
}

}  // namespace skipnode
