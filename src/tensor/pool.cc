// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "base/check.h"
#include "base/telemetry.h"

namespace skipnode {

namespace {

std::atomic<bool> g_pool_enabled{[]() {
  const char* env = std::getenv("SKIPNODE_POOL");
  return env == nullptr || std::strcmp(env, "0") != 0;
}()};

}  // namespace

bool MatrixPoolEnabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

void SetMatrixPoolEnabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

Matrix MatrixPool::Acquire(int rows, int cols) {
  SKIPNODE_CHECK(rows >= 0 && cols >= 0);
  const int64_t size = static_cast<int64_t>(rows) * cols;
  const int64_t bytes = size * static_cast<int64_t>(sizeof(float));
  if (MatrixPoolEnabled() && size > 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = buckets_.find({rows, cols});
    if (it != buckets_.end() && !it->second.buffers.empty()) {
      FloatBuffer storage = std::move(it->second.buffers.back());
      it->second.buffers.pop_back();
      it->second.bytes -= bytes;
      bytes_retained_ -= bytes;
      lock.unlock();
      CountMetric("pool.hit", size);
      CountMetric("pool.bytes_retained", -bytes);
      // Zeroing keeps Acquire bit-for-bit equivalent to Matrix(rows, cols).
      std::fill(storage.begin(), storage.end(), 0.0f);
      return Matrix(rows, cols, std::move(storage));
    }
  }
  CountMetric("pool.miss", size);
  return Matrix(rows, cols);
}

void MatrixPool::Release(Matrix m) {
  if (!MatrixPoolEnabled() || m.size() == 0) return;
  const std::pair<int, int> key{m.rows(), m.cols()};
  const int64_t bytes = m.size() * static_cast<int64_t>(sizeof(float));
  FloatBuffer storage = std::move(m).TakeStorage();
  std::unique_lock<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[key];
  if (static_cast<int>(bucket.buffers.size()) >= kMaxBuffersPerBucket ||
      bucket.bytes + bytes > kMaxBytesPerBucket) {
    return;  // Either cap hit: the storage frees on scope exit.
  }
  bucket.buffers.push_back(std::move(storage));
  bucket.bytes += bytes;
  bytes_retained_ += bytes;
  lock.unlock();
  CountMetric("pool.bytes_retained", bytes);
}

int64_t MatrixPool::Trim(int64_t target_bytes) {
  SKIPNODE_CHECK(target_bytes >= 0);
  std::unique_lock<std::mutex> lock(mutex_);
  int64_t freed = 0;
  // Largest shapes live at the end of the (rows, cols)-ordered map; free
  // those first so a small target keeps the cheap hot buckets.
  for (auto it = buckets_.rbegin();
       it != buckets_.rend() && bytes_retained_ > target_bytes; ++it) {
    Bucket& bucket = it->second;
    while (!bucket.buffers.empty() && bytes_retained_ > target_bytes) {
      const int64_t bytes =
          static_cast<int64_t>(bucket.buffers.back().size()) *
          static_cast<int64_t>(sizeof(float));
      bucket.buffers.pop_back();
      bucket.bytes -= bytes;
      bytes_retained_ -= bytes;
      freed += bytes;
    }
  }
  lock.unlock();
  if (freed > 0) CountMetric("pool.bytes_retained", -freed);
  return freed;
}

void MatrixPool::Clear() { Trim(0); }

int MatrixPool::BucketSize(int rows, int cols) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = buckets_.find({rows, cols});
  return it == buckets_.end() ? 0
                              : static_cast<int>(it->second.buffers.size());
}

int64_t MatrixPool::bytes_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_retained_;
}

MatrixPool& GlobalMatrixPool() {
  static MatrixPool* pool = new MatrixPool();
  return *pool;
}

}  // namespace skipnode
