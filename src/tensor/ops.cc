// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "base/parallel.h"
#include "base/simd.h"
#include "base/telemetry.h"

namespace skipnode {
namespace {

// Minimum amount of arithmetic a chunk should carry before fanning out to
// the pool; below this the wake-up latency dominates the kernel.
constexpr int64_t kMinFlopsPerChunk = 1 << 15;

// Rows each thread must own at minimum for a row-partitioned kernel whose
// per-row cost is `flops_per_row`.
int64_t MinRowsPerThread(int64_t flops_per_row) {
  return std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(
                                                      1, flops_per_row));
}

// Column-block width of the i-p-j Gemm kernel: for wide outputs the k x jb
// panel of B (at most 1 KB per row of the panel) stays cache-resident across
// a thread's whole row block instead of being streamed once per output row.
// Blocking only reorders whole (p, j-block) passes; for any fixed output
// element the p-accumulation order is unchanged, so results stay bitwise
// identical to the unblocked kernel (and across block widths).
constexpr int kGemmColumnBlock = 256;

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix& out,
          const GemmOptions& options) {
  // Shapes of the transposed views: out is m x n, shared dimension k.
  const int m = options.transpose_a ? a.cols() : a.rows();
  const int k = options.transpose_a ? a.rows() : a.cols();
  const int n = options.transpose_b ? b.rows() : b.cols();
  SKIPNODE_CHECK(k == (options.transpose_b ? b.cols() : b.rows()));
  SKIPNODE_CHECK(out.rows() == m && out.cols() == n);
  // Per-variant names so the backward-pass shapes (dW = X^T dY, dX = dY W^T)
  // show up separately from the forward GEMM in a snapshot.
  const char* timer_name =
      !options.transpose_a
          ? (!options.transpose_b ? "tensor.gemm" : "tensor.gemm_tb")
          : (!options.transpose_b ? "tensor.gemm_ta" : "tensor.gemm_tt");
  const ScopedTimer timer(timer_name, /*items=*/m);
  const int64_t min_rows =
      MinRowsPerThread(2 * static_cast<int64_t>(k) * n);
  const bool accumulate = options.accumulate;
  // Hoisted once per Gemm; each worker branches to the vectorized or scalar
  // reference microkernel (base/simd.h) — bitwise identical either way.
  const bool vec = simd::Enabled();

  if (!options.transpose_a && !options.transpose_b) {
    // i-p-j loop order keeps the inner loop contiguous in both B and out so
    // the compiler can vectorise it; this is the library's hottest kernel.
    // Columns are processed in kGemmColumnBlock-wide panels (outermost per
    // thread) so the touched slice of B fits in cache for the whole row
    // block; per-element sums still run in ascending p order regardless of
    // the block width, keeping the bitwise contract.
    ParallelFor(
        0, m,
        [&](int64_t row_begin, int64_t row_end) {
          for (int jb = 0; jb < n; jb += kGemmColumnBlock) {
            const int je = std::min(n, jb + kGemmColumnBlock);
            for (int i = static_cast<int>(row_begin); i < row_end; ++i) {
              const float* __restrict ai = a.row(i);
              float* __restrict oi = out.row(i);
              if (!accumulate) std::fill(oi + jb, oi + je, 0.0f);
              for (int p = 0; p < k; ++p) {
                const float aip = ai[p];
                if (aip == 0.0f) continue;
                const float* __restrict bp = b.row(p);
                if (vec) {
                  simd::Axpy(aip, bp + jb, oi + jb, je - jb);
                } else {
                  simd::AxpyRef(aip, bp + jb, oi + jb, je - jb);
                }
              }
            }
          }
        },
        min_rows);
  } else if (options.transpose_a && !options.transpose_b) {
    // out rows are columns of A. Each thread walks all rows of A but writes
    // only its own block of output rows, in the same i-ascending order the
    // serial kernel used, so the sums are bit-for-bit unchanged.
    ParallelFor(
        0, m,
        [&](int64_t row_begin, int64_t row_end) {
          const int p0 = static_cast<int>(row_begin);
          const int p1 = static_cast<int>(row_end);
          if (!accumulate) {
            for (int p = p0; p < p1; ++p) {
              float* op = out.row(p);
              std::fill(op, op + n, 0.0f);
            }
          }
          for (int i = 0; i < a.rows(); ++i) {
            const float* __restrict ai = a.row(i);
            const float* __restrict bi = b.row(i);
            for (int p = p0; p < p1; ++p) {
              const float aip = ai[p];
              if (aip == 0.0f) continue;
              float* __restrict op = out.row(p);
              if (vec) {
                simd::Axpy(aip, bi, op, n);
              } else {
                simd::AxpyRef(aip, bi, op, n);
              }
            }
          }
        },
        min_rows);
  } else if (!options.transpose_a && options.transpose_b) {
    // Row-by-row dot products. The exact path keeps the serial kernel's
    // double accumulator; fast_math opts into the reassociated
    // lane-accumulator dot (deterministic, but not bitwise equal to exact).
    const bool fast = options.fast_math;
    ParallelFor(
        0, m,
        [&](int64_t row_begin, int64_t row_end) {
          for (int i = static_cast<int>(row_begin); i < row_end; ++i) {
            const float* __restrict ai = a.row(i);
            float* __restrict oi = out.row(i);
            if (!accumulate) std::fill(oi, oi + n, 0.0f);
            if (fast) {
              for (int p = 0; p < n; ++p) {
                const float* __restrict bp = b.row(p);
                oi[p] += vec ? simd::DotFast(ai, bp, k)
                             : simd::DotFastRef(ai, bp, k);
              }
            } else {
              for (int p = 0; p < n; ++p) {
                const float* __restrict bp = b.row(p);
                double dot = 0.0;
                for (int j = 0; j < k; ++j) {
                  dot += static_cast<double>(ai[j]) * bp[j];
                }
                oi[p] += static_cast<float>(dot);
              }
            }
          }
        },
        min_rows);
  } else {
    // A^T * B^T: column-strided reads of A; rare (no current caller), kept
    // for completeness of the Gemm surface.
    ParallelFor(
        0, m,
        [&](int64_t row_begin, int64_t row_end) {
          for (int p = static_cast<int>(row_begin); p < row_end; ++p) {
            float* __restrict op = out.row(p);
            if (!accumulate) std::fill(op, op + n, 0.0f);
            for (int q = 0; q < n; ++q) {
              const float* __restrict bq = b.row(q);
              double dot = 0.0;
              for (int i = 0; i < k; ++i) {
                dot += static_cast<double>(a(i, p)) * bq[i];
              }
              op[q] += static_cast<float>(dot);
            }
          }
        },
        min_rows);
  }
}

namespace {

// Element-parallel map over the flat buffers: every element is computed
// independently, so chunking cannot perturb results.
template <typename Fn>
void ParallelElements(int64_t size, const Fn& fn) {
  ParallelFor(
      0, size, [&](int64_t lo, int64_t hi) { fn(lo, hi); },
      /*min_per_thread=*/kMinFlopsPerChunk);
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  SKIPNODE_CHECK(a.SameShape(b));
  Matrix out = a;
  const bool vec = simd::Enabled();
  const float* __restrict bd = b.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Accumulate(bd + lo, od + lo, hi - lo);
    } else {
      simd::AccumulateRef(bd + lo, od + lo, hi - lo);
    }
  });
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  SKIPNODE_CHECK(a.SameShape(b));
  Matrix out = a;
  const bool vec = simd::Enabled();
  const float* __restrict bd = b.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Subtract(bd + lo, od + lo, hi - lo);
    } else {
      simd::SubtractRef(bd + lo, od + lo, hi - lo);
    }
  });
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), a.cols());
  HadamardInto(a, b, out);
  return out;
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix& out) {
  SKIPNODE_CHECK(a.SameShape(b));
  SKIPNODE_CHECK(a.SameShape(out));
  const bool vec = simd::Enabled();
  const float* __restrict ad = a.data();
  const float* __restrict bd = b.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Mul(ad + lo, bd + lo, od + lo, hi - lo);
    } else {
      simd::MulRef(ad + lo, bd + lo, od + lo, hi - lo);
    }
  });
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out(a.rows(), a.cols());
  ScaleInto(a, s, out);
  return out;
}

void ScaleInto(const Matrix& a, float s, Matrix& out) {
  SKIPNODE_CHECK(a.SameShape(out));
  const bool vec = simd::Enabled();
  const float* __restrict ad = a.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Scale(ad + lo, s, od + lo, hi - lo);
    } else {
      simd::ScaleRef(ad + lo, s, od + lo, hi - lo);
    }
  });
}

void AddScaled(const Matrix& a, float s, Matrix& out) {
  SKIPNODE_CHECK(a.SameShape(out));
  const bool vec = simd::Enabled();
  const float* __restrict ad = a.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Axpy(s, ad + lo, od + lo, hi - lo);
    } else {
      simd::AxpyRef(s, ad + lo, od + lo, hi - lo);
    }
  });
}

void AxpbyInto(const Matrix& a, const Matrix& b, float alpha, float beta,
               Matrix& out) {
  SKIPNODE_CHECK(a.SameShape(b));
  SKIPNODE_CHECK(a.SameShape(out));
  const bool vec = simd::Enabled();
  const float* __restrict ad = a.data();
  const float* __restrict bd = b.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Axpby(alpha, ad + lo, beta, bd + lo, od + lo, hi - lo);
    } else {
      simd::AxpbyRef(alpha, ad + lo, beta, bd + lo, od + lo, hi - lo);
    }
  });
}

Matrix Relu(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  ReluInto(x, out);
  return out;
}

void ReluInto(const Matrix& x, Matrix& out) {
  const ScopedTimer timer("tensor.relu", /*items=*/x.rows());
  SKIPNODE_CHECK(x.SameShape(out));
  const bool vec = simd::Enabled();
  const float* __restrict xd = x.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::Relu(xd + lo, od + lo, hi - lo);
    } else {
      simd::ReluRef(xd + lo, od + lo, hi - lo);
    }
  });
}

Matrix ReluBackward(const Matrix& x, const Matrix& grad) {
  const ScopedTimer timer("tensor.relu_backward", /*items=*/x.rows());
  SKIPNODE_CHECK(x.SameShape(grad));
  Matrix out = grad;
  const bool vec = simd::Enabled();
  const float* __restrict xd = x.data();
  float* __restrict od = out.data();
  ParallelElements(out.size(), [&](int64_t lo, int64_t hi) {
    if (vec) {
      simd::ReluGradInPlace(xd + lo, od + lo, hi - lo);
    } else {
      simd::ReluGradInPlaceRef(xd + lo, od + lo, hi - lo);
    }
  });
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  }
  return out;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  SKIPNODE_CHECK(!parts.empty());
  const int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* part : parts) {
    SKIPNODE_CHECK(part->rows() == rows);
    cols += part->cols();
  }
  Matrix out(rows, cols);
  for (int i = 0; i < rows; ++i) {
    float* oi = out.row(i);
    for (const Matrix* part : parts) {
      const float* pi = part->row(i);
      std::copy(pi, pi + part->cols(), oi);
      oi += part->cols();
    }
  }
  return out;
}

Matrix GatherRows(const Matrix& x, const std::vector<int>& rows) {
  const ScopedTimer timer("tensor.gather_rows",
                          /*items=*/static_cast<int64_t>(rows.size()));
  Matrix out(static_cast<int>(rows.size()), x.cols());
  ParallelFor(
      0, static_cast<int64_t>(rows.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          SKIPNODE_CHECK(rows[i] >= 0 && rows[i] < x.rows());
          std::copy(x.row(rows[i]), x.row(rows[i]) + x.cols(),
                    out.row(static_cast<int>(i)));
        }
      },
      MinRowsPerThread(x.cols()));
  return out;
}

// Serial: `rows` may repeat, so output rows are not owned by one source row
// and a row partition over `src` would race (and reorder the += per target).
void ScatterAddRows(const Matrix& src, const std::vector<int>& rows,
                    Matrix& out) {
  const ScopedTimer timer("tensor.scatter_add_rows",
                          /*items=*/static_cast<int64_t>(rows.size()));
  SKIPNODE_CHECK(src.rows() == static_cast<int>(rows.size()));
  SKIPNODE_CHECK(src.cols() == out.cols());
  const bool vec = simd::Enabled();
  for (size_t i = 0; i < rows.size(); ++i) {
    SKIPNODE_CHECK(rows[i] >= 0 && rows[i] < out.rows());
    const float* si = src.row(static_cast<int>(i));
    float* oi = out.row(rows[i]);
    if (vec) {
      simd::Accumulate(si, oi, out.cols());
    } else {
      simd::AccumulateRef(si, oi, out.cols());
    }
  }
}

void CopyRowsWhere(const Matrix& src, const std::vector<uint8_t>& mask,
                   Matrix& out) {
  const ScopedTimer timer("tensor.copy_rows_where", /*items=*/src.rows());
  SKIPNODE_CHECK(src.SameShape(out));
  SKIPNODE_CHECK(static_cast<int>(mask.size()) == src.rows());
  ParallelFor(
      0, src.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int r = static_cast<int>(lo); r < hi; ++r) {
          if (!mask[r]) continue;
          std::copy(src.row(r), src.row(r) + src.cols(), out.row(r));
        }
      },
      MinRowsPerThread(src.cols()));
}

void AddRowsWhere(const Matrix& src, const std::vector<uint8_t>& mask,
                  Matrix& out) {
  const ScopedTimer timer("tensor.add_rows_where", /*items=*/src.rows());
  SKIPNODE_CHECK(src.SameShape(out));
  SKIPNODE_CHECK(static_cast<int>(mask.size()) == src.rows());
  const bool vec = simd::Enabled();
  ParallelFor(
      0, src.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int r = static_cast<int>(lo); r < hi; ++r) {
          if (!mask[r]) continue;
          const float* __restrict sr = src.row(r);
          float* __restrict or_ = out.row(r);
          if (vec) {
            simd::Accumulate(sr, or_, src.cols());
          } else {
            simd::AccumulateRef(sr, or_, src.cols());
          }
        }
      },
      MinRowsPerThread(src.cols()));
}

// Serial: a cross-row reduction — splitting rows across threads would
// reorder the float sums and break the bitwise determinism contract.
Matrix ColumnMeans(const Matrix& x) {
  SKIPNODE_CHECK(x.rows() > 0);
  Matrix out(1, x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const float* xi = x.row(i);
    for (int j = 0; j < x.cols(); ++j) out(0, j) += xi[j];
  }
  const float inv = 1.0f / static_cast<float>(x.rows());
  for (int j = 0; j < x.cols(); ++j) out(0, j) *= inv;
  return out;
}

Matrix SubtractRowVector(const Matrix& x, const Matrix& v) {
  SKIPNODE_CHECK(v.rows() == 1 && v.cols() == x.cols());
  Matrix out = x;
  const bool vec = simd::Enabled();
  const float* __restrict vd = v.row(0);
  ParallelFor(
      0, out.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          float* oi = out.row(i);
          if (vec) {
            simd::Subtract(vd, oi, out.cols());
          } else {
            simd::SubtractRef(vd, oi, out.cols());
          }
        }
      },
      MinRowsPerThread(out.cols()));
  return out;
}

Matrix RowSoftmax(const Matrix& x) {
  const ScopedTimer timer("tensor.row_softmax", /*items=*/x.rows());
  Matrix out = x;
  const bool vec = simd::Enabled();
  ParallelFor(
      0, out.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          float* oi = out.row(i);
          // The max and exp/total reductions stay serial scalar loops: the
          // running max and double sum are order-sensitive.
          float max_v = oi[0];
          for (int j = 1; j < out.cols(); ++j) max_v = std::max(max_v, oi[j]);
          double total = 0.0;
          for (int j = 0; j < out.cols(); ++j) {
            oi[j] = std::exp(oi[j] - max_v);
            total += oi[j];
          }
          const float inv = static_cast<float>(1.0 / total);
          if (vec) {
            simd::ScaleInPlace(oi, inv, out.cols());
          } else {
            simd::ScaleInPlaceRef(oi, inv, out.cols());
          }
        }
      },
      MinRowsPerThread(4 * out.cols()));
  return out;
}

Matrix RowLogSoftmax(const Matrix& x) {
  const ScopedTimer timer("tensor.row_log_softmax", /*items=*/x.rows());
  Matrix out = x;
  const bool vec = simd::Enabled();
  ParallelFor(
      0, out.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          float* oi = out.row(i);
          float max_v = oi[0];
          for (int j = 1; j < out.cols(); ++j) max_v = std::max(max_v, oi[j]);
          double total = 0.0;
          for (int j = 0; j < out.cols(); ++j) {
            total += std::exp(oi[j] - max_v);
          }
          const float log_z = max_v + static_cast<float>(std::log(total));
          // x - log_z == x + (-log_z) exactly (negation is a sign flip).
          if (vec) {
            simd::AddScalarInPlace(oi, -log_z, out.cols());
          } else {
            simd::AddScalarInPlaceRef(oi, -log_z, out.cols());
          }
        }
      },
      MinRowsPerThread(4 * out.cols()));
  return out;
}

Matrix RowNorms(const Matrix& x) {
  const ScopedTimer timer("tensor.row_norms", /*items=*/x.rows());
  Matrix out(x.rows(), 1);
  ParallelFor(
      0, x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const float* xi = x.row(i);
          double total = 0.0;
          for (int j = 0; j < x.cols(); ++j) {
            total += static_cast<double>(xi[j]) * xi[j];
          }
          out(i, 0) = static_cast<float>(std::sqrt(total));
        }
      },
      MinRowsPerThread(2 * x.cols()));
  return out;
}

Matrix RowDots(const Matrix& a, const Matrix& b) {
  SKIPNODE_CHECK(a.SameShape(b));
  Matrix out(a.rows(), 1);
  ParallelFor(
      0, a.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const float* ai = a.row(i);
          const float* bi = b.row(i);
          double total = 0.0;
          for (int j = 0; j < a.cols(); ++j) {
            total += static_cast<double>(ai[j]) * bi[j];
          }
          out(i, 0) = static_cast<float>(total);
        }
      },
      MinRowsPerThread(2 * a.cols()));
  return out;
}

float CosineSimilarity(const float* a, const float* b, int n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

std::vector<uint8_t> RowNonFiniteFlags(const Matrix& x) {
  const ScopedTimer timer("tensor.row_nonfinite_scan", /*items=*/x.rows());
  std::vector<uint8_t> flags(x.rows(), 0);
  ParallelFor(
      0, x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const float* xi = x.row(i);
          uint8_t bad = 0;
          for (int j = 0; j < x.cols(); ++j) {
            bad |= static_cast<uint8_t>(!std::isfinite(xi[j]));
          }
          flags[i] = bad;
        }
      },
      MinRowsPerThread(x.cols()));
  return flags;
}

bool HasNonFinite(const Matrix& x) {
  // Parallel per-row flags, serial OR-reduction (DESIGN §7: cross-row
  // reductions stay serial; an OR is order-insensitive anyway, but the
  // shared pattern keeps every scan on the same contract).
  const std::vector<uint8_t> flags = RowNonFiniteFlags(x);
  for (const uint8_t flag : flags) {
    if (flag) return true;
  }
  return false;
}

int64_t CountNonFinite(const Matrix& x) {
  // Per-row counts in parallel (each row owned by one thread), summed
  // serially — integer sums are exact, but the contract is uniform.
  std::vector<int64_t> row_counts(x.rows(), 0);
  ParallelFor(
      0, x.rows(),
      [&](int64_t lo, int64_t hi) {
        for (int i = static_cast<int>(lo); i < hi; ++i) {
          const float* xi = x.row(i);
          int64_t count = 0;
          for (int j = 0; j < x.cols(); ++j) {
            count += !std::isfinite(xi[j]);
          }
          row_counts[i] = count;
        }
      },
      MinRowsPerThread(x.cols()));
  int64_t total = 0;
  for (const int64_t count : row_counts) total += count;
  return total;
}

float MaxRowNorm(const Matrix& x) {
  if (x.rows() == 0) return 0.0f;
  const Matrix norms = RowNorms(x);
  float best = 0.0f;
  for (int i = 0; i < norms.rows(); ++i) best = std::max(best, norms(i, 0));
  return best;
}

float MaxSingularValue(const Matrix& w, int iterations, Rng* rng) {
  SKIPNODE_CHECK(w.rows() > 0 && w.cols() > 0);
  Rng local(12345);
  Rng& r = rng != nullptr ? *rng : local;
  // Power iteration on w^T w (cols x cols operator) starting from a random
  // vector; sigma_max = sqrt(lambda_max(w^T w)).
  Matrix v = Matrix::RandomNormal(w.cols(), 1, r);
  for (int it = 0; it < iterations; ++it) {
    Matrix wv = MatMul(w, v);                 // rows x 1
    Matrix wtwv = MatMulTransposeA(w, wv);    // cols x 1
    const float norm = wtwv.Norm();
    if (norm <= 1e-30f) return 0.0f;
    v = Scale(wtwv, 1.0f / norm);
  }
  // v has unit norm after the loop, so sigma_max ~= ||w v||.
  return MatMul(w, v).Norm();
}

void SetMaxSingularValue(Matrix& w, float target) {
  SKIPNODE_CHECK(target >= 0.0f);
  const float current = MaxSingularValue(w);
  if (current <= 1e-30f) return;
  const float factor = target / current;
  float* d = w.data();
  for (int64_t i = 0; i < w.size(); ++i) d[i] *= factor;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SKIPNODE_CHECK(a.SameShape(b));
  float best = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a.data()[i] - b.data()[i]));
  }
  return best;
}

}  // namespace skipnode
