// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/graph.h"

#include <utility>

#include "base/check.h"

namespace skipnode {

Graph::Graph(std::string name, int num_nodes, EdgeList edges, Matrix features,
             std::vector<int> labels, int num_classes)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      edges_(std::move(edges)),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  SKIPNODE_CHECK(num_nodes_ >= 0);
  SKIPNODE_CHECK(features_.rows() == num_nodes_);
  for (const auto& [u, v] : edges_) {
    SKIPNODE_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
    SKIPNODE_CHECK(u != v);
  }
  if (!labels_.empty()) {
    SKIPNODE_CHECK(static_cast<int>(labels_.size()) == num_nodes_);
    for (const int label : labels_) {
      SKIPNODE_CHECK(label >= 0 && label < num_classes_);
    }
  }
  degrees_ = Degrees(num_nodes_, edges_);
}

void Graph::set_years(std::vector<int> years) {
  SKIPNODE_CHECK(static_cast<int>(years.size()) == num_nodes_);
  years_ = std::move(years);
}

std::shared_ptr<const CsrMatrix> Graph::normalized_adjacency() const {
  if (normalized_adjacency_ == nullptr) {
    normalized_adjacency_ = std::make_shared<const CsrMatrix>(
        NormalizedAdjacency(num_nodes_, edges_, /*add_self_loops=*/true));
  }
  return normalized_adjacency_;
}

const std::vector<double>& Graph::degree_weights() const {
  if (!degree_weights_computed_) {
    degree_weights_.assign(degrees_.begin(), degrees_.end());
    degree_weights_computed_ = true;
  }
  return degree_weights_;
}

const std::vector<int>& Graph::components() const {
  if (!components_computed_) {
    components_ = ConnectedComponents(num_nodes_, edges_);
    components_computed_ = true;
  }
  return components_;
}

double Graph::EdgeHomophily() const {
  SKIPNODE_CHECK(has_labels());
  if (edges_.empty()) return 0.0;
  int same = 0;
  for (const auto& [u, v] : edges_) {
    if (labels_[u] == labels_[v]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(edges_.size());
}

}  // namespace skipnode
