// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/graph.h"

#include <utility>

#include "base/check.h"

namespace skipnode {

Graph::Graph(std::string name, int num_nodes, EdgeList edges, Matrix features,
             std::vector<int> labels, int num_classes)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      edges_(std::move(edges)),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  SKIPNODE_CHECK(num_nodes_ >= 0);
  SKIPNODE_CHECK(features_.rows() == num_nodes_);
  for (const auto& [u, v] : edges_) {
    SKIPNODE_CHECK(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_);
    SKIPNODE_CHECK(u != v);
  }
  if (!labels_.empty()) {
    SKIPNODE_CHECK(static_cast<int>(labels_.size()) == num_nodes_);
    for (const int label : labels_) {
      SKIPNODE_CHECK(label >= 0 && label < num_classes_);
    }
  }
  degrees_ = Degrees(num_nodes_, edges_);
}

Graph::Graph(std::string name, int num_nodes,
             std::shared_ptr<const CsrMatrix> normalized_adjacency,
             std::vector<int> degrees, int64_t num_undirected_edges,
             Matrix features, std::vector<int> labels, int num_classes)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      csr_backed_(true),
      num_edges_(num_undirected_edges),
      features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes),
      degrees_(std::move(degrees)),
      normalized_adjacency_(std::move(normalized_adjacency)) {
  SKIPNODE_CHECK(num_nodes_ >= 0);
  SKIPNODE_CHECK(num_edges_ >= 0);
  SKIPNODE_CHECK(normalized_adjacency_ != nullptr);
  SKIPNODE_CHECK(normalized_adjacency_->rows() == num_nodes_);
  SKIPNODE_CHECK(normalized_adjacency_->cols() == num_nodes_);
  SKIPNODE_CHECK(static_cast<int>(degrees_.size()) == num_nodes_);
  SKIPNODE_CHECK(features_.rows() == num_nodes_);
  if (!labels_.empty()) {
    SKIPNODE_CHECK(static_cast<int>(labels_.size()) == num_nodes_);
    for (const int label : labels_) {
      SKIPNODE_CHECK(label >= 0 && label < num_classes_);
    }
  }
}

const EdgeList& Graph::edges() const {
  SKIPNODE_CHECK_MSG(!csr_backed_,
                     "Graph::edges(): CSR-backed graph has no edge list "
                     "(topology resampling and link splits are unsupported "
                     "at streaming scale)");
  return edges_;
}

void Graph::set_years(std::vector<int> years) {
  SKIPNODE_CHECK(static_cast<int>(years.size()) == num_nodes_);
  years_ = std::move(years);
}

std::shared_ptr<const CsrMatrix> Graph::normalized_adjacency() const {
  if (normalized_adjacency_ == nullptr) {
    normalized_adjacency_ = std::make_shared<const CsrMatrix>(
        NormalizedAdjacency(num_nodes_, edges_, /*add_self_loops=*/true));
  }
  return normalized_adjacency_;
}

const std::vector<double>& Graph::degree_weights() const {
  if (!degree_weights_computed_) {
    degree_weights_.assign(degrees_.begin(), degrees_.end());
    degree_weights_computed_ = true;
  }
  return degree_weights_;
}

const std::vector<int>& Graph::components() const {
  if (!components_computed_) {
    components_ = csr_backed_
                      ? ConnectedComponentsCsr(*normalized_adjacency_)
                      : ConnectedComponents(num_nodes_, edges_);
    components_computed_ = true;
  }
  return components_;
}

double Graph::EdgeHomophily() const {
  SKIPNODE_CHECK(has_labels());
  if (csr_backed_) {
    // Walk the A_hat pattern instead of the (absent) edge list; every
    // undirected edge appears as both off-diagonal entries, so the ratio is
    // unchanged, and the +I diagonal is skipped.
    const CsrMatrix& a = *normalized_adjacency_;
    const std::vector<int>& cols = a.col_idx();
    int64_t same = 0;
    int64_t total = 0;
    for (int u = 0; u < num_nodes_; ++u) {
      const int64_t end = a.RowEnd(u);
      for (int64_t e = a.RowBegin(u); e < end; ++e) {
        const int v = cols[static_cast<size_t>(e)];
        if (v == u) continue;
        ++total;
        if (labels_[u] == labels_[v]) ++same;
      }
    }
    if (total == 0) return 0.0;
    return static_cast<double>(same) / static_cast<double>(total);
  }
  if (edges_.empty()) return 0.0;
  int same = 0;
  for (const auto& [u, v] : edges_) {
    if (labels_[u] == labels_[v]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(edges_.size());
}

int64_t Graph::MemoryFootprintBytes() const {
  int64_t bytes = 0;
  if (normalized_adjacency_ != nullptr) {
    bytes += normalized_adjacency_->MemoryBytes();
  }
  bytes += static_cast<int64_t>(features_.rows()) * features_.cols() *
           static_cast<int64_t>(sizeof(float));
  bytes += static_cast<int64_t>(edges_.size()) * sizeof(std::pair<int, int>);
  bytes += static_cast<int64_t>(labels_.size()) * sizeof(int);
  bytes += static_cast<int64_t>(years_.size()) * sizeof(int);
  bytes += static_cast<int64_t>(degrees_.size()) * sizeof(int);
  bytes += static_cast<int64_t>(degree_weights_.size()) * sizeof(double);
  bytes += static_cast<int64_t>(components_.size()) * sizeof(int);
  return bytes;
}

}  // namespace skipnode
