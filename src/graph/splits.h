// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Train/validation/test split builders matching the paper's four evaluation
// protocols: public semi-supervised splits (Yang et al. 2016), random
// full-supervised 60/20/20 splits, the ogbn-arxiv temporal split, and
// link-prediction splits with ranked negative evaluation (ogbl-ppa style).

#ifndef SKIPNODE_GRAPH_SPLITS_H_
#define SKIPNODE_GRAPH_SPLITS_H_

#include <vector>

#include "base/rng.h"
#include "graph/graph.h"

namespace skipnode {

// Node-classification split.
struct Split {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

// Public semi-supervised protocol: `per_class` training nodes per class,
// then `num_val` validation and `num_test` test nodes from the remainder.
// Counts are clamped to what the graph can supply.
Split PublicSplit(const Graph& graph, int per_class, int num_val,
                  int num_test, Rng& rng);

// Full-supervised protocol: stratified random split by fractions
// (train_fraction + val_fraction <= 1; the rest is test).
Split RandomSplit(const Graph& graph, double train_fraction,
                  double val_fraction, Rng& rng);

// Temporal protocol: train = year <= last_train_year, val = the following
// year, test = anything later. Requires graph.years().
Split TemporalSplit(const Graph& graph, int last_train_year);

// Link-prediction split. Training edges remain in the message-passing graph;
// held-out positives are removed from it. All positives are ranked against a
// shared pool of sampled non-edges (the OGB Hits@K protocol).
struct LinkSplit {
  EdgeList train_edges;  // message passing + positive supervision
  EdgeList val_pos;
  EdgeList test_pos;
  EdgeList eval_neg;     // shared ranked-negative pool
};

LinkSplit MakeLinkSplit(const Graph& graph, double val_fraction,
                        double test_fraction, int num_eval_negatives,
                        Rng& rng);

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_SPLITS_H_
