// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/splits.h"

#include <algorithm>
#include <set>

#include "base/check.h"

namespace skipnode {

Split PublicSplit(const Graph& graph, int per_class, int num_val,
                  int num_test, Rng& rng) {
  SKIPNODE_CHECK(graph.has_labels());
  const int n = graph.num_nodes();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);

  Split split;
  std::vector<int> taken_per_class(graph.num_classes(), 0);
  std::vector<int> remainder;
  remainder.reserve(n);
  for (const int node : order) {
    const int label = graph.labels()[node];
    if (taken_per_class[label] < per_class) {
      split.train.push_back(node);
      ++taken_per_class[label];
    } else {
      remainder.push_back(node);
    }
  }
  // Clamp to what the graph can supply; if the remainder cannot cover both
  // pools at the requested sizes, split it evenly so neither ends up empty.
  const int remaining = static_cast<int>(remainder.size());
  int val_count = std::min(num_val, remaining);
  if (remaining - val_count == 0 && remaining >= 2) val_count = remaining / 2;
  split.val.assign(remainder.begin(), remainder.begin() + val_count);
  const int test_count = std::min(num_test, remaining - val_count);
  split.test.assign(remainder.begin() + val_count,
                    remainder.begin() + val_count + test_count);
  SKIPNODE_CHECK(!split.train.empty() && !split.val.empty() &&
                 !split.test.empty());
  return split;
}

Split RandomSplit(const Graph& graph, double train_fraction,
                  double val_fraction, Rng& rng) {
  SKIPNODE_CHECK(graph.has_labels());
  SKIPNODE_CHECK(train_fraction > 0.0 && val_fraction >= 0.0);
  SKIPNODE_CHECK(train_fraction + val_fraction < 1.0 + 1e-9);

  // Stratified: split each class with the same fractions so small
  // heterophilic datasets keep every class represented in training.
  std::vector<std::vector<int>> by_class(graph.num_classes());
  for (int i = 0; i < graph.num_nodes(); ++i) {
    by_class[graph.labels()[i]].push_back(i);
  }
  Split split;
  for (std::vector<int>& members : by_class) {
    rng.Shuffle(members);
    const int m = static_cast<int>(members.size());
    const int train_count = std::max(1, static_cast<int>(m * train_fraction));
    const int val_count = std::min(
        m - train_count, std::max(0, static_cast<int>(m * val_fraction)));
    for (int i = 0; i < m; ++i) {
      if (i < train_count) {
        split.train.push_back(members[i]);
      } else if (i < train_count + val_count) {
        split.val.push_back(members[i]);
      } else {
        split.test.push_back(members[i]);
      }
    }
  }
  return split;
}

Split TemporalSplit(const Graph& graph, int last_train_year) {
  SKIPNODE_CHECK(!graph.years().empty());
  Split split;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const int year = graph.years()[i];
    if (year <= last_train_year) {
      split.train.push_back(i);
    } else if (year == last_train_year + 1) {
      split.val.push_back(i);
    } else {
      split.test.push_back(i);
    }
  }
  SKIPNODE_CHECK(!split.train.empty() && !split.val.empty() &&
                 !split.test.empty());
  return split;
}

LinkSplit MakeLinkSplit(const Graph& graph, double val_fraction,
                        double test_fraction, int num_eval_negatives,
                        Rng& rng) {
  SKIPNODE_CHECK(val_fraction >= 0.0 && test_fraction > 0.0);
  SKIPNODE_CHECK(val_fraction + test_fraction < 1.0);
  const EdgeList& edges = graph.edges();
  const int e = graph.num_edges();

  std::vector<int> order(e);
  for (int i = 0; i < e; ++i) order[i] = i;
  rng.Shuffle(order);

  LinkSplit split;
  const int num_val = static_cast<int>(e * val_fraction);
  const int num_test = static_cast<int>(e * test_fraction);
  for (int i = 0; i < e; ++i) {
    const auto& edge = edges[order[i]];
    if (i < num_val) {
      split.val_pos.push_back(edge);
    } else if (i < num_val + num_test) {
      split.test_pos.push_back(edge);
    } else {
      split.train_edges.push_back(edge);
    }
  }

  // Shared ranked-negative pool: uniform non-edges (also excluded from the
  // held-out positives).
  std::set<std::pair<int, int>> known(edges.begin(), edges.end());
  const int n = graph.num_nodes();
  int attempts = 0;
  while (static_cast<int>(split.eval_neg.size()) < num_eval_negatives &&
         attempts < num_eval_negatives * 50) {
    ++attempts;
    int u = static_cast<int>(rng.UniformInt(n));
    int v = static_cast<int>(rng.UniformInt(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (known.count({u, v}) > 0) continue;
    if (!known.insert({u, v}).second) continue;  // Also dedups negatives.
    split.eval_neg.emplace_back(u, v);
  }
  SKIPNODE_CHECK(!split.eval_neg.empty());
  return split;
}

}  // namespace skipnode
