// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "base/check.h"

namespace skipnode {

EdgeList ErdosRenyi(int num_nodes, double p, Rng& rng) {
  SKIPNODE_CHECK(p >= 0.0 && p <= 1.0);
  EdgeList edges;
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (rng.Bernoulli(p)) edges.emplace_back(u, v);
    }
  }
  return edges;
}

namespace {

// Samples an index from the cumulative-weight table `cdf` (strictly
// increasing, last entry = total mass).
int SampleFromCdf(const std::vector<double>& cdf, Rng& rng) {
  const double target = rng.Uniform() * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
  return static_cast<int>(std::min<size_t>(it - cdf.begin(), cdf.size() - 1));
}

}  // namespace

PlantedPartitionGraph PlantedPartition(const PlantedPartitionConfig& config,
                                       Rng& rng) {
  SKIPNODE_CHECK(config.num_nodes > 0);
  SKIPNODE_CHECK(config.num_classes > 0);
  SKIPNODE_CHECK(config.homophily >= 0.0 && config.homophily <= 1.0);
  const int n = config.num_nodes;
  const int k = config.num_classes;

  PlantedPartitionGraph graph;
  // Balanced classes, randomly assigned.
  graph.labels.resize(n);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  for (int i = 0; i < n; ++i) graph.labels[order[i]] = i % k;

  // Degree propensities.
  std::vector<double> theta(n, 1.0);
  if (config.power_law > 0.0) {
    for (int i = 0; i < n; ++i) {
      double u = rng.Uniform();
      while (u <= 1e-12) u = rng.Uniform();
      theta[i] = std::min(std::pow(u, -1.0 / config.power_law),
                          config.max_propensity);
    }
  }

  // Cumulative propensity tables: global and per class.
  std::vector<std::vector<int>> class_members(k);
  for (int i = 0; i < n; ++i) class_members[graph.labels[i]].push_back(i);
  std::vector<double> global_cdf(n);
  double running = 0.0;
  for (int i = 0; i < n; ++i) {
    running += theta[i];
    global_cdf[i] = running;
  }
  std::vector<std::vector<double>> class_cdf(k);
  for (int c = 0; c < k; ++c) {
    running = 0.0;
    class_cdf[c].reserve(class_members[c].size());
    for (const int i : class_members[c]) {
      running += theta[i];
      class_cdf[c].push_back(running);
    }
  }

  std::set<std::pair<int, int>> seen;
  graph.edges.reserve(config.num_edges);
  // Draw edges: pick u globally by propensity; pick v within u's class with
  // probability `homophily`, otherwise globally (rejecting same-class hits to
  // keep the homophily target tight).
  const int max_attempts = config.num_edges * 30 + 1000;
  int attempts = 0;
  while (static_cast<int>(graph.edges.size()) < config.num_edges &&
         attempts < max_attempts) {
    ++attempts;
    const int u = SampleFromCdf(global_cdf, rng);
    int v;
    if (rng.Bernoulli(config.homophily)) {
      const int c = graph.labels[u];
      v = class_members[c][SampleFromCdf(class_cdf[c], rng)];
    } else {
      // Cross-class edge: resample (not skip) same-class candidates, so the
      // realised homophily matches the target instead of drifting upward.
      v = -1;
      for (int retry = 0; retry < 64; ++retry) {
        const int candidate = SampleFromCdf(global_cdf, rng);
        if (k == 1 || graph.labels[candidate] != graph.labels[u]) {
          v = candidate;
          break;
        }
      }
      if (v < 0) continue;
    }
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second) continue;
    graph.edges.emplace_back(key.first, key.second);
  }
  return graph;
}

DcSbmPlan PlanDcSbm(const PlantedPartitionConfig& config, Rng& rng) {
  SKIPNODE_CHECK(config.num_nodes > 0);
  SKIPNODE_CHECK(config.num_classes > 0);
  SKIPNODE_CHECK(config.homophily >= 0.0 && config.homophily <= 1.0);
  const int n = config.num_nodes;
  const int k = config.num_classes;

  DcSbmPlan plan;
  // Balanced classes, randomly assigned (same scheme as PlantedPartition).
  plan.labels.resize(n);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  for (int i = 0; i < n; ++i) plan.labels[order[i]] = i % k;

  std::vector<double> theta(n, 1.0);
  if (config.power_law > 0.0) {
    for (int i = 0; i < n; ++i) {
      double u = rng.Uniform();
      while (u <= 1e-12) u = rng.Uniform();
      theta[i] = std::min(std::pow(u, -1.0 / config.power_law),
                          config.max_propensity);
    }
  }

  plan.class_members.resize(k);
  for (int i = 0; i < n; ++i) {
    plan.class_members[plan.labels[i]].push_back(i);
  }
  plan.global_cdf.resize(n);
  double running = 0.0;
  for (int i = 0; i < n; ++i) {
    running += theta[i];
    plan.global_cdf[i] = running;
  }
  plan.class_cdf.resize(k);
  for (int c = 0; c < k; ++c) {
    running = 0.0;
    plan.class_cdf[c].reserve(plan.class_members[c].size());
    for (const int i : plan.class_members[c]) {
      running += theta[i];
      plan.class_cdf[c].push_back(running);
    }
  }

  plan.edge_stream_rng = Rng(rng.Next());
  return plan;
}

void StreamDcSbmEdges(const PlantedPartitionConfig& config,
                      const DcSbmPlan& plan,
                      const std::function<void(int, int)>& emit) {
  const int k = config.num_classes;
  // Copying the plan's Rng restarts the stream, so every call replays the
  // identical draw sequence — the property both builder passes rely on.
  Rng rng = plan.edge_stream_rng;
  const int64_t max_attempts =
      static_cast<int64_t>(config.num_edges) * 30 + 1000;
  int64_t emitted = 0;
  int64_t attempts = 0;
  // Same acceptance logic as PlantedPartition, minus the std::set: u drawn
  // globally by propensity, v within u's class with probability `homophily`,
  // otherwise cross-class with bounded resampling. Duplicate pairs pass
  // through; the consumer deduplicates.
  while (emitted < config.num_edges && attempts < max_attempts) {
    ++attempts;
    const int u = SampleFromCdf(plan.global_cdf, rng);
    int v;
    if (rng.Bernoulli(config.homophily)) {
      const int c = plan.labels[u];
      v = plan.class_members[c][SampleFromCdf(plan.class_cdf[c], rng)];
    } else {
      v = -1;
      for (int retry = 0; retry < 64; ++retry) {
        const int candidate = SampleFromCdf(plan.global_cdf, rng);
        if (k == 1 || plan.labels[candidate] != plan.labels[u]) {
          v = candidate;
          break;
        }
      }
      if (v < 0) continue;
    }
    if (u == v) continue;
    emit(std::min(u, v), std::max(u, v));
    ++emitted;
  }
}

Matrix MakeClassFeatures(const std::vector<int>& labels, int num_classes,
                         const FeatureConfig& config, Rng& rng) {
  const int n = static_cast<int>(labels.size());
  SKIPNODE_CHECK(config.dim > 0);
  SKIPNODE_CHECK(config.words_per_node > 0);
  SKIPNODE_CHECK(config.signal >= 0.0 && config.signal <= 1.0);

  // Each class owns a random topic subset of the vocabulary.
  const int topic_size = std::max(
      2, static_cast<int>(config.topic_fraction * config.dim));
  std::vector<std::vector<int>> topics(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    topics[c] = rng.SampleWithoutReplacement(config.dim, topic_size);
  }

  Matrix features(n, config.dim);
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& topic = topics[labels[i]];
    for (int w = 0; w < config.words_per_node; ++w) {
      int word;
      if (rng.Bernoulli(config.signal)) {
        word = topic[rng.UniformInt(topic.size())];
      } else {
        word = static_cast<int>(rng.UniformInt(config.dim));
      }
      features(i, word) = 1.0f;
    }
  }
  if (config.row_normalize) {
    for (int i = 0; i < n; ++i) {
      float* row = features.row(i);
      double total = 0.0;
      for (int j = 0; j < config.dim; ++j) total += row[j] * row[j];
      if (total > 0.0) {
        const float inv = static_cast<float>(1.0 / std::sqrt(total));
        for (int j = 0; j < config.dim; ++j) row[j] *= inv;
      }
    }
  }
  return features;
}

}  // namespace skipnode
