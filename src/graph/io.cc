// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

namespace skipnode {
namespace {

// Strips a trailing '\r' (CRLF input) so Windows-authored files parse.
void StripCarriageReturn(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

// True iff only whitespace remains in `tokens` — rejects lines with extra
// columns or a partially-consumed token (e.g. "1 2 3", "1 2.5").
bool RemainderIsBlank(std::istringstream& tokens) {
  tokens >> std::ws;
  return tokens.eof();
}

}  // namespace

bool LoadEdgeList(const std::string& path, EdgeList* edges, int* num_nodes,
                  int min_num_nodes) {
  std::ifstream in(path);
  if (!in) return false;
  edges->clear();
  int max_id = min_num_nodes - 1;
  std::set<std::pair<int, int>> seen;
  std::string line;
  while (std::getline(in, line)) {
    StripCarriageReturn(&line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    int u, v;
    // operator>> sets failbit on non-numeric tokens and on values that
    // overflow int, so both malformations land on the same return.
    if (!(tokens >> u >> v) || !RemainderIsBlank(tokens)) return false;
    if (u < 0 || v < 0) return false;
    max_id = std::max({max_id, u, v});
    if (u == v) continue;  // Self-loops are re-added by normalisation.
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second) continue;
    edges->emplace_back(key.first, key.second);
  }
  *num_nodes = max_id + 1;
  return true;
}

bool SaveEdgeList(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& [u, v] : edges) out << u << ' ' << v << '\n';
  return static_cast<bool>(out);
}

bool LoadLabels(const std::string& path, std::vector<int>* labels,
                int num_classes) {
  std::ifstream in(path);
  if (!in) return false;
  labels->clear();
  std::string line;
  while (std::getline(in, line)) {
    StripCarriageReturn(&line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    int label;
    if (!(tokens >> label) || !RemainderIsBlank(tokens)) return false;
    if (label < 0) return false;
    if (num_classes >= 0 && label >= num_classes) return false;
    labels->push_back(label);
  }
  return true;
}

bool SaveLabels(const std::string& path, const std::vector<int>& labels) {
  std::ofstream out(path);
  if (!out) return false;
  for (const int label : labels) out << label << '\n';
  return static_cast<bool>(out);
}

bool LoadMatrixCsv(const std::string& path, Matrix* matrix) {
  std::ifstream in(path);
  if (!in) return false;
  std::vector<float> values;
  int rows = 0;
  int cols = -1;
  std::string line;
  while (std::getline(in, line)) {
    StripCarriageReturn(&line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream cells(line);
    std::string cell;
    int this_cols = 0;
    while (std::getline(cells, cell, ',')) {
      char* end = nullptr;
      const float value = std::strtof(cell.c_str(), &end);
      if (end == cell.c_str()) return false;  // Not a number.
      while (*end == ' ' || *end == '\t') ++end;
      if (*end != '\0') return false;  // Trailing garbage ("1.5abc").
      if (!std::isfinite(value)) return false;  // "nan"/"inf" or overflow.
      values.push_back(value);
      ++this_cols;
    }
    if (this_cols == 0) return false;
    if (cols < 0) {
      cols = this_cols;
    } else if (cols != this_cols) {
      return false;  // Ragged rows.
    }
    ++rows;
  }
  if (rows == 0) return false;
  *matrix = Matrix(rows, cols, std::move(values));
  return true;
}

bool SaveMatrixCsv(const std::string& path, const Matrix& matrix) {
  std::ofstream out(path);
  if (!out) return false;
  // max_digits10 (9) makes the decimal text round-trip every float exactly,
  // so a checkpoint save/load is bitwise lossless (frozen_model_test).
  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (int r = 0; r < matrix.rows(); ++r) {
    for (int c = 0; c < matrix.cols(); ++c) {
      if (c > 0) out << ',';
      out << matrix(r, c);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadGraph(const std::string& name, const std::string& edge_path,
               const std::string& feature_csv_path,
               const std::string& label_path, std::unique_ptr<Graph>* graph) {
  EdgeList edges;
  int num_nodes = 0;
  if (!LoadEdgeList(edge_path, &edges, &num_nodes)) return false;

  Matrix features;
  if (!LoadMatrixCsv(feature_csv_path, &features)) return false;
  if (features.rows() < num_nodes) return false;
  num_nodes = features.rows();  // Features may cover isolated tail nodes.

  std::vector<int> labels;
  int num_classes = 0;
  if (!label_path.empty()) {
    if (!LoadLabels(label_path, &labels)) return false;
    if (static_cast<int>(labels.size()) != num_nodes) return false;
    for (const int label : labels) {
      if (label < 0) return false;
      num_classes = std::max(num_classes, label + 1);
    }
  }
  *graph = std::make_unique<Graph>(name, num_nodes, std::move(edges),
                                   std::move(features), std::move(labels),
                                   num_classes);
  return true;
}

}  // namespace skipnode
