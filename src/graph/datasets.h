// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Named synthetic datasets mirroring the paper's Table 2 (see DESIGN.md
// sections 1 and 5 for the substitution rationale). Every dataset is fully
// determined by (name, scale, seed).

#ifndef SKIPNODE_GRAPH_DATASETS_H_
#define SKIPNODE_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace skipnode {

// Declarative recipe for one synthetic dataset.
struct DatasetSpec {
  std::string name;
  int num_nodes = 0;
  int num_edges = 0;
  int num_classes = 0;
  int feature_dim = 0;
  double homophily = 0.8;
  // How label-informative the features are (FeatureConfig::signal).
  double feature_signal = 0.7;
  int words_per_node = 12;
  double power_law = 2.5;
  // Whether nodes carry a synthetic publication year (arxiv-like temporal
  // splits).
  bool with_years = false;
};

// Specs for all nine stand-ins: cora_like, citeseer_like, pubmed_like,
// chameleon_like, cornell_like, texas_like, wisconsin_like, arxiv_like,
// ppa_like.
const std::vector<DatasetSpec>& AllDatasetSpecs();

// Returns the spec for `name`; aborts on unknown names.
const DatasetSpec& FindDatasetSpec(const std::string& name);

// Instantiates `spec` scaled by `scale` in node count (edges, and for tiny
// graphs feature dims, scale along; scale <= 1). Deterministic in `seed`.
Graph BuildDataset(const DatasetSpec& spec, double scale, uint64_t seed);

// Convenience: BuildDataset(FindDatasetSpec(name), scale, seed).
Graph BuildDatasetByName(const std::string& name, double scale = 1.0,
                         uint64_t seed = 1);

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_DATASETS_H_
