// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Named synthetic datasets mirroring the paper's Table 2 (see DESIGN.md
// sections 1 and 5 for the substitution rationale). Every dataset is fully
// determined by (name, scale, seed) — or, through the registry, by a
// DatasetRequest that may additionally override the node count and average
// degree ("arxiv_like@169k", "synth@1m"), which switches construction to the
// streaming CSR path (DESIGN §13).

#ifndef SKIPNODE_GRAPH_DATASETS_H_
#define SKIPNODE_GRAPH_DATASETS_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace skipnode {

// Declarative recipe for one synthetic dataset.
struct DatasetSpec {
  std::string name;
  int num_nodes = 0;
  int num_edges = 0;
  int num_classes = 0;
  int feature_dim = 0;
  double homophily = 0.8;
  // How label-informative the features are (FeatureConfig::signal).
  double feature_signal = 0.7;
  int words_per_node = 12;
  double power_law = 2.5;
  // Whether nodes carry a synthetic publication year (arxiv-like temporal
  // splits).
  bool with_years = false;
};

// Specs for all nine stand-ins: cora_like, citeseer_like, pubmed_like,
// chameleon_like, cornell_like, texas_like, wisconsin_like, arxiv_like,
// ppa_like.
const std::vector<DatasetSpec>& AllDatasetSpecs();

// Returns the spec for `name`; aborts on unknown names.
const DatasetSpec& FindDatasetSpec(const std::string& name);

// Instantiates `spec` scaled by `scale` in node count (edges, and for tiny
// graphs feature dims, scale along; scale <= 1). Deterministic in `seed`.
Graph BuildDataset(const DatasetSpec& spec, double scale, uint64_t seed);

// Convenience: BuildDataset(FindDatasetSpec(name), scale, seed).
Graph BuildDatasetByName(const std::string& name, double scale = 1.0,
                         uint64_t seed = 1);

// A fully-parsed dataset request: the registry key plus build parameters.
// With no size overrides (nodes == 0 and avg_degree == 0) a registered
// classic dataset builds through the legacy edge-list path, bit for bit the
// same graph as BuildDatasetByName(name, scale, seed). Any override — or a
// streaming-only dataset like "synth" — switches to the streaming DC-SBM
// path, which generates straight into CSR and returns a CSR-backed Graph.
struct DatasetRequest {
  std::string name;
  double scale = 1.0;
  uint64_t seed = 1;
  // Node-count override; 0 keeps the spec's (scaled) size.
  int64_t nodes = 0;
  // Average-degree override; 0 keeps the spec's edge/node ratio.
  double avg_degree = 0.0;
};

// Parses "name" or "name@SIZE" where SIZE is a positive integer with an
// optional k/m multiplier ("169k", "1m", "50000"; case-insensitive). The
// suffix sets request->nodes; scale/seed/avg_degree keep their prior values.
// Returns false (request untouched) on a malformed suffix.
bool ParseDatasetRequest(const std::string& spec, DatasetRequest* request);

// Name -> dataset factory. Replaces the stringly-typed FindDatasetSpec
// dispatch scattered across the CLIs and benches: the nine classic specs and
// the streaming-only "synth" dataset are pre-registered, and every surface
// resolves names (and @SIZE / --nodes / --avg-degree overrides) through
// Build().
class DatasetRegistry {
 public:
  using Factory = std::function<Graph(const DatasetRequest&)>;

  // The process-wide registry with the built-in datasets pre-registered.
  static DatasetRegistry& Global();

  // Registers (or replaces) a named dataset. `summary` is one help line.
  void Register(std::string name, std::string summary, Factory factory);

  bool Contains(const std::string& name) const;
  // Builds request.name's graph; aborts on unknown names (same message as
  // the retired FindDatasetSpec dispatch).
  Graph Build(const DatasetRequest& request) const;
  // Registered names in registration order, with their help summaries.
  std::vector<std::pair<std::string, std::string>> NamesWithSummaries() const;

 private:
  DatasetRegistry() = default;
  struct Entry {
    std::string name;
    std::string summary;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

// Streaming DC-SBM instantiation of `spec` at an explicit size: generates
// the edge stream twice through a pattern-mode CsrBuilder (count, fill),
// normalises in place from the post-deduplication degrees, and returns a
// CSR-backed Graph. Never materialises an edge list or COO vector.
Graph BuildStreamingDataset(const DatasetSpec& spec,
                            const DatasetRequest& request);

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_DATASETS_H_
