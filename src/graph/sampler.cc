// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/sampler.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/telemetry.h"
#include "sparse/csr_builder.h"

namespace skipnode {
namespace {

// Statistically independent Rng seed for one (batch, layer, node) stream:
// distinct multipliers per coordinate, then the splitmix64 finalizer so
// adjacent node ids land far apart in seed space.
uint64_t RowStreamSeed(uint64_t batch_seed, int layer, int node) {
  uint64_t x = batch_seed +
               0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(layer) + 1) +
               0xd1b54a32d192ed03ULL * (static_cast<uint64_t>(node) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Entry index of row g's diagonal (Â = A + I always stores it; rows are
// column-sorted by CsrBuilder).
int64_t SelfEntry(const CsrMatrix& a, int g) {
  const std::vector<int>& cols = a.col_idx();
  const auto begin = cols.begin() + a.RowBegin(g);
  const auto end = cols.begin() + a.RowEnd(g);
  const auto it = std::lower_bound(begin, end, g);
  SKIPNODE_CHECK(it != end && *it == g);
  return it - cols.begin();
}

// Replays one dst row's neighbor draw. Selection is a pure function of
// (batch_seed, layer, node): the serial frontier walk and the parallel fill
// pass construct their own selector and get identical entries, which is the
// whole replay trick — no per-row edge list survives between the passes.
class RowSelector {
 public:
  RowSelector(const CsrMatrix& a, uint64_t batch_seed, int layer, int fanout)
      : a_(a), batch_seed_(batch_seed), layer_(layer), fanout_(fanout) {}

  // Selects min(fanout, degree) non-self entries of row g. After the call,
  // entries() holds their absolute indices into the adjacency arrays in
  // ascending (column) order and self_entry() the diagonal's index.
  void Select(int g) {
    entries_.clear();
    const int64_t begin = a_.RowBegin(g);
    const int64_t end = a_.RowEnd(g);
    self_entry_ = SelfEntry(a_, g);
    const int m = static_cast<int>(end - begin) - 1;  // Non-self entries.
    const int k = std::min(fanout_, m);
    if (k == m) {
      // The whole neighborhood fits: no draw, no Rng, exact row.
      for (int64_t e = begin; e < end; ++e) {
        if (e != self_entry_) entries_.push_back(e);
      }
      return;
    }
    // Floyd's k-of-m without replacement: O(k^2), no O(m) scratch. Offsets
    // index the row with the diagonal spliced out.
    Rng rng(RowStreamSeed(batch_seed_, layer_, g));
    rel_.clear();
    for (int j = m - k; j < m; ++j) {
      const int t =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(j) + 1));
      const bool taken = std::find(rel_.begin(), rel_.end(), t) != rel_.end();
      rel_.push_back(taken ? j : t);
    }
    // Ascending column order, so downstream sums and the first-appearance
    // local-id assignment are independent of the draw order.
    std::sort(rel_.begin(), rel_.end());
    for (const int r : rel_) {
      const int64_t e = begin + r;
      entries_.push_back(e < self_entry_ ? e : e + 1);
    }
  }

  const std::vector<int64_t>& entries() const { return entries_; }
  int64_t self_entry() const { return self_entry_; }

 private:
  const CsrMatrix& a_;
  const uint64_t batch_seed_;
  const int layer_;
  const int fanout_;
  int64_t self_entry_ = -1;
  std::vector<int64_t> entries_;
  std::vector<int> rel_;
};

}  // namespace

NeighborSampler::NeighborSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph),
      config_(std::move(config)),
      adjacency_(graph.normalized_adjacency()) {
  SKIPNODE_CHECK(!config_.fanouts.empty());
  for (const int fanout : config_.fanouts) SKIPNODE_CHECK(fanout >= 1);
  local_id_.assign(static_cast<size_t>(graph.num_nodes()), -1);
  stamp_.assign(static_cast<size_t>(graph.num_nodes()), 0u);
}

int64_t NeighborSampler::MemoryFootprintBytes() const {
  return static_cast<int64_t>(local_id_.capacity()) * sizeof(int) +
         static_cast<int64_t>(stamp_.capacity()) * sizeof(uint32_t);
}

SampledBatch NeighborSampler::SampleBlocks(
    const std::vector<int>& seeds, uint64_t batch_seed,
    const LayerSkipMaskFn& skip_mask_fn) {
  const ScopedTimer timer("sampler.sample");
  const int num_layers = static_cast<int>(config_.fanouts.size());
  SKIPNODE_CHECK(!seeds.empty());
  const CsrMatrix& a = *adjacency_;

  // Fresh generation: the stamped map makes batch start O(|seeds|), not
  // O(N). On the (astronomically rare) wrap the stamps are scrubbed.
  if (++generation_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    generation_ = 1;
  }

  SampledBatch batch;
  batch.seeds = seeds;
  batch.layers.resize(static_cast<size_t>(num_layers));
  std::vector<int> frontier;
  frontier.reserve(seeds.size());
  for (const int seed : seeds) {
    SKIPNODE_CHECK(seed >= 0 && seed < graph_.num_nodes());
    SKIPNODE_CHECK_MSG(LocalId(seed) < 0, "duplicate seed in batch");
    Assign(seed, frontier);
  }

  // Top layer first: layer l's src frontier is layer l-1's dst frontier.
  for (int layer = num_layers - 1; layer >= 0; --layer) {
    const int fanout = config_.fanouts[static_cast<size_t>(layer)];
    const int num_dst = static_cast<int>(frontier.size());

    // Skip mask over the dst frontier, drawn BEFORE any neighbor fetch —
    // a masked row passes through unconvolved, so it expands nothing.
    std::vector<uint8_t> mask;
    if (skip_mask_fn) {
      mask = skip_mask_fn(layer, frontier);
      SKIPNODE_CHECK(mask.empty() ||
                     static_cast<int>(mask.size()) == num_dst);
    }

    // Serial frontier walk: replay each unmasked row's draw to assign local
    // ids in first-appearance order and build the 64-bit per-row entry
    // prefix (self + selected). No edge vector: the draw is replayed again
    // by the fill pass below.
    std::vector<int64_t> entry_prefix(static_cast<size_t>(num_dst) + 1, 0);
    RowSelector walk(a, batch_seed, layer, fanout);
    for (int i = 0; i < num_dst; ++i) {
      const int g = frontier[static_cast<size_t>(i)];
      int64_t count = 1;  // Self entry, always present.
      if (!mask.empty() && mask[static_cast<size_t>(i)]) {
        ++batch.nodes_pruned;
        batch.edges_pruned +=
            std::min<int64_t>(fanout, a.RowNnz(g) - 1);
      } else {
        walk.Select(g);
        for (const int64_t e : walk.entries()) {
          const int col = a.col_idx()[static_cast<size_t>(e)];
          if (LocalId(col) < 0) Assign(col, frontier);
        }
        count += static_cast<int64_t>(walk.entries().size());
      }
      entry_prefix[static_cast<size_t>(i) + 1] =
          entry_prefix[static_cast<size_t>(i)] + count;
    }
    const int num_src = static_cast<int>(frontier.size());

    // Stream the block through CsrBuilder. Counting is analytic (the walk
    // already knows each row's entry count), and the fill pass fans out
    // row-parallel: every dst row replays its own stream into its own CSR
    // segment, so the block is bitwise identical at any thread count
    // (DESIGN §7 — rows are owned, the map is read-only by now).
    CsrBuilder builder(num_dst, num_src);
    for (int i = 0; i < num_dst; ++i) {
      const int64_t count = entry_prefix[static_cast<size_t>(i) + 1] -
                            entry_prefix[static_cast<size_t>(i)];
      for (int64_t c = 0; c < count; ++c) builder.CountEntry(i);
    }
    builder.FinishCounting();
    builder.BeginRowFill();
    ParallelForBalanced(
        num_dst, entry_prefix.data(),
        [&](int64_t row_begin, int64_t row_end) {
          RowSelector fill(a, batch_seed, layer, fanout);
          std::vector<int> row_cols;
          std::vector<float> row_vals;
          const std::vector<float>& vals = a.values();
          for (int64_t i = row_begin; i < row_end; ++i) {
            const int g = frontier[static_cast<size_t>(i)];
            row_cols.clear();
            row_vals.clear();
            if (!mask.empty() && mask[static_cast<size_t>(i)]) {
              // Pruned row: bare self entry. The masked kernels never read
              // it; the value is kept only so the unfused SpMM + RowSelect
              // path stays shape-valid.
              row_cols.push_back(static_cast<int>(i));
              row_vals.push_back(
                  vals[static_cast<size_t>(SelfEntry(a, g))]);
            } else {
              fill.Select(g);
              const int64_t begin = a.RowBegin(g);
              const int64_t end = a.RowEnd(g);
              const int m = static_cast<int>(end - begin) - 1;
              const int k = static_cast<int>(fill.entries().size());
              // Renormalise to preserve the Â row sum. Both sums accumulate
              // in double over ascending entry order — a pure function of
              // the selection — and a full-neighborhood row keeps scale 1
              // exactly (the block row is then a verbatim Â slice).
              double scale = 1.0;
              if (k < m) {
                double full = 0.0;
                for (int64_t e = begin; e < end; ++e) {
                  full += vals[static_cast<size_t>(e)];
                }
                double kept = vals[static_cast<size_t>(fill.self_entry())];
                for (const int64_t e : fill.entries()) {
                  kept += vals[static_cast<size_t>(e)];
                }
                if (kept > 0.0) scale = full / kept;
              }
              row_cols.push_back(static_cast<int>(i));
              row_vals.push_back(static_cast<float>(
                  vals[static_cast<size_t>(fill.self_entry())] * scale));
              for (const int64_t e : fill.entries()) {
                const int local =
                    LocalId(a.col_idx()[static_cast<size_t>(e)]);
                row_cols.push_back(local);
                row_vals.push_back(static_cast<float>(
                    vals[static_cast<size_t>(e)] * scale));
              }
            }
            builder.AddRowEntries(static_cast<int>(i), row_cols.data(),
                                  row_vals.data(),
                                  static_cast<int>(row_cols.size()));
          }
        },
        /*min_cost_per_chunk=*/256);

    SampledLayer& out = batch.layers[static_cast<size_t>(layer)];
    out.block = std::make_shared<const CsrMatrix>(builder.Build());
    out.skip_mask = std::move(mask);
  }

  batch.input_nodes = std::move(frontier);
  if (batch.nodes_pruned > 0) {
    CountMetric("sampler.nodes_pruned", batch.nodes_pruned);
  }
  if (batch.edges_pruned > 0) {
    CountMetric("sampler.edges_pruned", batch.edges_pruned);
  }
  return batch;
}

}  // namespace skipnode
