// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// An attributed, undirected graph: the dataset object every experiment
// consumes. Holds node features, optional labels, optional per-node year
// (for temporal splits), and caches the GCN-normalised adjacency.

#ifndef SKIPNODE_GRAPH_GRAPH_H_
#define SKIPNODE_GRAPH_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "sparse/graph_ops.h"
#include "tensor/matrix.h"

namespace skipnode {

// Immutable after construction (strategies that resample the topology build
// fresh adjacency matrices from edges() instead of mutating the graph).
class Graph {
 public:
  // Validates that edges reference valid nodes, features have num_nodes
  // rows, and labels (if any) are within [0, num_classes).
  Graph(std::string name, int num_nodes, EdgeList edges, Matrix features,
        std::vector<int> labels, int num_classes);

  const std::string& name() const { return name_; }
  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  int num_classes() const { return num_classes_; }
  int feature_dim() const { return features_.cols(); }

  const EdgeList& edges() const { return edges_; }
  const Matrix& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  bool has_labels() const { return !labels_.empty(); }

  // Per-node publication year, used by the arxiv-like temporal split. Empty
  // unless set_years() was called.
  const std::vector<int>& years() const { return years_; }
  void set_years(std::vector<int> years);

  // Simple-graph degrees (no self-loops).
  const std::vector<int>& degrees() const { return degrees_; }

  // degrees() as doubles, cached: the weight vector SkipNode-B feeds the
  // weighted sampler, built once per graph instead of once per middle layer
  // of every epoch.
  const std::vector<double>& degree_weights() const;

  // Cached A_hat = (D+I)^{-1/2}(A+I)(D+I)^{-1/2} as a shared_ptr so sampled
  // per-epoch variants and the cached one flow through the same SpMM API.
  std::shared_ptr<const CsrMatrix> normalized_adjacency() const;

  // Connected component id per node (cached).
  const std::vector<int>& components() const;

  // Fraction of edges whose endpoints share a label (edge homophily).
  // Requires labels.
  double EdgeHomophily() const;

 private:
  std::string name_;
  int num_nodes_;
  EdgeList edges_;
  Matrix features_;
  std::vector<int> labels_;
  int num_classes_;
  std::vector<int> years_;
  std::vector<int> degrees_;
  mutable std::shared_ptr<const CsrMatrix> normalized_adjacency_;
  mutable std::vector<double> degree_weights_;
  mutable bool degree_weights_computed_ = false;
  mutable std::vector<int> components_;
  mutable bool components_computed_ = false;
};

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_GRAPH_H_
