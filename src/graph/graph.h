// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// An attributed, undirected graph: the dataset object every experiment
// consumes. Holds node features, optional labels, optional per-node year
// (for temporal splits), and caches the GCN-normalised adjacency.

#ifndef SKIPNODE_GRAPH_GRAPH_H_
#define SKIPNODE_GRAPH_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "sparse/graph_ops.h"
#include "tensor/matrix.h"

namespace skipnode {

// Immutable after construction (strategies that resample the topology build
// fresh adjacency matrices from edges() instead of mutating the graph).
//
// Two backings (DESIGN §13):
//   * Edge-list-backed — the classic constructor; edges() is the source of
//     truth and A_hat is normalised lazily from it. Supports every topology
//     resampler (DropEdge/DropNode, link splits).
//   * CSR-backed — the streaming-generator path for 100k–1M+ node graphs:
//     adopts a pre-normalised A_hat and per-node degrees, and the undirected
//     edge list is never materialised. edges() aborts with a clear message;
//     components()/EdgeHomophily() walk the CSR pattern instead.
class Graph {
 public:
  // Validates that edges reference valid nodes, features have num_nodes
  // rows, and labels (if any) are within [0, num_classes).
  Graph(std::string name, int num_nodes, EdgeList edges, Matrix features,
        std::vector<int> labels, int num_classes);

  // CSR-backed constructor: adopts a pre-normalised A_hat (pattern = A+I),
  // simple-graph degrees, and the undirected edge count. No edge list.
  Graph(std::string name, int num_nodes,
        std::shared_ptr<const CsrMatrix> normalized_adjacency,
        std::vector<int> degrees, int64_t num_undirected_edges,
        Matrix features, std::vector<int> labels, int num_classes);

  const std::string& name() const { return name_; }
  int num_nodes() const { return num_nodes_; }
  int num_edges() const {
    return csr_backed_ ? static_cast<int>(num_edges_)
                       : static_cast<int>(edges_.size());
  }
  int num_classes() const { return num_classes_; }
  int feature_dim() const { return features_.cols(); }

  // True when the graph adopted a pre-built A_hat and has no edge list.
  bool csr_backed() const { return csr_backed_; }

  // Aborts on CSR-backed graphs: the edge list was never materialised, so
  // edge-list consumers (DropEdge/DropNode, link splits) are unsupported at
  // streaming scale.
  const EdgeList& edges() const;
  const Matrix& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  bool has_labels() const { return !labels_.empty(); }

  // Per-node publication year, used by the arxiv-like temporal split. Empty
  // unless set_years() was called.
  const std::vector<int>& years() const { return years_; }
  void set_years(std::vector<int> years);

  // Simple-graph degrees (no self-loops).
  const std::vector<int>& degrees() const { return degrees_; }

  // degrees() as doubles, cached: the weight vector SkipNode-B feeds the
  // weighted sampler, built once per graph instead of once per middle layer
  // of every epoch.
  const std::vector<double>& degree_weights() const;

  // Cached A_hat = (D+I)^{-1/2}(A+I)(D+I)^{-1/2} as a shared_ptr so sampled
  // per-epoch variants and the cached one flow through the same SpMM API.
  std::shared_ptr<const CsrMatrix> normalized_adjacency() const;

  // Connected component id per node (cached).
  const std::vector<int>& components() const;

  // Fraction of edges whose endpoints share a label (edge homophily).
  // Requires labels.
  double EdgeHomophily() const;

  // Resident bytes of the dataset: A_hat (if built), features, and the
  // per-node / per-edge side vectors. The denominator of the bench/scale
  // peak-RSS budget (DESIGN §13).
  int64_t MemoryFootprintBytes() const;

 private:
  std::string name_;
  int num_nodes_;
  bool csr_backed_ = false;
  int64_t num_edges_ = 0;  // Undirected edge count (CSR-backed only).
  EdgeList edges_;
  Matrix features_;
  std::vector<int> labels_;
  int num_classes_;
  std::vector<int> years_;
  std::vector<int> degrees_;
  mutable std::shared_ptr<const CsrMatrix> normalized_adjacency_;
  mutable std::vector<double> degree_weights_;
  mutable bool degree_weights_computed_ = false;
  mutable std::vector<int> components_;
  mutable bool components_computed_ = false;
};

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_GRAPH_H_
