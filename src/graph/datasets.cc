// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "graph/generators.h"

namespace skipnode {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // Sizes follow DESIGN.md section 5: homophilic citation stand-ins at paper
  // scale (Pubmed scaled down), heterophilic web stand-ins, and scaled-down
  // OGB stand-ins. Heterophilic graphs get stronger feature signal: there the
  // label lives in the features, not the neighbourhood, which is exactly why
  // vanilla GCN underperforms on them.
  static const std::vector<DatasetSpec>* const kSpecs =
      new std::vector<DatasetSpec>{
          {"cora_like", 2708, 5429, 7, 128, 0.81, 0.62, 12, 2.5, false},
          {"citeseer_like", 3327, 4732, 6, 128, 0.74, 0.62, 12, 2.5, false},
          {"pubmed_like", 4000, 9000, 3, 96, 0.80, 0.60, 12, 2.5, false},
          {"chameleon_like", 2277, 18000, 5, 128, 0.23, 0.55, 10, 2.0, false},
          {"cornell_like", 183, 295, 5, 64, 0.13, 0.70, 10, 2.5, false},
          {"texas_like", 183, 309, 5, 64, 0.11, 0.70, 10, 2.5, false},
          {"wisconsin_like", 251, 499, 5, 64, 0.20, 0.70, 10, 2.5, false},
          {"arxiv_like", 8000, 50000, 40, 128, 0.65, 0.75, 14, 2.2, true},
          {"ppa_like", 6000, 120000, 8, 32, 0.90, 0.30, 8, 2.0, false},
      };
  return *kSpecs;
}

const DatasetSpec& FindDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  SKIPNODE_CHECK_MSG(false, "unknown dataset '%s'", name.c_str());
  __builtin_unreachable();
}

Graph BuildDataset(const DatasetSpec& spec, double scale, uint64_t seed) {
  SKIPNODE_CHECK(scale > 0.0 && scale <= 1.0);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);

  const int n = std::max(spec.num_classes * 8,
                         static_cast<int>(std::lround(spec.num_nodes * scale)));
  const int e = std::max(n, static_cast<int>(std::lround(
                                spec.num_edges * scale)));

  PlantedPartitionConfig graph_config;
  graph_config.num_nodes = n;
  graph_config.num_classes = spec.num_classes;
  graph_config.num_edges = e;
  graph_config.homophily = spec.homophily;
  graph_config.power_law = spec.power_law;
  PlantedPartitionGraph generated = PlantedPartition(graph_config, rng);

  FeatureConfig feature_config;
  feature_config.dim = spec.feature_dim;
  feature_config.words_per_node = spec.words_per_node;
  feature_config.signal = spec.feature_signal;
  Matrix features = MakeClassFeatures(generated.labels, spec.num_classes,
                                      feature_config, rng);

  Graph graph(spec.name, n, std::move(generated.edges), std::move(features),
              std::move(generated.labels), spec.num_classes);

  if (spec.with_years) {
    // Synthetic publication years: ~70% of nodes <= 2017 (train), ~10% 2018
    // (validation), ~20% >= 2019 (test), mirroring the ogbn-arxiv protocol.
    std::vector<int> years(n);
    for (int i = 0; i < n; ++i) {
      const double u = rng.Uniform();
      if (u < 0.70) {
        years[i] = 2010 + static_cast<int>(rng.UniformInt(8));  // 2010-2017
      } else if (u < 0.80) {
        years[i] = 2018;
      } else {
        years[i] = 2019 + static_cast<int>(rng.UniformInt(2));  // 2019-2020
      }
    }
    graph.set_years(std::move(years));
  }
  return graph;
}

Graph BuildDatasetByName(const std::string& name, double scale,
                         uint64_t seed) {
  return BuildDataset(FindDatasetSpec(name), scale, seed);
}

}  // namespace skipnode
