// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "graph/datasets.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <utility>

#include "base/check.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/telemetry.h"
#include "graph/generators.h"
#include "sparse/csr_builder.h"

namespace skipnode {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  // Sizes follow DESIGN.md section 5: homophilic citation stand-ins at paper
  // scale (Pubmed scaled down), heterophilic web stand-ins, and scaled-down
  // OGB stand-ins. Heterophilic graphs get stronger feature signal: there the
  // label lives in the features, not the neighbourhood, which is exactly why
  // vanilla GCN underperforms on them.
  static const std::vector<DatasetSpec>* const kSpecs =
      new std::vector<DatasetSpec>{
          {"cora_like", 2708, 5429, 7, 128, 0.81, 0.62, 12, 2.5, false},
          {"citeseer_like", 3327, 4732, 6, 128, 0.74, 0.62, 12, 2.5, false},
          {"pubmed_like", 4000, 9000, 3, 96, 0.80, 0.60, 12, 2.5, false},
          {"chameleon_like", 2277, 18000, 5, 128, 0.23, 0.55, 10, 2.0, false},
          {"cornell_like", 183, 295, 5, 64, 0.13, 0.70, 10, 2.5, false},
          {"texas_like", 183, 309, 5, 64, 0.11, 0.70, 10, 2.5, false},
          {"wisconsin_like", 251, 499, 5, 64, 0.20, 0.70, 10, 2.5, false},
          {"arxiv_like", 8000, 50000, 40, 128, 0.65, 0.75, 14, 2.2, true},
          {"ppa_like", 6000, 120000, 8, 32, 0.90, 0.30, 8, 2.0, false},
      };
  return *kSpecs;
}

const DatasetSpec& FindDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  SKIPNODE_CHECK_MSG(false, "unknown dataset '%s'", name.c_str());
  __builtin_unreachable();
}

namespace {

// Synthetic publication years: ~70% of nodes <= 2017 (train), ~10% 2018
// (validation), ~20% >= 2019 (test), mirroring the ogbn-arxiv protocol.
std::vector<int> DrawYears(int n, Rng& rng) {
  std::vector<int> years(n);
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform();
    if (u < 0.70) {
      years[i] = 2010 + static_cast<int>(rng.UniformInt(8));  // 2010-2017
    } else if (u < 0.80) {
      years[i] = 2018;
    } else {
      years[i] = 2019 + static_cast<int>(rng.UniformInt(2));  // 2019-2020
    }
  }
  return years;
}

}  // namespace

Graph BuildDataset(const DatasetSpec& spec, double scale, uint64_t seed) {
  SKIPNODE_CHECK(scale > 0.0 && scale <= 1.0);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);

  const int n = std::max(spec.num_classes * 8,
                         static_cast<int>(std::lround(spec.num_nodes * scale)));
  const int e = std::max(n, static_cast<int>(std::lround(
                                spec.num_edges * scale)));

  PlantedPartitionConfig graph_config;
  graph_config.num_nodes = n;
  graph_config.num_classes = spec.num_classes;
  graph_config.num_edges = e;
  graph_config.homophily = spec.homophily;
  graph_config.power_law = spec.power_law;
  PlantedPartitionGraph generated = PlantedPartition(graph_config, rng);

  FeatureConfig feature_config;
  feature_config.dim = spec.feature_dim;
  feature_config.words_per_node = spec.words_per_node;
  feature_config.signal = spec.feature_signal;
  Matrix features = MakeClassFeatures(generated.labels, spec.num_classes,
                                      feature_config, rng);

  Graph graph(spec.name, n, std::move(generated.edges), std::move(features),
              std::move(generated.labels), spec.num_classes);

  if (spec.with_years) {
    graph.set_years(DrawYears(n, rng));
  }
  return graph;
}

Graph BuildDatasetByName(const std::string& name, double scale,
                         uint64_t seed) {
  return BuildDataset(FindDatasetSpec(name), scale, seed);
}

bool ParseDatasetRequest(const std::string& spec, DatasetRequest* request) {
  SKIPNODE_CHECK(request != nullptr);
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    request->name = spec;
    return true;
  }
  const std::string name = spec.substr(0, at);
  const std::string size = spec.substr(at + 1);
  if (name.empty() || size.empty()) return false;
  int64_t multiplier = 1;
  size_t digits = size.size();
  const char last =
      static_cast<char>(std::tolower(static_cast<unsigned char>(size.back())));
  if (last == 'k') {
    multiplier = 1000;
    --digits;
  } else if (last == 'm') {
    multiplier = 1000 * 1000;
    --digits;
  }
  if (digits == 0) return false;
  int64_t value = 0;
  for (size_t i = 0; i < digits; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(size[i]))) return false;
    value = value * 10 + (size[i] - '0');
    // Anything past ~2B nodes is out of int range anyway; stop before the
    // accumulator can overflow.
    if (value > std::numeric_limits<int>::max()) return false;
  }
  value *= multiplier;
  if (value <= 0 || value > std::numeric_limits<int>::max()) return false;
  request->name = name;
  request->nodes = value;
  return true;
}

Graph BuildStreamingDataset(const DatasetSpec& spec,
                            const DatasetRequest& request) {
  SKIPNODE_CHECK(request.scale > 0.0 && request.scale <= 1.0);
  SKIPNODE_CHECK(request.nodes >= 0);
  SKIPNODE_CHECK(request.avg_degree >= 0.0);
  Rng rng(request.seed * 0x9e3779b97f4a7c15ULL + 17);

  int64_t n64 = request.nodes > 0
                    ? request.nodes
                    : static_cast<int64_t>(
                          std::lround(spec.num_nodes * request.scale));
  n64 = std::max<int64_t>(n64, static_cast<int64_t>(spec.num_classes) * 8);
  SKIPNODE_CHECK_MSG(n64 <= std::numeric_limits<int>::max(),
                     "dataset '%s': node count out of int range",
                     spec.name.c_str());
  const int n = static_cast<int>(n64);
  const ScopedTimer timer("graph.stream_build", /*items=*/n);

  const double avg_degree =
      request.avg_degree > 0.0
          ? request.avg_degree
          : 2.0 * spec.num_edges / std::max(1, spec.num_nodes);
  int64_t target_edges =
      static_cast<int64_t>(std::llround(n * avg_degree / 2.0));
  target_edges = std::max<int64_t>(target_edges, n);
  SKIPNODE_CHECK_MSG(target_edges <= std::numeric_limits<int>::max(),
                     "dataset '%s': edge target out of int range",
                     spec.name.c_str());

  PlantedPartitionConfig config;
  config.num_nodes = n;
  config.num_classes = spec.num_classes;
  config.num_edges = static_cast<int>(target_edges);
  config.homophily = spec.homophily;
  config.power_law = spec.power_law;
  const DcSbmPlan plan = PlanDcSbm(config, rng);

  // A+I pattern, streamed twice: count, then fill; duplicates from the
  // set-free edge stream collapse in FinalizePattern.
  CsrBuilder builder(n, n);
  StreamDcSbmEdges(config, plan, [&](int u, int v) {
    builder.CountEntry(u);
    builder.CountEntry(v);
  });
  for (int i = 0; i < n; ++i) builder.CountEntry(i);
  builder.FinishCounting();
  StreamDcSbmEdges(config, plan, [&](int u, int v) {
    builder.AddPatternEntry(u, v);
    builder.AddPatternEntry(v, u);
  });
  for (int i = 0; i < n; ++i) builder.AddPatternEntry(i, i);
  builder.FinalizePattern();

  // Simple-graph degrees from the deduplicated pattern (self-loop excluded);
  // the GCN normalisation then reads the *final* degrees, which is why the
  // weights wait for BuildWithValues.
  std::vector<int> degrees(n);
  int64_t directed_entries = 0;
  for (int i = 0; i < n; ++i) {
    degrees[i] = builder.FinalRowNnz(i) - 1;
    directed_entries += degrees[i];
  }
  const int64_t num_undirected_edges = directed_entries / 2;

  std::vector<float> inv_sqrt(n);
  ParallelFor(
      0, n,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          inv_sqrt[i] = 1.0f / std::sqrt(static_cast<float>(degrees[i] + 1));
        }
      },
      /*min_per_thread=*/1 << 13);
  CsrMatrix a_hat = builder.BuildWithValues(
      [&](int r, int c) { return inv_sqrt[r] * inv_sqrt[c]; });

  FeatureConfig feature_config;
  feature_config.dim = spec.feature_dim;
  feature_config.words_per_node = spec.words_per_node;
  feature_config.signal = spec.feature_signal;
  Matrix features = MakeClassFeatures(plan.labels, spec.num_classes,
                                      feature_config, rng);

  std::vector<int> labels = plan.labels;
  Graph graph(spec.name, n,
              std::make_shared<const CsrMatrix>(std::move(a_hat)),
              std::move(degrees), num_undirected_edges, std::move(features),
              std::move(labels), spec.num_classes);
  if (spec.with_years) {
    graph.set_years(DrawYears(n, rng));
  }
  return graph;
}

namespace {

std::string SpecSummary(const DatasetSpec& spec) {
  return std::to_string(spec.num_nodes) + " nodes / " +
         std::to_string(spec.num_edges) + " edges, " +
         std::to_string(spec.num_classes) + " classes";
}

const DatasetSpec& SynthSpec() {
  // Streaming-only DC-SBM: sized through @SIZE / --nodes / --avg-degree, so
  // the base numbers are just the defaults for a bare "synth". The feature
  // dim is deliberately narrow (32): at streaming scale the adjacency, not
  // the feature matrix, should dominate the resident footprint, which is
  // what lets full-batch training fit the 2x peak-RSS budget (DESIGN §13).
  static const DatasetSpec* const kSpec = new DatasetSpec{
      "synth", 100000, 500000, 10, 32, 0.80, 0.62, 12, 2.5, false};
  return *kSpec;
}

}  // namespace

DatasetRegistry& DatasetRegistry::Global() {
  static DatasetRegistry* const registry = [] {
    auto* r = new DatasetRegistry();
    for (const DatasetSpec& spec : AllDatasetSpecs()) {
      r->Register(spec.name, SpecSummary(spec), [&spec](
                                                    const DatasetRequest& req) {
        // Unmodified sizes keep the legacy edge-list path: bit for bit the
        // graph BuildDatasetByName always produced.
        if (req.nodes == 0 && req.avg_degree == 0.0) {
          return BuildDataset(spec, req.scale, req.seed);
        }
        return BuildStreamingDataset(spec, req);
      });
    }
    r->Register("synth",
                SpecSummary(SynthSpec()) + " (streaming-only, CSR-backed)",
                [](const DatasetRequest& req) {
                  return BuildStreamingDataset(SynthSpec(), req);
                });
    return r;
  }();
  return *registry;
}

void DatasetRegistry::Register(std::string name, std::string summary,
                               Factory factory) {
  SKIPNODE_CHECK(!name.empty());
  SKIPNODE_CHECK(factory != nullptr);
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.summary = std::move(summary);
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back({std::move(name), std::move(summary),
                      std::move(factory)});
}

bool DatasetRegistry::Contains(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

Graph DatasetRegistry::Build(const DatasetRequest& request) const {
  for (const Entry& entry : entries_) {
    if (entry.name == request.name) return entry.factory(request);
  }
  SKIPNODE_CHECK_MSG(false, "unknown dataset '%s'", request.name.c_str());
  __builtin_unreachable();
}

std::vector<std::pair<std::string, std::string>>
DatasetRegistry::NamesWithSummaries() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.emplace_back(entry.name, entry.summary);
  }
  return out;
}

}  // namespace skipnode
