// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Seeded, thread-parallel neighbor sampler for minibatch training
// (DESIGN §15). A batch of seed nodes expands layer by layer (top layer
// first) into per-layer *bipartite blocks*: rectangular CSR slices of the
// normalised adjacency Â mapping a sampled src frontier onto the layer's
// dst frontier. Frontiers are nested — every dst frontier is a prefix of
// its src frontier, so local row i of a layer's output and local row i of
// its input name the same node — which is what lets the tape's masked /
// row-select kernels run over blocks unchanged.
//
// Per row, at most `fanout` non-self neighbors of Â are kept (drawn without
// replacement) plus the self entry, and the surviving values are rescaled
// by full-row-sum / sampled-row-sum so every block row preserves its Â row
// sum (rows whose whole neighborhood fits the fanout are copied exactly,
// scale 1). Blocks stream through CsrBuilder — counting is analytic, so no
// intermediate edge vector is ever materialised.
//
// Determinism contract (DESIGN §7): every dst row draws from its own Rng
// stream keyed on (batch_seed, layer, global node id), so the draw is a
// pure function of the row — independent of thread count, chunk boundaries
// and fill order. The serial frontier walk assigns local ids in
// first-appearance order (rows in order, entries in Â column order); the
// parallel fill pass then replays each row's stream into its own CSR
// segment. A fixed (seeds, batch_seed) pair therefore reproduces a batch
// bit for bit at any thread count.
//
// Skip-aware pruning: an optional per-layer mask callback (sampled from the
// SkipNode strategy — core/strategies.h builds it) marks dst rows that this
// batch will pass through unconvolved. Masked rows expand *no* neighbors —
// their block row is the bare self entry, which the masked kernels never
// read — so the frontier below them stays small. Telemetry counters
// sampler.nodes_pruned / sampler.edges_pruned account the rows and the
// neighbor fetches saved.

#ifndef SKIPNODE_GRAPH_SAMPLER_H_
#define SKIPNODE_GRAPH_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "sparse/csr_matrix.h"

namespace skipnode {

struct SamplerConfig {
  // Per-layer cap on sampled non-self neighbors, one entry per model
  // convolution layer (fanouts[l] feeds layer l); every entry >= 1.
  std::vector<int> fanouts;
};

// One layer's bipartite block. Rows are the layer's dst frontier, columns
// its src frontier; the dst frontier is the first `block->rows()` entries
// of the src frontier (prefix property above).
struct SampledLayer {
  // num_dst x num_src renormalised Â slice.
  std::shared_ptr<const CsrMatrix> block;
  // Per-dst-row SkipNode mask for this batch (empty = no mask). Rows with
  // mask != 0 hold only their self entry.
  std::vector<uint8_t> skip_mask;

  int num_dst() const { return block->rows(); }
  int num_src() const { return block->cols(); }
};

// One minibatch: per-layer blocks plus the id maps. layers[l] is consumed
// by model layer l; layers.back()'s dst frontier is exactly `seeds`.
struct SampledBatch {
  std::vector<int> seeds;
  // Global ids of the bottom src frontier — the rows of the feature matrix
  // the forward pass gathers. seeds is a prefix of this.
  std::vector<int> input_nodes;
  std::vector<SampledLayer> layers;
  // Skip-aware pruning accounting for this batch: masked dst rows, and the
  // neighbor draws those rows would otherwise have fetched.
  int64_t nodes_pruned = 0;
  int64_t edges_pruned = 0;
};

// Samples the skip mask for `layer` over its dst frontier (global ids)
// *before* neighbors are fetched. An empty return (or a null function)
// means no pruning for that layer. Called serially, top layer first, so
// implementations may draw from a shared Rng.
using LayerSkipMaskFn = std::function<std::vector<uint8_t>(
    int layer, const std::vector<int>& dst_nodes)>;

// Expands seed batches into block sequences over one graph. Holds cached
// per-node state (the global→local id map, generation-stamped so batches
// don't pay an O(N) clear); MemoryFootprintBytes() reports it so the
// bench/scale RSS budget stays honest. Not safe for concurrent
// SampleBlocks calls on the same instance — use one sampler per trainer.
class NeighborSampler {
 public:
  // `graph` must outlive the sampler; its normalised adjacency is built
  // here (one-time) if it does not exist yet.
  NeighborSampler(const Graph& graph, SamplerConfig config);

  // Expands `seeds` (distinct node ids) into one SampledBatch. A fixed
  // (seeds, batch_seed) reproduces the batch bitwise at any thread count.
  // `skip_mask_fn` may be null (no pruning).
  SampledBatch SampleBlocks(const std::vector<int>& seeds, uint64_t batch_seed,
                            const LayerSkipMaskFn& skip_mask_fn);

  const SamplerConfig& config() const { return config_; }

  // Heap bytes of the cached per-node state (the stamped id map). Added to
  // Graph::MemoryFootprintBytes() in the scale bench's RSS denominator.
  int64_t MemoryFootprintBytes() const;

 private:
  // Local id of `node` this generation, or -1.
  int LocalId(int node) const {
    return stamp_[static_cast<size_t>(node)] == generation_
               ? local_id_[static_cast<size_t>(node)]
               : -1;
  }
  // Assigns the next local id to `node` (must be unseen) and records it in
  // `frontier`.
  void Assign(int node, std::vector<int>& frontier) {
    local_id_[static_cast<size_t>(node)] =
        static_cast<int>(frontier.size());
    stamp_[static_cast<size_t>(node)] = generation_;
    frontier.push_back(node);
  }

  const Graph& graph_;
  SamplerConfig config_;
  std::shared_ptr<const CsrMatrix> adjacency_;

  // Generation-stamped global→local map: local_id_[n] is valid only when
  // stamp_[n] == generation_, so starting a batch is O(1).
  std::vector<int> local_id_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
};

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_SAMPLER_H_
