// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Random-graph and random-feature generators. The Erdos-Renyi generator
// reproduces the paper's Figure 4 setup; the degree-corrected planted
// partition generator plus class-conditional bag-of-words features produce
// the synthetic stand-ins for the paper's benchmark datasets (see DESIGN.md
// section 1 for the substitution rationale).

#ifndef SKIPNODE_GRAPH_GENERATORS_H_
#define SKIPNODE_GRAPH_GENERATORS_H_

#include <functional>
#include <vector>

#include "base/rng.h"
#include "sparse/graph_ops.h"
#include "tensor/matrix.h"

namespace skipnode {

// G(n, p): every unordered pair is an edge independently with probability p.
EdgeList ErdosRenyi(int num_nodes, double p, Rng& rng);

// Degree-corrected planted-partition generator.
struct PlantedPartitionConfig {
  int num_nodes = 0;
  int num_classes = 2;
  // Expected number of undirected edges to draw (duplicates collapse, so the
  // realised count is slightly lower on dense configs).
  int num_edges = 0;
  // Probability that a drawn edge connects two nodes of the same class
  // (edge homophily target).
  double homophily = 0.8;
  // Degree propensity theta_i ~ U(0,1)^{-1/power_law} capped at
  // max_propensity; power_law <= 0 disables degree correction.
  double power_law = 2.5;
  double max_propensity = 10.0;
};

struct PlantedPartitionGraph {
  EdgeList edges;
  std::vector<int> labels;
};

// Draws a graph with the requested size, class structure, homophily, and a
// heavy-ish-tailed degree distribution (the regime in which the paper's
// biased SkipNode sampler is motivated).
PlantedPartitionGraph PlantedPartition(const PlantedPartitionConfig& config,
                                       Rng& rng);

// Precomputed sampling state for a *streamed* DC-SBM draw (DESIGN §13): the
// label assignment and cumulative propensity tables — the same planning math
// as PlantedPartition — plus a forked edge-stream Rng so the accepted edge
// sequence can be replayed (once to count, once to fill a CsrBuilder)
// without ever materialising the edge list. The fork is seeded by a single
// draw from `rng`, so the caller's stream stays independent of how many
// draws the edge stream ends up making.
struct DcSbmPlan {
  std::vector<int> labels;
  std::vector<std::vector<int>> class_members;
  std::vector<double> global_cdf;
  std::vector<std::vector<double>> class_cdf;
  Rng edge_stream_rng;
};

DcSbmPlan PlanDcSbm(const PlantedPartitionConfig& config, Rng& rng);

// Replays the plan's edge stream, calling emit(u, v) with u < v for every
// accepted draw (u != v; duplicates are NOT filtered here — the pattern-mode
// CsrBuilder collapses them, where PlantedPartition used a std::set).
// Deterministic: every call over the same plan emits the identical sequence.
void StreamDcSbmEdges(const PlantedPartitionConfig& config,
                      const DcSbmPlan& plan,
                      const std::function<void(int, int)>& emit);

// Class-conditional sparse binary "bag-of-words" features.
struct FeatureConfig {
  int dim = 128;
  // Active words per node.
  int words_per_node = 12;
  // Probability an active word is drawn from the node's class topic set
  // (rest are uniform noise). Higher = features more label-informative.
  double signal = 0.7;
  // Fraction of the vocabulary owned by each class topic set.
  double topic_fraction = 0.12;
  // L2-normalise rows (standard GCN preprocessing).
  bool row_normalize = true;
};

Matrix MakeClassFeatures(const std::vector<int>& labels, int num_classes,
                         const FeatureConfig& config, Rng& rng);

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_GENERATORS_H_
