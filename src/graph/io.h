// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Plain-text I/O so users can bring their own graphs (and export results).
// Formats are deliberately simple:
//   * edge list:   one "u v" pair per line, 0-based node ids, '#' comments;
//   * labels:      one integer per line, row i = node i;
//   * matrix CSV:  comma-separated floats, one row per line.
// All loaders return false on malformed input instead of aborting (I/O
// errors are environmental, not programming errors). Malformed means:
// ragged rows, non-numeric or partially-numeric tokens ("1.5abc"), extra
// columns, integer overflow, negative node ids / labels, labels beyond a
// claimed class count, and non-finite CSV values. CRLF line endings are
// tolerated.

#ifndef SKIPNODE_GRAPH_IO_H_
#define SKIPNODE_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace skipnode {

// Reads an undirected edge list. Self-loops and duplicate edges are
// dropped (the normalisation adds self-loops itself). `num_nodes` is
// inferred as max id + 1 unless `min_num_nodes` is larger.
bool LoadEdgeList(const std::string& path, EdgeList* edges, int* num_nodes,
                  int min_num_nodes = 0);

// Writes one "u v" line per undirected edge.
bool SaveEdgeList(const std::string& path, const EdgeList& edges);

// Reads per-node integer labels (one per line, each >= 0). When
// `num_classes` is non-negative it is the claimed class count and any label
// >= num_classes fails the load.
bool LoadLabels(const std::string& path, std::vector<int>* labels,
                int num_classes = -1);

bool SaveLabels(const std::string& path, const std::vector<int>& labels);

// Reads a dense float matrix from CSV; every row must have the same arity.
bool LoadMatrixCsv(const std::string& path, Matrix* matrix);

bool SaveMatrixCsv(const std::string& path, const Matrix& matrix);

// Convenience: assembles a Graph from the three files above. The label file
// may be empty-string for unlabeled graphs (num_classes inferred as
// max label + 1 otherwise). Returns false on any load failure or shape
// mismatch.
bool LoadGraph(const std::string& name, const std::string& edge_path,
               const std::string& feature_csv_path,
               const std::string& label_path, std::unique_ptr<Graph>* graph);

}  // namespace skipnode

#endif  // SKIPNODE_GRAPH_IO_H_
