// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/trainer.h"

#include "base/check.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace skipnode {

TrainResult TrainNodeClassifier(Model& model, const Graph& graph,
                                const Split& split,
                                const StrategyConfig& strategy,
                                const TrainRun& run) {
  const TrainOptions& options = run.options;
  SKIPNODE_CHECK(graph.has_labels());
  SKIPNODE_CHECK(!split.train.empty());
  Rng rng(options.seed);
  Adam optimizer(options.learning_rate, options.weight_decay);
  const std::vector<Parameter*> parameters = model.Parameters();

  TrainResult result;
  int epochs_since_best = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // --- Training step -----------------------------------------------------
    {
      Tape tape;
      StrategyContext ctx(graph, strategy, /*training=*/true, rng);
      Var logits = model.Forward(tape, graph, ctx, /*training=*/true, rng);
      Var loss =
          tape.SoftmaxCrossEntropy(logits, graph.labels(), split.train);
      const Var aux = model.AuxiliaryLoss(tape);
      if (aux.valid()) loss = tape.Add(loss, aux);
      result.final_train_loss = loss.value()(0, 0);
      Optimizer::ZeroGrad(parameters);
      tape.Backward(loss);
      optimizer.Step(parameters);
    }
    result.epochs_run = epoch + 1;

    // --- Periodic evaluation ----------------------------------------------
    if (epoch % options.eval_every != 0 && epoch != options.epochs - 1) {
      continue;
    }
    {
      Tape tape;
      StrategyContext ctx(graph, strategy, /*training=*/false, rng);
      Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);
      const double val_acc =
          Accuracy(logits.value(), graph.labels(), split.val);
      const double test_acc =
          Accuracy(logits.value(), graph.labels(), split.test);
      if (run.on_epoch) {
        run.on_epoch(epoch, result.final_train_loss, val_acc, test_acc);
      }
      if (val_acc > result.best_val_accuracy || result.best_epoch < 0) {
        result.best_val_accuracy = val_acc;
        result.test_accuracy = test_acc;
        result.best_epoch = epoch;
        epochs_since_best = 0;
      } else {
        epochs_since_best += options.eval_every;
        if (options.patience > 0 && epochs_since_best >= options.patience) {
          break;
        }
      }
    }
  }
  return result;
}

Matrix EvaluateLogits(Model& model, const Graph& graph,
                      const StrategyConfig& strategy) {
  // Eval-mode forwards never draw from the Rng (dropout is identity and the
  // sampling strategies are disabled when training=false); this Rng only
  // satisfies Model::Forward's signature. The value is irrelevant.
  Rng rng(0);
  Tape tape;
  StrategyContext ctx(graph, strategy, /*training=*/false, rng);
  Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);
  return logits.value();
}

}  // namespace skipnode
