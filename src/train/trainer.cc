// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <numeric>
#include <utility>

#include "autograd/health.h"
#include "base/check.h"
#include "base/telemetry.h"
#include "serve/frozen_model.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

// Outcome of one guarded training step.
enum class StepStatus {
  kOk,          // stepped normally
  kRolledBack,  // fault detected, snapshot restored — skip this epoch's eval
  kHalt,        // rollback budget exhausted — stop training
};

std::string FormatDetail(const char* format, ...) {
  char buffer[160];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

}  // namespace

const char* HealthEventKindName(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kFaultInjected:
      return "fault-injected";
    case HealthEventKind::kNonFiniteLoss:
      return "non-finite-loss";
    case HealthEventKind::kNonFiniteGradient:
      return "non-finite-gradient";
    case HealthEventKind::kNonFiniteParameter:
      return "non-finite-parameter";
    case HealthEventKind::kGradientClipped:
      return "gradient-clipped";
    case HealthEventKind::kRollback:
      return "rollback";
    case HealthEventKind::kRecoveryExhausted:
      return "recovery-exhausted";
  }
  return "?";
}

TrainResult TrainNodeClassifier(Model& model, const Graph& graph,
                                const Split& split,
                                const StrategyConfig& strategy,
                                const TrainRun& run) {
  const TrainOptions& options = run.options;
  const HealthOptions& health = run.health;
  SKIPNODE_CHECK(graph.has_labels());
  SKIPNODE_CHECK(!split.train.empty());
  SKIPNODE_CHECK(health.check_every >= 1);
  SKIPNODE_CHECK(health.max_rollbacks >= 0);
  SKIPNODE_CHECK(health.lr_backoff > 0.0f && health.lr_backoff <= 1.0f);
  SKIPNODE_CHECK(health.grad_clip_norm >= 0.0f);
  SKIPNODE_CHECK(!run.fault.enabled || run.fault.parameter_index >= 0);
  Rng rng(options.seed);
  float learning_rate = options.learning_rate;
  Adam optimizer(learning_rate, options.weight_decay);
  const std::vector<Parameter*> parameters = model.Parameters();
  FaultInjector injector(run.fault);

  // Minibatch sampling state (DESIGN §15). The sampler and the mask callback
  // live for the whole run; the callback draws the per-batch SkipNode masks
  // from the run Rng, serially, inside SampleBlocks.
  const SamplingOptions& sampling = run.sampling;
  std::unique_ptr<NeighborSampler> sampler;
  LayerSkipMaskFn sampled_mask_fn;
  std::vector<int> seed_order;
  if (sampling.enabled()) {
    SKIPNODE_CHECK_MSG(model.SupportsSampledForward(),
                       "model does not support sampled training");
    SKIPNODE_CHECK(sampling.batch_size >= 1);
    sampler = std::make_unique<NeighborSampler>(
        graph, SamplerConfig{sampling.fanouts});
    sampled_mask_fn = MakeSampledSkipMaskFn(
        graph, strategy, static_cast<int>(sampling.fanouts.size()), rng);
    seed_order = split.train;
  }

  TrainResult result;
  result.final_learning_rate = learning_rate;

  const auto log_event = [&](HealthEventKind kind, int epoch,
                             std::string detail) {
    HealthEvent event{kind, epoch, std::move(detail)};
    if (run.health_log != nullptr) run.health_log->push_back(event);
    result.health_log.push_back(std::move(event));
  };

  // The last known-good parameter snapshot. Taken before the first step and
  // refreshed on every scan epoch that passes all checks; rollback restores
  // it verbatim. Plain copies — taking one cannot perturb training.
  std::vector<Matrix> snapshot;
  int snapshot_epoch = -1;
  const auto take_snapshot = [&](int epoch) {
    snapshot.clear();
    for (const Parameter* p : parameters) snapshot.push_back(p->value);
    snapshot_epoch = epoch;
  };

  // Restores the snapshot, decays the LR, and restarts the optimizer (a bad
  // step may have poisoned the Adam moments; fresh moments are the only
  // state guaranteed clean). Returns false once the budget is spent.
  const auto rollback = [&](int epoch) {
    if (result.rollbacks >= health.max_rollbacks) {
      log_event(HealthEventKind::kRecoveryExhausted, epoch,
                FormatDetail("%d rollbacks spent", result.rollbacks));
      return false;
    }
    ++result.rollbacks;
    for (size_t i = 0; i < parameters.size(); ++i) {
      parameters[i]->value = snapshot[i];
    }
    const float decayed = learning_rate * health.lr_backoff;
    log_event(HealthEventKind::kRollback, epoch,
              FormatDetail("restored epoch-%d snapshot, lr %g -> %g",
                           snapshot_epoch, learning_rate, decayed));
    learning_rate = decayed;
    result.final_learning_rate = learning_rate;
    optimizer = Adam(learning_rate, options.weight_decay);
    return true;
  };

  // Phase timing for the current epoch. Clock reads sit between phases only
  // (never inside a kernel), so enabling them cannot perturb a single weight
  // bit. `now` collapses to a constant when nobody is listening, keeping the
  // untimed path free of clock syscalls.
  const bool timed = run.collect_metrics || TelemetryEnabled();
  EpochMetrics phase;
  const auto now = [timed]() { return timed ? MonotonicNanos() : 0; };

  const auto maybe_inject = [&](FaultSite site, int epoch, float* data,
                                int64_t size) {
    if (!injector.ShouldFire(site, epoch)) return;
    injector.Corrupt(data, size, epoch);
    log_event(HealthEventKind::kFaultInjected, epoch,
              FormatDetail("%s %s x%zu", FaultSiteName(site),
                           FaultKindName(run.fault.kind),
                           injector.events().back().indices.size()));
  };

  // One training step under the guardrails. Factored out so the epoch loop
  // below reads as: step, then (maybe) evaluate.
  const auto train_step = [&](int epoch) {
    const bool scan_epoch =
        health.enabled &&
        (epoch % health.check_every == 0 || epoch == options.epochs - 1);
    const int64_t forward_start = now();
    Tape tape;
    tape.set_fast_math(strategy.fast_math);
    StrategyContext ctx(graph, strategy, /*training=*/true, rng);
    Var logits = model.Forward(tape, graph, ctx, /*training=*/true, rng);
    {
      Matrix& activations = tape.MutableValue(logits);
      maybe_inject(FaultSite::kActivation, epoch, activations.data(),
                   activations.size());
    }
    Var loss = tape.SoftmaxCrossEntropy(logits, graph.labels(), split.train);
    const Var aux = model.AuxiliaryLoss(tape);
    if (aux.valid()) loss = tape.Add(loss, aux);
    const double loss_value = loss.value()(0, 0);
    phase.forward_ns = now() - forward_start;
    result.final_train_loss = loss_value;
    if (health.enabled && !std::isfinite(loss_value)) {
      log_event(HealthEventKind::kNonFiniteLoss, epoch,
                FormatDetail("loss = %g", loss_value));
      return rollback(epoch) ? StepStatus::kRolledBack : StepStatus::kHalt;
    }
    const int64_t backward_start = now();
    Optimizer::ZeroGrad(parameters);
    tape.Backward(loss);
    if (injector.ShouldFire(FaultSite::kGradient, epoch)) {
      Parameter* target =
          parameters[run.fault.parameter_index % parameters.size()];
      maybe_inject(FaultSite::kGradient, epoch, target->grad.data(),
                   target->grad.size());
    }
    phase.backward_ns = now() - backward_start;
    if (scan_epoch || (health.enabled && health.grad_clip_norm > 0.0f)) {
      const int64_t probe_start = now();
      const GradientHealth grads = ProbeGradients(parameters);
      if (!grads.finite) {
        log_event(HealthEventKind::kNonFiniteGradient, epoch,
                  grads.first_bad);
        return rollback(epoch) ? StepStatus::kRolledBack : StepStatus::kHalt;
      }
      if (health.grad_clip_norm > 0.0f &&
          grads.global_norm > health.grad_clip_norm) {
        ScaleGradients(parameters,
                       static_cast<float>(health.grad_clip_norm /
                                          grads.global_norm));
        log_event(HealthEventKind::kGradientClipped, epoch,
                  FormatDetail("norm %g > %g", grads.global_norm,
                               health.grad_clip_norm));
      }
      phase.health_ns += now() - probe_start;
    }
    const int64_t step_start = now();
    optimizer.Step(parameters);
    if (injector.ShouldFire(FaultSite::kUpdate, epoch)) {
      Parameter* target =
          parameters[run.fault.parameter_index % parameters.size()];
      maybe_inject(FaultSite::kUpdate, epoch, target->value.data(),
                   target->value.size());
    }
    phase.step_ns = now() - step_start;
    if (scan_epoch) {
      const int64_t scan_start = now();
      std::string first_bad;
      if (!ParametersFinite(parameters, &first_bad)) {
        log_event(HealthEventKind::kNonFiniteParameter, epoch, first_bad);
        return rollback(epoch) ? StepStatus::kRolledBack : StepStatus::kHalt;
      }
      take_snapshot(epoch);
      phase.health_ns += now() - scan_start;
    }
    return StepStatus::kOk;
  };

  // One sampled epoch: a pass over the shuffled train split in minibatches,
  // one optimizer step per batch, under the same guardrails as train_step
  // (loss check per batch; gradient probe / clip per batch when armed; the
  // parameter scan + snapshot once, after the epoch's last step). A rollback
  // abandons the rest of the epoch — the restored parameters predate every
  // batch of it. All Rng draws (shuffle, batch seeds, masks, dropout) happen
  // serially, so the epoch is bitwise identical at any thread count.
  const auto sampled_epoch = [&](int epoch) {
    const bool scan_epoch =
        health.enabled &&
        (epoch % health.check_every == 0 || epoch == options.epochs - 1);
    // Fisher-Yates from the run Rng: a fresh minibatch partition per epoch.
    for (size_t i = seed_order.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(rng.UniformInt(i));
      std::swap(seed_order[i - 1], seed_order[j]);
    }
    const size_t batch_size = static_cast<size_t>(sampling.batch_size);
    double epoch_loss = 0.0;
    int num_batches = 0;
    for (size_t start = 0; start < seed_order.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, seed_order.size());
      const std::vector<int> seeds(seed_order.begin() + start,
                                   seed_order.begin() + end);
      const uint64_t batch_seed = rng.Next();
      const int64_t forward_start = now();
      const SampledBatch batch =
          sampler->SampleBlocks(seeds, batch_seed, sampled_mask_fn);
      Tape tape;
      tape.set_fast_math(strategy.fast_math);
      Var logits = model.ForwardSampled(tape, graph, batch, strategy,
                                        /*training=*/true, rng);
      {
        Matrix& activations = tape.MutableValue(logits);
        maybe_inject(FaultSite::kActivation, epoch, activations.data(),
                     activations.size());
      }
      // Logit row i is seed i: the loss sees the batch-local id space.
      std::vector<int> batch_labels(seeds.size());
      std::vector<int> batch_nodes(seeds.size());
      for (size_t i = 0; i < seeds.size(); ++i) {
        batch_labels[i] = graph.labels()[static_cast<size_t>(seeds[i])];
        batch_nodes[i] = static_cast<int>(i);
      }
      const Var loss = tape.SoftmaxCrossEntropy(logits, batch_labels,
                                                batch_nodes);
      const double loss_value = loss.value()(0, 0);
      epoch_loss += loss_value;
      ++num_batches;
      result.final_train_loss = epoch_loss / num_batches;
      phase.forward_ns += now() - forward_start;
      if (health.enabled && !std::isfinite(loss_value)) {
        log_event(HealthEventKind::kNonFiniteLoss, epoch,
                  FormatDetail("loss = %g (batch %d)", loss_value,
                               num_batches - 1));
        return rollback(epoch) ? StepStatus::kRolledBack : StepStatus::kHalt;
      }
      const int64_t backward_start = now();
      Optimizer::ZeroGrad(parameters);
      tape.Backward(loss);
      if (injector.ShouldFire(FaultSite::kGradient, epoch)) {
        Parameter* target =
            parameters[run.fault.parameter_index % parameters.size()];
        maybe_inject(FaultSite::kGradient, epoch, target->grad.data(),
                     target->grad.size());
      }
      phase.backward_ns += now() - backward_start;
      if (scan_epoch || (health.enabled && health.grad_clip_norm > 0.0f)) {
        const int64_t probe_start = now();
        const GradientHealth grads = ProbeGradients(parameters);
        if (!grads.finite) {
          log_event(HealthEventKind::kNonFiniteGradient, epoch,
                    grads.first_bad);
          return rollback(epoch) ? StepStatus::kRolledBack : StepStatus::kHalt;
        }
        if (health.grad_clip_norm > 0.0f &&
            grads.global_norm > health.grad_clip_norm) {
          ScaleGradients(parameters,
                         static_cast<float>(health.grad_clip_norm /
                                            grads.global_norm));
          log_event(HealthEventKind::kGradientClipped, epoch,
                    FormatDetail("norm %g > %g", grads.global_norm,
                                 health.grad_clip_norm));
        }
        phase.health_ns += now() - probe_start;
      }
      const int64_t step_start = now();
      optimizer.Step(parameters);
      if (injector.ShouldFire(FaultSite::kUpdate, epoch)) {
        Parameter* target =
            parameters[run.fault.parameter_index % parameters.size()];
        maybe_inject(FaultSite::kUpdate, epoch, target->value.data(),
                     target->value.size());
      }
      phase.step_ns += now() - step_start;
    }
    if (scan_epoch) {
      const int64_t scan_start = now();
      std::string first_bad;
      if (!ParametersFinite(parameters, &first_bad)) {
        log_event(HealthEventKind::kNonFiniteParameter, epoch, first_bad);
        return rollback(epoch) ? StepStatus::kRolledBack : StepStatus::kHalt;
      }
      take_snapshot(epoch);
      phase.health_ns += now() - scan_start;
    }
    return StepStatus::kOk;
  };

  // Flushes the epoch's phase timings: into the process-wide telemetry
  // registry (no-ops when telemetry is off) and into the result when the
  // caller asked for per-epoch metrics. Called on every loop exit path.
  const auto finish_epoch = [&]() {
    if (timed) {
      RecordTiming("train.forward", phase.forward_ns);
      RecordTiming("train.backward", phase.backward_ns);
      RecordTiming("train.step", phase.step_ns);
      if (phase.health_ns > 0) RecordTiming("train.health", phase.health_ns);
      if (phase.eval_ns > 0) RecordTiming("train.eval", phase.eval_ns);
    }
    if (run.collect_metrics) result.epoch_metrics.push_back(phase);
  };

  if (health.enabled) take_snapshot(-1);

  int epochs_since_best = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    phase = EpochMetrics{};
    phase.epoch = epoch;
    const StepStatus status =
        sampling.enabled() ? sampled_epoch(epoch) : train_step(epoch);
    result.epochs_run = epoch + 1;
    phase.train_loss = result.final_train_loss;
    if (status == StepStatus::kHalt) {
      finish_epoch();
      break;
    }
    // A rolled-back epoch re-evaluates nothing: the parameters are an older,
    // already-evaluated state.
    if (status == StepStatus::kRolledBack) {
      finish_epoch();
      continue;
    }

    // --- Periodic evaluation ----------------------------------------------
    if (epoch % options.eval_every != 0 && epoch != options.epochs - 1) {
      finish_epoch();
      continue;
    }
    bool out_of_patience = false;
    {
      const int64_t eval_start = now();
      Tape tape;
      tape.set_fast_math(strategy.fast_math);
      StrategyContext ctx(graph, strategy, /*training=*/false, rng);
      Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);
      const double val_acc =
          Accuracy(logits.value(), graph.labels(), split.val);
      const double test_acc =
          Accuracy(logits.value(), graph.labels(), split.test);
      phase.eval_ns = now() - eval_start;
      if (run.on_epoch) {
        run.on_epoch(epoch, result.final_train_loss, val_acc, test_acc);
      }
      if (val_acc > result.best_val_accuracy || result.best_epoch < 0) {
        result.best_val_accuracy = val_acc;
        result.test_accuracy = test_acc;
        result.best_epoch = epoch;
        epochs_since_best = 0;
      } else {
        epochs_since_best += options.eval_every;
        out_of_patience =
            options.patience > 0 && epochs_since_best >= options.patience;
      }
    }
    finish_epoch();
    if (out_of_patience) break;
  }
  return result;
}

Matrix EvaluateLogits(Model& model, const Graph& graph,
                      const StrategyConfig& strategy) {
  // Routed through the serving layer so there is exactly one eval-mode
  // forward in the codebase: FrozenModel::Freeze runs the pass this
  // function used to run inline (frozen_model_test pins the two bitwise).
  return FrozenModel::Freeze(model, graph, strategy).full_logits();
}

}  // namespace skipnode
