// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Evaluation metrics: node-classification accuracy and the OGB-style
// ranked-negatives Hits@K for link prediction.

#ifndef SKIPNODE_TRAIN_METRICS_H_
#define SKIPNODE_TRAIN_METRICS_H_

#include <vector>

#include "tensor/matrix.h"

namespace skipnode {

// Fraction of `nodes` whose argmax logit equals labels[node].
double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& nodes);

// Macro-averaged F1 over `num_classes` classes restricted to `nodes`
// (classes absent from `nodes` are skipped). Useful on the imbalanced
// heterophilic stand-ins where accuracy hides per-class collapse.
double MacroF1(const Matrix& logits, const std::vector<int>& labels,
               const std::vector<int>& nodes, int num_classes);

// OGB Hits@K: the fraction of positive scores strictly greater than the
// K-th largest negative score. If fewer than K negatives exist, returns 1.
double HitsAtK(const std::vector<float>& positive_scores,
               const std::vector<float>& negative_scores, int k);

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_METRICS_H_
