// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Link-prediction training (Table 5 / ogbl-ppa protocol): a GNN encoder
// produces node embeddings, a dot-product decoder scores node pairs,
// training uses BCE on positive edges vs uniformly sampled negatives, and
// evaluation ranks held-out positives against a shared negative pool
// (Hits@K).

#ifndef SKIPNODE_TRAIN_LINK_TRAINER_H_
#define SKIPNODE_TRAIN_LINK_TRAINER_H_

#include "core/strategies.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/model.h"

namespace skipnode {

struct LinkTrainOptions {
  int epochs = 100;
  float learning_rate = 0.01f;
  float weight_decay = 0.0f;
  // Model selection metric: validation Hits@`selection_k`.
  int selection_k = 50;
  int eval_every = 5;
  uint64_t seed = 1;
};

struct LinkResult {
  // Test metrics at the best-validation epoch.
  double test_hits10 = 0.0;
  double test_hits50 = 0.0;
  double test_hits100 = 0.0;
  double best_val_hits = 0.0;
  int best_epoch = -1;
};

// `message_graph` must contain only the training edges (build it from
// LinkSplit::train_edges); the encoder is any Model whose output width is
// the embedding dimension.
LinkResult TrainLinkPredictor(Model& encoder, const Graph& message_graph,
                              const LinkSplit& split,
                              const StrategyConfig& strategy,
                              const LinkTrainOptions& options);

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_LINK_TRAINER_H_
