// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/dynamics.h"

#include <cmath>

#include "base/check.h"
#include "core/oversmoothing.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace skipnode {

DynamicsRecord TrainWithDynamics(Model& model, const Graph& graph,
                                 const Split& split,
                                 const StrategyConfig& strategy,
                                 const TrainOptions& options) {
  SKIPNODE_CHECK(graph.has_labels());
  Rng rng(options.seed);
  Adam optimizer(options.learning_rate, options.weight_decay);
  const std::vector<Parameter*> parameters = model.Parameters();

  DynamicsRecord record;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // --- Training step with gradient probes ---------------------------------
    {
      Tape tape;
      tape.set_fast_math(strategy.fast_math);
      StrategyContext ctx(graph, strategy, /*training=*/true, rng);
      Var logits = model.Forward(tape, graph, ctx, /*training=*/true, rng);
      Var loss =
          tape.SoftmaxCrossEntropy(logits, graph.labels(), split.train);
      const Var aux = model.AuxiliaryLoss(tape);
      if (aux.valid()) loss = tape.Add(loss, aux);
      record.train_loss.push_back(loss.value()(0, 0));
      Optimizer::ZeroGrad(parameters);
      tape.Backward(loss);

      // (b) Gradient at the classification layer, training rows only.
      const Matrix& g = logits.grad();
      double sq = 0.0, signed_sum = 0.0;
      for (const int node : split.train) {
        const float* row = g.row(node);
        for (int c = 0; c < g.cols(); ++c) {
          sq += static_cast<double>(row[c]) * row[c];
          signed_sum += row[c];
        }
      }
      record.output_gradient_norm.push_back(
          static_cast<float>(std::sqrt(sq)));
      record.output_gradient_signed_sum.push_back(
          static_cast<float>(signed_sum));
      record.first_layer_gradient_norm.push_back(
          parameters.front()->grad.Norm());

      optimizer.Step(parameters);
    }

    // (c) Weight norms after the update.
    float weight_norm = 0.0f;
    for (const Parameter* p : parameters) weight_norm += p->value.Norm();
    record.weight_norm.push_back(weight_norm);

    // --- Evaluation pass: (a) MAD of the penultimate representation + val.
    {
      Tape tape;
      tape.set_fast_math(strategy.fast_math);
      StrategyContext ctx(graph, strategy, /*training=*/false, rng);
      Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);
      const Matrix& penultimate = model.Penultimate();
      SKIPNODE_CHECK(!penultimate.empty());
      record.mad.push_back(MeanAverageDistance(graph, penultimate));
      record.val_accuracy.push_back(static_cast<float>(
          Accuracy(logits.value(), graph.labels(), split.val)));
    }
  }
  return record;
}

}  // namespace skipnode
