// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Full-batch node-classification training loop shared by every experiment:
// Adam + L2, per-epoch validation, model selection on best validation
// accuracy (the paper's protocol).

#ifndef SKIPNODE_TRAIN_TRAINER_H_
#define SKIPNODE_TRAIN_TRAINER_H_

#include <functional>

#include "core/strategies.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/model.h"

namespace skipnode {

struct TrainOptions {
  int epochs = 200;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  // Stop if validation accuracy has not improved for this many epochs
  // (<= 0 disables early stopping).
  int patience = 0;
  // Evaluate every `eval_every` epochs (validation + test tracking).
  int eval_every = 1;
  uint64_t seed = 1;
};

struct TrainResult {
  double best_val_accuracy = 0.0;
  // Test accuracy at the best-validation epoch.
  double test_accuracy = 0.0;
  int best_epoch = -1;
  double final_train_loss = 0.0;
  int epochs_run = 0;
};

// Observes training progress on evaluated epochs. The callback never sees
// the Rng and accuracy computation consumes no randomness, so attaching or
// removing it cannot change the TrainResult.
using EpochCallback = std::function<void(
    int epoch, double train_loss, double val_accuracy, double test_accuracy)>;

// A full training run: options plus optional instrumentation. Construct with
// designated initializers, e.g.
//   TrainNodeClassifier(model, graph, split, strategy,
//                       {.options = {.epochs = 400},
//                        .on_epoch = [](int e, double l, double v, double t) {
//                          ...
//                        }});
struct TrainRun {
  TrainOptions options;
  // Invoked after every epoch where evaluation ran (per options.eval_every
  // and always on the last epoch). Leave unset for silent training.
  EpochCallback on_epoch;
};

// Trains `model` on `graph` under `strategy` and returns validation-selected
// test accuracy. Deterministic given run.options.seed.
TrainResult TrainNodeClassifier(Model& model, const Graph& graph,
                                const Split& split,
                                const StrategyConfig& strategy,
                                const TrainRun& run);

// Thin convenience overload for callers that only carry options.
inline TrainResult TrainNodeClassifier(Model& model, const Graph& graph,
                                       const Split& split,
                                       const StrategyConfig& strategy,
                                       const TrainOptions& options) {
  return TrainNodeClassifier(model, graph, split, strategy,
                             TrainRun{.options = options});
}

// One evaluation pass (no dropout, strategies in eval mode); returns logits.
// Takes no seed: in eval mode neither dropout nor any sampling strategy
// draws from the Rng, so the pass is deterministic by construction. The
// internal Rng exists only to satisfy the Forward interface.
Matrix EvaluateLogits(Model& model, const Graph& graph,
                      const StrategyConfig& strategy);

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_TRAINER_H_
