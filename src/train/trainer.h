// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Full-batch node-classification training loop shared by every experiment:
// Adam + L2, per-epoch validation, model selection on best validation
// accuracy (the paper's protocol).

#ifndef SKIPNODE_TRAIN_TRAINER_H_
#define SKIPNODE_TRAIN_TRAINER_H_

#include "core/strategies.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/model.h"

namespace skipnode {

struct TrainOptions {
  int epochs = 200;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  // Stop if validation accuracy has not improved for this many epochs
  // (<= 0 disables early stopping).
  int patience = 0;
  // Evaluate every `eval_every` epochs (validation + test tracking).
  int eval_every = 1;
  uint64_t seed = 1;
};

struct TrainResult {
  double best_val_accuracy = 0.0;
  // Test accuracy at the best-validation epoch.
  double test_accuracy = 0.0;
  int best_epoch = -1;
  double final_train_loss = 0.0;
  int epochs_run = 0;
};

// Trains `model` on `graph` under `strategy` and returns validation-selected
// test accuracy. Deterministic given options.seed.
TrainResult TrainNodeClassifier(Model& model, const Graph& graph,
                                const Split& split,
                                const StrategyConfig& strategy,
                                const TrainOptions& options);

// One evaluation pass (no dropout, strategies in eval mode); returns logits.
Matrix EvaluateLogits(Model& model, const Graph& graph,
                      const StrategyConfig& strategy, uint64_t seed = 99);

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_TRAINER_H_
