// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Full-batch node-classification training loop shared by every experiment:
// Adam + L2, per-epoch validation, model selection on best validation
// accuracy (the paper's protocol).

#ifndef SKIPNODE_TRAIN_TRAINER_H_
#define SKIPNODE_TRAIN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/fault.h"
#include "core/strategies.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/model.h"

namespace skipnode {

struct TrainOptions {
  int epochs = 200;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  // Stop if validation accuracy has not improved for this many epochs
  // (<= 0 disables early stopping).
  int patience = 0;
  // Evaluate every `eval_every` epochs (validation + test tracking).
  int eval_every = 1;
  uint64_t seed = 1;
};

// Numerical-health guardrails (DESIGN §8). When enabled, the trainer checks
// the loss every epoch and scans gradients / parameters every `check_every`
// epochs; a non-finite value triggers a rollback to the last good in-memory
// parameter snapshot, a learning-rate backoff, and a fresh optimizer (so
// poisoned Adam moments die with the bad step) instead of silently training
// on garbage. All checks are pure reads: with no fault firing and
// `grad_clip_norm` at 0, a guarded run is bitwise identical to an unguarded
// one at any thread count.
struct HealthOptions {
  bool enabled = false;
  // Cadence of the gradient/parameter scans and snapshots (>= 1). The loss
  // scalar is checked every epoch regardless — it is already in hand.
  int check_every = 1;
  // Rollbacks allowed before the trainer gives up and returns early.
  int max_rollbacks = 3;
  // Learning-rate multiplier applied on every rollback (in (0, 1]).
  float lr_backoff = 0.5f;
  // Global gradient-norm clip applied before each step; 0 disables. Unlike
  // the scans, clipping changes the trajectory — it is a training knob, not
  // a pure guardrail.
  float grad_clip_norm = 0.0f;
};

// One entry in the health log.
enum class HealthEventKind {
  kFaultInjected,       // the fault-injection layer fired (testing only)
  kNonFiniteLoss,       // loss came back NaN/Inf
  kNonFiniteGradient,   // a parameter gradient failed the scan
  kNonFiniteParameter,  // a parameter value failed the post-step scan
  kGradientClipped,     // global grad norm exceeded grad_clip_norm
  kRollback,            // parameters restored from snapshot, LR decayed
  kRecoveryExhausted,   // max_rollbacks spent; training stopped early
};

struct HealthEvent {
  HealthEventKind kind;
  int epoch = 0;
  // Human-readable context: offending parameter, fault site, LR transition.
  std::string detail;
};

// Stable name for logs and CLI output.
const char* HealthEventKindName(HealthEventKind kind);

// Wall-clock split of one training epoch, in nanoseconds. Collected off the
// numeric path: the clock reads happen between phases, never inside a kernel,
// so collecting metrics cannot change any trained weight. `eval_ns` is zero
// on epochs where evaluation was skipped (TrainOptions::eval_every);
// `health_ns` covers the gradient probe/clip and the post-step parameter
// scan + snapshot, and is zero when the guardrails are off.
struct EpochMetrics {
  int epoch = 0;
  int64_t forward_ns = 0;
  int64_t backward_ns = 0;
  int64_t step_ns = 0;
  int64_t health_ns = 0;
  int64_t eval_ns = 0;
  double train_loss = 0.0;
};

struct TrainResult {
  double best_val_accuracy = 0.0;
  // Test accuracy at the best-validation epoch.
  double test_accuracy = 0.0;
  int best_epoch = -1;
  double final_train_loss = 0.0;
  int epochs_run = 0;
  // Guardrail outcomes (empty / zero when HealthOptions is disabled and no
  // fault was injected).
  std::vector<HealthEvent> health_log;
  int rollbacks = 0;
  // Learning rate at the end of the run (== options.learning_rate unless a
  // rollback decayed it).
  float final_learning_rate = 0.0f;
  // One entry per epoch run, populated only when TrainRun::collect_metrics
  // is set (empty otherwise).
  std::vector<EpochMetrics> epoch_metrics;
};

// Minibatch neighbor-sampled training (DESIGN §15). When enabled(), every
// epoch makes one pass over the shuffled train split in minibatches: each
// batch draws a fresh seed from the run Rng, expands its seed nodes into
// per-layer bipartite blocks (graph/sampler.h, skip-masked rows pruned
// before neighbor fetch), runs Model::ForwardSampled, and takes one
// optimizer step. Evaluation (and model selection) stays full-batch.
// Deterministic: a fixed TrainOptions::seed reproduces every batch — and
// every trained weight — bitwise at any thread count. Requires
// Model::SupportsSampledForward() and a strategy of kind kNone /
// kSkipNodeUniform / kSkipNodeBiased.
struct SamplingOptions {
  // Per-layer neighbor fanout caps, one entry per model layer (each >= 1).
  // Empty disables sampling (full-batch training, the bitwise reference).
  std::vector<int> fanouts;
  // Seed nodes per minibatch (>= 1). The last batch of an epoch may be
  // smaller.
  int batch_size = 512;

  bool enabled() const { return !fanouts.empty(); }
};

// Observes training progress on evaluated epochs. The callback never sees
// the Rng and accuracy computation consumes no randomness, so attaching or
// removing it cannot change the TrainResult.
using EpochCallback = std::function<void(
    int epoch, double train_loss, double val_accuracy, double test_accuracy)>;

// A full training run: options plus optional instrumentation. Construct with
// designated initializers, e.g.
//   TrainNodeClassifier(model, graph, split, strategy,
//                       {.options = {.epochs = 400},
//                        .on_epoch = [](int e, double l, double v, double t) {
//                          ...
//                        }});
struct TrainRun {
  TrainOptions options;
  // Numerical-health guardrails; disabled by default.
  HealthOptions health;
  // Deterministic fault injection (base/fault.h); disabled by default. Used
  // by tests and the CLI to prove the recovery path end to end.
  FaultPlan fault;
  // Invoked after every epoch where evaluation ran (per options.eval_every
  // and always on the last epoch). Leave unset for silent training.
  EpochCallback on_epoch;
  // Optional external sink: when set, every HealthEvent is appended here as
  // it happens, in addition to TrainResult::health_log.
  std::vector<HealthEvent>* health_log = nullptr;
  // Collect per-epoch phase timings into TrainResult::epoch_metrics. Off the
  // numeric path: the trained weights are bitwise identical either way.
  bool collect_metrics = false;
  // Minibatch neighbor sampling; disabled (full-batch) by default.
  SamplingOptions sampling;
};

// Trains `model` on `graph` under `strategy` and returns validation-selected
// test accuracy. Deterministic given run.options.seed.
TrainResult TrainNodeClassifier(Model& model, const Graph& graph,
                                const Split& split,
                                const StrategyConfig& strategy,
                                const TrainRun& run);

// One evaluation pass (no dropout, strategies in eval mode); returns logits.
// Takes no seed: in eval mode neither dropout nor any sampling strategy
// draws from the Rng, so the pass is deterministic by construction. The
// internal Rng exists only to satisfy the Forward interface.
Matrix EvaluateLogits(Model& model, const Graph& graph,
                      const StrategyConfig& strategy);

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_TRAINER_H_
