// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/metrics.h"

#include <algorithm>

#include "base/check.h"

namespace skipnode {

double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& nodes) {
  SKIPNODE_CHECK(!nodes.empty());
  SKIPNODE_CHECK(static_cast<int>(labels.size()) == logits.rows());
  int correct = 0;
  for (const int node : nodes) {
    const float* row = logits.row(node);
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == labels[node]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

double MacroF1(const Matrix& logits, const std::vector<int>& labels,
               const std::vector<int>& nodes, int num_classes) {
  SKIPNODE_CHECK(!nodes.empty());
  SKIPNODE_CHECK(num_classes > 0);
  std::vector<int> true_positive(num_classes, 0);
  std::vector<int> predicted(num_classes, 0);
  std::vector<int> actual(num_classes, 0);
  for (const int node : nodes) {
    const float* row = logits.row(node);
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    predicted[best] += 1;
    actual[labels[node]] += 1;
    if (best == labels[node]) true_positive[best] += 1;
  }
  double f1_total = 0.0;
  int classes_present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (actual[c] == 0) continue;  // Class absent from this node set.
    ++classes_present;
    const double denominator = predicted[c] + actual[c];
    // F1 = 2 TP / (P + A); zero when the class is never predicted right.
    f1_total += denominator > 0 ? 2.0 * true_positive[c] / denominator : 0.0;
  }
  SKIPNODE_CHECK(classes_present > 0);
  return f1_total / classes_present;
}

double HitsAtK(const std::vector<float>& positive_scores,
               const std::vector<float>& negative_scores, int k) {
  SKIPNODE_CHECK(k > 0);
  SKIPNODE_CHECK(!positive_scores.empty());
  if (static_cast<int>(negative_scores.size()) < k) return 1.0;
  std::vector<float> negatives = negative_scores;
  std::nth_element(negatives.begin(), negatives.begin() + (k - 1),
                   negatives.end(), std::greater<float>());
  const float threshold = negatives[k - 1];
  int hits = 0;
  for (const float score : positive_scores) {
    if (score > threshold) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(positive_scores.size());
}

}  // namespace skipnode
