// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Figure-2 instrumentation: trains a model while recording, per epoch, the
// three quantities whose joint collapse the paper identifies as the cause of
// deep-GCN failure:
//   (a) MAD of the penultimate representation           (over-smoothing),
//   (b) gradient at the classification layer            (gradient vanishing),
//   (c) total L2 norm of the model weights              (weight over-decay).

#ifndef SKIPNODE_TRAIN_DYNAMICS_H_
#define SKIPNODE_TRAIN_DYNAMICS_H_

#include <vector>

#include "core/strategies.h"
#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/model.h"
#include "train/trainer.h"

namespace skipnode {

struct DynamicsRecord {
  // One entry per epoch.
  std::vector<float> mad;
  // Frobenius norm of dLoss/dLogits restricted to training rows.
  std::vector<float> output_gradient_norm;
  // Gradient norm of the first (input-layer) weight matrix: the quantity
  // that back-propagation-induced vanishing drives to zero in deep stacks
  // (Figure 2b). SkipNode keeps it alive by letting gradients bypass
  // convolutions through skipped rows.
  std::vector<float> first_layer_gradient_norm;
  // Signed sum of dLoss/dLogits over training rows and classes — Theorem 1
  // predicts ~0 once the model over-smooths under class-balanced training.
  std::vector<float> output_gradient_signed_sum;
  // Sum of per-parameter L2 norms.
  std::vector<float> weight_norm;
  std::vector<float> train_loss;
  std::vector<float> val_accuracy;
};

// Same loop as TrainNodeClassifier but records the dynamics; `options`
// controls epochs/optimiser. Evaluation (MAD + val accuracy) runs every
// epoch regardless of options.eval_every.
DynamicsRecord TrainWithDynamics(Model& model, const Graph& graph,
                                 const Split& split,
                                 const StrategyConfig& strategy,
                                 const TrainOptions& options);

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_DYNAMICS_H_
