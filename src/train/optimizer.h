// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// First-order optimisers. Weight decay is *coupled* (added to the gradient,
// i.e. classic L2 regularisation): the paper's weight-over-decaying analysis
// (Section 4.2) depends on the regulariser dominating when the
// classification gradient vanishes, which is exactly this formulation.

#ifndef SKIPNODE_TRAIN_OPTIMIZER_H_
#define SKIPNODE_TRAIN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "autograd/tape.h"

namespace skipnode {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated gradients (incl. weight decay).
  virtual void Step(const std::vector<Parameter*>& parameters) = 0;

  static void ZeroGrad(const std::vector<Parameter*>& parameters);
};

// Plain SGD: w -= lr * (grad + weight_decay * w).
class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float weight_decay = 0.0f)
      : learning_rate_(learning_rate), weight_decay_(weight_decay) {}

  void Step(const std::vector<Parameter*>& parameters) override;

 private:
  float learning_rate_;
  float weight_decay_;
};

// Adam (Kingma & Ba 2015) with L2-coupled weight decay, the configuration
// used throughout the paper's experiments. `decoupled` switches to AdamW
// (Loshchilov & Hutter 2019): decay is applied directly to the weights
// instead of entering the moment estimates. The distinction matters for the
// paper's Section 4.2: coupled decay is the regulariser whose dominance
// causes weight over-decaying once the classification gradient vanishes.
class Adam : public Optimizer {
 public:
  Adam(float learning_rate, float weight_decay = 0.0f, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, bool decoupled = false)
      : learning_rate_(learning_rate),
        weight_decay_(weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon),
        decoupled_(decoupled) {}

  void Step(const std::vector<Parameter*>& parameters) override;

 private:
  struct Moments {
    Matrix m;
    Matrix v;
  };

  float learning_rate_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float epsilon_;
  bool decoupled_;
  int step_count_ = 0;
  std::unordered_map<Parameter*, Moments> moments_;
};

// AdamW: Adam with decoupled weight decay.
class AdamW : public Adam {
 public:
  AdamW(float learning_rate, float weight_decay = 0.0f)
      : Adam(learning_rate, weight_decay, 0.9f, 0.999f, 1e-8f,
             /*decoupled=*/true) {}
};

}  // namespace skipnode

#endif  // SKIPNODE_TRAIN_OPTIMIZER_H_
