// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/link_trainer.h"

#include <utility>

#include "base/check.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

// Scores each edge as <z_u, z_v> given an embedding matrix.
std::vector<float> ScoreEdges(const Matrix& embeddings,
                              const EdgeList& edges) {
  std::vector<float> scores;
  scores.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    double dot = 0.0;
    const float* zu = embeddings.row(u);
    const float* zv = embeddings.row(v);
    for (int j = 0; j < embeddings.cols(); ++j) {
      dot += static_cast<double>(zu[j]) * zv[j];
    }
    scores.push_back(static_cast<float>(dot));
  }
  return scores;
}

}  // namespace

LinkResult TrainLinkPredictor(Model& encoder, const Graph& message_graph,
                              const LinkSplit& split,
                              const StrategyConfig& strategy,
                              const LinkTrainOptions& options) {
  SKIPNODE_CHECK(!split.train_edges.empty());
  Rng rng(options.seed);
  Adam optimizer(options.learning_rate, options.weight_decay);
  const std::vector<Parameter*> parameters = encoder.Parameters();
  const int n = message_graph.num_nodes();

  LinkResult result;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // --- Training step: BCE over positives + equally many uniform negatives.
    {
      Tape tape;
      tape.set_fast_math(strategy.fast_math);
      StrategyContext ctx(message_graph, strategy, /*training=*/true, rng);
      Var z = encoder.Forward(tape, message_graph, ctx, /*training=*/true,
                              rng);

      std::vector<int> heads, tails;
      std::vector<float> targets;
      heads.reserve(2 * split.train_edges.size());
      tails.reserve(2 * split.train_edges.size());
      targets.reserve(2 * split.train_edges.size());
      for (const auto& [u, v] : split.train_edges) {
        heads.push_back(u);
        tails.push_back(v);
        targets.push_back(1.0f);
      }
      for (size_t i = 0; i < split.train_edges.size(); ++i) {
        heads.push_back(static_cast<int>(rng.UniformInt(n)));
        tails.push_back(static_cast<int>(rng.UniformInt(n)));
        targets.push_back(0.0f);
      }
      Var scores = tape.RowDots(tape.GatherRows(z, std::move(heads)),
                                tape.GatherRows(z, std::move(tails)));
      Var loss = tape.BceWithLogits(scores, targets);
      Optimizer::ZeroGrad(parameters);
      tape.Backward(loss);
      optimizer.Step(parameters);
    }

    // --- Periodic ranked evaluation.
    if (epoch % options.eval_every != 0 && epoch != options.epochs - 1) {
      continue;
    }
    Tape tape;
    tape.set_fast_math(strategy.fast_math);
    StrategyContext ctx(message_graph, strategy, /*training=*/false, rng);
    Var z = encoder.Forward(tape, message_graph, ctx, /*training=*/false,
                            rng);
    const Matrix& embeddings = z.value();
    const std::vector<float> neg_scores =
        ScoreEdges(embeddings, split.eval_neg);
    const std::vector<float> val_scores =
        ScoreEdges(embeddings, split.val_pos);
    const double val_hits =
        HitsAtK(val_scores, neg_scores, options.selection_k);
    if (val_hits >= result.best_val_hits || result.best_epoch < 0) {
      result.best_val_hits = val_hits;
      result.best_epoch = epoch;
      const std::vector<float> test_scores =
          ScoreEdges(embeddings, split.test_pos);
      result.test_hits10 = HitsAtK(test_scores, neg_scores, 10);
      result.test_hits50 = HitsAtK(test_scores, neg_scores, 50);
      result.test_hits100 = HitsAtK(test_scores, neg_scores, 100);
    }
  }
  return result;
}

}  // namespace skipnode
