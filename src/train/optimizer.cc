// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/optimizer.h"

#include <cmath>

namespace skipnode {

void Optimizer::ZeroGrad(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) p->ZeroGrad();
}

void Sgd::Step(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) {
    float* value = p->value.data();
    const float* grad = p->grad.data();
    for (int64_t i = 0; i < p->value.size(); ++i) {
      value[i] -= learning_rate_ * (grad[i] + weight_decay_ * value[i]);
    }
  }
}

void Adam::Step(const std::vector<Parameter*>& parameters) {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (Parameter* p : parameters) {
    Moments& moments = moments_[p];
    if (moments.m.empty()) {
      moments.m = Matrix(p->value.rows(), p->value.cols());
      moments.v = Matrix(p->value.rows(), p->value.cols());
    }
    float* value = p->value.data();
    const float* grad = p->grad.data();
    float* m = moments.m.data();
    float* v = moments.v.data();
    for (int64_t i = 0; i < p->value.size(); ++i) {
      // Coupled (classic L2): decay enters the moment estimates; decoupled
      // (AdamW): decay is applied to the weights directly below.
      const float g =
          grad[i] + (decoupled_ ? 0.0f : weight_decay_ * value[i]);
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      if (decoupled_) value[i] -= learning_rate_ * weight_decay_ * value[i];
    }
  }
}

}  // namespace skipnode
