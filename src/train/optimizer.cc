// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/optimizer.h"

#include <cmath>

#include "base/parallel.h"
#include "base/telemetry.h"

namespace skipnode {
namespace {

// Parameter matrices are a few thousand elements; only fan out when the
// per-thread slice carries enough work to hide the pool wake-up.
constexpr int64_t kMinUpdateElementsPerThread = 1 << 13;

}  // namespace

void Optimizer::ZeroGrad(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) p->ZeroGrad();
}

void Sgd::Step(const std::vector<Parameter*>& parameters) {
  int64_t total_elements = 0;
  for (const Parameter* p : parameters) total_elements += p->value.size();
  const ScopedTimer timer("train.sgd_step", /*items=*/total_elements);
  for (Parameter* p : parameters) {
    float* value = p->value.data();
    const float* grad = p->grad.data();
    // Element-parallel: every weight updates independently, so chunking the
    // range cannot change any result bit.
    ParallelFor(
        0, p->value.size(),
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            value[i] -= learning_rate_ * (grad[i] + weight_decay_ * value[i]);
          }
        },
        kMinUpdateElementsPerThread);
  }
}

void Adam::Step(const std::vector<Parameter*>& parameters) {
  int64_t total_elements = 0;
  for (const Parameter* p : parameters) total_elements += p->value.size();
  const ScopedTimer timer("train.adam_step", /*items=*/total_elements);
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (Parameter* p : parameters) {
    Moments& moments = moments_[p];
    if (moments.m.empty()) {
      moments.m = Matrix(p->value.rows(), p->value.cols());
      moments.v = Matrix(p->value.rows(), p->value.cols());
    }
    float* value = p->value.data();
    const float* grad = p->grad.data();
    float* m = moments.m.data();
    float* v = moments.v.data();
    // Element-parallel (see Sgd::Step); the moment updates touch only
    // element i, so each thread's slice is fully independent.
    ParallelFor(
        0, p->value.size(),
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            // Coupled (classic L2): decay enters the moment estimates;
            // decoupled (AdamW): decay hits the weights directly below.
            const float g =
                grad[i] + (decoupled_ ? 0.0f : weight_decay_ * value[i]);
            m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
            v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
            const float m_hat = m[i] / bias1;
            const float v_hat = v[i] / bias2;
            value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
            if (decoupled_) {
              value[i] -= learning_rate_ * weight_decay_ * value[i];
            }
          }
        },
        kMinUpdateElementsPerThread);
  }
}

}  // namespace skipnode
