// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/optimizer.h"

#include <cmath>

#include "base/parallel.h"
#include "base/simd.h"
#include "base/telemetry.h"

namespace skipnode {
namespace {

// Parameter matrices are a few thousand elements; only fan out when the
// per-thread slice carries enough work to hide the pool wake-up.
constexpr int64_t kMinUpdateElementsPerThread = 1 << 13;

}  // namespace

void Optimizer::ZeroGrad(const std::vector<Parameter*>& parameters) {
  for (Parameter* p : parameters) p->ZeroGrad();
}

void Sgd::Step(const std::vector<Parameter*>& parameters) {
  int64_t total_elements = 0;
  for (const Parameter* p : parameters) total_elements += p->value.size();
  const ScopedTimer timer("train.sgd_step", /*items=*/total_elements);
  const bool vec = simd::Enabled();
  for (Parameter* p : parameters) {
    float* value = p->value.data();
    const float* grad = p->grad.data();
    // Element-parallel: every weight updates independently, so chunking the
    // range cannot change any result bit.
    ParallelFor(
        0, p->value.size(),
        [&](int64_t lo, int64_t hi) {
          if (vec) {
            simd::SgdStep(value + lo, grad + lo, hi - lo, learning_rate_,
                          weight_decay_);
          } else {
            simd::SgdStepRef(value + lo, grad + lo, hi - lo, learning_rate_,
                             weight_decay_);
          }
        },
        kMinUpdateElementsPerThread);
  }
}

void Adam::Step(const std::vector<Parameter*>& parameters) {
  int64_t total_elements = 0;
  for (const Parameter* p : parameters) total_elements += p->value.size();
  const ScopedTimer timer("train.adam_step", /*items=*/total_elements);
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  // Every constant of the per-element recurrence, precomputed once. The
  // derived fields reproduce the exact floats the historical inline loop
  // computed per element (e.g. 1.0f - beta1_), so the microkernel is bitwise
  // identical to it. Coupled (classic L2) folds decay into the gradient;
  // decoupled (AdamW) shrinks the weights after the update.
  const simd::AdamConstants constants = {
      .beta1 = beta1_,
      .one_minus_beta1 = 1.0f - beta1_,
      .beta2 = beta2_,
      .one_minus_beta2 = 1.0f - beta2_,
      .bias1 = bias1,
      .bias2 = bias2,
      .learning_rate = learning_rate_,
      .epsilon = epsilon_,
      .weight_decay = weight_decay_,
      .lr_weight_decay = learning_rate_ * weight_decay_,
      .decoupled = decoupled_,
  };
  const bool vec = simd::Enabled();
  for (Parameter* p : parameters) {
    Moments& moments = moments_[p];
    if (moments.m.empty()) {
      moments.m = Matrix(p->value.rows(), p->value.cols());
      moments.v = Matrix(p->value.rows(), p->value.cols());
    }
    float* value = p->value.data();
    const float* grad = p->grad.data();
    float* m = moments.m.data();
    float* v = moments.v.data();
    // Element-parallel (see Sgd::Step); the moment updates touch only
    // element i, so each thread's slice is fully independent.
    ParallelFor(
        0, p->value.size(),
        [&](int64_t lo, int64_t hi) {
          if (vec) {
            simd::AdamStep(value + lo, grad + lo, m + lo, v + lo, hi - lo,
                           constants);
          } else {
            simd::AdamStepRef(value + lo, grad + lo, m + lo, v + lo, hi - lo,
                              constants);
          }
        },
        kMinUpdateElementsPerThread);
  }
}

}  // namespace skipnode
