// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/gcn.h"

#include <numeric>

#include "base/check.h"
#include "tensor/ops.h"

namespace skipnode {

GcnModel::GcnModel(const ModelConfig& config, Rng& rng, bool residual,
                   std::string name)
    : name_(std::move(name)), config_(config), residual_(residual) {
  SKIPNODE_CHECK(config.num_layers >= 2);
  SKIPNODE_CHECK(config.in_dim > 0 && config.hidden_dim > 0 &&
                 config.out_dim > 0);
  for (int l = 0; l < config.num_layers; ++l) {
    const int in = l == 0 ? config.in_dim : config.hidden_dim;
    const int out = l == config.num_layers - 1 ? config.out_dim
                                               : config.hidden_dim;
    layers_.push_back(std::make_unique<Linear>(
        name_ + ".conv" + std::to_string(l), in, out, rng));
  }
}

Var GcnModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                      bool training, Rng& rng) {
  const int num_layers = config_.num_layers;
  Var x = tape.Constant(graph.features());
  for (int l = 0; l < num_layers; ++l) {
    const Var pre = x;  // X^(l-1), the skip path of Eq. 4.
    Var h = tape.Dropout(x, config_.dropout, training, rng);
    // A_hat (X W): multiplying by W first keeps the SpMM at the narrow width.
    h = layers_[l]->Apply(tape, h);

    const bool middle = l > 0 && l < num_layers - 1;
    Var conv;
    if (middle && !residual_) {
      // Combine input is the raw convolution: eligible for the fused
      // masked-SpMM path.
      conv = ctx.PropagateMiddle(tape, l, pre, h);
    } else {
      conv = tape.SpMM(ctx.LayerAdjacency(l), h);
      if (middle) {
        // The residual add sits between the SpMM and the combine, so ResGCN
        // keeps the unfused path.
        conv = tape.Add(conv, pre);
        conv = ctx.TransformMiddle(tape, pre, conv);
      } else if (l == 0) {
        conv = ctx.TransformBoundary(tape, conv);
      }
    }
    if (l == num_layers - 1) {
      x = conv;
    } else {
      x = tape.Relu(conv);
      if (l == num_layers - 2) StashPenultimate(x);
    }
  }
  return x;
}

Var GcnModel::ForwardSampled(Tape& tape, const Graph& graph,
                             const SampledBatch& batch,
                             const StrategyConfig& config, bool training,
                             Rng& rng) {
  const int num_layers = config_.num_layers;
  SKIPNODE_CHECK(static_cast<int>(batch.layers.size()) == num_layers);
  // Bottom src frontier features, gathered once per batch.
  Var x = tape.Constant(GatherRows(graph.features(), batch.input_nodes));
  for (int l = 0; l < num_layers; ++l) {
    const SampledLayer& block = batch.layers[static_cast<size_t>(l)];
    SKIPNODE_CHECK(block.num_src() == x.value().rows());
    Var h = tape.Dropout(x, config_.dropout, training, rng);
    h = layers_[l]->Apply(tape, h);

    const bool middle = l > 0 && l < num_layers - 1;
    Var conv;
    if (middle) {
      // The dst frontier is a prefix of the src frontier, so the skip path
      // X^(l-1) restricted to this layer's output rows is a prefix gather.
      std::vector<int> prefix(static_cast<size_t>(block.num_dst()));
      std::iota(prefix.begin(), prefix.end(), 0);
      Var pre = tape.GatherRows(x, std::move(prefix));
      // A block built under a mask holds bare self rows for the masked dst
      // nodes — the mask MUST be applied or those rows would read a wrong
      // "convolution". Eval passes must sample with a null mask callback.
      const bool masked = !block.skip_mask.empty();
      if (masked && !residual_ && config.fuse_propagation) {
        conv = tape.SpMMRowSelect(block.block, h, pre, block.skip_mask);
      } else {
        conv = tape.SpMM(block.block, h);
        if (residual_) conv = tape.Add(conv, pre);
        if (masked) conv = tape.RowSelect(block.skip_mask, pre, conv);
      }
    } else {
      conv = tape.SpMM(block.block, h);
    }
    x = l == num_layers - 1 ? conv : tape.Relu(conv);
  }
  return x;
}

std::vector<Parameter*> GcnModel::Parameters() {
  std::vector<Parameter*> params;
  for (const auto& layer : layers_) layer->CollectParameters(params);
  return params;
}

}  // namespace skipnode
