// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// GPRGNN (Chien et al. 2021): generalised PageRank propagation with
// *learnable* step weights,
//   Z = sum_{k=0..K} gamma_k A_hat^k H,   H = MLP(X),
// gamma initialised to the PPR profile alpha (1-alpha)^k. Learnable gammas
// let the model escape over-smoothing by re-weighting shallow hops — the
// adaptive mechanism the paper cites.

#ifndef SKIPNODE_NN_GPRGNN_H_
#define SKIPNODE_NN_GPRGNN_H_

#include <memory>

#include "nn/appnp.h"

namespace skipnode {

class GprGnnModel : public AppnpModel {
 public:
  GprGnnModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;

 private:
  std::unique_ptr<Parameter> gammas_;  // 1 x (num_layers + 1).
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_GPRGNN_H_
