// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// JKNet (Xu et al. 2018), concatenation variant: every convolution layer's
// output feeds a jumping-knowledge head, so shallow representations survive
// even when deep ones over-smooth.

#ifndef SKIPNODE_NN_JKNET_H_
#define SKIPNODE_NN_JKNET_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class JkNetModel : public Model {
 public:
  JkNetModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }
  bool ExportServingHead(ServingHead* head) override;

 private:
  std::string name_ = "JKNet";
  ModelConfig config_;
  std::vector<std::unique_ptr<Linear>> convs_;  // num_layers convolutions.
  std::unique_ptr<Linear> head_;                // (L * hidden) -> out_dim.
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_JKNET_H_
