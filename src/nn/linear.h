// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Dense linear layer (x W + b) reused by every backbone: the graph
// convolution's weight, input/output MLPs, and JKNet/IncepGCN classifier
// heads.

#ifndef SKIPNODE_NN_LINEAR_H_
#define SKIPNODE_NN_LINEAR_H_

#include <string>
#include <vector>

#include "autograd/tape.h"
#include "base/rng.h"

namespace skipnode {

class Linear {
 public:
  // Glorot-uniform weight; zero bias (omitted entirely if !with_bias).
  Linear(const std::string& name, int in_dim, int out_dim, Rng& rng,
         bool with_bias = true);

  // Returns x * W (+ b).
  Var Apply(Tape& tape, Var x);

  void CollectParameters(std::vector<Parameter*>& out);

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  bool has_bias() const { return with_bias_; }
  // Requires has_bias().
  const Parameter& bias() const { return bias_; }

 private:
  Parameter weight_;
  bool with_bias_;
  Parameter bias_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_LINEAR_H_
