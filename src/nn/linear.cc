// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/linear.h"

namespace skipnode {

Linear::Linear(const std::string& name, int in_dim, int out_dim, Rng& rng,
               bool with_bias)
    : weight_(name + ".weight", Matrix::GlorotUniform(in_dim, out_dim, rng)),
      with_bias_(with_bias),
      bias_(name + ".bias", Matrix(1, out_dim)) {}

Var Linear::Apply(Tape& tape, Var x) {
  Var out = tape.MatMul(x, tape.Leaf(weight_));
  if (with_bias_) out = tape.AddRowBroadcast(out, tape.Leaf(bias_));
  return out;
}

void Linear::CollectParameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (with_bias_) out.push_back(&bias_);
}

}  // namespace skipnode
