// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// GCNII (Chen et al. 2020): initial residual + identity mapping,
//   H^(l) = ReLU( ( (1-alpha) A_hat H^(l-1) + alpha H^(0) )
//                 ( (1-beta_l) I + beta_l W^(l) ) ),
// beta_l = log(lambda / l + 1). The strongest deep backbone in the paper's
// Table 6; SkipNode still improves it.

#ifndef SKIPNODE_NN_GCNII_H_
#define SKIPNODE_NN_GCNII_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class GcniiModel : public Model {
 public:
  GcniiModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }
  bool ExportServingHead(ServingHead* head) override;

 private:
  std::string name_ = "GCNII";
  ModelConfig config_;
  std::unique_ptr<Linear> input_proj_;   // in_dim -> hidden.
  std::vector<std::unique_ptr<Parameter>> conv_weights_;  // hidden x hidden.
  std::unique_ptr<Linear> output_proj_;  // hidden -> out_dim.
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_GCNII_H_
