// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/jknet.h"

#include "base/check.h"

namespace skipnode {

JkNetModel::JkNetModel(const ModelConfig& config, Rng& rng)
    : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 2);
  for (int l = 0; l < config.num_layers; ++l) {
    const int in = l == 0 ? config.in_dim : config.hidden_dim;
    convs_.push_back(std::make_unique<Linear>(
        name_ + ".conv" + std::to_string(l), in, config.hidden_dim, rng));
  }
  head_ = std::make_unique<Linear>(
      name_ + ".head", config.num_layers * config.hidden_dim, config.out_dim,
      rng);
}

Var JkNetModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                        bool training, Rng& rng) {
  Var x = tape.Constant(graph.features());
  std::vector<Var> layer_outputs;
  for (int l = 0; l < config_.num_layers; ++l) {
    const Var pre = x;
    Var h = tape.Dropout(x, config_.dropout, training, rng);
    h = convs_[l]->Apply(tape, h);
    // Every conv after the first keeps the hidden width, so the strategy's
    // middle combine applies to all of them (the JK head is the classifier)
    // — and the combine input is the raw SpMM, so it fuses.
    Var conv;
    if (l > 0) {
      conv = ctx.PropagateMiddle(tape, l, pre, h);
    } else {
      conv = ctx.TransformBoundary(tape, tape.SpMM(ctx.LayerAdjacency(l), h));
    }
    x = tape.Relu(conv);
    layer_outputs.push_back(x);
  }
  Var jumped = tape.ConcatCols(layer_outputs);
  StashPenultimate(jumped);
  jumped = tape.Dropout(jumped, config_.dropout, training, rng);
  return head_->Apply(tape, jumped);
}

std::vector<Parameter*> JkNetModel::Parameters() {
  std::vector<Parameter*> params;
  for (const auto& conv : convs_) conv->CollectParameters(params);
  head_->CollectParameters(params);
  return params;
}

bool JkNetModel::ExportServingHead(ServingHead* head) {
  head->weight = head_->weight().value;
  head->bias = head_->has_bias() ? head_->bias().value : Matrix();
  return true;
}

}  // namespace skipnode
