// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/resgcn.h"

// ResGcnModel is fully defined in the header; this translation unit anchors
// the target in the build.
