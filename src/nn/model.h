// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Common interface for the GNN backbones. Each Forward() call records one
// computation on the caller's Tape and returns N x num_classes logits; any
// plug-and-play strategy is injected through the StrategyContext so every
// backbone supports every strategy.

#ifndef SKIPNODE_NN_MODEL_H_
#define SKIPNODE_NN_MODEL_H_

#include <string>
#include <vector>

#include "autograd/tape.h"
#include "base/check.h"
#include "base/rng.h"
#include "core/strategies.h"
#include "graph/graph.h"
#include "graph/sampler.h"
#include "tensor/matrix.h"

namespace skipnode {

// Shared hyper-parameters; model-specific fields are ignored by models that
// do not use them.
struct ModelConfig {
  int in_dim = 0;
  int hidden_dim = 64;
  int out_dim = 0;
  // Number of graph-convolution (or propagation) layers; >= 2.
  int num_layers = 2;
  float dropout = 0.5f;
  // APPNP / GCNII / GPRGNN teleport probability.
  float alpha = 0.1f;
  // GCNII identity-mapping strength lambda (beta_l = log(lambda / l + 1)).
  float gcnii_lambda = 0.5f;
  // GAT: attention heads on middle layers (must divide hidden_dim).
  int gat_heads = 4;
  // GRAND: number of augmentations, feature-drop rate, consistency weight.
  int grand_augmentations = 2;
  float grand_dropnode = 0.5f;
  float grand_consistency = 1.0f;
};

// A frozen classification head exported for serving (serve/frozen_model.h):
// eval-mode logits of the exporting model are exactly
//   Penultimate() * weight (+ bias broadcast over rows),
// so an inference service can recompute any logit row from the cached
// penultimate table in O(batch) with the parallel Gemm kernel instead of
// storing or re-deriving the full logits matrix.
struct ServingHead {
  Matrix weight;  // embedding_dim x num_classes
  Matrix bias;    // 1 x num_classes; empty when the head has no bias term
};

class Model {
 public:
  virtual ~Model() = default;

  // Builds the forward pass. `ctx` carries the active plug-and-play
  // strategy (StrategyConfig::None() for the vanilla backbone); `training`
  // toggles Dropout and per-step strategy sampling.
  virtual Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                      bool training, Rng& rng) = 0;

  // True when the model implements ForwardSampled (minibatch training over
  // sampled blocks, DESIGN §15). The trainer checks this before entering
  // sampled mode so unsupported backbones fail with a clear message.
  virtual bool SupportsSampledForward() const { return false; }

  // Builds one minibatch forward over `batch`'s bipartite blocks and returns
  // |batch.seeds| x num_classes logits (seed order). Layer l propagates with
  // batch.layers[l].block; middle layers apply the batch's pre-drawn
  // SkipNode masks (SampledLayer::skip_mask) — the strategy config only
  // selects the fused vs naive combine. Does not refresh Penultimate().
  // Models that return false from SupportsSampledForward abort here.
  virtual Var ForwardSampled(Tape& tape, const Graph& graph,
                             const SampledBatch& batch,
                             const StrategyConfig& config, bool training,
                             Rng& rng) {
    (void)tape;
    (void)graph;
    (void)batch;
    (void)config;
    (void)training;
    (void)rng;
    SKIPNODE_CHECK_MSG(false, "model does not support sampled forward");
    return Var();
  }

  // Auxiliary loss added to the classification loss (weighted by the model),
  // e.g. GRAND's consistency regulariser. Returns an invalid Var when the
  // model has none. Must be called after Forward() on the same tape.
  virtual Var AuxiliaryLoss(Tape& tape) {
    (void)tape;
    return Var();
  }

  // Trainable parameters (owned by the model).
  virtual std::vector<Parameter*> Parameters() = 0;

  virtual const std::string& name() const = 0;

  // The representation feeding the final classification layer, stashed as an
  // owned copy by the latest Forward(). The paper's smoothness metrics
  // (Figure 2a, Figure 5b) and the serving layer's embedding table are
  // computed on this tensor. Models that have no distinguished penultimate
  // representation leave it as the logits. Safe to read at any time — the
  // copy outlives the Tape of the Forward() that produced it; empty (0x0)
  // before the first Forward().
  const Matrix& Penultimate() const { return penultimate_; }

  // Copies the frozen classification head into `head` and returns true for
  // models whose eval-mode logits are exactly one Linear applied to
  // Penultimate() (SGC, JKNet, GCNII — eval-mode Dropout between the two is
  // the identity). Models with propagation or mixing after the penultimate
  // representation return false and leave `head` untouched.
  virtual bool ExportServingHead(ServingHead* head) {
    (void)head;
    return false;
  }

 protected:
  // Called by backbones at the penultimate point of Forward(); copies the
  // node's current value so the stash survives the tape.
  void StashPenultimate(const Var& v) { penultimate_ = v.value(); }

  Matrix penultimate_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_MODEL_H_
