// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// GRAND (Feng et al. 2020), simplified: random propagation (node-feature
// dropping + mean of A_hat powers) produces S augmented views; an MLP
// classifies each view, and a consistency regulariser (mean squared
// difference between the views' logits) is exposed via AuxiliaryLoss().
// Simplification vs the original: consistency is computed on logits rather
// than sharpened softmax distributions — the regularisation pressure is the
// same in direction, and it avoids a dedicated softmax autograd op.

#ifndef SKIPNODE_NN_GRAND_H_
#define SKIPNODE_NN_GRAND_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class GrandModel : public Model {
 public:
  GrandModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  // Consistency loss (already weighted); invalid outside training passes.
  Var AuxiliaryLoss(Tape& tape) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }

 private:
  // One random-propagation + MLP view.
  Var View(Tape& tape, const Graph& graph, StrategyContext& ctx,
           bool training, Rng& rng);

  std::string name_ = "GRAND";
  ModelConfig config_;
  std::unique_ptr<Linear> lin1_;
  std::unique_ptr<Linear> lin2_;
  std::vector<Var> view_logits_;  // Stashed by Forward for AuxiliaryLoss.
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_GRAND_H_
