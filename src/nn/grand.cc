// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/grand.h"

#include "base/check.h"
#include "core/skipnode.h"

namespace skipnode {

GrandModel::GrandModel(const ModelConfig& config, Rng& rng)
    : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 1);
  lin1_ = std::make_unique<Linear>(name_ + ".lin1", config.in_dim,
                                   config.hidden_dim, rng);
  lin2_ = std::make_unique<Linear>(name_ + ".lin2", config.hidden_dim,
                                   config.out_dim, rng);
}

Var GrandModel::View(Tape& tape, const Graph& graph, StrategyContext& ctx,
                     bool training, Rng& rng) {
  Var x = tape.Constant(graph.features());
  if (training && config_.grand_dropnode > 0.0f) {
    // GRAND's DropNode augmentation: zero whole feature rows, rescale the
    // rest (this is a *data augmentation*, distinct from the DropNode
    // strategy of Do et al. that resamples the adjacency).
    const std::vector<uint8_t> drop_mask = SampleSkipMaskUniform(
        graph.num_nodes(), config_.grand_dropnode, rng);
    Var zeros = tape.Constant(Matrix(x.rows(), x.cols()));
    Var scaled = tape.Scale(x, 1.0f / (1.0f - config_.grand_dropnode));
    x = tape.RowSelect(drop_mask, zeros, scaled);
  }
  // Random propagation: mean of A_hat^k x, k = 0..K.
  Var sum = x;
  Var power = x;
  for (int k = 0; k < config_.num_layers; ++k) {
    const Var pre = power;
    Var step = tape.SpMM(ctx.LayerAdjacency(k), power);
    power = ctx.TransformMiddle(tape, pre, step);
    sum = tape.Add(sum, power);
  }
  Var mean = tape.Scale(sum, 1.0f / static_cast<float>(config_.num_layers + 1));

  Var h = tape.Dropout(mean, config_.dropout, training, rng);
  h = tape.Relu(lin1_->Apply(tape, h));
  h = tape.Dropout(h, config_.dropout, training, rng);
  return lin2_->Apply(tape, h);
}

Var GrandModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                        bool training, Rng& rng) {
  view_logits_.clear();
  const int views = training ? std::max(1, config_.grand_augmentations) : 1;
  for (int s = 0; s < views; ++s) {
    view_logits_.push_back(View(tape, graph, ctx, training, rng));
  }
  StashPenultimate(view_logits_.front());
  return view_logits_.front();
}

Var GrandModel::AuxiliaryLoss(Tape& tape) {
  if (view_logits_.size() < 2 || config_.grand_consistency <= 0.0f) {
    return Var();
  }
  Var total = tape.MseLoss(view_logits_[0], view_logits_[1]);
  for (size_t s = 2; s < view_logits_.size(); ++s) {
    total = tape.Add(total, tape.MseLoss(view_logits_[s - 1], view_logits_[s]));
  }
  return tape.Scale(total, config_.grand_consistency);
}

std::vector<Parameter*> GrandModel::Parameters() {
  std::vector<Parameter*> params;
  lin1_->CollectParameters(params);
  lin2_->CollectParameters(params);
  return params;
}

}  // namespace skipnode
