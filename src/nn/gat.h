// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Graph Attention Network (Velickovic et al. 2018): per-edge attention
// coefficients replace the fixed normalised adjacency,
//   e_ij = LeakyReLU(a_src . W h_i + a_dst . W h_j),
//   h'_i = sigma( sum_j softmax_j(e_ij) W h_j ),
// with multi-head attention (heads concatenated on middle layers, a single
// head on the output layer). Differences from the original: ReLU instead of
// ELU as sigma (the library's nonlinearity), which does not change the
// attention mechanism.
//
// Strategy integration: the attention pattern is taken from
// StrategyContext::LayerAdjacency, so DropEdge/DropNode also reshape the
// attention support, and SkipNode's RowSelect applies to every middle layer
// exactly as for GCN.

#ifndef SKIPNODE_NN_GAT_H_
#define SKIPNODE_NN_GAT_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"

namespace skipnode {

class GatModel : public Model {
 public:
  GatModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }

 private:
  struct Head {
    std::unique_ptr<Parameter> weight;     // in x head_dim.
    std::unique_ptr<Parameter> attn_src;   // head_dim x 1.
    std::unique_ptr<Parameter> attn_dst;   // head_dim x 1.
  };

  // One attention head's output on `x` over `pattern`.
  Var ApplyHead(Tape& tape, const Head& head, Var x,
                const std::shared_ptr<const CsrMatrix>& pattern);

  std::string name_ = "GAT";
  ModelConfig config_;
  // layers_[l] holds the heads of layer l (middle layers have
  // config.gat_heads heads; the final layer has exactly one).
  std::vector<std::vector<Head>> layers_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_GAT_H_
