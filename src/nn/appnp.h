// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// APPNP (Klicpera et al. 2019): an MLP predicts per-node logits H, then
// personalised-PageRank propagation smooths them:
//   Z^(0) = H,  Z^(k+1) = (1-alpha) A_hat Z^(k) + alpha H.
// `num_layers` is the number of propagation steps K. Strategies hook into
// each propagation step (SkipNode lets sampled nodes skip a step).

#ifndef SKIPNODE_NN_APPNP_H_
#define SKIPNODE_NN_APPNP_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class AppnpModel : public Model {
 public:
  AppnpModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }

 protected:
  // Shared by GPRGNN: dropout -> linear -> relu -> dropout -> linear.
  Var Mlp(Tape& tape, Var x, bool training, Rng& rng);

  std::string name_ = "APPNP";
  ModelConfig config_;
  std::unique_ptr<Linear> lin1_;
  std::unique_ptr<Linear> lin2_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_APPNP_H_
