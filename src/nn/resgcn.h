// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// ResGCN (Kipf & Welling 2017, residual variant): GCN with He-style skip
// connections on every middle layer. One of Table 6's backbones.

#ifndef SKIPNODE_NN_RESGCN_H_
#define SKIPNODE_NN_RESGCN_H_

#include "nn/gcn.h"

namespace skipnode {

class ResGcnModel : public GcnModel {
 public:
  ResGcnModel(const ModelConfig& config, Rng& rng)
      : GcnModel(config, rng, /*residual=*/true, "ResGCN") {}
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_RESGCN_H_
