// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// IncepGCN (Kazi et al. 2019 / the DropEdge-paper formulation): an input
// projection feeds three parallel convolution branches with different
// receptive fields; branch outputs are concatenated into a classifier head.
// "num_layers = L" sets the deepest branch to L-1 convolutions (the input
// projection counts as the remaining layer), with the other branches at
// roughly half and a quarter of that depth.

#ifndef SKIPNODE_NN_INCEPGCN_H_
#define SKIPNODE_NN_INCEPGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class IncepGcnModel : public Model {
 public:
  IncepGcnModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }

  // Branch depths used for a given total layer budget (exposed for tests).
  static std::vector<int> BranchDepths(int num_layers);

 private:
  std::string name_ = "IncepGCN";
  ModelConfig config_;
  std::unique_ptr<Linear> input_proj_;
  // convs_[b][i] = i-th convolution of branch b.
  std::vector<std::vector<std::unique_ptr<Linear>>> branches_;
  std::unique_ptr<Linear> head_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_INCEPGCN_H_
