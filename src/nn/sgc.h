// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// SGC (Wu et al. 2019): A_hat^K X followed by one linear layer — graph
// convolution without nonlinearities or per-layer weights. Included as the
// paper's related-work simplification baseline; `num_layers` = K.

#ifndef SKIPNODE_NN_SGC_H_
#define SKIPNODE_NN_SGC_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class SgcModel : public Model {
 public:
  SgcModel(const ModelConfig& config, Rng& rng);

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }
  bool ExportServingHead(ServingHead* head) override;

 private:
  std::string name_ = "SGC";
  ModelConfig config_;
  std::unique_ptr<Linear> classifier_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_SGC_H_
