// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/gcnii.h"

#include <cmath>

#include "base/check.h"

namespace skipnode {

GcniiModel::GcniiModel(const ModelConfig& config, Rng& rng)
    : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 2);
  input_proj_ = std::make_unique<Linear>(name_ + ".input", config.in_dim,
                                         config.hidden_dim, rng);
  for (int l = 0; l < config.num_layers; ++l) {
    conv_weights_.push_back(std::make_unique<Parameter>(
        name_ + ".conv" + std::to_string(l) + ".weight",
        Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, rng)));
  }
  output_proj_ = std::make_unique<Linear>(name_ + ".output",
                                          config.hidden_dim, config.out_dim,
                                          rng);
}

Var GcniiModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                        bool training, Rng& rng) {
  Var x = tape.Constant(graph.features());
  x = tape.Dropout(x, config_.dropout, training, rng);
  Var h0 = tape.Relu(input_proj_->Apply(tape, x));

  Var h = h0;
  const float alpha = config_.alpha;
  for (int l = 0; l < config_.num_layers; ++l) {
    const Var pre = h;
    Var hd = tape.Dropout(h, config_.dropout, training, rng);
    // Initial residual: M = (1-alpha) A_hat H + alpha H0.
    Var m = tape.Axpby(tape.SpMM(ctx.LayerAdjacency(l), hd), h0,
                       1.0f - alpha, alpha);
    // Identity mapping: (1-beta_l) M + beta_l (M W_l).
    const float beta =
        std::log(config_.gcnii_lambda / static_cast<float>(l + 1) + 1.0f);
    Var mw = tape.MatMul(m, tape.Leaf(*conv_weights_[l]));
    Var block = tape.Axpby(m, mw, 1.0f - beta, beta);
    // Every GCNII conv keeps the hidden width, so all of them are "middle"
    // for the plug-and-play strategies.
    block = ctx.TransformMiddle(tape, pre, block);
    h = tape.Relu(block);
  }
  StashPenultimate(h);
  h = tape.Dropout(h, config_.dropout, training, rng);
  return output_proj_->Apply(tape, h);
}

std::vector<Parameter*> GcniiModel::Parameters() {
  std::vector<Parameter*> params;
  input_proj_->CollectParameters(params);
  for (const auto& w : conv_weights_) params.push_back(w.get());
  output_proj_->CollectParameters(params);
  return params;
}

bool GcniiModel::ExportServingHead(ServingHead* head) {
  head->weight = output_proj_->weight().value;
  head->bias =
      output_proj_->has_bias() ? output_proj_->bias().value : Matrix();
  return true;
}

}  // namespace skipnode
