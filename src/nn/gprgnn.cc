// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/gprgnn.h"

#include <cmath>

namespace skipnode {

GprGnnModel::GprGnnModel(const ModelConfig& config, Rng& rng)
    : AppnpModel(config, rng) {
  name_ = "GPRGNN";
  const int k = config.num_layers;
  Matrix init(1, k + 1);
  // PPR profile: gamma_j = alpha (1-alpha)^j, last hop takes the remainder.
  for (int j = 0; j < k; ++j) {
    init(0, j) = config.alpha * std::pow(1.0f - config.alpha, j);
  }
  init(0, k) = std::pow(1.0f - config.alpha, k);
  gammas_ = std::make_unique<Parameter>(name_ + ".gammas", std::move(init));
}

Var GprGnnModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                         bool training, Rng& rng) {
  Var h = Mlp(tape, tape.Constant(graph.features()), training, rng);
  std::vector<Var> hops = {h};
  Var z = h;
  for (int k = 0; k < config_.num_layers; ++k) {
    const Var pre = z;
    z = ctx.PropagateMiddle(tape, k, pre, z);
    hops.push_back(z);
  }
  Var out = tape.LinearCombination(hops, tape.Leaf(*gammas_));
  StashPenultimate(out);
  return out;
}

std::vector<Parameter*> GprGnnModel::Parameters() {
  std::vector<Parameter*> params = AppnpModel::Parameters();
  params.push_back(gammas_.get());
  return params;
}

}  // namespace skipnode
