// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// String-keyed construction of every backbone, used by benches and examples.

#ifndef SKIPNODE_NN_MODEL_FACTORY_H_
#define SKIPNODE_NN_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"

namespace skipnode {

// Supported names: "GCN", "GAT", "ResGCN", "JKNet", "IncepGCN", "GCNII",
// "APPNP", "GPRGNN", "GRAND", "SGC". Aborts on unknown names.
std::unique_ptr<Model> MakeModel(const std::string& name,
                                 const ModelConfig& config, Rng& rng);

// All names accepted by MakeModel.
const std::vector<std::string>& AllModelNames();

}  // namespace skipnode

#endif  // SKIPNODE_NN_MODEL_FACTORY_H_
