// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/model_factory.h"

#include "base/check.h"
#include "nn/appnp.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/gcnii.h"
#include "nn/gprgnn.h"
#include "nn/grand.h"
#include "nn/incepgcn.h"
#include "nn/jknet.h"
#include "nn/resgcn.h"
#include "nn/sgc.h"

namespace skipnode {

std::unique_ptr<Model> MakeModel(const std::string& name,
                                 const ModelConfig& config, Rng& rng) {
  if (name == "GCN") return std::make_unique<GcnModel>(config, rng);
  if (name == "GAT") return std::make_unique<GatModel>(config, rng);
  if (name == "ResGCN") return std::make_unique<ResGcnModel>(config, rng);
  if (name == "JKNet") return std::make_unique<JkNetModel>(config, rng);
  if (name == "IncepGCN") return std::make_unique<IncepGcnModel>(config, rng);
  if (name == "GCNII") return std::make_unique<GcniiModel>(config, rng);
  if (name == "APPNP") return std::make_unique<AppnpModel>(config, rng);
  if (name == "GPRGNN") return std::make_unique<GprGnnModel>(config, rng);
  if (name == "GRAND") return std::make_unique<GrandModel>(config, rng);
  if (name == "SGC") return std::make_unique<SgcModel>(config, rng);
  SKIPNODE_CHECK_MSG(false, "unknown model '%s'", name.c_str());
  __builtin_unreachable();
}

const std::vector<std::string>& AllModelNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{"GCN",      "GAT",   "ResGCN",
                                   "JKNet",    "IncepGCN", "GCNII",
                                   "APPNP",    "GPRGNN",   "GRAND",
                                   "SGC"};
  return *kNames;
}

}  // namespace skipnode
