// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/sgc.h"

#include "base/check.h"

namespace skipnode {

SgcModel::SgcModel(const ModelConfig& config, Rng& rng) : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 1);
  classifier_ = std::make_unique<Linear>(name_ + ".classifier", config.in_dim,
                                         config.out_dim, rng);
}

Var SgcModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                      bool training, Rng& rng) {
  // The propagation has no trainable pieces, but running it through the tape
  // keeps strategies (DropEdge topologies, SkipNode skips) uniform across
  // backbones; gradients stop at the constant features anyway.
  Var x = tape.Constant(graph.features());
  for (int k = 0; k < config_.num_layers; ++k) {
    const Var pre = x;
    x = ctx.PropagateMiddle(tape, k, pre, x);
  }
  StashPenultimate(x);
  x = tape.Dropout(x, config_.dropout, training, rng);
  return classifier_->Apply(tape, x);
}

std::vector<Parameter*> SgcModel::Parameters() {
  std::vector<Parameter*> params;
  classifier_->CollectParameters(params);
  return params;
}

bool SgcModel::ExportServingHead(ServingHead* head) {
  head->weight = classifier_->weight().value;
  head->bias = classifier_->has_bias() ? classifier_->bias().value : Matrix();
  return true;
}

}  // namespace skipnode
