// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/gat.h"

#include "base/check.h"

namespace skipnode {

GatModel::GatModel(const ModelConfig& config, Rng& rng) : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 2);
  SKIPNODE_CHECK(config.gat_heads >= 1);
  SKIPNODE_CHECK_MSG(config.hidden_dim % config.gat_heads == 0,
                     "hidden_dim %d must divide into %d heads",
                     config.hidden_dim, config.gat_heads);
  const int head_dim = config.hidden_dim / config.gat_heads;
  for (int l = 0; l < config.num_layers; ++l) {
    const bool last = l == config.num_layers - 1;
    const int in = l == 0 ? config.in_dim : config.hidden_dim;
    const int out = last ? config.out_dim : head_dim;
    const int heads = last ? 1 : config.gat_heads;
    std::vector<Head> layer;
    for (int k = 0; k < heads; ++k) {
      const std::string prefix = name_ + ".layer" + std::to_string(l) +
                                 ".head" + std::to_string(k);
      Head head;
      head.weight = std::make_unique<Parameter>(
          prefix + ".weight", Matrix::GlorotUniform(in, out, rng));
      head.attn_src = std::make_unique<Parameter>(
          prefix + ".attn_src", Matrix::GlorotUniform(out, 1, rng));
      head.attn_dst = std::make_unique<Parameter>(
          prefix + ".attn_dst", Matrix::GlorotUniform(out, 1, rng));
      layer.push_back(std::move(head));
    }
    layers_.push_back(std::move(layer));
  }
}

Var GatModel::ApplyHead(Tape& tape, const Head& head, Var x,
                        const std::shared_ptr<const CsrMatrix>& pattern) {
  Var h = tape.MatMul(x, tape.Leaf(*head.weight));
  Var score_src = tape.MatMul(h, tape.Leaf(*head.attn_src));
  Var score_dst = tape.MatMul(h, tape.Leaf(*head.attn_dst));
  return tape.GatAggregate(pattern, h, score_src, score_dst);
}

Var GatModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                      bool training, Rng& rng) {
  const int num_layers = config_.num_layers;
  Var x = tape.Constant(graph.features());
  for (int l = 0; l < num_layers; ++l) {
    const Var pre = x;
    Var dropped = tape.Dropout(x, config_.dropout, training, rng);
    // The strategy's adjacency fixes the attention support (values unused),
    // so DropEdge/DropNode reshape the attention graph too.
    const auto pattern = ctx.LayerAdjacency(l);
    Var conv;
    if (layers_[l].size() == 1) {
      conv = ApplyHead(tape, layers_[l][0], dropped, pattern);
    } else {
      std::vector<Var> head_outputs;
      head_outputs.reserve(layers_[l].size());
      for (const Head& head : layers_[l]) {
        head_outputs.push_back(ApplyHead(tape, head, dropped, pattern));
      }
      conv = tape.ConcatCols(head_outputs);
    }
    const bool middle = l > 0 && l < num_layers - 1;
    if (middle) {
      conv = ctx.TransformMiddle(tape, pre, conv);
    } else if (l == 0) {
      conv = ctx.TransformBoundary(tape, conv);
    }
    if (l == num_layers - 1) {
      x = conv;
    } else {
      x = tape.Relu(conv);
      if (l == num_layers - 2) StashPenultimate(x);
    }
  }
  return x;
}

std::vector<Parameter*> GatModel::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Head& head : layer) {
      params.push_back(head.weight.get());
      params.push_back(head.attn_src.get());
      params.push_back(head.attn_dst.get());
    }
  }
  return params;
}

}  // namespace skipnode
