// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/incepgcn.h"

#include <algorithm>

#include "base/check.h"

namespace skipnode {

std::vector<int> IncepGcnModel::BranchDepths(int num_layers) {
  const int deepest = std::max(1, num_layers - 1);
  return {std::max(1, deepest / 4), std::max(1, deepest / 2), deepest};
}

IncepGcnModel::IncepGcnModel(const ModelConfig& config, Rng& rng)
    : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 2);
  input_proj_ = std::make_unique<Linear>(name_ + ".input", config.in_dim,
                                         config.hidden_dim, rng);
  const std::vector<int> depths = BranchDepths(config.num_layers);
  for (size_t b = 0; b < depths.size(); ++b) {
    std::vector<std::unique_ptr<Linear>> branch;
    for (int i = 0; i < depths[b]; ++i) {
      branch.push_back(std::make_unique<Linear>(
          name_ + ".b" + std::to_string(b) + ".conv" + std::to_string(i),
          config.hidden_dim, config.hidden_dim, rng));
    }
    branches_.push_back(std::move(branch));
  }
  head_ = std::make_unique<Linear>(
      name_ + ".head",
      static_cast<int>(depths.size()) * config.hidden_dim, config.out_dim,
      rng);
}

Var IncepGcnModel::Forward(Tape& tape, const Graph& graph,
                           StrategyContext& ctx, bool training, Rng& rng) {
  Var x = tape.Constant(graph.features());
  x = tape.Dropout(x, config_.dropout, training, rng);
  Var h0 = tape.Relu(input_proj_->Apply(tape, x));

  std::vector<Var> branch_outputs;
  int layer_index = 0;
  for (auto& branch : branches_) {
    Var h = h0;
    for (auto& conv_layer : branch) {
      const Var pre = h;
      Var h_dropped = tape.Dropout(h, config_.dropout, training, rng);
      Var conv = ctx.PropagateMiddle(tape, layer_index++, pre,
                                     conv_layer->Apply(tape, h_dropped));
      h = tape.Relu(conv);
    }
    branch_outputs.push_back(h);
  }
  Var merged = tape.ConcatCols(branch_outputs);
  StashPenultimate(merged);
  merged = tape.Dropout(merged, config_.dropout, training, rng);
  return head_->Apply(tape, merged);
}

std::vector<Parameter*> IncepGcnModel::Parameters() {
  std::vector<Parameter*> params;
  input_proj_->CollectParameters(params);
  for (auto& branch : branches_) {
    for (auto& conv : branch) conv->CollectParameters(params);
  }
  head_->CollectParameters(params);
  return params;
}

}  // namespace skipnode
