// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/checkpoint.h"

#include <fstream>

#include "graph/io.h"

namespace skipnode {

bool SaveModelParameters(Model& model, const std::string& directory) {
  std::ofstream manifest(directory + "/manifest.txt");
  if (!manifest) return false;
  for (Parameter* param : model.Parameters()) {
    if (!SaveMatrixCsv(directory + "/" + param->name + ".csv",
                       param->value)) {
      return false;
    }
    manifest << param->name << ' ' << param->value.rows() << ' '
             << param->value.cols() << '\n';
  }
  return static_cast<bool>(manifest);
}

bool LoadModelParameters(Model& model, const std::string& directory) {
  for (Parameter* param : model.Parameters()) {
    Matrix loaded;
    if (!LoadMatrixCsv(directory + "/" + param->name + ".csv", &loaded)) {
      return false;
    }
    if (!loaded.SameShape(param->value)) return false;
    param->value = std::move(loaded);
  }
  return true;
}

}  // namespace skipnode
