// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Crash-safety scheme: every save stages a complete checkpoint into a fresh
// `gen-NNNNNN.tmp` subdirectory, renames it to `gen-NNNNNN` once all files
// are on disk, and then commits by atomically renaming `manifest.txt.tmp`
// over `manifest.txt`. The manifest's first line names the live generation,
// so readers never observe a half-written set: until the manifest rename
// lands, they keep loading the previous generation, whose files the save
// path never touches. Older generations are garbage-collected only after a
// successful commit.

#include "nn/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/io.h"

namespace skipnode {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "manifest.txt";
constexpr char kGenerationKeyword[] = "generation";

// Parsed manifest: the generation subdirectory ("" for legacy checkpoints
// whose CSVs sit at the top level) plus name -> (rows, cols).
struct Manifest {
  std::string generation;
  std::map<std::string, std::pair<int, int>> shapes;
};

bool ReadManifest(const fs::path& directory, Manifest* manifest) {
  std::ifstream in(directory / kManifestName);
  if (!in) return false;
  manifest->generation.clear();
  manifest->shapes.clear();
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tokens(line);
    if (first) {
      first = false;
      std::string keyword;
      tokens >> keyword;
      if (keyword == kGenerationKeyword) {
        if (!(tokens >> manifest->generation) ||
            manifest->generation.empty()) {
          return false;
        }
        continue;
      }
      tokens.clear();
      tokens.seekg(0);
    }
    std::string name;
    int rows = 0, cols = 0;
    if (!(tokens >> name >> rows >> cols)) return false;
    if (rows <= 0 || cols <= 0) return false;
    if (!manifest->shapes.emplace(name, std::make_pair(rows, cols)).second) {
      return false;  // Duplicate entry.
    }
  }
  return !manifest->shapes.empty();
}

// Picks the staging generation name: one past the committed generation's
// counter (gen-000001 for a fresh directory). Deterministic — no clocks.
std::string NextGenerationName(const fs::path& directory) {
  Manifest current;
  int counter = 0;
  if (ReadManifest(directory, &current)) {
    std::sscanf(current.generation.c_str(), "gen-%d", &counter);
  }
  char name[32];
  std::snprintf(name, sizeof(name), "gen-%06d", counter + 1);
  return name;
}

// Best-effort removal of every stale generation / staging dir except
// `keep`. Failures are ignored: orphans are re-collected by the next save.
void CollectGarbage(const fs::path& directory, const std::string& keep) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    const bool is_generation = name.rfind("gen-", 0) == 0;
    const bool is_manifest_tmp =
        name == std::string(kManifestName) + ".tmp";
    if ((is_generation && name != keep) || is_manifest_tmp) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

}  // namespace

bool ReadCheckpointManifest(const std::string& directory,
                            std::vector<CheckpointEntry>* entries) {
  Manifest manifest;
  if (!ReadManifest(fs::path(directory), &manifest)) return false;
  entries->clear();
  entries->reserve(manifest.shapes.size());
  for (const auto& [name, shape] : manifest.shapes) {
    entries->push_back({name, shape.first, shape.second});
  }
  return true;
}

bool ReadCheckpointGeneration(const std::string& directory,
                              std::string* generation) {
  Manifest manifest;
  if (!ReadManifest(fs::path(directory), &manifest)) return false;
  *generation = manifest.generation;
  return true;
}

bool SaveModelParameters(Model& model, const std::string& directory) {
  std::error_code ec;
  const fs::path dir(directory);
  if (!fs::is_directory(dir, ec)) {
    fs::create_directory(dir, ec);
    if (ec) return false;
  }

  const std::string generation = NextGenerationName(dir);
  const fs::path staging = dir / (generation + ".tmp");
  fs::remove_all(staging, ec);  // A crashed save may have left one behind.
  ec.clear();
  fs::create_directory(staging, ec);
  if (ec) return false;

  // Stage every parameter file plus the manifest body.
  std::ostringstream manifest_body;
  manifest_body << kGenerationKeyword << ' ' << generation << '\n';
  for (Parameter* param : model.Parameters()) {
    if (!SaveMatrixCsv((staging / (param->name + ".csv")).string(),
                       param->value)) {
      fs::remove_all(staging, ec);
      return false;
    }
    manifest_body << param->name << ' ' << param->value.rows() << ' '
                  << param->value.cols() << '\n';
  }
  fs::rename(staging, dir / generation, ec);
  if (ec) {
    fs::remove_all(staging, ec);
    return false;
  }

  // Commit: the atomic manifest rename flips readers to the new generation.
  const fs::path manifest_tmp = dir / (std::string(kManifestName) + ".tmp");
  {
    std::ofstream manifest(manifest_tmp);
    manifest << manifest_body.str();
    manifest.flush();
    if (!manifest) {
      fs::remove(manifest_tmp, ec);
      fs::remove_all(dir / generation, ec);
      return false;
    }
  }
  fs::rename(manifest_tmp, dir / kManifestName, ec);
  if (ec) {
    fs::remove(manifest_tmp, ec);
    fs::remove_all(dir / generation, ec);
    return false;
  }
  CollectGarbage(dir, generation);
  return true;
}

bool LoadModelParameters(Model& model, const std::string& directory) {
  const fs::path dir(directory);
  Manifest manifest;
  if (!ReadManifest(dir, &manifest)) return false;
  const fs::path base =
      manifest.generation.empty() ? dir : dir / manifest.generation;

  // Stage everything first; the model is committed only after the full
  // parameter set validated against the manifest.
  const std::vector<Parameter*> parameters = model.Parameters();
  std::vector<Matrix> staged;
  staged.reserve(parameters.size());
  for (const Parameter* param : parameters) {
    const auto entry = manifest.shapes.find(param->name);
    if (entry == manifest.shapes.end()) return false;
    if (entry->second.first != param->value.rows() ||
        entry->second.second != param->value.cols()) {
      return false;
    }
    Matrix loaded;
    if (!LoadMatrixCsv((base / (param->name + ".csv")).string(), &loaded)) {
      return false;
    }
    if (loaded.rows() != entry->second.first ||
        loaded.cols() != entry->second.second) {
      return false;  // File disagrees with its manifest row/col counts.
    }
    staged.push_back(std::move(loaded));
  }
  for (size_t i = 0; i < parameters.size(); ++i) {
    parameters[i]->value = std::move(staged[i]);
  }
  return true;
}

}  // namespace skipnode
