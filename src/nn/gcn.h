// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Vanilla GCN backbone (Kipf & Welling 2017):
//   X^(l) = ReLU( A_hat X^(l-1) W^(l) )                 (Eq. 1 of the paper)
// with Dropout before each convolution. Middle layers (hidden -> hidden)
// route through StrategyContext::TransformMiddle, which is where SkipNode's
// Eq. 4, residual adds, or PairNorm attach.

#ifndef SKIPNODE_NN_GCN_H_
#define SKIPNODE_NN_GCN_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/model.h"

namespace skipnode {

class GcnModel : public Model {
 public:
  // `residual` turns the backbone into ResGCN: conv output += layer input on
  // every middle layer (He-style skip connection baked into the backbone,
  // independent of the plug-and-play strategy).
  GcnModel(const ModelConfig& config, Rng& rng, bool residual = false,
           std::string name = "GCN");

  Var Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
              bool training, Rng& rng) override;
  // Minibatch forward over sampled blocks (DESIGN §15). Mirrors Forward()
  // layer for layer: the dst prefix of each layer's input is the skip path,
  // and the batch's pre-drawn masks replace StrategyContext sampling.
  bool SupportsSampledForward() const override { return true; }
  Var ForwardSampled(Tape& tape, const Graph& graph, const SampledBatch& batch,
                     const StrategyConfig& config, bool training,
                     Rng& rng) override;
  std::vector<Parameter*> Parameters() override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  ModelConfig config_;
  bool residual_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace skipnode

#endif  // SKIPNODE_NN_GCN_H_
