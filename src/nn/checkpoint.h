// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Model checkpointing: saves every Parameter to CSV files (one file per
// parameter plus a manifest listing name + shape) and restores them by
// name. Parameter names double as file names, so checkpoints are
// human-inspectable and survive refactors as long as names are stable.
//
// Both directions are crash-safe:
//   * Save stages the whole checkpoint into a fresh `gen-NNNNNN.tmp`
//     subdirectory and commits it by atomically renaming the manifest, so an
//     interrupted save never clobbers a previous valid checkpoint — readers
//     keep seeing the old generation until the commit rename lands.
//   * Load is transactional: every matrix is read and validated against the
//     manifest's names and row/col counts first, and the model is updated
//     only after the entire set passed — a failed load leaves the model
//     exactly as it was.

#ifndef SKIPNODE_NN_CHECKPOINT_H_
#define SKIPNODE_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "nn/model.h"

namespace skipnode {

// One manifest line of the live generation: parameter name + shape.
struct CheckpointEntry {
  std::string name;
  int rows = 0;
  int cols = 0;
};

// Reads `<directory>/manifest.txt` and returns the live generation's
// parameter list (sorted by name). Returns false when the directory holds
// no valid checkpoint. Lets callers (serve/frozen_model.cc) validate a
// checkpoint's architecture before loading it into a model.
bool ReadCheckpointManifest(const std::string& directory,
                            std::vector<CheckpointEntry>* entries);

// Reads the live generation name committed in `<directory>/manifest.txt`
// ("" for legacy checkpoints whose CSVs sit at the top level). Returns
// false when the directory holds no valid checkpoint. Hot-swap watchers
// (tools/serve_cli.cc) poll this to notice a newly committed generation
// without re-reading every parameter file.
bool ReadCheckpointGeneration(const std::string& directory,
                              std::string* generation);

// Writes `<directory>/<param-name>.csv` for every parameter and a
// `<directory>/manifest.txt` listing `name rows cols` per line. The
// directory is created if missing (its parent must exist); an existing
// checkpoint at `directory` is replaced atomically. Returns false on any
// I/O failure, in which case the previous checkpoint (if any) is intact.
bool SaveModelParameters(Model& model, const std::string& directory);

// Restores parameters from a directory written by SaveModelParameters.
// Every parameter of `model` must appear in the manifest with a matching
// shape and load back with exactly that shape; otherwise returns false and
// the model is untouched (no partially-loaded state).
bool LoadModelParameters(Model& model, const std::string& directory);

}  // namespace skipnode

#endif  // SKIPNODE_NN_CHECKPOINT_H_
