// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Model checkpointing: saves every Parameter to CSV files in an existing
// directory (one file per parameter plus a manifest) and restores them by
// name. Parameter names double as file names, so checkpoints are
// human-inspectable and survive refactors as long as names are stable.

#ifndef SKIPNODE_NN_CHECKPOINT_H_
#define SKIPNODE_NN_CHECKPOINT_H_

#include <string>

#include "nn/model.h"

namespace skipnode {

// Writes `<directory>/<param-name>.csv` for every parameter and a
// `<directory>/manifest.txt` listing them. The directory must exist.
// Returns false on any I/O failure.
bool SaveModelParameters(Model& model, const std::string& directory);

// Restores parameters from a directory written by SaveModelParameters.
// Every parameter of `model` must be present with a matching shape;
// returns false otherwise (the model is left partially loaded on failure).
bool LoadModelParameters(Model& model, const std::string& directory);

}  // namespace skipnode

#endif  // SKIPNODE_NN_CHECKPOINT_H_
