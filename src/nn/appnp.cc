// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/appnp.h"

#include "base/check.h"

namespace skipnode {

AppnpModel::AppnpModel(const ModelConfig& config, Rng& rng)
    : config_(config) {
  SKIPNODE_CHECK(config.num_layers >= 1);
  lin1_ = std::make_unique<Linear>(name_ + ".lin1", config.in_dim,
                                   config.hidden_dim, rng);
  lin2_ = std::make_unique<Linear>(name_ + ".lin2", config.hidden_dim,
                                   config.out_dim, rng);
}

Var AppnpModel::Mlp(Tape& tape, Var x, bool training, Rng& rng) {
  Var h = tape.Dropout(x, config_.dropout, training, rng);
  h = tape.Relu(lin1_->Apply(tape, h));
  h = tape.Dropout(h, config_.dropout, training, rng);
  return lin2_->Apply(tape, h);
}

Var AppnpModel::Forward(Tape& tape, const Graph& graph, StrategyContext& ctx,
                        bool training, Rng& rng) {
  Var h = Mlp(tape, tape.Constant(graph.features()), training, rng);
  Var z = h;
  for (int k = 0; k < config_.num_layers; ++k) {
    const Var pre = z;
    Var step = tape.Axpby(tape.SpMM(ctx.LayerAdjacency(k), z), h,
                          1.0f - config_.alpha, config_.alpha);
    z = ctx.TransformMiddle(tape, pre, step);
  }
  StashPenultimate(z);
  return z;
}

std::vector<Parameter*> AppnpModel::Parameters() {
  std::vector<Parameter*> params;
  lin1_->CollectParameters(params);
  lin2_->CollectParameters(params);
  return params;
}

}  // namespace skipnode
