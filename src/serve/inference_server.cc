// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "serve/inference_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/check.h"
#include "base/telemetry.h"

namespace skipnode {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kInvalid:
      return "invalid-handle";
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case ServeStatus::kInvalidArgument:
      return "invalid-argument";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

bool ParseOverloadPolicy(const std::string& name, OverloadPolicy* policy) {
  if (name == "block") {
    *policy = OverloadPolicy::kBlock;
  } else if (name == "shed-newest") {
    *policy = OverloadPolicy::kShedNewest;
  } else if (name == "shed-oldest") {
    *policy = OverloadPolicy::kShedOldest;
  } else {
    return false;
  }
  return true;
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedNewest:
      return "shed-newest";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "?";
}

ServeStatus PredictionHandle::status() const {
  if (slot_ == nullptr) return ServeStatus::kInvalid;
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this] { return slot_->ready; });
  return slot_->status;
}

const Matrix& PredictionHandle::logits() const {
  SKIPNODE_CHECK_MSG(slot_ != nullptr,
                     "serve: logits() on a default-constructed "
                     "PredictionHandle — check valid() first");
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this] { return slot_->ready; });
  return slot_->logits;
}

const std::vector<int>& PredictionHandle::classes() const {
  SKIPNODE_CHECK_MSG(slot_ != nullptr,
                     "serve: classes() on a default-constructed "
                     "PredictionHandle — check valid() first");
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this] { return slot_->ready; });
  return slot_->classes;
}

void InferenceServer::ResolveError(
    const std::shared_ptr<PredictionHandle::ResultSlot>& slot,
    ServeStatus status) {
  {
    std::lock_guard<std::mutex> guard(slot->mu);
    slot->status = status;
    slot->ready = true;
  }
  slot->cv.notify_all();
}

InferenceServer::InferenceServer(std::shared_ptr<const FrozenModel> model,
                                 const ServeOptions& options)
    : options_(options), fault_(options.fault), model_(std::move(model)) {
  SKIPNODE_CHECK(model_ != nullptr);
  SKIPNODE_CHECK(options_.workers >= 1);
  SKIPNODE_CHECK(options_.max_batch_rows >= 1);
  SKIPNODE_CHECK(options_.batch_window_us >= 0);
  SKIPNODE_CHECK(options_.max_queue_requests >= 0);
  SKIPNODE_CHECK(options_.default_deadline_us >= 0);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceServer::InferenceServer(const FrozenModel& model,
                                 const ServeOptions& options)
    : InferenceServer(
          std::shared_ptr<const FrozenModel>(&model,
                                             [](const FrozenModel*) {}),
          options) {}

InferenceServer::~InferenceServer() { Shutdown(); }

PredictionHandle InferenceServer::Submit(std::vector<int> node_ids,
                                         int64_t deadline_us) {
  auto slot = std::make_shared<PredictionHandle::ResultSlot>();
  PredictionHandle handle(slot);
  if (deadline_us <= 0) deadline_us = options_.default_deadline_us;
  const int64_t deadline_ns =
      deadline_us > 0 ? MonotonicNanos() + deadline_us * 1000 : 0;

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.requests;
  CountMetric("serve.requests");
  if (stopping_) {
    ++stats_.rejected;
    CountMetric("serve.rejected");
    ResolveError(slot, ServeStatus::kShutdown);
    return handle;
  }
  // Structured validation: a bad request fails, never the server. Ids are
  // re-validated against the batch's snapshot at compute time (a swap may
  // have shrunk the model since admission).
  bool args_ok = !node_ids.empty();
  const int num_nodes = model_->num_nodes();
  for (const int id : node_ids) {
    args_ok = args_ok && id >= 0 && id < num_nodes;
  }
  if (!args_ok) {
    ++stats_.invalid;
    CountMetric("serve.invalid");
    ResolveError(slot, ServeStatus::kInvalidArgument);
    return handle;
  }
  // Admission control (DESIGN §12): bounded queue under one of three
  // overload policies. Sheds resolve immediately with kRejected.
  if (options_.max_queue_requests > 0) {
    while (static_cast<int>(queue_.size()) >= options_.max_queue_requests) {
      if (options_.overload_policy == OverloadPolicy::kShedNewest) {
        ++stats_.rejected;
        CountMetric("serve.rejected");
        ResolveError(slot, ServeStatus::kRejected);
        return handle;
      }
      if (options_.overload_policy == OverloadPolicy::kShedOldest) {
        Request victim = std::move(queue_.front());
        queue_.pop_front();
        ++stats_.rejected;
        CountMetric("serve.rejected");
        ResolveError(victim.slot, ServeStatus::kRejected);
        continue;
      }
      // kBlock: backpressure the caller until a worker makes space.
      space_cv_.wait(lock, [this] {
        return stopping_ || static_cast<int>(queue_.size()) <
                                options_.max_queue_requests;
      });
      if (stopping_) {
        ++stats_.rejected;
        CountMetric("serve.rejected");
        ResolveError(slot, ServeStatus::kShutdown);
        return handle;
      }
    }
  }
  queue_.push_back(Request{std::move(node_ids), deadline_ns, slot});
  stats_.queue_peak =
      std::max(stats_.queue_peak, static_cast<int64_t>(queue_.size()));
  lock.unlock();
  cv_.notify_one();
  return handle;
}

void InferenceServer::SwapModel(std::shared_ptr<const FrozenModel> model) {
  SKIPNODE_CHECK(model != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The linearization point: batches formed after this store see the new
    // snapshot; batches already formed hold their own shared_ptr.
    model_ = std::move(model);
    ++stats_.swaps;
  }
  CountMetric("serve.swaps");
}

std::shared_ptr<const FrozenModel> InferenceServer::model_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void InferenceServer::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    std::shared_ptr<const FrozenModel> snapshot;
    int64_t ordinal = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Dequeue the batch's first live request, resolving expired ones.
      for (;;) {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and fully drained
        Request first = std::move(queue_.front());
        queue_.pop_front();
        space_cv_.notify_one();
        if (first.deadline_ns > 0 && MonotonicNanos() > first.deadline_ns) {
          ++stats_.deadline_exceeded;
          CountMetric("serve.deadline_exceeded");
          ResolveError(first.slot, ServeStatus::kDeadlineExceeded);
          continue;
        }
        batch.push_back(std::move(first));
        break;
      }
      int64_t batch_rows =
          static_cast<int64_t>(batch.back().node_ids.size());
      if (options_.batch_window_us > 0) {
        // Hold the batch open until the window closes or the row cap is
        // reached, coalescing everything that is queued or arrives. The
        // window bounds added latency; it never changes any logit.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.batch_window_us);
        while (batch_rows < options_.max_batch_rows) {
          if (queue_.empty()) {
            if (stopping_) break;
            if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
              break;
            }
            continue;
          }
          batch_rows += static_cast<int64_t>(queue_.front().node_ids.size());
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          space_cv_.notify_one();
        }
      }
      // Batch formation is the swap linearization point: the snapshot and
      // the fault-injection ordinal are captured under the queue lock.
      snapshot = model_;
      ordinal = batches_formed_++;
    }

    // Deterministic serving faults (DESIGN §12): a stall lands between
    // batch formation and the batch-close deadline check, so armed
    // deadlines expire; a drop fails the whole batch with kRejected.
    if (fault_.ShouldFire(ServeFaultSite::kWorkerStall, ordinal)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.fault.stall_us));
    }
    if (fault_.ShouldFire(ServeFaultSite::kBatchDrop, ordinal)) {
      for (Request& request : batch) {
        CountMetric("serve.rejected");
        ResolveError(request.slot, ServeStatus::kRejected);
      }
      std::lock_guard<std::mutex> lock(mu_);
      stats_.rejected += static_cast<int64_t>(batch.size());
      continue;
    }

    // Batch close: expire deadlines that lapsed while the batch was open
    // and re-validate ids against the captured snapshot (a swap may have
    // shrunk num_nodes since Submit admitted the request).
    const int64_t close_ns = MonotonicNanos();
    std::vector<Request> live;
    live.reserve(batch.size());
    int64_t live_rows = 0, expired = 0, invalid = 0;
    for (Request& request : batch) {
      if (request.deadline_ns > 0 && close_ns > request.deadline_ns) {
        ++expired;
        CountMetric("serve.deadline_exceeded");
        ResolveError(request.slot, ServeStatus::kDeadlineExceeded);
        continue;
      }
      bool ids_ok = true;
      for (const int id : request.node_ids) {
        ids_ok = ids_ok && id >= 0 && id < snapshot->num_nodes();
      }
      if (!ids_ok) {
        ++invalid;
        CountMetric("serve.invalid");
        ResolveError(request.slot, ServeStatus::kInvalidArgument);
        continue;
      }
      live_rows += static_cast<int64_t>(request.node_ids.size());
      live.push_back(std::move(request));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.deadline_exceeded += expired;
      stats_.invalid += invalid;
      if (!live.empty()) {
        stats_.batches += 1;
        stats_.rows += live_rows;
      }
    }
    if (live.empty()) continue;

    // Compute outside the queue lock: one row-sliced kernel call for the
    // whole batch, then split per request. Each request's rows are bitwise
    // what a solo batch would have produced (frozen_model.h), computed
    // entirely from `snapshot`.
    std::vector<int> all_ids;
    all_ids.reserve(static_cast<size_t>(live_rows));
    for (const Request& request : live) {
      all_ids.insert(all_ids.end(), request.node_ids.begin(),
                     request.node_ids.end());
    }
    const ScopedTimer timer("serve.batch", /*items=*/live_rows);
    CountMetric("serve.batched_requests", static_cast<int64_t>(live.size()));
    const Matrix logits = snapshot->Logits(all_ids);
    int offset = 0;
    for (Request& request : live) {
      const int rows = static_cast<int>(request.node_ids.size());
      Matrix part(rows, logits.cols());
      for (int r = 0; r < rows; ++r) {
        const float* src = logits.row(offset + r);
        std::copy(src, src + logits.cols(), part.row(r));
      }
      offset += rows;
      std::vector<int> classes(request.node_ids.size(), 0);
      for (int r = 0; r < rows; ++r) {
        const float* row = part.row(r);
        int best = 0;
        for (int c = 1; c < part.cols(); ++c) {
          if (row[c] > row[best]) best = c;
        }
        classes[static_cast<size_t>(r)] = best;
      }
      {
        std::lock_guard<std::mutex> guard(request.slot->mu);
        request.slot->status = ServeStatus::kOk;
        request.slot->logits = std::move(part);
        request.slot->classes = std::move(classes);
        request.slot->ready = true;
      }
      request.slot->cv.notify_all();
    }
  }
}

ServeStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats snapshot = stats_;
  snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  return snapshot;
}

}  // namespace skipnode
