// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "serve/inference_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/check.h"
#include "base/telemetry.h"

namespace skipnode {

const Matrix& PredictionHandle::logits() const {
  SKIPNODE_CHECK(slot_ != nullptr);
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this] { return slot_->ready; });
  return slot_->logits;
}

const std::vector<int>& PredictionHandle::classes() const {
  SKIPNODE_CHECK(slot_ != nullptr);
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this] { return slot_->ready; });
  return slot_->classes;
}

InferenceServer::InferenceServer(const FrozenModel& model,
                                 const ServeOptions& options)
    : model_(model), options_(options) {
  SKIPNODE_CHECK(options_.workers >= 1);
  SKIPNODE_CHECK(options_.max_batch_rows >= 1);
  SKIPNODE_CHECK(options_.batch_window_us >= 0);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

PredictionHandle InferenceServer::Submit(std::vector<int> node_ids) {
  for (const int id : node_ids) {
    SKIPNODE_CHECK_MSG(id >= 0 && id < model_.num_nodes(),
                       "serve: node id %d out of range [0, %d)", id,
                       model_.num_nodes());
  }
  auto slot = std::make_shared<PredictionHandle::ResultSlot>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    SKIPNODE_CHECK_MSG(!stopping_, "serve: Submit() after Shutdown()");
    queue_.push_back(Request{std::move(node_ids), slot});
    ++stats_.requests;
  }
  CountMetric("serve.requests");
  cv_.notify_one();
  return PredictionHandle(std::move(slot));
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void InferenceServer::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    int64_t batch_rows = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      batch_rows = static_cast<int64_t>(batch.back().node_ids.size());
      if (options_.batch_window_us > 0) {
        // Hold the batch open until the window closes or the row cap is
        // reached, coalescing everything that is queued or arrives. The
        // window bounds added latency; it never changes any logit.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.batch_window_us);
        while (batch_rows < options_.max_batch_rows) {
          if (queue_.empty()) {
            if (stopping_) break;
            if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
              break;
            }
            continue;
          }
          batch_rows += static_cast<int64_t>(queue_.front().node_ids.size());
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      stats_.batches += 1;
      stats_.rows += batch_rows;
    }

    // Compute outside the queue lock: one row-sliced kernel call for the
    // whole batch, then split per request. Each request's rows are bitwise
    // what a solo batch would have produced (frozen_model.h).
    std::vector<int> all_ids;
    all_ids.reserve(static_cast<size_t>(batch_rows));
    for (const Request& request : batch) {
      all_ids.insert(all_ids.end(), request.node_ids.begin(),
                     request.node_ids.end());
    }
    const ScopedTimer timer("serve.batch", /*items=*/batch_rows);
    CountMetric("serve.batched_requests",
                static_cast<int64_t>(batch.size()));
    const Matrix logits = model_.Logits(all_ids);
    int offset = 0;
    for (Request& request : batch) {
      const int rows = static_cast<int>(request.node_ids.size());
      Matrix part(rows, logits.cols());
      for (int r = 0; r < rows; ++r) {
        const float* src = logits.row(offset + r);
        std::copy(src, src + logits.cols(), part.row(r));
      }
      offset += rows;
      std::vector<int> classes(request.node_ids.size(), 0);
      for (int r = 0; r < rows; ++r) {
        const float* row = part.row(r);
        int best = 0;
        for (int c = 1; c < part.cols(); ++c) {
          if (row[c] > row[best]) best = c;
        }
        classes[static_cast<size_t>(r)] = best;
      }
      {
        std::lock_guard<std::mutex> guard(request.slot->mu);
        request.slot->logits = std::move(part);
        request.slot->classes = std::move(classes);
        request.slot->ready = true;
      }
      request.slot->cv.notify_all();
    }
  }
}

ServeStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace skipnode
