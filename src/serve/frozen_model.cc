// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "serve/frozen_model.h"

#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "autograd/tape.h"
#include "base/check.h"
#include "base/telemetry.h"
#include "nn/checkpoint.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"

namespace skipnode {

FrozenModel FrozenModel::Freeze(Model& model, const Graph& graph,
                                const StrategyConfig& strategy) {
  const ScopedTimer timer("serve.freeze", /*items=*/graph.num_nodes());
  // Eval-mode forwards never draw from the Rng (dropout is identity and the
  // sampling strategies are disabled when training=false); this Rng only
  // satisfies Model::Forward's signature. The value is irrelevant.
  Rng rng(0);
  Tape tape;
  tape.set_fast_math(strategy.fast_math);
  StrategyContext ctx(graph, strategy, /*training=*/false, rng);
  Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);

  FrozenModel frozen;
  frozen.model_name_ = model.name();
  frozen.logits_ = logits.value();
  frozen.embeddings_ = model.Penultimate();
  ServingHead head;
  if (model.ExportServingHead(&head)) {
    SKIPNODE_CHECK(head.weight.rows() == frozen.embeddings_.cols());
    SKIPNODE_CHECK(head.weight.cols() == frozen.logits_.cols());
    frozen.head_ = std::move(head);
  }
  return frozen;
}

std::unique_ptr<FrozenModel> FrozenModel::TryFromCheckpoint(
    const std::string& directory, const std::string& model_name,
    const ModelConfig& config, const Graph& graph,
    const StrategyConfig& strategy, std::string* error) {
  char message[512];
  const auto fail = [&](const char* text) -> std::unique_ptr<FrozenModel> {
    if (error != nullptr) *error = text;
    return nullptr;
  };

  std::vector<CheckpointEntry> entries;
  if (!ReadCheckpointManifest(directory, &entries)) {
    std::snprintf(message, sizeof(message),
                  "serve: no readable checkpoint manifest under '%s'",
                  directory.c_str());
    return fail(message);
  }
  std::map<std::string, std::pair<int, int>> shapes;
  for (const CheckpointEntry& entry : entries) {
    shapes.emplace(entry.name, std::make_pair(entry.rows, entry.cols));
  }

  // The initial weights are overwritten by the load; the Rng value is
  // irrelevant.
  Rng rng(0);
  std::unique_ptr<Model> model = MakeModel(model_name, config, rng);

  // Validate the manifest architecture against the requested ModelConfig
  // before any kernel sees a bad shape.
  const std::vector<Parameter*> parameters = model->Parameters();
  if (parameters.size() != shapes.size()) {
    std::snprintf(
        message, sizeof(message),
        "serve: checkpoint '%s' holds %zu parameters but %s(layers=%d, "
        "hidden=%d) has %zu — the saved model was a different architecture",
        directory.c_str(), shapes.size(), model_name.c_str(),
        config.num_layers, config.hidden_dim, parameters.size());
    return fail(message);
  }
  for (const Parameter* param : parameters) {
    const auto entry = shapes.find(param->name);
    if (entry == shapes.end()) {
      std::snprintf(
          message, sizeof(message),
          "serve: checkpoint '%s' has no parameter '%s' — the saved model "
          "was a different architecture than %s(layers=%d, hidden=%d)",
          directory.c_str(), param->name.c_str(), model_name.c_str(),
          config.num_layers, config.hidden_dim);
      return fail(message);
    }
    if (entry->second.first != param->value.rows() ||
        entry->second.second != param->value.cols()) {
      std::snprintf(
          message, sizeof(message),
          "serve: checkpoint parameter '%s' is %dx%d but the requested "
          "ModelConfig needs %dx%d — check --layers/--hidden/feature dims",
          param->name.c_str(), entry->second.first, entry->second.second,
          param->value.rows(), param->value.cols());
      return fail(message);
    }
  }
  if (!LoadModelParameters(*model, directory)) {
    std::snprintf(message, sizeof(message),
                  "serve: checkpoint load from '%s' failed after the "
                  "manifest validated — missing or corrupt parameter CSV",
                  directory.c_str());
    return fail(message);
  }
  return std::make_unique<FrozenModel>(Freeze(*model, graph, strategy));
}

FrozenModel FrozenModel::FromCheckpoint(const std::string& directory,
                                        const std::string& model_name,
                                        const ModelConfig& config,
                                        const Graph& graph,
                                        const StrategyConfig& strategy) {
  std::string error;
  std::unique_ptr<FrozenModel> frozen = TryFromCheckpoint(
      directory, model_name, config, graph, strategy, &error);
  SKIPNODE_CHECK_MSG(frozen != nullptr, "%s", error.c_str());
  return std::move(*frozen);
}

Matrix FrozenModel::Logits(const std::vector<int>& node_ids) const {
  if (!has_linear_head()) return GatherRows(logits_, node_ids);
  // Row-sliced recompute: per-output-row Gemm accumulation does not depend
  // on which other rows are in the batch, and the bias add is one float add
  // per element — both bitwise match the freeze-time full forward
  // (tape.MatMul + tape.AddRowBroadcast).
  Matrix out = MatMul(GatherRows(embeddings_, node_ids), head_.weight);
  if (!head_.bias.empty()) {
    for (int r = 0; r < out.rows(); ++r) {
      float* row = out.row(r);
      for (int c = 0; c < out.cols(); ++c) row[c] += head_.bias(0, c);
    }
  }
  return out;
}

std::vector<int> FrozenModel::Predict(const std::vector<int>& node_ids) const {
  const Matrix logits = Logits(node_ids);
  std::vector<int> classes(node_ids.size(), 0);
  for (int r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row(r);
    int best = 0;
    for (int c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    classes[static_cast<size_t>(r)] = best;
  }
  return classes;
}

Matrix FrozenModel::Embeddings(const std::vector<int>& node_ids) const {
  return GatherRows(embeddings_, node_ids);
}

}  // namespace skipnode
