// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// FrozenModel: an immutable snapshot of a trained model for inference
// (DESIGN §11). Freezing runs exactly one eval-mode forward — the same pass
// as EvaluateLogits — and captures everything serving needs as owned
// matrices: the full logits table, the penultimate-embedding table, and,
// for models whose classifier is one Linear over Penultimate() (SGC, JKNet,
// GCNII — eval-mode dropout between the two is the identity), the exported
// ServingHead. After Freeze() the source model, its Tape, and the Graph can
// all die; a FrozenModel is safe to share across threads because every
// accessor is a pure read.
//
// Bitwise contract: for any node-id batch, Logits(ids) row i equals row
// ids[i] of EvaluateLogits(model, graph, strategy) bit for bit, at any
// thread count. The linear-head path recomputes rows with the row-sliced
// parallel Gemm (per-output-row accumulation order is independent of which
// rows ride along — DESIGN §7); the general path gathers from the cached
// logits table.

#ifndef SKIPNODE_SERVE_FROZEN_MODEL_H_
#define SKIPNODE_SERVE_FROZEN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/strategies.h"
#include "graph/graph.h"
#include "nn/model.h"
#include "tensor/matrix.h"

namespace skipnode {

class FrozenModel {
 public:
  // Runs one eval-mode forward of `model` (bitwise the EvaluateLogits pass)
  // and captures the serving tables. `model` is unchanged apart from its
  // refreshed Penultimate() stash.
  static FrozenModel Freeze(Model& model, const Graph& graph,
                            const StrategyConfig& strategy);

  // Builds `model_name` from `config`, restores its parameters from a
  // SaveModelParameters checkpoint at `directory`, and freezes it. The
  // manifest architecture is validated against the model up front — a
  // missing parameter or a shape mismatch aborts with a message naming the
  // offending parameter instead of shape-aborting mid-Gemm later.
  static FrozenModel FromCheckpoint(const std::string& directory,
                                    const std::string& model_name,
                                    const ModelConfig& config,
                                    const Graph& graph,
                                    const StrategyConfig& strategy);

  // Non-aborting FromCheckpoint: returns nullptr and fills *error (when
  // non-null) instead of aborting when `directory` holds no valid
  // checkpoint for this architecture — missing/corrupt manifest,
  // parameter-set or shape mismatch, or a corrupt parameter CSV. This is
  // the hot-swap candidate-validation path (DESIGN §12): a watcher must
  // reject a bad checkpoint without disturbing serving.
  static std::unique_ptr<FrozenModel> TryFromCheckpoint(
      const std::string& directory, const std::string& model_name,
      const ModelConfig& config, const Graph& graph,
      const StrategyConfig& strategy, std::string* error);

  // Logits for the requested nodes, one row per id, in request order.
  // Repeated ids are allowed. Ids must be in [0, num_nodes()).
  Matrix Logits(const std::vector<int>& node_ids) const;

  // Argmax class per requested node (ties break to the lowest class index,
  // matching train/metrics Accuracy).
  std::vector<int> Predict(const std::vector<int>& node_ids) const;

  // Penultimate-embedding rows for the requested nodes.
  Matrix Embeddings(const std::vector<int>& node_ids) const;

  int num_nodes() const { return logits_.rows(); }
  int num_classes() const { return logits_.cols(); }
  int embedding_dim() const { return embeddings_.cols(); }
  const std::string& model_name() const { return model_name_; }
  // True when Logits() recomputes through the exported linear head instead
  // of gathering from the cached table.
  bool has_linear_head() const { return !head_.weight.empty(); }

  // The full tables captured at freeze time.
  const Matrix& full_logits() const { return logits_; }
  const Matrix& embedding_table() const { return embeddings_; }

 private:
  FrozenModel() = default;

  std::string model_name_;
  Matrix logits_;      // num_nodes x num_classes
  Matrix embeddings_;  // num_nodes x embedding_dim
  ServingHead head_;   // empty weight when the model exports no head
};

}  // namespace skipnode

#endif  // SKIPNODE_SERVE_FROZEN_MODEL_H_
