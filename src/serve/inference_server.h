// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// InferenceServer: concurrent batched serving over a FrozenModel
// (DESIGN §11), hardened for overload (DESIGN §12). Clients Submit()
// node-id requests from any number of threads; worker threads pull them off
// an MPMC queue, coalesce whatever is queued within a max-latency batching
// window (plus whatever arrives before it closes) into one row-sliced
// kernel call, and fulfil each request's PredictionHandle.
//
// Robustness contract (DESIGN §12): no input reachable from Submit() can
// abort the server. Invalid node ids, empty id lists, post-Shutdown
// submits, queue-full sheds, and expired deadlines all resolve the handle
// with a structured ServeStatus instead of a SKIPNODE_CHECK failure. The
// request queue is bounded by ServeOptions::max_queue_requests under a
// pluggable OverloadPolicy, and per-request deadlines are checked at
// dequeue and at batch close. SwapModel() retargets serving to a new
// FrozenModel snapshot with zero downtime: each batch captures the
// snapshot pointer exactly once, at batch formation under the queue lock
// (the swap linearization point), so every response is computed entirely
// from one snapshot and in-flight batches finish on the old model.
//
// Determinism: an *accepted* request's logits are bitwise independent of
// the batch it lands in, the arrival order, the worker count, the window
// setting, the queue cap, the policy, and any deadline, because
// FrozenModel::Logits is row-wise exact (frozen_model.h). Admission and
// expiry decide only *whether* a request is served, never what its numbers
// are. With batch_window_us == 0 and no failures every request is its own
// batch, so stats().batches == stats().requests exactly.

#ifndef SKIPNODE_SERVE_INFERENCE_SERVER_H_
#define SKIPNODE_SERVE_INFERENCE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/fault.h"
#include "serve/frozen_model.h"
#include "tensor/matrix.h"

namespace skipnode {

// Terminal state of one submitted request (or of the handle itself).
enum class ServeStatus {
  kInvalid,           // default-constructed handle; no request behind it
  kOk,                // served; logits()/classes() carry the result
  kRejected,          // shed by the overload policy or a dropped batch
  kDeadlineExceeded,  // expired before its batch was computed
  kInvalidArgument,   // empty id list or an id outside [0, num_nodes())
  kShutdown,          // submitted after Shutdown()
};

const char* ServeStatusName(ServeStatus status);

// What Submit() does when the queue already holds max_queue_requests.
enum class OverloadPolicy {
  kBlock,       // backpressure: Submit blocks until space or Shutdown
  kShedNewest,  // reject the incoming request (kRejected)
  kShedOldest,  // reject the oldest queued request, admit the new one
};

// Parses "block" / "shed-newest" / "shed-oldest"; false on unknown names.
bool ParseOverloadPolicy(const std::string& name, OverloadPolicy* policy);
const char* OverloadPolicyName(OverloadPolicy policy);

struct ServeOptions {
  // Worker threads pulling from the request queue (>= 1).
  int workers = 1;
  // Soft cap on coalesced rows per batch: a batch stops growing once it
  // holds this many rows (the request that crosses the cap still rides).
  int max_batch_rows = 256;
  // Max time a worker holds an open batch waiting for more requests.
  // 0 disables coalescing: one request per batch.
  int batch_window_us = 0;
  // Admission control: max requests queued at once; 0 means unbounded.
  int max_queue_requests = 0;
  // What Submit does when the queue is full (ignored while unbounded).
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  // Deadline applied to requests submitted without an explicit one, in
  // microseconds from Submit; 0 means no deadline.
  int64_t default_deadline_us = 0;
  // Deterministic serving fault (base/fault.h); disabled by default.
  ServeFaultPlan fault;
};

// Aggregate counters since construction. Reads are consistent snapshots.
struct ServeStats {
  int64_t requests = 0;  // Submit() calls, whatever their outcome
  int64_t batches = 0;   // kernel calls issued (computed batches only)
  int64_t rows = 0;      // logit rows computed
  // Failure-path accounting. requests == served + rejected +
  // deadline_exceeded + invalid (+ still-queued/in-flight at read time).
  int64_t rejected = 0;           // kRejected + kShutdown resolutions
  int64_t deadline_exceeded = 0;  // kDeadlineExceeded resolutions
  int64_t invalid = 0;            // kInvalidArgument resolutions
  int64_t swaps = 0;              // SwapModel() calls
  int64_t queue_peak = 0;         // high-water mark of queued requests
  int64_t queue_depth = 0;        // queued requests right now
};

// Blocking handle to one submitted request. Copyable; all copies share the
// result. status()/logits()/classes() block until the server resolves the
// request and stay valid after the server is destroyed. A
// default-constructed handle reports status() == kInvalid without blocking;
// calling logits()/classes() on it is a contract violation and aborts.
class PredictionHandle {
 public:
  PredictionHandle() = default;

  // Terminal status of the request. kInvalid immediately when !valid();
  // otherwise blocks until the server resolves the request.
  ServeStatus status() const;
  bool ok() const { return status() == ServeStatus::kOk; }

  // One row per requested node id, in request order. Empty (0x0) unless
  // status() == kOk.
  const Matrix& logits() const;
  // Argmax class per requested node id. Empty unless status() == kOk.
  const std::vector<int>& classes() const;
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class InferenceServer;

  struct ResultSlot {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    ServeStatus status = ServeStatus::kOk;
    Matrix logits;
    std::vector<int> classes;
  };

  explicit PredictionHandle(std::shared_ptr<ResultSlot> slot)
      : slot_(std::move(slot)) {}

  std::shared_ptr<ResultSlot> slot_;
};

class InferenceServer {
 public:
  // Starts options.workers threads immediately over `model` (never null).
  explicit InferenceServer(std::shared_ptr<const FrozenModel> model,
                           const ServeOptions& options);
  // Non-owning convenience overload: `model` must outlive the server.
  InferenceServer(const FrozenModel& model, const ServeOptions& options);
  ~InferenceServer();  // Shutdown().

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueues a request from any thread and returns a handle that always
  // resolves — to kOk rows bitwise identical to FrozenModel::Logits, or to
  // a structured error (see ServeStatus). `deadline_us` bounds how long the
  // request may wait before its batch is computed (measured from this
  // call); 0 applies ServeOptions::default_deadline_us. Under the kBlock
  // policy this call blocks while the queue is full. Safe to call at any
  // time, including after Shutdown() (resolves kShutdown).
  PredictionHandle Submit(std::vector<int> node_ids, int64_t deadline_us = 0);

  // Atomically retargets serving to `model` (never null). Batches formed
  // after this returns use the new snapshot; in-flight batches finish on
  // the one they captured at formation. Queued requests whose ids fall
  // outside the new snapshot resolve kInvalidArgument at compute time.
  void SwapModel(std::shared_ptr<const FrozenModel> model);

  // The snapshot new batches would use right now.
  std::shared_ptr<const FrozenModel> model_snapshot() const;

  // Drains every queued request, then joins the workers. Queued requests
  // are still resolved (kOk, or kDeadlineExceeded once expired); blocked
  // submitters resolve kShutdown. Idempotent.
  void Shutdown();

  ServeStats stats() const;

  // Serving faults fired so far (base/fault.h; at most one per plan).
  std::vector<ServeFaultEvent> fault_events() const {
    return fault_.events();
  }

 private:
  struct Request {
    std::vector<int> node_ids;
    int64_t deadline_ns = 0;  // absolute MonotonicNanos; 0 = none
    std::shared_ptr<PredictionHandle::ResultSlot> slot;
  };

  // Resolves a slot with a terminal error status and wakes its waiters.
  static void ResolveError(const std::shared_ptr<PredictionHandle::ResultSlot>&
                               slot,
                           ServeStatus status);

  void WorkerLoop();

  const ServeOptions options_;
  ServeFaultInjector fault_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue became non-empty / stopping
  std::condition_variable space_cv_;  // queue gained space / stopping
  std::shared_ptr<const FrozenModel> model_;  // current snapshot
  std::deque<Request> queue_;
  int64_t batches_formed_ = 0;  // fault-injection ordinal
  bool stopping_ = false;
  ServeStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace skipnode

#endif  // SKIPNODE_SERVE_INFERENCE_SERVER_H_
