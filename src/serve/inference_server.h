// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// InferenceServer: concurrent batched serving over a FrozenModel
// (DESIGN §11). Clients Submit() node-id requests from any number of
// threads; worker threads pull them off an MPMC queue, coalesce whatever is
// queued within a max-latency batching window (plus whatever arrives before
// it closes) into one row-sliced kernel call, and fulfil each request's
// PredictionHandle.
//
// Determinism: a request's logits are bitwise independent of the batch it
// lands in, the arrival order, the worker count, and the window setting,
// because FrozenModel::Logits is row-wise exact (frozen_model.h). Batching
// only changes latency and kernel-call count, never a number. With
// batch_window_us == 0 every request is its own batch, so
// stats().batches == stats().requests exactly.

#ifndef SKIPNODE_SERVE_INFERENCE_SERVER_H_
#define SKIPNODE_SERVE_INFERENCE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/frozen_model.h"
#include "tensor/matrix.h"

namespace skipnode {

struct ServeOptions {
  // Worker threads pulling from the request queue (>= 1).
  int workers = 1;
  // Soft cap on coalesced rows per batch: a batch stops growing once it
  // holds this many rows (the request that crosses the cap still rides).
  int max_batch_rows = 256;
  // Max time a worker holds an open batch waiting for more requests.
  // 0 disables coalescing: one request per batch.
  int batch_window_us = 0;
};

// Aggregate counters since construction. Reads are consistent snapshots.
struct ServeStats {
  int64_t requests = 0;  // submitted
  int64_t batches = 0;   // kernel calls issued
  int64_t rows = 0;      // logit rows computed
};

// Blocking handle to one submitted request. Copyable; all copies share the
// result. logits()/classes() block until the server fulfils the request and
// stay valid after the server is destroyed.
class PredictionHandle {
 public:
  PredictionHandle() = default;

  // One row per requested node id, in request order.
  const Matrix& logits() const;
  // Argmax class per requested node id.
  const std::vector<int>& classes() const;
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class InferenceServer;

  struct ResultSlot {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    Matrix logits;
    std::vector<int> classes;
  };

  explicit PredictionHandle(std::shared_ptr<ResultSlot> slot)
      : slot_(std::move(slot)) {}

  std::shared_ptr<ResultSlot> slot_;
};

class InferenceServer {
 public:
  // Starts options.workers threads immediately. `model` must outlive the
  // server.
  InferenceServer(const FrozenModel& model, const ServeOptions& options);
  ~InferenceServer();  // Shutdown().

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueues a request from any thread. Ids must be in
  // [0, model.num_nodes()). Must not be called after Shutdown().
  PredictionHandle Submit(std::vector<int> node_ids);

  // Drains every queued request, then joins the workers. Idempotent.
  void Shutdown();

  ServeStats stats() const;

 private:
  struct Request {
    std::vector<int> node_ids;
    std::shared_ptr<PredictionHandle::ResultSlot> slot;
  };

  void WorkerLoop();

  const FrozenModel& model_;
  const ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  ServeStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace skipnode

#endif  // SKIPNODE_SERVE_INFERENCE_SERVER_H_
