// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "core/skipnode.h"

#include <cmath>

#include "base/check.h"

namespace skipnode {

std::vector<uint8_t> SampleSkipMaskUniform(int num_nodes, float rho,
                                           Rng& rng) {
  SKIPNODE_CHECK(rho >= 0.0f && rho <= 1.0f);
  std::vector<uint8_t> mask(num_nodes, 0);
  for (int i = 0; i < num_nodes; ++i) {
    mask[i] = rng.Bernoulli(rho) ? 1 : 0;
  }
  return mask;
}

std::vector<uint8_t> SampleSkipMaskBiased(const std::vector<int>& degrees,
                                          float rho, Rng& rng) {
  const int n = static_cast<int>(degrees.size());
  std::vector<double> weights(n);
  for (int i = 0; i < n; ++i) weights[i] = static_cast<double>(degrees[i]);
  return SampleSkipMaskBiased(weights, rho, rng);
}

std::vector<uint8_t> SampleSkipMaskBiased(const std::vector<double>& weights,
                                          float rho, Rng& rng) {
  SKIPNODE_CHECK(rho >= 0.0f && rho <= 1.0f);
  const int n = static_cast<int>(weights.size());
  const int k = static_cast<int>(std::lround(rho * n));
  std::vector<uint8_t> mask(n, 0);
  for (const int i : rng.WeightedSampleWithoutReplacement(weights, k)) {
    mask[i] = 1;
  }
  return mask;
}

int CountSkipped(const std::vector<uint8_t>& mask) {
  int count = 0;
  for (const uint8_t m : mask) count += m;
  return count;
}

}  // namespace skipnode
