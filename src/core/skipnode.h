// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The paper's contribution: SkipNode mask sampling (Section 5.1). A GCN layer
// with SkipNode computes
//
//   X^(l) = sigma( (I - P) A_hat X^(l-1) W^(l) + P X^(l-1) )     (Eq. 4)
//
// where P is a diagonal 0/1 matrix resampled at every training step. Nodes
// with P_ii = 1 skip the convolution entirely: their features pass through
// unchanged and, crucially, so do their gradients. The mask is represented as
// a per-row byte vector consumed by Tape::RowSelect.

#ifndef SKIPNODE_CORE_SKIPNODE_H_
#define SKIPNODE_CORE_SKIPNODE_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace skipnode {

// Uniform sampling: P_ii ~ Bernoulli(rho) independently (SkipNode-U).
std::vector<uint8_t> SampleSkipMaskUniform(int num_nodes, float rho, Rng& rng);

// Biased sampling: exactly round(rho * N) nodes drawn without replacement
// with probability proportional to degree (SkipNode-B) — high-degree nodes
// over-smooth fastest, so they are skipped preferentially.
std::vector<uint8_t> SampleSkipMaskBiased(const std::vector<int>& degrees,
                                          float rho, Rng& rng);

// Same sampler over precomputed weights (Graph::degree_weights() caches the
// degree conversion once per graph instead of rebuilding the double vector
// at every middle layer of every epoch). Draw-for-draw identical to the
// degrees overload when weights[i] == degrees[i].
std::vector<uint8_t> SampleSkipMaskBiased(const std::vector<double>& weights,
                                          float rho, Rng& rng);

// Number of skipped (mask = 1) nodes.
int CountSkipped(const std::vector<uint8_t>& mask);

}  // namespace skipnode

#endif  // SKIPNODE_CORE_SKIPNODE_H_
