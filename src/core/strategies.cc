// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "core/strategies.h"

#include "base/check.h"
#include "core/skipnode.h"

namespace skipnode {

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNone:
      return "-";
    case StrategyKind::kDropEdge:
      return "DropEdge";
    case StrategyKind::kDropNode:
      return "DropNode";
    case StrategyKind::kPairNorm:
      return "PairNorm";
    case StrategyKind::kSkipConnection:
      return "SkipConn";
    case StrategyKind::kSkipNodeUniform:
      return "SkipNode-U";
    case StrategyKind::kSkipNodeBiased:
      return "SkipNode-B";
  }
  return "?";
}

StrategyContext::StrategyContext(const Graph& graph,
                                 const StrategyConfig& config, bool training,
                                 Rng& rng)
    : graph_(graph), config_(config), training_(training), rng_(rng) {
  if (training_ && config_.kind == StrategyKind::kDropEdge &&
      config_.rate > 0.0f) {
    // One sampled topology per pass; the renormalisation here is DropEdge's
    // per-epoch cost.
    shared_adjacency_ = std::make_shared<const CsrMatrix>(DropEdgeAdjacency(
        graph_.num_nodes(), graph_.edges(), config_.rate, rng_));
  } else {
    shared_adjacency_ = graph_.normalized_adjacency();
  }
}

std::shared_ptr<const CsrMatrix> StrategyContext::LayerAdjacency(int layer) {
  (void)layer;
  if (training_ && config_.kind == StrategyKind::kDropNode &&
      config_.rate > 0.0f) {
    // DropNode re-samples nodes and renormalises at every layer.
    return std::make_shared<const CsrMatrix>(DropNodeAdjacency(
        graph_.num_nodes(), graph_.edges(), config_.rate, rng_));
  }
  return shared_adjacency_;
}

namespace {

float ClampRate(float rate) {
  if (rate < 0.0f) return 0.0f;
  if (rate > 1.0f) return 1.0f;
  return rate;
}

}  // namespace

float StrategyContext::ScheduledRho(int middle_index) const {
  // Constant when rho_growth is 0.
  return ClampRate(config_.rate +
                   config_.rho_growth * static_cast<float>(middle_index));
}

std::vector<uint8_t> StrategyContext::SampleMask(float rho) {
  if (config_.kind == StrategyKind::kSkipNodeBiased) {
    return SampleSkipMaskBiased(graph_.degree_weights(), rho, rng_);
  }
  return SampleSkipMaskUniform(graph_.num_nodes(), rho, rng_);
}

Var StrategyContext::TransformMiddle(Tape& tape, Var pre, Var conv) {
  const int middle_index = middle_calls_++;
  const float rho = ScheduledRho(middle_index);
  switch (config_.kind) {
    case StrategyKind::kSkipNodeUniform:
    case StrategyKind::kSkipNodeBiased: {
      if (!training_ || rho <= 0.0f) return conv;
      return tape.RowSelect(SampleMask(rho), pre, conv);
    }
    case StrategyKind::kSkipConnection:
      return tape.Add(conv, pre);
    case StrategyKind::kPairNorm:
      return tape.PairNorm(conv, config_.pairnorm_scale);
    case StrategyKind::kNone:
    case StrategyKind::kDropEdge:
    case StrategyKind::kDropNode:
      return conv;
  }
  return conv;
}

Var StrategyContext::PropagateMiddle(Tape& tape, int layer, Var pre, Var h) {
  std::shared_ptr<const CsrMatrix> adjacency = LayerAdjacency(layer);
  const bool skipnode = config_.kind == StrategyKind::kSkipNodeUniform ||
                        config_.kind == StrategyKind::kSkipNodeBiased;
  if (!skipnode || !training_ || !config_.fuse_propagation) {
    return TransformMiddle(tape, pre, tape.SpMM(std::move(adjacency), h));
  }
  const int middle_index = middle_calls_++;
  const float rho = ScheduledRho(middle_index);
  // rho == 0 skips nothing; match TransformMiddle, which returns the bare
  // convolution without sampling a mask.
  if (rho <= 0.0f) return tape.SpMM(std::move(adjacency), h);
  return tape.SpMMRowSelect(std::move(adjacency), h, pre, SampleMask(rho));
}

Var StrategyContext::TransformBoundary(Tape& tape, Var conv) {
  if (config_.kind == StrategyKind::kPairNorm) {
    return tape.PairNorm(conv, config_.pairnorm_scale);
  }
  return conv;
}

LayerSkipMaskFn MakeSampledSkipMaskFn(const Graph& graph,
                                      const StrategyConfig& config,
                                      int num_layers, Rng& rng) {
  SKIPNODE_CHECK(num_layers >= 2);
  if (config.kind == StrategyKind::kNone) return nullptr;
  SKIPNODE_CHECK_MSG(config.kind == StrategyKind::kSkipNodeUniform ||
                         config.kind == StrategyKind::kSkipNodeBiased,
                     "sampled training supports only SkipNode-U/-B or none");
  const bool biased = config.kind == StrategyKind::kSkipNodeBiased;
  return [&graph, config, num_layers, biased, &rng](
             int layer, const std::vector<int>& dst_nodes) {
    if (layer <= 0 || layer >= num_layers - 1) return std::vector<uint8_t>();
    // Middle layer l is the (l-1)-th middle combine of a forward pass.
    const float rho = ClampRate(config.rate +
                                config.rho_growth * static_cast<float>(layer - 1));
    if (rho <= 0.0f) return std::vector<uint8_t>();
    if (biased) {
      // Biased draw over the *frontier's* degree weights: gathering keeps
      // the batch draw proportional to degree among the rows that exist in
      // this batch.
      const std::vector<double>& weights = graph.degree_weights();
      std::vector<double> gathered(dst_nodes.size());
      for (size_t i = 0; i < dst_nodes.size(); ++i) {
        gathered[i] = weights[static_cast<size_t>(dst_nodes[i])];
      }
      return SampleSkipMaskBiased(gathered, rho, rng);
    }
    return SampleSkipMaskUniform(static_cast<int>(dst_nodes.size()), rho, rng);
  };
}

}  // namespace skipnode
