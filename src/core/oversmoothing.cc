// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "core/oversmoothing.h"

#include <cmath>
#include <vector>

#include "base/check.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

// Visits each undirected edge once as (u, v). Edge-list graphs walk the
// list (the historical order, so existing results stay bitwise identical);
// CSR-backed graphs walk the upper triangle of the A_hat pattern, which
// enumerates the same simple edges.
template <typename Fn>
void ForEachEdge(const Graph& graph, Fn&& fn) {
  if (!graph.csr_backed()) {
    for (const auto& [u, v] : graph.edges()) fn(u, v);
    return;
  }
  const CsrMatrix& a = *graph.normalized_adjacency();
  const std::vector<int>& cols = a.col_idx();
  for (int u = 0; u < a.rows(); ++u) {
    const int64_t end = a.RowEnd(u);
    for (int64_t e = a.RowBegin(u); e < end; ++e) {
      const int v = cols[static_cast<size_t>(e)];
      if (v > u) fn(u, v);
    }
  }
}

}  // namespace

float MeanAverageDistance(const Graph& graph, const Matrix& x) {
  SKIPNODE_CHECK(x.rows() == graph.num_nodes());
  const int n = graph.num_nodes();
  std::vector<double> distance_sum(n, 0.0);
  std::vector<int> neighbor_count(n, 0);
  ForEachEdge(graph, [&](int u, int v) {
    const float cos = CosineSimilarity(x.row(u), x.row(v), x.cols());
    const double dist = 1.0 - cos;
    distance_sum[u] += dist;
    distance_sum[v] += dist;
    neighbor_count[u] += 1;
    neighbor_count[v] += 1;
  });
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < n; ++i) {
    if (neighbor_count[i] == 0) continue;
    total += distance_sum[i] / neighbor_count[i];
    ++counted;
  }
  if (counted == 0) return 0.0f;
  return static_cast<float>(total / counted);
}

float DirichletEnergy(const Graph& graph, const Matrix& x) {
  SKIPNODE_CHECK(x.rows() == graph.num_nodes());
  const std::vector<int>& degree = graph.degrees();
  double energy = 0.0;
  ForEachEdge(graph, [&](int u, int v) {
    const float inv_u = 1.0f / std::sqrt(1.0f + degree[u]);
    const float inv_v = 1.0f / std::sqrt(1.0f + degree[v]);
    const float* xu = x.row(u);
    const float* xv = x.row(v);
    for (int c = 0; c < x.cols(); ++c) {
      const double diff = inv_u * xu[c] - inv_v * xv[c];
      energy += diff * diff;
    }
  });
  return static_cast<float>(0.5 * energy);
}

SubspaceAnalyzer::SubspaceAnalyzer(const Graph& graph)
    : a_hat_(graph.normalized_adjacency()),
      basis_(TopEigenvectors(graph.components(), graph.degrees())) {}

float SubspaceAnalyzer::DistanceToM(const Matrix& x) const {
  return skipnode::DistanceToM(basis_, x);
}

float SubspaceAnalyzer::Lambda() const {
  if (lambda_ < 0.0f) {
    lambda_ = SecondLargestEigenvalueMagnitude(*a_hat_, basis_);
  }
  return lambda_;
}

float Theorem2Coefficient(float s, float lambda, float rho) {
  const float sl = s * lambda;
  return sl + rho * (1.0f - sl);
}

float Theorem3Coefficient(float s, float lambda, float rho) {
  const float sl = s * lambda;
  SKIPNODE_CHECK(sl > 0.0f);
  return rho * (1.0f / sl + 1.0f) - 1.0f;
}

}  // namespace skipnode
