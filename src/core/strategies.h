// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The plug-and-play training strategies the paper studies, behind one
// interface so every backbone supports all of them:
//
//   * SkipNode-U / SkipNode-B  — the contribution (core/skipnode.h),
//   * DropEdge                 — per-epoch edge sampling + renormalisation,
//   * DropNode                 — per-layer node down-sampling + renorm.,
//   * PairNorm                 — centre-and-scale normalisation after convs,
//   * SkipConnection           — residual add (ResGCN-style),
//   * None                     — vanilla backbone.
//
// A StrategyContext is created per forward pass. Backbones query it twice
// per convolution layer:
//   1. LayerAdjacency(layer)  — which adjacency operator to propagate with;
//   2. Transform(...)         — the post-convolution combine (identity for
//      topology-level strategies).

#ifndef SKIPNODE_CORE_STRATEGIES_H_
#define SKIPNODE_CORE_STRATEGIES_H_

#include <memory>
#include <string>

#include "autograd/tape.h"
#include "base/rng.h"
#include "graph/graph.h"
#include "graph/sampler.h"

namespace skipnode {

enum class StrategyKind {
  kNone,
  kDropEdge,
  kDropNode,
  kPairNorm,
  kSkipConnection,
  kSkipNodeUniform,
  kSkipNodeBiased,
};

// Short display name ("SkipNode-U", "DropEdge", ...).
const char* StrategyName(StrategyKind kind);

struct StrategyConfig {
  StrategyKind kind = StrategyKind::kNone;
  // Sampling rate: rho for SkipNode, drop probability for DropEdge/DropNode.
  float rate = 0.5f;
  // PairNorm's target row scale s.
  float pairnorm_scale = 1.0f;
  // Extension (ablation/bench): per-layer rho schedule for SkipNode. The
  // effective rate at the k-th middle combine of a forward pass is
  // clamp(rate + rho_growth * k, 0, 1). The paper's Figure 5 shows deeper
  // stacks want larger rho; a positive growth lets early layers convolve
  // more while deep layers skip more. 0 reproduces the paper's constant rho.
  float rho_growth = 0.0f;
  // When true (the default), backbones that hand their propagation to
  // PropagateMiddle get the fused masked kernel (Tape::SpMMRowSelect) for
  // SkipNode: skipped rows never pay for the convolution. The fused path is
  // bitwise identical to the naive SpMM + RowSelect one (asserted by
  // fused_train_test); false keeps the naive path, for A/B timing and the
  // bitwise-equivalence tests.
  bool fuse_propagation = true;
  // Opt-in to the reassociated SIMD dot kernel in MatMul's k-reduction
  // paths (Tape::set_fast_math, DESIGN §14). Default off: training stays
  // bitwise identical to the exact double-accumulation path. On, results
  // differ by rounding only (tolerance-tested), and are still deterministic
  // at any thread count.
  bool fast_math = false;

  static StrategyConfig None() { return {}; }
  static StrategyConfig SkipNodeU(float rho) {
    return {StrategyKind::kSkipNodeUniform, rho, 1.0f, 0.0f};
  }
  static StrategyConfig SkipNodeB(float rho) {
    return {StrategyKind::kSkipNodeBiased, rho, 1.0f, 0.0f};
  }
  static StrategyConfig DropEdge(float rate) {
    return {StrategyKind::kDropEdge, rate, 1.0f, 0.0f};
  }
  static StrategyConfig DropNode(float rate) {
    return {StrategyKind::kDropNode, rate, 1.0f, 0.0f};
  }
  static StrategyConfig PairNorm(float scale = 1.0f) {
    return {StrategyKind::kPairNorm, 0.0f, scale, 0.0f};
  }
  static StrategyConfig SkipConnection() {
    return {StrategyKind::kSkipConnection, 0.0f, 1.0f, 0.0f};
  }
};

// Per-forward-pass strategy state. Construct once per training step (and per
// evaluation pass); it samples whatever the strategy needs and hands
// backbones the pieces. At evaluation time every strategy except PairNorm
// and SkipConnection degenerates to the vanilla model, as in the paper.
class StrategyContext {
 public:
  // `graph` and `rng` must outlive the context.
  StrategyContext(const Graph& graph, const StrategyConfig& config,
                  bool training, Rng& rng);

  // Adjacency operator for convolution layer `layer` (0-based). DropEdge
  // returns one sampled-and-renormalised matrix shared by all layers of this
  // pass; DropNode resamples (and renormalises) per layer — the cost
  // difference Table 8 measures.
  std::shared_ptr<const CsrMatrix> LayerAdjacency(int layer);

  // Post-convolution combine for a *middle* layer, where input and output
  // widths match. `pre` is the layer input X^(l-1) (post-activation of the
  // previous layer), `conv` the convolution result before the nonlinearity
  // is irrelevant here — backbones call this on their chosen tensor:
  //   SkipNode:        RowSelect(mask, pre, conv)      (Eq. 4)
  //   SkipConnection:  conv + pre
  //   PairNorm:        PairNorm(conv)
  //   others:          conv
  Var TransformMiddle(Tape& tape, Var pre, Var conv);

  // Propagate-and-combine for a middle layer whose combine input is the raw
  // convolution: equivalent to
  //   TransformMiddle(tape, pre, tape.SpMM(LayerAdjacency(layer), h))
  // but for a training-time SkipNode pass it fuses the two into
  // Tape::SpMMRowSelect, so the rho-fraction of skipped rows never computes
  // its convolution (DESIGN §10). Backbones whose combine input is not the
  // raw SpMM (residual adds, GCNII/APPNP mixes, GAT attention) keep calling
  // SpMM + TransformMiddle. Bitwise identical to the unfused form at any
  // thread count, rho, and mask kind; shares the middle-layer counter and
  // draws the mask from the same Rng stream, so fused and naive passes
  // consume identical randomness.
  Var PropagateMiddle(Tape& tape, int layer, Var pre, Var h);

  // Post-convolution hook for layers whose width changed (first/last):
  // only PairNorm applies; everything else is identity.
  Var TransformBoundary(Tape& tape, Var conv);

  const StrategyConfig& config() const { return config_; }
  bool training() const { return training_; }
  // Number of TransformMiddle calls so far in this pass (the middle-layer
  // index used by the rho schedule).
  int middle_calls() const { return middle_calls_; }

 private:
  // Scheduled rho for the middle layer with the given index.
  float ScheduledRho(int middle_index) const;
  // Samples the SkipNode mask for the configured kind (uniform or biased —
  // biased reuses the graph's cached degree-weight vector).
  std::vector<uint8_t> SampleMask(float rho);

  const Graph& graph_;
  StrategyConfig config_;
  bool training_;
  Rng& rng_;
  std::shared_ptr<const CsrMatrix> shared_adjacency_;
  int middle_calls_ = 0;
};

// Builds the NeighborSampler's per-layer skip-mask callback from a strategy
// (DESIGN §15). For SkipNode the callback draws the batch's middle-layer
// masks over the dst frontier — uniform, or biased by the gathered
// degree weights — from `rng`, in the sampler's serial top-layer-first
// order; the same masks ride along in SampledLayer::skip_mask and drive the
// forward's RowSelect, so pruning and training agree row for row. The rho
// schedule matches the full-batch pass: middle layer l uses
// clamp(rate + rho_growth * (l - 1), 0, 1). kNone returns a null callback
// (no pruning); any other strategy aborts — the sampled path supports only
// SkipNode and the vanilla backbone.
LayerSkipMaskFn MakeSampledSkipMaskFn(const Graph& graph,
                                      const StrategyConfig& config,
                                      int num_layers, Rng& rng);

}  // namespace skipnode

#endif  // SKIPNODE_CORE_STRATEGIES_H_
