// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The paper's over-smoothing measurement toolkit:
//   * MAD (Chen et al. 2020): mean average cosine distance between connected
//     nodes — Figure 2(a) and Figure 5(b);
//   * d_M(X): distance of a representation to the lower-information subspace
//     M (Oono & Suzuki 2020) — Figure 4 and Theorems 2/3;
//   * lambda: the second-largest eigenvalue magnitude of A_hat;
//   * closed-form bound coefficients from Theorems 2 and 3.

#ifndef SKIPNODE_CORE_OVERSMOOTHING_H_
#define SKIPNODE_CORE_OVERSMOOTHING_H_

#include <memory>

#include "graph/graph.h"
#include "sparse/spectral.h"
#include "tensor/matrix.h"

namespace skipnode {

// Mean of the per-node average cosine distance (1 - cosine similarity) to
// connected neighbours; nodes without neighbours are excluded. 0 means every
// node equals its neighbours (fully over-smoothed).
float MeanAverageDistance(const Graph& graph, const Matrix& x);

// Dirichlet energy E(X) = 1/2 sum_{(i,j) in E} || x_i/sqrt(1+d_i) -
// x_j/sqrt(1+d_j) ||^2, the smoothness functional used by the
// Dirichlet-energy line of anti-over-smoothing work the paper discusses
// ([49]); it decays to 0 exactly when representations over-smooth.
float DirichletEnergy(const Graph& graph, const Matrix& x);

// Caches the spectral structure of one graph's A_hat to answer d_M and
// lambda queries cheaply (both are needed per layer in Figure 4 and per
// epoch in Figure 2).
class SubspaceAnalyzer {
 public:
  explicit SubspaceAnalyzer(const Graph& graph);

  // d_M(X) = || X - proj_M X ||_F.
  float DistanceToM(const Matrix& x) const;

  // Second-largest eigenvalue magnitude of A_hat (computed on first use).
  float Lambda() const;

  const Matrix& basis() const { return basis_; }

 private:
  std::shared_ptr<const CsrMatrix> a_hat_;
  Matrix basis_;  // N x (#components) eigenvalue-1 eigenvectors.
  mutable float lambda_ = -1.0f;
};

// Theorem 2: d_M(E[X2]) <= (s*lambda + rho*(1 - s*lambda)) * d_M(X).
float Theorem2Coefficient(float s, float lambda, float rho);

// Theorem 3: when rho*(1/(s*lambda) + 1) - 1 > 0,
// d_M(E[X2]) >= (rho*(1/(s*lambda) + 1) - 1) * d_M(X1).
float Theorem3Coefficient(float s, float lambda, float rho);

}  // namespace skipnode

#endif  // SKIPNODE_CORE_OVERSMOOTHING_H_
