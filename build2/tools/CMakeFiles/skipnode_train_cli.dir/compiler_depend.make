# Empty compiler generated dependencies file for skipnode_train_cli.
# This may be replaced when dependencies are built.
