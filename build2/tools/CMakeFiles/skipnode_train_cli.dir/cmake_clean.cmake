file(REMOVE_RECURSE
  "CMakeFiles/skipnode_train_cli.dir/skipnode_train_main.cc.o"
  "CMakeFiles/skipnode_train_cli.dir/skipnode_train_main.cc.o.d"
  "skipnode_train"
  "skipnode_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_train_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
