# Empty compiler generated dependencies file for skipnode_cli.
# This may be replaced when dependencies are built.
