file(REMOVE_RECURSE
  "CMakeFiles/skipnode_cli.dir/cli.cc.o"
  "CMakeFiles/skipnode_cli.dir/cli.cc.o.d"
  "libskipnode_cli.a"
  "libskipnode_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
