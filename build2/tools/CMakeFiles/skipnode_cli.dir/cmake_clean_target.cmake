file(REMOVE_RECURSE
  "libskipnode_cli.a"
)
