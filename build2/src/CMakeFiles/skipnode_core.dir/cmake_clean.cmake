file(REMOVE_RECURSE
  "CMakeFiles/skipnode_core.dir/core/oversmoothing.cc.o"
  "CMakeFiles/skipnode_core.dir/core/oversmoothing.cc.o.d"
  "CMakeFiles/skipnode_core.dir/core/skipnode.cc.o"
  "CMakeFiles/skipnode_core.dir/core/skipnode.cc.o.d"
  "CMakeFiles/skipnode_core.dir/core/strategies.cc.o"
  "CMakeFiles/skipnode_core.dir/core/strategies.cc.o.d"
  "libskipnode_core.a"
  "libskipnode_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
