# Empty dependencies file for skipnode_core.
# This may be replaced when dependencies are built.
