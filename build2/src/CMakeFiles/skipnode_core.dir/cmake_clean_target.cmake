file(REMOVE_RECURSE
  "libskipnode_core.a"
)
