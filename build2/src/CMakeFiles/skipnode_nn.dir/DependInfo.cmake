
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/appnp.cc" "src/CMakeFiles/skipnode_nn.dir/nn/appnp.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/appnp.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/CMakeFiles/skipnode_nn.dir/nn/checkpoint.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/checkpoint.cc.o.d"
  "/root/repo/src/nn/gat.cc" "src/CMakeFiles/skipnode_nn.dir/nn/gat.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/gat.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/CMakeFiles/skipnode_nn.dir/nn/gcn.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/gcn.cc.o.d"
  "/root/repo/src/nn/gcnii.cc" "src/CMakeFiles/skipnode_nn.dir/nn/gcnii.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/gcnii.cc.o.d"
  "/root/repo/src/nn/gprgnn.cc" "src/CMakeFiles/skipnode_nn.dir/nn/gprgnn.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/gprgnn.cc.o.d"
  "/root/repo/src/nn/grand.cc" "src/CMakeFiles/skipnode_nn.dir/nn/grand.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/grand.cc.o.d"
  "/root/repo/src/nn/incepgcn.cc" "src/CMakeFiles/skipnode_nn.dir/nn/incepgcn.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/incepgcn.cc.o.d"
  "/root/repo/src/nn/jknet.cc" "src/CMakeFiles/skipnode_nn.dir/nn/jknet.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/jknet.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/skipnode_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/model_factory.cc" "src/CMakeFiles/skipnode_nn.dir/nn/model_factory.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/model_factory.cc.o.d"
  "/root/repo/src/nn/resgcn.cc" "src/CMakeFiles/skipnode_nn.dir/nn/resgcn.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/resgcn.cc.o.d"
  "/root/repo/src/nn/sgc.cc" "src/CMakeFiles/skipnode_nn.dir/nn/sgc.cc.o" "gcc" "src/CMakeFiles/skipnode_nn.dir/nn/sgc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/skipnode_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_autograd.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_graph.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_sparse.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_tensor.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
