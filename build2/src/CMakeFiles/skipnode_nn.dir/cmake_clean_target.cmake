file(REMOVE_RECURSE
  "libskipnode_nn.a"
)
