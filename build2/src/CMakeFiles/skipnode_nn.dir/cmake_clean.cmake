file(REMOVE_RECURSE
  "CMakeFiles/skipnode_nn.dir/nn/appnp.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/appnp.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/checkpoint.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/checkpoint.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/gat.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/gat.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/gcn.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/gcn.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/gcnii.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/gcnii.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/gprgnn.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/gprgnn.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/grand.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/grand.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/incepgcn.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/incepgcn.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/jknet.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/jknet.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/linear.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/model_factory.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/model_factory.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/resgcn.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/resgcn.cc.o.d"
  "CMakeFiles/skipnode_nn.dir/nn/sgc.cc.o"
  "CMakeFiles/skipnode_nn.dir/nn/sgc.cc.o.d"
  "libskipnode_nn.a"
  "libskipnode_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
