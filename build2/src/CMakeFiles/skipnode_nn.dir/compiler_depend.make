# Empty compiler generated dependencies file for skipnode_nn.
# This may be replaced when dependencies are built.
