file(REMOVE_RECURSE
  "CMakeFiles/skipnode_autograd.dir/autograd/grad_check.cc.o"
  "CMakeFiles/skipnode_autograd.dir/autograd/grad_check.cc.o.d"
  "CMakeFiles/skipnode_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/skipnode_autograd.dir/autograd/ops.cc.o.d"
  "CMakeFiles/skipnode_autograd.dir/autograd/tape.cc.o"
  "CMakeFiles/skipnode_autograd.dir/autograd/tape.cc.o.d"
  "libskipnode_autograd.a"
  "libskipnode_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
