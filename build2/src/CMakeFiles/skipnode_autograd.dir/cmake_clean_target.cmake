file(REMOVE_RECURSE
  "libskipnode_autograd.a"
)
