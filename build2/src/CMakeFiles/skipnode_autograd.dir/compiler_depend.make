# Empty compiler generated dependencies file for skipnode_autograd.
# This may be replaced when dependencies are built.
