# Empty compiler generated dependencies file for skipnode_sparse.
# This may be replaced when dependencies are built.
