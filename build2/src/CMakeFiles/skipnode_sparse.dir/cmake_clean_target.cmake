file(REMOVE_RECURSE
  "libskipnode_sparse.a"
)
