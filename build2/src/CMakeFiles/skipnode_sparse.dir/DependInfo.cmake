
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csr_matrix.cc" "src/CMakeFiles/skipnode_sparse.dir/sparse/csr_matrix.cc.o" "gcc" "src/CMakeFiles/skipnode_sparse.dir/sparse/csr_matrix.cc.o.d"
  "/root/repo/src/sparse/graph_ops.cc" "src/CMakeFiles/skipnode_sparse.dir/sparse/graph_ops.cc.o" "gcc" "src/CMakeFiles/skipnode_sparse.dir/sparse/graph_ops.cc.o.d"
  "/root/repo/src/sparse/spectral.cc" "src/CMakeFiles/skipnode_sparse.dir/sparse/spectral.cc.o" "gcc" "src/CMakeFiles/skipnode_sparse.dir/sparse/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/skipnode_tensor.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
