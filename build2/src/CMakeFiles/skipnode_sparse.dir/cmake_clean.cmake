file(REMOVE_RECURSE
  "CMakeFiles/skipnode_sparse.dir/sparse/csr_matrix.cc.o"
  "CMakeFiles/skipnode_sparse.dir/sparse/csr_matrix.cc.o.d"
  "CMakeFiles/skipnode_sparse.dir/sparse/graph_ops.cc.o"
  "CMakeFiles/skipnode_sparse.dir/sparse/graph_ops.cc.o.d"
  "CMakeFiles/skipnode_sparse.dir/sparse/spectral.cc.o"
  "CMakeFiles/skipnode_sparse.dir/sparse/spectral.cc.o.d"
  "libskipnode_sparse.a"
  "libskipnode_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
