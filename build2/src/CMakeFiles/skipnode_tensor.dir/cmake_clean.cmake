file(REMOVE_RECURSE
  "CMakeFiles/skipnode_tensor.dir/tensor/matrix.cc.o"
  "CMakeFiles/skipnode_tensor.dir/tensor/matrix.cc.o.d"
  "CMakeFiles/skipnode_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/skipnode_tensor.dir/tensor/ops.cc.o.d"
  "libskipnode_tensor.a"
  "libskipnode_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
