file(REMOVE_RECURSE
  "libskipnode_tensor.a"
)
