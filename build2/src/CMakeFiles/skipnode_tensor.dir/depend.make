# Empty dependencies file for skipnode_tensor.
# This may be replaced when dependencies are built.
