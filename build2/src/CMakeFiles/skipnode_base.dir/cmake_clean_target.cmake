file(REMOVE_RECURSE
  "libskipnode_base.a"
)
