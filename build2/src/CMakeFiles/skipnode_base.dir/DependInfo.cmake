
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/parallel.cc" "src/CMakeFiles/skipnode_base.dir/base/parallel.cc.o" "gcc" "src/CMakeFiles/skipnode_base.dir/base/parallel.cc.o.d"
  "/root/repo/src/base/result_table.cc" "src/CMakeFiles/skipnode_base.dir/base/result_table.cc.o" "gcc" "src/CMakeFiles/skipnode_base.dir/base/result_table.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/skipnode_base.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/skipnode_base.dir/base/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
