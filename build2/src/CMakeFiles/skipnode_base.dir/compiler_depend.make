# Empty compiler generated dependencies file for skipnode_base.
# This may be replaced when dependencies are built.
