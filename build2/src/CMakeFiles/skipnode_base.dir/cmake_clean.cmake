file(REMOVE_RECURSE
  "CMakeFiles/skipnode_base.dir/base/parallel.cc.o"
  "CMakeFiles/skipnode_base.dir/base/parallel.cc.o.d"
  "CMakeFiles/skipnode_base.dir/base/result_table.cc.o"
  "CMakeFiles/skipnode_base.dir/base/result_table.cc.o.d"
  "CMakeFiles/skipnode_base.dir/base/rng.cc.o"
  "CMakeFiles/skipnode_base.dir/base/rng.cc.o.d"
  "libskipnode_base.a"
  "libskipnode_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
