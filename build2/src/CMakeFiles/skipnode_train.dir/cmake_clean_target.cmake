file(REMOVE_RECURSE
  "libskipnode_train.a"
)
