file(REMOVE_RECURSE
  "CMakeFiles/skipnode_train.dir/train/dynamics.cc.o"
  "CMakeFiles/skipnode_train.dir/train/dynamics.cc.o.d"
  "CMakeFiles/skipnode_train.dir/train/link_trainer.cc.o"
  "CMakeFiles/skipnode_train.dir/train/link_trainer.cc.o.d"
  "CMakeFiles/skipnode_train.dir/train/metrics.cc.o"
  "CMakeFiles/skipnode_train.dir/train/metrics.cc.o.d"
  "CMakeFiles/skipnode_train.dir/train/optimizer.cc.o"
  "CMakeFiles/skipnode_train.dir/train/optimizer.cc.o.d"
  "CMakeFiles/skipnode_train.dir/train/trainer.cc.o"
  "CMakeFiles/skipnode_train.dir/train/trainer.cc.o.d"
  "libskipnode_train.a"
  "libskipnode_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
