# Empty compiler generated dependencies file for skipnode_train.
# This may be replaced when dependencies are built.
