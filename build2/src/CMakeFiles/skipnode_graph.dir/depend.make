# Empty dependencies file for skipnode_graph.
# This may be replaced when dependencies are built.
