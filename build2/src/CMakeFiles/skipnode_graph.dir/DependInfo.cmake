
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/skipnode_graph.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/skipnode_graph.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/skipnode_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/skipnode_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/skipnode_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/skipnode_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/skipnode_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/skipnode_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/splits.cc" "src/CMakeFiles/skipnode_graph.dir/graph/splits.cc.o" "gcc" "src/CMakeFiles/skipnode_graph.dir/graph/splits.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/skipnode_sparse.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_tensor.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/skipnode_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
