file(REMOVE_RECURSE
  "CMakeFiles/skipnode_graph.dir/graph/datasets.cc.o"
  "CMakeFiles/skipnode_graph.dir/graph/datasets.cc.o.d"
  "CMakeFiles/skipnode_graph.dir/graph/generators.cc.o"
  "CMakeFiles/skipnode_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/skipnode_graph.dir/graph/graph.cc.o"
  "CMakeFiles/skipnode_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/skipnode_graph.dir/graph/io.cc.o"
  "CMakeFiles/skipnode_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/skipnode_graph.dir/graph/splits.cc.o"
  "CMakeFiles/skipnode_graph.dir/graph/splits.cc.o.d"
  "libskipnode_graph.a"
  "libskipnode_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
