file(REMOVE_RECURSE
  "libskipnode_graph.a"
)
