file(REMOVE_RECURSE
  "CMakeFiles/spectral_test.dir/sparse/spectral_test.cc.o"
  "CMakeFiles/spectral_test.dir/sparse/spectral_test.cc.o.d"
  "spectral_test"
  "spectral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
