file(REMOVE_RECURSE
  "CMakeFiles/backbones_test.dir/nn/backbones_test.cc.o"
  "CMakeFiles/backbones_test.dir/nn/backbones_test.cc.o.d"
  "backbones_test"
  "backbones_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbones_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
