# Empty dependencies file for link_trainer_test.
# This may be replaced when dependencies are built.
