file(REMOVE_RECURSE
  "CMakeFiles/link_trainer_test.dir/train/link_trainer_test.cc.o"
  "CMakeFiles/link_trainer_test.dir/train/link_trainer_test.cc.o.d"
  "link_trainer_test"
  "link_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
