file(REMOVE_RECURSE
  "CMakeFiles/result_table_test.dir/base/result_table_test.cc.o"
  "CMakeFiles/result_table_test.dir/base/result_table_test.cc.o.d"
  "result_table_test"
  "result_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
