# Empty compiler generated dependencies file for result_table_test.
# This may be replaced when dependencies are built.
