# Empty compiler generated dependencies file for rho_schedule_test.
# This may be replaced when dependencies are built.
