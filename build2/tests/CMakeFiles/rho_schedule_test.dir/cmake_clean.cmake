file(REMOVE_RECURSE
  "CMakeFiles/rho_schedule_test.dir/core/rho_schedule_test.cc.o"
  "CMakeFiles/rho_schedule_test.dir/core/rho_schedule_test.cc.o.d"
  "rho_schedule_test"
  "rho_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rho_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
