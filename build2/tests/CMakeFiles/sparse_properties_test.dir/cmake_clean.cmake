file(REMOVE_RECURSE
  "CMakeFiles/sparse_properties_test.dir/sparse/properties_test.cc.o"
  "CMakeFiles/sparse_properties_test.dir/sparse/properties_test.cc.o.d"
  "sparse_properties_test"
  "sparse_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
