# Empty dependencies file for sparse_properties_test.
# This may be replaced when dependencies are built.
