# Empty compiler generated dependencies file for tape_edge_test.
# This may be replaced when dependencies are built.
