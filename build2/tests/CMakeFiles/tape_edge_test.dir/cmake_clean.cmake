file(REMOVE_RECURSE
  "CMakeFiles/tape_edge_test.dir/autograd/tape_edge_test.cc.o"
  "CMakeFiles/tape_edge_test.dir/autograd/tape_edge_test.cc.o.d"
  "tape_edge_test"
  "tape_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
