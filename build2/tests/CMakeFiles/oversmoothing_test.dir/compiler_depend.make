# Empty compiler generated dependencies file for oversmoothing_test.
# This may be replaced when dependencies are built.
