file(REMOVE_RECURSE
  "CMakeFiles/oversmoothing_test.dir/core/oversmoothing_test.cc.o"
  "CMakeFiles/oversmoothing_test.dir/core/oversmoothing_test.cc.o.d"
  "oversmoothing_test"
  "oversmoothing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversmoothing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
