file(REMOVE_RECURSE
  "CMakeFiles/model_grad_test.dir/nn/model_grad_test.cc.o"
  "CMakeFiles/model_grad_test.dir/nn/model_grad_test.cc.o.d"
  "model_grad_test"
  "model_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
