# Empty compiler generated dependencies file for model_grad_test.
# This may be replaced when dependencies are built.
