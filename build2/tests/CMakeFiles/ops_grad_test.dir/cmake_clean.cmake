file(REMOVE_RECURSE
  "CMakeFiles/ops_grad_test.dir/autograd/ops_grad_test.cc.o"
  "CMakeFiles/ops_grad_test.dir/autograd/ops_grad_test.cc.o.d"
  "ops_grad_test"
  "ops_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
