# Empty compiler generated dependencies file for ops_grad_test.
# This may be replaced when dependencies are built.
