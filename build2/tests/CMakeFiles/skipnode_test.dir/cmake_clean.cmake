file(REMOVE_RECURSE
  "CMakeFiles/skipnode_test.dir/core/skipnode_test.cc.o"
  "CMakeFiles/skipnode_test.dir/core/skipnode_test.cc.o.d"
  "skipnode_test"
  "skipnode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipnode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
