# Empty compiler generated dependencies file for skipnode_test.
# This may be replaced when dependencies are built.
