file(REMOVE_RECURSE
  "CMakeFiles/oversmoothing_lab.dir/oversmoothing_lab.cpp.o"
  "CMakeFiles/oversmoothing_lab.dir/oversmoothing_lab.cpp.o.d"
  "oversmoothing_lab"
  "oversmoothing_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversmoothing_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
