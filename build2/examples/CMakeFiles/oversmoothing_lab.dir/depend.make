# Empty dependencies file for oversmoothing_lab.
# This may be replaced when dependencies are built.
