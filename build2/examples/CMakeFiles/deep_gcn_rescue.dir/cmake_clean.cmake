file(REMOVE_RECURSE
  "CMakeFiles/deep_gcn_rescue.dir/deep_gcn_rescue.cpp.o"
  "CMakeFiles/deep_gcn_rescue.dir/deep_gcn_rescue.cpp.o.d"
  "deep_gcn_rescue"
  "deep_gcn_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_gcn_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
