# Empty compiler generated dependencies file for deep_gcn_rescue.
# This may be replaced when dependencies are built.
