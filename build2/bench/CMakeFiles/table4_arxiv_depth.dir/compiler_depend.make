# Empty compiler generated dependencies file for table4_arxiv_depth.
# This may be replaced when dependencies are built.
