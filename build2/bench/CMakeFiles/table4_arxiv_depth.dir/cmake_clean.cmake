file(REMOVE_RECURSE
  "CMakeFiles/table4_arxiv_depth.dir/table4_arxiv_depth.cc.o"
  "CMakeFiles/table4_arxiv_depth.dir/table4_arxiv_depth.cc.o.d"
  "table4_arxiv_depth"
  "table4_arxiv_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_arxiv_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
