# Empty dependencies file for fig4_distance_ratio.
# This may be replaced when dependencies are built.
