file(REMOVE_RECURSE
  "CMakeFiles/fig4_distance_ratio.dir/fig4_distance_ratio.cc.o"
  "CMakeFiles/fig4_distance_ratio.dir/fig4_distance_ratio.cc.o.d"
  "fig4_distance_ratio"
  "fig4_distance_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_distance_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
