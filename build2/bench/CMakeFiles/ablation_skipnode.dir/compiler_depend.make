# Empty compiler generated dependencies file for ablation_skipnode.
# This may be replaced when dependencies are built.
