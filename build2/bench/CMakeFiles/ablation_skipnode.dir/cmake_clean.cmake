file(REMOVE_RECURSE
  "CMakeFiles/ablation_skipnode.dir/ablation_skipnode.cc.o"
  "CMakeFiles/ablation_skipnode.dir/ablation_skipnode.cc.o.d"
  "ablation_skipnode"
  "ablation_skipnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skipnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
