# Empty dependencies file for table7_strategy_comparison.
# This may be replaced when dependencies are built.
