file(REMOVE_RECURSE
  "CMakeFiles/table7_strategy_comparison.dir/table7_strategy_comparison.cc.o"
  "CMakeFiles/table7_strategy_comparison.dir/table7_strategy_comparison.cc.o.d"
  "table7_strategy_comparison"
  "table7_strategy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
