# Empty dependencies file for table8_efficiency.
# This may be replaced when dependencies are built.
