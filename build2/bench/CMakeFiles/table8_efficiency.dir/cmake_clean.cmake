file(REMOVE_RECURSE
  "CMakeFiles/table8_efficiency.dir/table8_efficiency.cc.o"
  "CMakeFiles/table8_efficiency.dir/table8_efficiency.cc.o.d"
  "table8_efficiency"
  "table8_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
