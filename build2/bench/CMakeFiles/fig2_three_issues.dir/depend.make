# Empty dependencies file for fig2_three_issues.
# This may be replaced when dependencies are built.
