file(REMOVE_RECURSE
  "CMakeFiles/fig2_three_issues.dir/fig2_three_issues.cc.o"
  "CMakeFiles/fig2_three_issues.dir/fig2_three_issues.cc.o.d"
  "fig2_three_issues"
  "fig2_three_issues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_three_issues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
