# Empty compiler generated dependencies file for table3_full_supervised.
# This may be replaced when dependencies are built.
