file(REMOVE_RECURSE
  "CMakeFiles/table3_full_supervised.dir/table3_full_supervised.cc.o"
  "CMakeFiles/table3_full_supervised.dir/table3_full_supervised.cc.o.d"
  "table3_full_supervised"
  "table3_full_supervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_full_supervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
