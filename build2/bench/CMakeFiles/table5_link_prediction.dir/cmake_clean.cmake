file(REMOVE_RECURSE
  "CMakeFiles/table5_link_prediction.dir/table5_link_prediction.cc.o"
  "CMakeFiles/table5_link_prediction.dir/table5_link_prediction.cc.o.d"
  "table5_link_prediction"
  "table5_link_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_link_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
