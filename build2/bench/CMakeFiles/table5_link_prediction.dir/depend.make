# Empty dependencies file for table5_link_prediction.
# This may be replaced when dependencies are built.
