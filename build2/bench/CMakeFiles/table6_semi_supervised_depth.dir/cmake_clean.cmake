file(REMOVE_RECURSE
  "CMakeFiles/table6_semi_supervised_depth.dir/table6_semi_supervised_depth.cc.o"
  "CMakeFiles/table6_semi_supervised_depth.dir/table6_semi_supervised_depth.cc.o.d"
  "table6_semi_supervised_depth"
  "table6_semi_supervised_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_semi_supervised_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
