# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table6_semi_supervised_depth.
