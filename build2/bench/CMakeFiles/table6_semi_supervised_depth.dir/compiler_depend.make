# Empty compiler generated dependencies file for table6_semi_supervised_depth.
# This may be replaced when dependencies are built.
