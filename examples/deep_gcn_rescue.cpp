// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Depth sweep: shows the paper's central phenomenon end-to-end. A vanilla
// GCN's accuracy collapses as layers are stacked (over-smoothing + gradient
// vanishing), while the same backbone with SkipNode degrades gracefully.
// Prints one row per depth with all strategies side by side, like a compact
// Table 6.

#include <cstdio>

#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "train/trainer.h"

int main() {
  using namespace skipnode;

  Graph graph = BuildDatasetByName("cora_like", 0.35, 3);
  Rng split_rng(3);
  Split split = PublicSplit(graph, 20, 250, 400, split_rng);

  std::printf("Test accuracy (%%) on %s (%d nodes) vs depth\n",
              graph.name().c_str(), graph.num_nodes());
  std::printf("%6s %12s %12s %12s %12s\n", "L", "-", "DropEdge",
              "SkipNode-U", "SkipNode-B");

  for (const int depth : {2, 4, 8, 16}) {
    // The paper's Figure 5: the deeper the stack, the larger the best
    // sampling rate rho. Scale it with depth like the paper's grid search
    // would pick.
    const float rho = depth >= 16 ? 0.9f : depth >= 8 ? 0.7f : 0.5f;
    const StrategyConfig strategies[] = {
        StrategyConfig::None(), StrategyConfig::DropEdge(0.3f),
        StrategyConfig::SkipNodeU(rho), StrategyConfig::SkipNodeB(rho)};
    std::printf("%6d", depth);
    for (const auto& strategy : strategies) {
      ModelConfig config;
      config.in_dim = graph.feature_dim();
      config.hidden_dim = 48;
      config.out_dim = graph.num_classes();
      config.num_layers = depth;
      config.dropout = 0.3f;

      const TrainRun train_run{
          .options = {.epochs = 150, .eval_every = 2}};

      Rng rng(11);
      auto model = MakeModel("GCN", config, rng);
      const TrainResult result =
          TrainNodeClassifier(*model, graph, split, strategy, train_run);
      std::printf(" %12.1f", 100.0 * result.test_accuracy);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: the '-' column collapses toward %.1f%% "
              "(chance) at L = 16 while SkipNode columns stay well above.\n",
              100.0 / graph.num_classes());
  return 0;
}
