// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Over-smoothing laboratory: reproduces the paper's theoretical quantities
// on a random graph without any training. Shows
//   * lambda (second-largest eigenvalue magnitude of A_hat),
//   * the exponential decay of d_M(A_hat^l X W...) for a vanilla stack,
//   * the slowdown SkipNode achieves, per Theorems 2 and 3,
// directly mirroring Figure 4's setup (Erdos-Renyi graph, controlled s).

#include <cmath>
#include <cstdio>

#include "core/oversmoothing.h"
#include "core/skipnode.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "tensor/ops.h"

int main() {
  using namespace skipnode;

  // The paper's Figure 4 graph: Erdos-Renyi, n = 500, p = 0.5 (scaled to
  // n = 200 here to keep the example instant; the shapes are identical).
  const int n = 200;
  Rng rng(1);
  EdgeList edges = ErdosRenyi(n, 0.5, rng);
  Matrix features = Matrix::Random(n, 16, rng, 0.0f, 1.0f);
  Graph graph("er_lab", n, std::move(edges), std::move(features), {}, 0);

  SubspaceAnalyzer analyzer(graph);
  const float lambda = analyzer.Lambda();
  const float s = 0.9f;
  std::printf("lambda = %.4f, s = %.2f, s*lambda = %.4f\n", lambda, s,
              s * lambda);
  std::printf("Theorem 2 coefficient at rho=0.5: %.4f (vanilla: %.4f)\n",
              Theorem2Coefficient(s, lambda, 0.5f), s * lambda);
  std::printf("Theorem 3 coefficient at rho=0.5: %.4f (>1 means farther "
              "from M than vanilla)\n\n",
              Theorem3Coefficient(s, lambda, 0.5f));

  // Propagate 10 layers with random weights of max singular value s, with
  // and without SkipNode, and print log(d_M(X^l) / d_M(X^0)).
  const auto a_hat = graph.normalized_adjacency();
  std::printf("%5s %14s %14s %14s\n", "layer", "rho=0(vanilla)", "rho=0.5",
              "rho=0.8");
  const float d0 = analyzer.DistanceToM(graph.features());
  Matrix x_vanilla = graph.features();
  Matrix x_half = graph.features();
  Matrix x_most = graph.features();
  Rng weight_rng(2);
  Rng mask_rng(3);
  for (int layer = 1; layer <= 10; ++layer) {
    Matrix w = Matrix::RandomNormal(16, 16, weight_rng);
    SetMaxSingularValue(w, s);
    const auto step = [&](Matrix& x, float rho) {
      Matrix conv = Relu(a_hat->Multiply(MatMul(x, w)));
      if (rho > 0.0f) {
        const auto mask = SampleSkipMaskUniform(n, rho, mask_rng);
        for (int r = 0; r < n; ++r) {
          if (mask[r]) {
            std::copy(x.row(r), x.row(r) + x.cols(), conv.row(r));
          }
        }
      }
      x = conv;
    };
    step(x_vanilla, 0.0f);
    step(x_half, 0.5f);
    step(x_most, 0.8f);
    std::printf("%5d %14.3f %14.3f %14.3f\n", layer,
                std::log(analyzer.DistanceToM(x_vanilla) / d0),
                std::log(analyzer.DistanceToM(x_half) / d0),
                std::log(analyzer.DistanceToM(x_most) / d0));
  }
  std::printf("\nExpected shape: the vanilla column dives linearly in the "
              "log domain (exponential over-smoothing); larger rho flattens "
              "the slope.\n");
  return 0;
}
