// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Link prediction on a protein-association-style graph (the paper's
// ogbl-ppa task, Table 5): a GCN encoder + dot-product decoder, ranked
// Hits@K evaluation, with and without SkipNode on a deeper encoder.

#include <cstdio>

#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/gcn.h"
#include "train/link_trainer.h"

int main() {
  using namespace skipnode;

  Graph graph = BuildDatasetByName("ppa_like", 0.15, 6);
  Rng split_rng(6);
  LinkSplit split = MakeLinkSplit(graph, /*val_fraction=*/0.05,
                                  /*test_fraction=*/0.10,
                                  /*num_eval_negatives=*/1000, split_rng);
  // Message passing must only see training edges.
  Graph message_graph("ppa_like_train", graph.num_nodes(), split.train_edges,
                      graph.features(), {}, 0);
  std::printf("%s: %d nodes, %zu train / %zu val / %zu test edges\n",
              graph.name().c_str(), graph.num_nodes(),
              split.train_edges.size(), split.val_pos.size(),
              split.test_pos.size());

  std::printf("%3s %12s %9s %9s %9s\n", "L", "strategy", "Hits@10",
              "Hits@50", "Hits@100");
  for (const int depth : {4, 6, 8}) {
    for (const auto& strategy :
         {StrategyConfig::None(), StrategyConfig::SkipNodeU(0.5f),
          StrategyConfig::SkipNodeB(0.5f)}) {
      ModelConfig config;
      config.in_dim = message_graph.feature_dim();
      config.hidden_dim = 48;
      config.out_dim = 48;  // Embedding width.
      config.num_layers = depth;
      config.dropout = 0.0f;

      LinkTrainOptions options;
      options.epochs = 60;
      options.eval_every = 5;
      options.seed = 17;

      Rng rng(17);
      GcnModel encoder(config, rng);
      const LinkResult result = TrainLinkPredictor(
          encoder, message_graph, split, strategy, options);
      std::printf("%3d %12s %9.3f %9.3f %9.3f\n", depth,
                  StrategyName(strategy.kind), result.test_hits10,
                  result.test_hits50, result.test_hits100);
      std::fflush(stdout);
    }
  }
  return 0;
}
