// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Quickstart: train a 8-layer GCN on a Cora-like citation graph twice —
// vanilla, then with the SkipNode plug-in — and print the test accuracies.
// This is the whole public API surface a typical user needs:
//
//   BuildDatasetByName -> PublicSplit -> MakeModel -> TrainNodeClassifier
//
// with the strategy switched by a single StrategyConfig argument.

#include <cstdio>

#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "train/trainer.h"

int main() {
  using namespace skipnode;

  // 1. A dataset: synthetic stand-in for Cora (2708 nodes, 7 classes).
  Graph graph = BuildDatasetByName("cora_like", /*scale=*/0.5, /*seed=*/1);
  std::printf("graph: %s, %d nodes, %d edges, homophily %.2f\n",
              graph.name().c_str(), graph.num_nodes(), graph.num_edges(),
              graph.EdgeHomophily());

  // 2. The public semi-supervised split: 20 train nodes per class.
  Rng split_rng(1);
  Split split = PublicSplit(graph, /*per_class=*/20, /*num_val=*/300,
                            /*num_test=*/500, split_rng);

  // 3. A deep GCN backbone.
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 64;
  config.out_dim = graph.num_classes();
  config.num_layers = 8;

  const TrainRun train_run{.options = {.epochs = 150}};

  // 4. Train vanilla vs SkipNode — one line of difference.
  for (const auto& [label, strategy] :
       {std::pair<const char*, StrategyConfig>{"vanilla GCN",
                                               StrategyConfig::None()},
        {"GCN + SkipNode-U(rho=0.5)", StrategyConfig::SkipNodeU(0.5f)},
        {"GCN + SkipNode-B(rho=0.5)", StrategyConfig::SkipNodeB(0.5f)}}) {
    Rng rng(7);
    auto model = MakeModel("GCN", config, rng);
    const TrainResult result =
        TrainNodeClassifier(*model, graph, split, strategy, train_run);
    std::printf("%-28s test accuracy %.1f%% (best val %.1f%% @ epoch %d)\n",
                label, 100.0 * result.test_accuracy,
                100.0 * result.best_val_accuracy, result.best_epoch);
  }
  return 0;
}
