// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Bring-your-own-graph workflow: write a graph to plain files (the format a
// user's own data would arrive in), load it back through graph/io, train a
// GAT with SkipNode on it, checkpoint the trained model, and restore it into
// a fresh model. Demonstrates the I/O, checkpointing, and attention-backbone
// surfaces of the library end to end.

#include <cstdio>
#include <cstdlib>

#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/splits.h"
#include "nn/checkpoint.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "train/metrics.h"
#include "train/trainer.h"

int main() {
  using namespace skipnode;
  const std::string dir = "/tmp/skipnode_custom_dataset";
  std::system(("mkdir -p " + dir).c_str());

  // 1. Pretend this synthetic graph is the user's own data: export it to
  //    the plain-text formats (edge list / CSV features / label file).
  {
    Graph source = BuildDatasetByName("citeseer_like", 0.2, 42);
    SaveEdgeList(dir + "/edges.txt", source.edges());
    SaveMatrixCsv(dir + "/features.csv", source.features());
    SaveLabels(dir + "/labels.txt", source.labels());
    std::printf("exported %d nodes / %d edges to %s\n", source.num_nodes(),
                source.num_edges(), dir.c_str());
  }

  // 2. Load it back as a user would.
  std::unique_ptr<Graph> graph;
  if (!LoadGraph("my_graph", dir + "/edges.txt", dir + "/features.csv",
                 dir + "/labels.txt", &graph)) {
    std::printf("failed to load the exported graph\n");
    return 1;
  }
  std::printf("loaded '%s': %d nodes, %d classes, homophily %.2f\n",
              graph->name().c_str(), graph->num_nodes(),
              graph->num_classes(), graph->EdgeHomophily());

  // 3. Train a GAT with SkipNode on the loaded graph.
  Rng split_rng(1);
  Split split = RandomSplit(*graph, 0.6, 0.2, split_rng);
  ModelConfig config;
  config.in_dim = graph->feature_dim();
  config.hidden_dim = 32;
  config.out_dim = graph->num_classes();
  config.num_layers = 4;
  config.gat_heads = 4;
  config.dropout = 0.3f;

  Rng rng(7);
  auto model = MakeModel("GAT", config, rng);
  const TrainResult result =
      TrainNodeClassifier(*model, *graph, split, StrategyConfig::SkipNodeU(0.5f),
                          {.options = {.epochs = 60}});
  Matrix logits = EvaluateLogits(*model, *graph, StrategyConfig::None());
  std::printf("GAT + SkipNode-U: test acc %.1f%%, macro-F1 %.3f\n",
              100.0 * result.test_accuracy,
              MacroF1(logits, graph->labels(), split.test,
                      graph->num_classes()));

  // 4. Checkpoint and restore into a freshly-initialised model.
  if (!SaveModelParameters(*model, dir)) {
    std::printf("checkpoint save failed\n");
    return 1;
  }
  Rng fresh_rng(99);
  auto restored = MakeModel("GAT", config, fresh_rng);
  if (!LoadModelParameters(*restored, dir)) {
    std::printf("checkpoint load failed\n");
    return 1;
  }
  Matrix restored_logits =
      EvaluateLogits(*restored, *graph, StrategyConfig::None());
  std::printf("restored model matches trained logits: max diff %.2e\n",
              MaxAbsDiff(restored_logits, logits));
  return 0;
}
