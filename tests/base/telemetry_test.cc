// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/telemetry.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "base/parallel.h"

// Global operator new/delete overrides counting every allocation in the
// process. Used to prove disabled-mode telemetry allocates nothing; active
// only inside this test binary.
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  std::abort();  // no exceptions in this codebase
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace skipnode {
namespace {

// RAII: every test leaves telemetry disabled and empty for the next one.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTelemetryEnabled(true);
    ResetTelemetry();
  }
  void TearDown() override {
    ResetTelemetry();
    SetTelemetryEnabled(false);
  }
};

TEST_F(TelemetryTest, CountMetricAccumulates) {
  CountMetric("test.counter");
  CountMetric("test.counter", 41);
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  const MetricStat* stat = snapshot.Find("test.counter");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 2);
  EXPECT_EQ(stat->items, 42);
  EXPECT_EQ(stat->total_ns, 0);
}

TEST_F(TelemetryTest, ScopedTimerRecordsElapsed) {
  {
    const ScopedTimer timer("test.timer", /*items=*/7);
  }
  {
    const ScopedTimer timer("test.timer", /*items=*/3);
  }
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  const MetricStat* stat = snapshot.Find("test.timer");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 2);
  EXPECT_EQ(stat->items, 10);
  EXPECT_GE(stat->total_ns, 0);
  EXPECT_GE(stat->total_ns, stat->max_ns);
}

TEST_F(TelemetryTest, NestedTimersRecordBothScopes) {
  {
    const ScopedTimer outer("test.outer");
    const ScopedTimer inner("test.inner");
  }
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  ASSERT_NE(snapshot.Find("test.outer"), nullptr);
  ASSERT_NE(snapshot.Find("test.inner"), nullptr);
  // The outer scope strictly contains the inner one.
  EXPECT_GE(snapshot.Find("test.outer")->max_ns,
            snapshot.Find("test.inner")->max_ns);
}

TEST_F(TelemetryTest, SnapshotIsSortedByName) {
  CountMetric("zeta");
  CountMetric("alpha");
  CountMetric("mid");
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  for (size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].first, snapshot.metrics[i].first);
  }
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  CountMetric("test.counter");
  ResetTelemetry();
  EXPECT_TRUE(SnapshotTelemetry().metrics.empty());
}

TEST_F(TelemetryTest, MultiThreadAggregationIsComplete) {
  // Every chunk of a ParallelFor bumps the same counter once per element;
  // the aggregate must see every increment no matter which pool worker ran
  // it, at any thread count.
  constexpr int64_t kElements = 10000;
  for (const int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    ResetTelemetry();
    ParallelFor(
        0, kElements,
        [](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) CountMetric("test.parallel");
        },
        /*min_per_thread=*/16);
    const TelemetrySnapshot snapshot = SnapshotTelemetry();
    const MetricStat* stat = snapshot.Find("test.parallel");
    ASSERT_NE(stat, nullptr) << "threads=" << threads;
    EXPECT_EQ(stat->count, kElements) << "threads=" << threads;
  }
  SetParallelThreadCount(0);
}

TEST_F(TelemetryTest, ParallelForReportsTaskAndImbalance) {
  SetParallelThreadCount(4);
  ResetTelemetry();
  std::atomic<int64_t> sink{0};
  ParallelFor(
      0, 1 << 16,
      [&](int64_t lo, int64_t hi) {
        sink.fetch_add(hi - lo, std::memory_order_relaxed);
      },
      /*min_per_thread=*/1);
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  ASSERT_NE(snapshot.Find("parallel.task"), nullptr);
  ASSERT_NE(snapshot.Find("parallel.imbalance"), nullptr);
  EXPECT_EQ(snapshot.Find("parallel.task")->items, 4);  // chunks == threads
  EXPECT_EQ(sink.load(), 1 << 16);
  SetParallelThreadCount(0);
}

TEST_F(TelemetryTest, ToJsonSerializesStats) {
  CountMetric("test.counter", 5);
  const std::string json = SnapshotTelemetry().ToJson();
  EXPECT_EQ(json,
            "{\"test.counter\":{\"count\":1,\"items\":5,\"total_ns\":0,"
            "\"max_ns\":0}}");
}

TEST_F(TelemetryTest, DisabledModeDoesNotRecordOrAllocate) {
  // Warm up this thread's lazy stats slot while still enabled, then disable.
  CountMetric("test.warmup");
  SetTelemetryEnabled(false);
  ResetTelemetry();
  const int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const ScopedTimer timer("test.disabled", /*items=*/i);
    CountMetric("test.disabled");
    RecordTiming("test.disabled", 123);
  }
  const int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled telemetry must not allocate";
  SetTelemetryEnabled(true);
  EXPECT_EQ(SnapshotTelemetry().Find("test.disabled"), nullptr);
}

}  // namespace
}  // namespace skipnode
