// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace skipnode {
namespace {

// Restores the default thread count after each test so the override never
// leaks into other test binaries' expectations.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreadCount(0); }
};

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  SetParallelThreadCount(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 257, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, EmptyAndSingleElementRanges) {
  SetParallelThreadCount(4);
  int calls = 0;
  ParallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(7, 8, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 7);
    EXPECT_EQ(hi, 8);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ChunksAreContiguousAndDisjoint) {
  SetParallelThreadCount(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(10, 110, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_FALSE(chunks.empty());
  EXPECT_LE(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10);
  EXPECT_EQ(chunks.back().second, 110);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // No gap, no overlap.
  }
}

TEST_F(ParallelTest, MinPerThreadCapsFanOut) {
  SetParallelThreadCount(8);
  std::atomic<int> calls{0};
  // 100 elements at >= 60 per chunk allows at most one chunk.
  ParallelFor(
      0, 100, [&](int64_t, int64_t) { calls.fetch_add(1); },
      /*min_per_thread=*/60);
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(ParallelTest, PoolIsReusedAcrossManyCalls) {
  SetParallelThreadCount(4);
  // Hundreds of back-to-back jobs through the same pool; workers must wake,
  // finish, and park cleanly every time.
  for (int round = 0; round < 300; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 64, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST_F(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  SetParallelThreadCount(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t block = lo; block < hi; ++block) {
      const std::thread::id outer = std::this_thread::get_id();
      ParallelFor(block * 8, (block + 1) * 8, [&](int64_t ilo, int64_t ihi) {
        // The nested region must not hop threads: it runs inline on the
        // worker that owns the outer chunk.
        EXPECT_EQ(std::this_thread::get_id(), outer);
        for (int64_t i = ilo; i < ihi; ++i) hits[i].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, SetParallelThreadCountForcesAndRestores) {
  SetParallelThreadCount(3);
  EXPECT_EQ(ParallelThreadCount(), 3);
  SetParallelThreadCount(1);
  EXPECT_EQ(ParallelThreadCount(), 1);
  SetParallelThreadCount(0);
  EXPECT_GE(ParallelThreadCount(), 1);  // Back to env/hardware default.
}

TEST_F(ParallelTest, EnvOverrideIsHonoured) {
  const char* saved = std::getenv("SKIPNODE_NUM_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("SKIPNODE_NUM_THREADS", "3", /*overwrite=*/1);
  SetParallelThreadCount(0);  // Drop the cached resolution.
  EXPECT_EQ(ParallelThreadCount(), 3);

  // An explicit override beats the environment.
  SetParallelThreadCount(2);
  EXPECT_EQ(ParallelThreadCount(), 2);

  if (saved != nullptr) {
    setenv("SKIPNODE_NUM_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("SKIPNODE_NUM_THREADS");
  }
  SetParallelThreadCount(0);
}

TEST_F(ParallelTest, ManyThreadsOnFewElementsNeverYieldsEmptyChunks) {
  SetParallelThreadCount(8);
  std::mutex mu;
  std::set<int64_t> seen;
  int chunk_count = 0;
  ParallelFor(0, 3, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    ++chunk_count;
    EXPECT_LT(lo, hi);
    for (int64_t i = lo; i < hi; ++i) EXPECT_TRUE(seen.insert(i).second);
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_LE(chunk_count, 3);
}

}  // namespace
}  // namespace skipnode
