// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace skipnode {
namespace {

// Restores the default thread count after each test so the override never
// leaks into other test binaries' expectations.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreadCount(0); }
};

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  SetParallelThreadCount(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 257, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, EmptyAndSingleElementRanges) {
  SetParallelThreadCount(4);
  int calls = 0;
  ParallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(7, 8, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 7);
    EXPECT_EQ(hi, 8);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ChunksAreContiguousAndDisjoint) {
  SetParallelThreadCount(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(10, 110, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_FALSE(chunks.empty());
  EXPECT_LE(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10);
  EXPECT_EQ(chunks.back().second, 110);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // No gap, no overlap.
  }
}

TEST_F(ParallelTest, MinPerThreadCapsFanOut) {
  SetParallelThreadCount(8);
  std::atomic<int> calls{0};
  // 100 elements at >= 60 per chunk allows at most one chunk.
  ParallelFor(
      0, 100, [&](int64_t, int64_t) { calls.fetch_add(1); },
      /*min_per_thread=*/60);
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(ParallelTest, PoolIsReusedAcrossManyCalls) {
  SetParallelThreadCount(4);
  // Hundreds of back-to-back jobs through the same pool; workers must wake,
  // finish, and park cleanly every time.
  for (int round = 0; round < 300; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 64, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST_F(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  SetParallelThreadCount(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ParallelFor(0, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t block = lo; block < hi; ++block) {
      const std::thread::id outer = std::this_thread::get_id();
      ParallelFor(block * 8, (block + 1) * 8, [&](int64_t ilo, int64_t ihi) {
        // The nested region must not hop threads: it runs inline on the
        // worker that owns the outer chunk.
        EXPECT_EQ(std::this_thread::get_id(), outer);
        for (int64_t i = ilo; i < ihi; ++i) hits[i].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, SetParallelThreadCountForcesAndRestores) {
  SetParallelThreadCount(3);
  EXPECT_EQ(ParallelThreadCount(), 3);
  SetParallelThreadCount(1);
  EXPECT_EQ(ParallelThreadCount(), 1);
  SetParallelThreadCount(0);
  EXPECT_GE(ParallelThreadCount(), 1);  // Back to env/hardware default.
}

TEST_F(ParallelTest, EnvOverrideIsHonoured) {
  const char* saved = std::getenv("SKIPNODE_NUM_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("SKIPNODE_NUM_THREADS", "3", /*overwrite=*/1);
  SetParallelThreadCount(0);  // Drop the cached resolution.
  EXPECT_EQ(ParallelThreadCount(), 3);

  // An explicit override beats the environment.
  SetParallelThreadCount(2);
  EXPECT_EQ(ParallelThreadCount(), 2);

  if (saved != nullptr) {
    setenv("SKIPNODE_NUM_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("SKIPNODE_NUM_THREADS");
  }
  SetParallelThreadCount(0);
}

TEST_F(ParallelTest, BalancedCoversRangeExactlyOnce) {
  // Uniform cost: behaves like ParallelFor.
  std::vector<int> prefix(258);
  for (int i = 0; i < 258; ++i) prefix[i] = i * 3;
  for (const int threads : {1, 4, 8}) {
    SetParallelThreadCount(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelForBalanced(257, prefix.data(), [&](int64_t lo, int64_t hi) {
      EXPECT_LT(lo, hi);  // fn is never invoked on an empty range.
      for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, BalancedSplitsSkewedCostEvenly) {
  SetParallelThreadCount(2);
  // One hub element carries ~all the cost (a high-degree CSR row); the
  // equal-cost-share boundary must isolate it rather than splitting the
  // element count in half.
  std::vector<int> prefix = {0, 1000, 1001, 1002, 1003, 1004};
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelForBalanced(5, prefix.data(), [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{0, 1}));  // The hub alone.
  EXPECT_EQ(chunks[1], (std::pair<int64_t, int64_t>{1, 5}));
}

TEST_F(ParallelTest, BalancedSkipsEmptyChunksFromZeroCostRuns) {
  SetParallelThreadCount(4);
  // All cost sits in the last element; every interior boundary collapses
  // onto it, and fn must only ever see non-empty ranges that tile [0, n).
  std::vector<int> prefix = {0, 0, 0, 0, 0, 0, 0, 0, 800};
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelForBalanced(8, prefix.data(), [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_LT(lo, hi);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 0);
  EXPECT_EQ(chunks.back().second, 8);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST_F(ParallelTest, BalancedEmptyRangeAndMinCostCap) {
  SetParallelThreadCount(8);
  std::vector<int> prefix = {0, 10, 20, 30, 40};
  int calls = 0;
  ParallelForBalanced(0, static_cast<const int*>(nullptr),
                      [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Total cost 40 at >= 25 per chunk allows at most one chunk.
  std::atomic<int> chunk_calls{0};
  ParallelForBalanced(
      4, prefix.data(), [&](int64_t, int64_t) { chunk_calls.fetch_add(1); },
      /*min_cost_per_chunk=*/25);
  EXPECT_EQ(chunk_calls.load(), 1);
}

TEST_F(ParallelTest, BalancedBoundariesAreThreadCountDeterministic) {
  // Same prefix and thread count must always produce identical boundaries —
  // the DESIGN §7 contract that partitioning never depends on timing.
  std::vector<int> prefix(101);
  prefix[0] = 0;
  for (int i = 1; i <= 100; ++i) prefix[i] = prefix[i - 1] + (i * 7) % 13;
  SetParallelThreadCount(4);
  auto collect = [&] {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    ParallelForBalanced(100, prefix.data(), [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto first = collect();
  for (int round = 0; round < 20; ++round) EXPECT_EQ(collect(), first);
}

TEST_F(ParallelTest, BalancedWideOffsetsMatchNarrowBoundariesExactly) {
  // The int64_t cost-prefix overload (wide CSR offsets, and the sampler's
  // per-row entry prefixes) must carve the exact same chunk boundaries as
  // the int overload for equal costs — the two offset widths share one
  // partitioning contract (DESIGN §13).
  std::vector<int> narrow(201);
  std::vector<int64_t> wide(201);
  narrow[0] = 0;
  wide[0] = 0;
  for (int i = 1; i <= 200; ++i) {
    const int cost = (i * 11) % 17;
    narrow[i] = narrow[i - 1] + cost;
    wide[i] = wide[i - 1] + cost;
  }
  for (const int threads : {1, 4, 8}) {
    SetParallelThreadCount(threads);
    auto collect = [&](auto* prefix) {
      std::mutex mu;
      std::vector<std::pair<int64_t, int64_t>> chunks;
      ParallelForBalanced(200, prefix, [&](int64_t lo, int64_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      });
      std::sort(chunks.begin(), chunks.end());
      return chunks;
    };
    EXPECT_EQ(collect(narrow.data()), collect(wide.data()))
        << "threads=" << threads;
  }
}

TEST_F(ParallelTest, BalancedWideOffsetsHandleCostsBeyondInt32) {
  SetParallelThreadCount(4);
  // Per-element costs of ~2^31 overflow an int prefix immediately; the wide
  // overload must still tile the range exactly once with balanced chunks.
  constexpr int64_t kBig = int64_t{1} << 31;
  std::vector<int64_t> prefix(9);
  for (int i = 0; i <= 8; ++i) prefix[i] = i * kBig;
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelForBalanced(8, prefix.data(), [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_LT(lo, hi);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 4u);  // Uniform huge costs: one chunk per thread.
  EXPECT_EQ(chunks.front().first, 0);
  EXPECT_EQ(chunks.back().second, 8);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST_F(ParallelTest, ManyThreadsOnFewElementsNeverYieldsEmptyChunks) {
  SetParallelThreadCount(8);
  std::mutex mu;
  std::set<int64_t> seen;
  int chunk_count = 0;
  ParallelFor(0, 3, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    ++chunk_count;
    EXPECT_LT(lo, hi);
    for (int64_t i = lo; i < hi; ++i) EXPECT_TRUE(seen.insert(i).second);
  });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_LE(chunk_count, 3);
}

}  // namespace
}  // namespace skipnode
