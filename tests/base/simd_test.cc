// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The DESIGN §14 contract: every vectorized microkernel is bitwise identical
// to its retained scalar reference at every length — strip-covered sizes,
// tails, and the special values (NaN, ±0) where vector instruction semantics
// classically diverge from scalar code. DotFast is the one deliberate
// exception (reassociated); its pin is determinism, not equality with a
// serial sum.

#include "base/simd.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"

namespace skipnode::simd {
namespace {

// Strip-aligned, sub-strip, and straddling lengths, plus odd primes.
const int64_t kSizes[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 257};

std::vector<float> RandomVec(int64_t n, Rng& rng, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.UniformFloat(lo, hi);
  return v;
}

#define EXPECT_BITWISE_EQ(a, b, n)                                    \
  do {                                                                \
    for (int64_t bi = 0; bi < (n); ++bi) {                            \
      uint32_t ua, ub;                                                \
      std::memcpy(&ua, &(a)[bi], 4);                                  \
      std::memcpy(&ub, &(b)[bi], 4);                                  \
      ASSERT_EQ(ua, ub) << "element " << bi << " of " << (n);         \
    }                                                                 \
  } while (0)

TEST(SimdTest, AxpyMatchesRefBitwise) {
  Rng rng(1);
  for (const int64_t n : kSizes) {
    const std::vector<float> x = RandomVec(n, rng);
    std::vector<float> out_vec = RandomVec(n, rng);
    std::vector<float> out_ref = out_vec;
    Axpy(0.37f, x.data(), out_vec.data(), n);
    AxpyRef(0.37f, x.data(), out_ref.data(), n);
    EXPECT_BITWISE_EQ(out_vec, out_ref, n);
  }
}

TEST(SimdTest, AccumulateSubtractMatchRefBitwise) {
  Rng rng(2);
  for (const int64_t n : kSizes) {
    const std::vector<float> x = RandomVec(n, rng);
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = a;
    Accumulate(x.data(), a.data(), n);
    AccumulateRef(x.data(), b.data(), n);
    EXPECT_BITWISE_EQ(a, b, n);
    Subtract(x.data(), a.data(), n);
    SubtractRef(x.data(), b.data(), n);
    EXPECT_BITWISE_EQ(a, b, n);
  }
}

TEST(SimdTest, ScaleFamilyMatchesRefBitwise) {
  Rng rng(3);
  for (const int64_t n : kSizes) {
    const std::vector<float> x = RandomVec(n, rng);
    std::vector<float> out_vec(static_cast<size_t>(n));
    std::vector<float> out_ref(static_cast<size_t>(n));
    Scale(x.data(), -1.7f, out_vec.data(), n);
    ScaleRef(x.data(), -1.7f, out_ref.data(), n);
    EXPECT_BITWISE_EQ(out_vec, out_ref, n);

    std::vector<float> in_vec = x;
    std::vector<float> in_ref = x;
    ScaleInPlace(in_vec.data(), 0.3f, n);
    ScaleInPlaceRef(in_ref.data(), 0.3f, n);
    EXPECT_BITWISE_EQ(in_vec, in_ref, n);
    AddScalarInPlace(in_vec.data(), -0.9f, n);
    AddScalarInPlaceRef(in_ref.data(), -0.9f, n);
    EXPECT_BITWISE_EQ(in_vec, in_ref, n);
  }
}

TEST(SimdTest, AddMulAxpbyMatchRefBitwise) {
  Rng rng(4);
  for (const int64_t n : kSizes) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    std::vector<float> out_vec(static_cast<size_t>(n));
    std::vector<float> out_ref(static_cast<size_t>(n));
    Add(a.data(), b.data(), out_vec.data(), n);
    AddRef(a.data(), b.data(), out_ref.data(), n);
    EXPECT_BITWISE_EQ(out_vec, out_ref, n);
    Mul(a.data(), b.data(), out_vec.data(), n);
    MulRef(a.data(), b.data(), out_ref.data(), n);
    EXPECT_BITWISE_EQ(out_vec, out_ref, n);
    Axpby(0.6f, a.data(), -1.25f, b.data(), out_vec.data(), n);
    AxpbyRef(0.6f, a.data(), -1.25f, b.data(), out_ref.data(), n);
    EXPECT_BITWISE_EQ(out_vec, out_ref, n);
  }
}

TEST(SimdTest, ReluMatchesRefOnSpecialValues) {
  // NaN propagation and the sign of zero are exactly where vector max
  // semantics differ across ISAs; the kernels must match the scalar
  // (x < 0) ? 0 : x form bit for bit on them.
  const float nan = std::nanf("");
  std::vector<float> x = {-1.0f, 0.0f, -0.0f, 2.5f, nan, -nan, 1e-38f,
                          -3.0f, 4.0f};
  for (const int64_t n : kSizes) {
    while (static_cast<int64_t>(x.size()) < n) x.push_back(x[x.size() % 9]);
    std::vector<float> out_vec(static_cast<size_t>(n));
    std::vector<float> out_ref(static_cast<size_t>(n));
    Relu(x.data(), out_vec.data(), n);
    ReluRef(x.data(), out_ref.data(), n);
    EXPECT_BITWISE_EQ(out_vec, out_ref, n);

    std::vector<float> g_vec(static_cast<size_t>(n), 0.5f);
    std::vector<float> g_ref = g_vec;
    ReluGradInPlace(x.data(), g_vec.data(), n);
    ReluGradInPlaceRef(x.data(), g_ref.data(), n);
    EXPECT_BITWISE_EQ(g_vec, g_ref, n);
  }
}

TEST(SimdTest, SgdStepMatchesRefBitwise) {
  Rng rng(5);
  for (const int64_t n : kSizes) {
    const std::vector<float> grad = RandomVec(n, rng);
    std::vector<float> v_vec = RandomVec(n, rng);
    std::vector<float> v_ref = v_vec;
    SgdStep(v_vec.data(), grad.data(), n, 0.05f, 5e-4f);
    SgdStepRef(v_ref.data(), grad.data(), n, 0.05f, 5e-4f);
    EXPECT_BITWISE_EQ(v_vec, v_ref, n);
  }
}

AdamConstants MakeAdamConstants(bool decoupled) {
  const float beta1 = 0.9f, beta2 = 0.999f, lr = 0.01f, wd = 5e-4f;
  return {.beta1 = beta1,
          .one_minus_beta1 = 1.0f - beta1,
          .beta2 = beta2,
          .one_minus_beta2 = 1.0f - beta2,
          .bias1 = 1.0f - std::pow(beta1, 3.0f),
          .bias2 = 1.0f - std::pow(beta2, 3.0f),
          .learning_rate = lr,
          .epsilon = 1e-8f,
          .weight_decay = wd,
          .lr_weight_decay = lr * wd,
          .decoupled = decoupled};
}

TEST(SimdTest, AdamStepMatchesRefBitwiseCoupledAndDecoupled) {
  Rng rng(6);
  for (const bool decoupled : {false, true}) {
    const AdamConstants k = MakeAdamConstants(decoupled);
    for (const int64_t n : kSizes) {
      // Include exact zeros and negatives: the decoupled branch's
      // grad + 0.0f is where a careless fold would flip the sign of zero.
      std::vector<float> grad = RandomVec(n, rng);
      std::vector<float> value = RandomVec(n, rng);
      if (n >= 3) {
        grad[0] = 0.0f;
        grad[1] = -0.0f;
        value[2] = -0.0f;
      }
      std::vector<float> v_vec = value, v_ref = value;
      std::vector<float> m_vec = RandomVec(n, rng, -0.1f, 0.1f);
      std::vector<float> m_ref = m_vec;
      std::vector<float> s_vec = RandomVec(n, rng, 0.0f, 0.1f);
      std::vector<float> s_ref = s_vec;
      AdamStep(v_vec.data(), grad.data(), m_vec.data(), s_vec.data(), n, k);
      AdamStepRef(v_ref.data(), grad.data(), m_ref.data(), s_ref.data(), n,
                  k);
      EXPECT_BITWISE_EQ(v_vec, v_ref, n);
      EXPECT_BITWISE_EQ(m_vec, m_ref, n);
      EXPECT_BITWISE_EQ(s_vec, s_ref, n);
    }
  }
}

TEST(SimdTest, DotFastIsDeterministicAndMatchesRef) {
  // DotFast reassociates, so it is NOT pinned against a serial sum; the
  // contract is that Vec and Ref implement the identical lane-then-tree
  // order, making fast_math results independent of the compile flavour and
  // the runtime switch.
  Rng rng(7);
  for (const int64_t n : kSizes) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    const float vec = DotFast(a.data(), b.data(), n);
    const float ref = DotFastRef(a.data(), b.data(), n);
    uint32_t uv, ur;
    std::memcpy(&uv, &vec, 4);
    std::memcpy(&ur, &ref, 4);
    EXPECT_EQ(uv, ur) << "n=" << n;
    // And it approximates the exact dot.
    double exact = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      exact += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    EXPECT_NEAR(vec, static_cast<float>(exact), 1e-4 * (1.0 + std::abs(exact)))
        << "n=" << n;
  }
}

TEST(SimdTest, ParseEnabledEnvAcceptsOnOffAndDefaultsOn) {
  EXPECT_TRUE(ParseEnabledEnv(nullptr));
  EXPECT_TRUE(ParseEnabledEnv("1"));
  EXPECT_FALSE(ParseEnabledEnv("0"));
}

TEST(SimdDeathTest, ParseEnabledEnvRejectsUnknownValues) {
  EXPECT_DEATH(ParseEnabledEnv("yes"), "SKIPNODE_SIMD");
  EXPECT_DEATH(ParseEnabledEnv("2"), "SKIPNODE_SIMD");
  EXPECT_DEATH(ParseEnabledEnv(""), "SKIPNODE_SIMD");
}

TEST(SimdTest, SetEnabledOverridesRuntimeSwitch) {
  const bool saved = Enabled();
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(saved);
}

TEST(SimdTest, CompiledModeNamesAKnownFlavour) {
  const std::string mode = CompiledMode();
  EXPECT_TRUE(mode == "scalar" || mode == "portable" || mode == "avx2" ||
              mode == "neon")
      << mode;
}

}  // namespace
}  // namespace skipnode::simd
