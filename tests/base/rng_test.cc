// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformFloatRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.UniformFloat(-2.5f, 3.5f);
    ASSERT_GE(v, -2.5f);
    ASSERT_LT(v, 3.5f);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) counts[rng.UniformInt(10)] += 1;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(RngTest, NormalHasUnitVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / draws, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesRate) {
  Rng rng(5);
  int hits = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(9);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const int s : sample) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(9);
  const std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, WeightedSampleRespectsWeights) {
  Rng rng(13);
  // Index 0 has 10x the weight of the others; it should be selected in a
  // size-1 draw far more often.
  std::vector<double> weights = {10.0, 1.0, 1.0, 1.0, 1.0};
  int zero_count = 0;
  const int draws = 5000;
  for (int i = 0; i < draws; ++i) {
    const std::vector<int> pick = rng.WeightedSampleWithoutReplacement(weights, 1);
    ASSERT_EQ(pick.size(), 1u);
    if (pick[0] == 0) ++zero_count;
  }
  // P(pick 0) = 10/14 ~ 0.714.
  EXPECT_NEAR(static_cast<double>(zero_count) / draws, 10.0 / 14.0, 0.03);
}

TEST(RngTest, WeightedSampleIsWithoutReplacement) {
  Rng rng(17);
  std::vector<double> weights(20, 1.0);
  const std::vector<int> sample =
      rng.WeightedSampleWithoutReplacement(weights, 20);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(RngTest, WeightedSampleHandlesZeroWeights) {
  Rng rng(19);
  // Only two positive-weight items but k = 3: zero-weight items may fill in.
  std::vector<double> weights = {0.0, 5.0, 0.0, 5.0};
  const std::vector<int> sample =
      rng.WeightedSampleWithoutReplacement(weights, 3);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 3u);
  // The two positive-weight items must both be present.
  EXPECT_TRUE(unique.count(1) == 1 && unique.count(3) == 1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

}  // namespace
}  // namespace skipnode
