// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/result_table.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(ResultTableTest, TracksShape) {
  ResultTable table({"name", "acc"});
  EXPECT_EQ(table.num_columns(), 2);
  EXPECT_EQ(table.num_rows(), 0);
  table.AddRow({"GCN", "86.1"});
  table.AddRow({"SkipNode", "89.7"});
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(ResultTableTest, CellFormatsPrecision) {
  EXPECT_EQ(ResultTable::Cell(86.125, 1), "86.1");
  EXPECT_EQ(ResultTable::Cell(86.125, 3), "86.125");
  EXPECT_EQ(ResultTable::Cell(-0.5, 2), "-0.50");
}

TEST(ResultTableTest, PrintAlignsColumns) {
  ResultTable table({"a", "long_column"});
  table.AddRow({"wide_cell", "1"});
  const std::string path = ::testing::TempDir() + "/table_print.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  table.Print(out);
  std::fclose(out);

  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  // Both lines pad the first column to the widest cell ("wide_cell").
  EXPECT_EQ(header.find("long_column"), row.find("1"));
}

TEST(ResultTableTest, SaveCsvRoundTrip) {
  ResultTable table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4.5"});
  const std::string path = ::testing::TempDir() + "/table.csv";
  ASSERT_TRUE(table.SaveCsv(path));

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "x,y\n1,2\n3,4.5\n");
}

TEST(ResultTableTest, SaveCsvFailsOnBadPath) {
  ResultTable table({"x"});
  EXPECT_FALSE(table.SaveCsv("/nonexistent/dir/table.csv"));
}

}  // namespace
}  // namespace skipnode
