// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/result_table.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

TEST(ResultTableTest, TracksShape) {
  ResultTable table({"name", "acc"});
  EXPECT_EQ(table.num_columns(), 2);
  EXPECT_EQ(table.num_rows(), 0);
  table.AddRow({"GCN", "86.1"});
  table.AddRow({"SkipNode", "89.7"});
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(ResultTableTest, CellFormatsPrecision) {
  EXPECT_EQ(ResultTable::Cell(86.125, 1), "86.1");
  EXPECT_EQ(ResultTable::Cell(86.125, 3), "86.125");
  EXPECT_EQ(ResultTable::Cell(-0.5, 2), "-0.50");
}

TEST(ResultTableTest, EmitTextAlignsColumns) {
  ResultTable table({"a", "long_column"});
  table.AddRow({"wide_cell", "1"});
  const std::string path = ::testing::TempDir() + "/table_text.txt";
  ASSERT_TRUE(table.EmitToFile(TableFormat::kText, path));

  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  // Both lines pad the first column to the widest cell ("wide_cell").
  EXPECT_EQ(header.find("long_column"), row.find("1"));
}

TEST(ResultTableTest, EmitCsvRoundTrip) {
  ResultTable table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4.5"});
  const std::string path = ::testing::TempDir() + "/table.csv";
  ASSERT_TRUE(table.EmitToFile(TableFormat::kCsv, path));
  EXPECT_EQ(ReadFile(path), "x,y\n1,2\n3,4.5\n");
}

TEST(ResultTableTest, EmitJsonlTypesCells) {
  ResultTable table({"model", "acc", "note"});
  table.AddRow({"GCN", "86.1", "2 layers"});
  table.AddRow({"SkipNode", "-3e-1", ""});
  const std::string path = ::testing::TempDir() + "/table.jsonl";
  ASSERT_TRUE(table.EmitToFile(TableFormat::kJsonl, path));
  // Numeric-looking cells are bare numbers, everything else is a string
  // ("2 layers" starts with a digit but does not fully parse as one).
  EXPECT_EQ(ReadFile(path),
            "{\"model\":\"GCN\",\"acc\":86.1,\"note\":\"2 layers\"}\n"
            "{\"model\":\"SkipNode\",\"acc\":-3e-1,\"note\":\"\"}\n");
}

TEST(ResultTableTest, EmitToFileFailsOnBadPath) {
  ResultTable table({"x"});
  EXPECT_FALSE(table.EmitToFile(TableFormat::kCsv,
                                "/nonexistent/dir/table.csv"));
}

TEST(ResultTableTest, StreamToPrintsHeaderAndRowsImmediately) {
  const std::string path = ::testing::TempDir() + "/table_stream.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  ResultTable table({"name", "acc"});
  table.StreamTo(out);
  // Header lands before any row exists; each AddRow appends a line.
  EXPECT_EQ(ReadFile(path), "name       acc      \n");
  table.AddRow({"GCN", "86.1"});
  std::fclose(out);

  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(row.find("86.1"), header.find("acc"));
}

}  // namespace
}  // namespace skipnode
