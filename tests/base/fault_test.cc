// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/fault.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

FaultPlan ArmedPlan() {
  FaultPlan plan;
  plan.enabled = true;
  plan.site = FaultSite::kGradient;
  plan.kind = FaultKind::kNaN;
  plan.epoch = 7;
  plan.elements = 3;
  plan.seed = 99;
  return plan;
}

TEST(FaultTest, DisabledPlanNeverFires) {
  FaultInjector injector(FaultPlan{});
  for (int epoch = 0; epoch < 10; ++epoch) {
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kActivation, epoch));
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kGradient, epoch));
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kUpdate, epoch));
  }
  EXPECT_TRUE(injector.events().empty());
}

TEST(FaultTest, FiresOnlyAtItsSiteAndEpoch) {
  FaultInjector injector(ArmedPlan());
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kGradient, 6));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kActivation, 7));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kUpdate, 7));
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kGradient, 7));
}

TEST(FaultTest, CorruptWritesTheExactPayloadCountAndRecordsIt) {
  FaultInjector injector(ArmedPlan());
  std::vector<float> data(100, 1.0f);
  ASSERT_TRUE(injector.ShouldFire(FaultSite::kGradient, 7));
  injector.Corrupt(data.data(), static_cast<int64_t>(data.size()), 7);
  int nans = 0;
  for (const float v : data) nans += std::isnan(v);
  EXPECT_EQ(nans, 3);
  ASSERT_EQ(injector.events().size(), 1u);
  const FaultEvent& event = injector.events().front();
  EXPECT_EQ(event.epoch, 7);
  EXPECT_EQ(event.site, FaultSite::kGradient);
  EXPECT_EQ(event.indices.size(), 3u);
  for (const int64_t index : event.indices) {
    EXPECT_TRUE(std::isnan(data[index]));
  }
  // One-shot: the plan never re-fires.
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kGradient, 7));
}

TEST(FaultTest, CorruptionIsDeterministicPerSeed) {
  std::vector<float> a(64, 0.0f), b(64, 0.0f);
  FaultInjector first(ArmedPlan()), second(ArmedPlan());
  first.Corrupt(a.data(), 64, 7);
  second.Corrupt(b.data(), 64, 7);
  EXPECT_EQ(first.events().front().indices, second.events().front().indices);

  FaultPlan reseeded = ArmedPlan();
  reseeded.seed = 100;
  FaultInjector third(reseeded);
  std::vector<float> c(64, 0.0f);
  third.Corrupt(c.data(), 64, 7);
  EXPECT_NE(first.events().front().indices, third.events().front().indices);
}

TEST(FaultTest, InfPayloadAndClampToTensorSize) {
  FaultPlan plan = ArmedPlan();
  plan.kind = FaultKind::kInf;
  plan.elements = 100;  // Larger than the tensor: clamped.
  FaultInjector injector(plan);
  std::vector<float> data(5, 0.0f);
  injector.Corrupt(data.data(), 5, 7);
  for (const float v : data) EXPECT_TRUE(std::isinf(v));
}

TEST(FaultTest, ParseAndNameRoundTrip) {
  FaultSite site;
  FaultKind kind;
  for (const char* name : {"activation", "gradient", "update"}) {
    ASSERT_TRUE(ParseFaultSite(name, &site));
    EXPECT_STREQ(FaultSiteName(site), name);
  }
  for (const char* name : {"nan", "inf"}) {
    ASSERT_TRUE(ParseFaultKind(name, &kind));
    EXPECT_STREQ(FaultKindName(kind), name);
  }
  EXPECT_FALSE(ParseFaultSite("loss", &site));
  EXPECT_FALSE(ParseFaultKind("zero", &kind));
}

}  // namespace
}  // namespace skipnode
