// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "base/fault.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace skipnode {
namespace {

FaultPlan ArmedPlan() {
  FaultPlan plan;
  plan.enabled = true;
  plan.site = FaultSite::kGradient;
  plan.kind = FaultKind::kNaN;
  plan.epoch = 7;
  plan.elements = 3;
  plan.seed = 99;
  return plan;
}

TEST(FaultTest, DisabledPlanNeverFires) {
  FaultInjector injector(FaultPlan{});
  for (int epoch = 0; epoch < 10; ++epoch) {
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kActivation, epoch));
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kGradient, epoch));
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kUpdate, epoch));
  }
  EXPECT_TRUE(injector.events().empty());
}

TEST(FaultTest, FiresOnlyAtItsSiteAndEpoch) {
  FaultInjector injector(ArmedPlan());
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kGradient, 6));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kActivation, 7));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kUpdate, 7));
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kGradient, 7));
}

TEST(FaultTest, CorruptWritesTheExactPayloadCountAndRecordsIt) {
  FaultInjector injector(ArmedPlan());
  std::vector<float> data(100, 1.0f);
  ASSERT_TRUE(injector.ShouldFire(FaultSite::kGradient, 7));
  injector.Corrupt(data.data(), static_cast<int64_t>(data.size()), 7);
  int nans = 0;
  for (const float v : data) nans += std::isnan(v);
  EXPECT_EQ(nans, 3);
  ASSERT_EQ(injector.events().size(), 1u);
  const FaultEvent& event = injector.events().front();
  EXPECT_EQ(event.epoch, 7);
  EXPECT_EQ(event.site, FaultSite::kGradient);
  EXPECT_EQ(event.indices.size(), 3u);
  for (const int64_t index : event.indices) {
    EXPECT_TRUE(std::isnan(data[index]));
  }
  // One-shot: the plan never re-fires.
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kGradient, 7));
}

TEST(FaultTest, CorruptionIsDeterministicPerSeed) {
  std::vector<float> a(64, 0.0f), b(64, 0.0f);
  FaultInjector first(ArmedPlan()), second(ArmedPlan());
  first.Corrupt(a.data(), 64, 7);
  second.Corrupt(b.data(), 64, 7);
  EXPECT_EQ(first.events().front().indices, second.events().front().indices);

  FaultPlan reseeded = ArmedPlan();
  reseeded.seed = 100;
  FaultInjector third(reseeded);
  std::vector<float> c(64, 0.0f);
  third.Corrupt(c.data(), 64, 7);
  EXPECT_NE(first.events().front().indices, third.events().front().indices);
}

TEST(FaultTest, InfPayloadAndClampToTensorSize) {
  FaultPlan plan = ArmedPlan();
  plan.kind = FaultKind::kInf;
  plan.elements = 100;  // Larger than the tensor: clamped.
  FaultInjector injector(plan);
  std::vector<float> data(5, 0.0f);
  injector.Corrupt(data.data(), 5, 7);
  for (const float v : data) EXPECT_TRUE(std::isinf(v));
}

TEST(FaultTest, ParseAndNameRoundTrip) {
  FaultSite site;
  FaultKind kind;
  for (const char* name : {"activation", "gradient", "update"}) {
    ASSERT_TRUE(ParseFaultSite(name, &site));
    EXPECT_STREQ(FaultSiteName(site), name);
  }
  for (const char* name : {"nan", "inf"}) {
    ASSERT_TRUE(ParseFaultKind(name, &kind));
    EXPECT_STREQ(FaultKindName(kind), name);
  }
  EXPECT_FALSE(ParseFaultSite("loss", &site));
  EXPECT_FALSE(ParseFaultKind("zero", &kind));
}

ServeFaultPlan ArmedServePlan() {
  ServeFaultPlan plan;
  plan.enabled = true;
  plan.site = ServeFaultSite::kBatchDrop;
  plan.batch_index = 2;
  return plan;
}

TEST(ServeFaultTest, DisabledPlanNeverFires) {
  ServeFaultInjector injector(ServeFaultPlan{});
  for (int64_t batch = 0; batch < 10; ++batch) {
    EXPECT_FALSE(injector.ShouldFire(ServeFaultSite::kWorkerStall, batch));
    EXPECT_FALSE(injector.ShouldFire(ServeFaultSite::kBatchDrop, batch));
  }
  EXPECT_TRUE(injector.events().empty());
}

TEST(ServeFaultTest, FiresOnceAtItsSiteAndBatchOnly) {
  ServeFaultInjector injector(ArmedServePlan());
  EXPECT_FALSE(injector.ShouldFire(ServeFaultSite::kBatchDrop, 1));
  EXPECT_FALSE(injector.ShouldFire(ServeFaultSite::kWorkerStall, 2));
  EXPECT_TRUE(injector.ShouldFire(ServeFaultSite::kBatchDrop, 2));
  // One-shot: consumed on the first fire.
  EXPECT_FALSE(injector.ShouldFire(ServeFaultSite::kBatchDrop, 2));
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events().front().site, ServeFaultSite::kBatchDrop);
  EXPECT_EQ(injector.events().front().batch_index, 2);
}

TEST(ServeFaultTest, ParseAcceptsPrefixedAndBareNames) {
  ServeFaultSite site;
  ASSERT_TRUE(ParseServeFaultSite("serve-worker-stall", &site));
  EXPECT_EQ(site, ServeFaultSite::kWorkerStall);
  ASSERT_TRUE(ParseServeFaultSite("worker-stall", &site));
  EXPECT_EQ(site, ServeFaultSite::kWorkerStall);
  ASSERT_TRUE(ParseServeFaultSite("serve-batch-drop", &site));
  EXPECT_EQ(site, ServeFaultSite::kBatchDrop);
  ASSERT_TRUE(ParseServeFaultSite("batch-drop", &site));
  EXPECT_EQ(site, ServeFaultSite::kBatchDrop);
  EXPECT_FALSE(ParseServeFaultSite("gradient", &site));
  // Canonical names round-trip through the parser.
  for (const auto s :
       {ServeFaultSite::kWorkerStall, ServeFaultSite::kBatchDrop}) {
    ServeFaultSite parsed;
    ASSERT_TRUE(ParseServeFaultSite(ServeFaultSiteName(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
}

}  // namespace
}  // namespace skipnode
