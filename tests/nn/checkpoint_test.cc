// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 1.0, 3));
  return *kGraph;
}

ModelConfig SmallConfig() {
  Graph& graph = TestGraph();
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 8;
  config.out_dim = graph.num_classes();
  config.num_layers = 3;
  config.dropout = 0.0f;
  return config;
}

TEST(CheckpointTest, RoundTripRestoresExactLogits) {
  Rng rng_a(1), rng_b(2);  // Different seeds: models start different.
  auto trained = MakeModel("GCN", SmallConfig(), rng_a);
  auto fresh = MakeModel("GCN", SmallConfig(), rng_b);

  Matrix trained_logits =
      EvaluateLogits(*trained, TestGraph(), StrategyConfig::None());
  Matrix fresh_logits =
      EvaluateLogits(*fresh, TestGraph(), StrategyConfig::None());
  ASSERT_GT(MaxAbsDiff(trained_logits, fresh_logits), 1e-4f);

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveModelParameters(*trained, dir));
  ASSERT_TRUE(LoadModelParameters(*fresh, dir));
  Matrix restored_logits =
      EvaluateLogits(*fresh, TestGraph(), StrategyConfig::None());
  EXPECT_LT(MaxAbsDiff(restored_logits, trained_logits), 1e-4f);
}

TEST(CheckpointTest, WorksForEveryBackbone) {
  const std::string dir = ::testing::TempDir();
  for (const std::string& name : AllModelNames()) {
    Rng rng(5);
    auto model = MakeModel(name, SmallConfig(), rng);
    ASSERT_TRUE(SaveModelParameters(*model, dir)) << name;
    ASSERT_TRUE(LoadModelParameters(*model, dir)) << name;
  }
}

TEST(CheckpointTest, FailsOnMissingDirectory) {
  Rng rng(6);
  auto model = MakeModel("GCN", SmallConfig(), rng);
  EXPECT_FALSE(SaveModelParameters(*model, "/nonexistent/dir"));
  EXPECT_FALSE(LoadModelParameters(*model, "/nonexistent/dir"));
}

TEST(CheckpointTest, FailsOnShapeMismatch) {
  const std::string dir = ::testing::TempDir();
  Rng rng_a(7), rng_b(8);
  auto small = MakeModel("GCN", SmallConfig(), rng_a);
  ModelConfig bigger = SmallConfig();
  bigger.hidden_dim = 16;
  auto big = MakeModel("GCN", bigger, rng_b);
  ASSERT_TRUE(SaveModelParameters(*small, dir));
  EXPECT_FALSE(LoadModelParameters(*big, dir));
}

}  // namespace
}  // namespace skipnode
