// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// End-to-end gradient checks: the full model forward + cross-entropy loss
// against central finite differences, for a representative parameter of
// several backbones (deterministic configuration: dropout off, strategies
// either off or with frozen sampling).

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "graph/datasets.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/gcnii.h"
#include "nn/gprgnn.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

constexpr float kEpsilon = 3e-3f;

Graph TinyGraph() { return BuildDatasetByName("texas_like", 0.4, 21); }

ModelConfig TinyConfig(const Graph& graph) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 6;
  config.out_dim = graph.num_classes();
  config.num_layers = 3;
  config.dropout = 0.0f;  // Deterministic forward for finite differences.
  return config;
}

// Checks every parameter of `model` (sampling would hide broken ops).
void CheckModelGradients(Model& model, const Graph& graph,
                         const StrategyConfig& strategy,
                         float tolerance_factor = 0.05f) {
  // Zero-initialised biases leave some ReLU pre-activations *exactly* at the
  // kink (dead-neighbourhood rows), where the analytic subgradient (0) and
  // central differences legitimately disagree. Randomising the biases moves
  // every pre-activation off the kink so finite differences are meaningful.
  {
    Rng bias_rng(31337);
    for (Parameter* param : model.Parameters()) {
      if (param->name.find(".bias") == std::string::npos) continue;
      for (int64_t i = 0; i < param->value.size(); ++i) {
        param->value.data()[i] = bias_rng.UniformFloat(0.05f, 0.30f);
      }
    }
  }
  std::vector<int> train_nodes;
  for (int i = 0; i < graph.num_nodes(); i += 3) train_nodes.push_back(i);

  const auto loss_fn = [&]() {
    // Fixed seed so DropEdge-style strategies resample identically; rho = 0
    // strategies are unaffected.
    Rng rng(555);
    Tape tape;
    StrategyContext ctx(graph, strategy, /*training=*/false, rng);
    Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);
    return tape.SoftmaxCrossEntropy(logits, graph.labels(), train_nodes)
        .value()(0, 0);
  };

  // Analytic gradients.
  {
    Rng rng(555);
    Tape tape;
    StrategyContext ctx(graph, strategy, /*training=*/false, rng);
    Var logits = model.Forward(tape, graph, ctx, /*training=*/false, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, graph.labels(), train_nodes);
    Optimizer::ZeroGrad(model.Parameters());
    tape.Backward(loss);
  }

  for (Parameter* param : model.Parameters()) {
    const GradCheckResult result = CheckGradient(loss_fn, *param, kEpsilon);
    // Central differences through stacked ReLUs suffer kink-crossing error
    // (it shrinks linearly with epsilon, unlike a genuine gradient bug, and
    // inflates per-entry *relative* error on near-zero entries). Judge the
    // match on the absolute error against the gradient's own scale.
    EXPECT_LT(result.max_abs_error,
              tolerance_factor * (param->grad.AbsMax() + 2e-3f))
        << param->name;
  }
}

TEST(ModelGradTest, GcnAllParameters) {
  Graph graph = TinyGraph();
  Rng rng(1);
  GcnModel model(TinyConfig(graph), rng);
  CheckModelGradients(model, graph, StrategyConfig::None());
}

TEST(ModelGradTest, GcnWithPairNorm) {
  Graph graph = TinyGraph();
  Rng rng(2);
  GcnModel model(TinyConfig(graph), rng);
  // PairNorm's row-norm clamp adds another non-smooth point, so finite
  // differences are noisier here.
  CheckModelGradients(model, graph, StrategyConfig::PairNorm(1.0f), 0.15f);
}

TEST(ModelGradTest, ResGcn) {
  Graph graph = TinyGraph();
  Rng rng(3);
  GcnModel model(TinyConfig(graph), rng, /*residual=*/true, "ResGCN");
  CheckModelGradients(model, graph, StrategyConfig::None());
}

TEST(ModelGradTest, GatAllParameters) {
  Graph graph = TinyGraph();
  Rng rng(9);
  ModelConfig config = TinyConfig(graph);
  config.gat_heads = 2;
  GatModel model(config, rng);
  // The attention softmax smooths the loss surface; the LeakyReLU kink adds
  // a little noise on top of the ReLU stack's.
  CheckModelGradients(model, graph, StrategyConfig::None(), 0.10f);
}

TEST(ModelGradTest, Gcnii) {
  Graph graph = TinyGraph();
  Rng rng(4);
  GcniiModel model(TinyConfig(graph), rng);
  CheckModelGradients(model, graph, StrategyConfig::None());
}

TEST(ModelGradTest, GprGnnIncludingGammas) {
  Graph graph = TinyGraph();
  Rng rng(5);
  GprGnnModel model(TinyConfig(graph), rng);
  CheckModelGradients(model, graph, StrategyConfig::None());
}

}  // namespace
}  // namespace skipnode
