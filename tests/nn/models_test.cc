// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Backbone-model property tests, parameterised over every (model, strategy)
// combination: output shapes, determinism, finiteness, strategy
// compatibility, and that a few steps of training reduce the loss.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "nn/incepgcn.h"
#include "nn/model_factory.h"
#include "train/optimizer.h"

namespace skipnode {
namespace {

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 1.0, 11));
  return *kGraph;
}

ModelConfig SmallConfig(const Graph& graph) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.gat_heads = 4;
  config.out_dim = graph.num_classes();
  config.num_layers = 4;
  config.dropout = 0.3f;
  return config;
}

std::vector<StrategyConfig> AllStrategies() {
  return {StrategyConfig::None(),          StrategyConfig::DropEdge(0.3f),
          StrategyConfig::DropNode(0.3f),  StrategyConfig::PairNorm(1.0f),
          StrategyConfig::SkipConnection(), StrategyConfig::SkipNodeU(0.5f),
          StrategyConfig::SkipNodeB(0.5f)};
}

struct ModelStrategyCase {
  std::string model;
  StrategyConfig strategy;
};

class ModelStrategyTest : public ::testing::TestWithParam<ModelStrategyCase> {
};

TEST_P(ModelStrategyTest, ForwardShapeAndFiniteness) {
  const auto& param = GetParam();
  Graph& graph = TestGraph();
  Rng rng(1);
  auto model = MakeModel(param.model, SmallConfig(graph), rng);

  for (const bool training : {true, false}) {
    Tape tape;
    StrategyContext ctx(graph, param.strategy, training, rng);
    Var logits = model->Forward(tape, graph, ctx, training, rng);
    ASSERT_EQ(logits.rows(), graph.num_nodes());
    ASSERT_EQ(logits.cols(), graph.num_classes());
    for (int64_t i = 0; i < logits.value().size(); ++i) {
      ASSERT_TRUE(std::isfinite(logits.value().data()[i]))
          << param.model << " training=" << training;
    }
    ASSERT_FALSE(model->Penultimate().empty());
  }
}

TEST_P(ModelStrategyTest, FewStepsReduceTrainingLoss) {
  const auto& param = GetParam();
  Graph& graph = TestGraph();
  Rng rng(2);
  auto model = MakeModel(param.model, SmallConfig(graph), rng);
  const std::vector<Parameter*> params = model->Parameters();
  ASSERT_FALSE(params.empty());

  std::vector<int> train_nodes;
  for (int i = 0; i < graph.num_nodes(); i += 2) train_nodes.push_back(i);

  Adam optimizer(0.02f, 0.0f);
  // Per-step losses are stochastic (dropout, strategy sampling); compare a
  // window average at the start against one at the end.
  constexpr int kSteps = 30;
  std::vector<float> losses;
  for (int step = 0; step < kSteps; ++step) {
    Tape tape;
    StrategyContext ctx(graph, param.strategy, /*training=*/true, rng);
    Var logits = model->Forward(tape, graph, ctx, /*training=*/true, rng);
    Var loss = tape.SoftmaxCrossEntropy(logits, graph.labels(), train_nodes);
    Var aux = model->AuxiliaryLoss(tape);
    if (aux.valid()) loss = tape.Add(loss, aux);
    losses.push_back(loss.value()(0, 0));
    Optimizer::ZeroGrad(params);
    tape.Backward(loss);
    optimizer.Step(params);
  }
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int i = 0; i < 5; ++i) {
    first_loss += losses[i] / 5.0f;
    last_loss += losses[kSteps - 1 - i] / 5.0f;
  }
  EXPECT_LT(last_loss, first_loss)
      << param.model << " with " << StrategyName(param.strategy.kind);
}

std::vector<ModelStrategyCase> AllCases() {
  std::vector<ModelStrategyCase> cases;
  for (const std::string& model : AllModelNames()) {
    for (const StrategyConfig& strategy : AllStrategies()) {
      // SGC has no trainable propagation; skip strategies needing gradients
      // through skips is still fine — keep all combinations.
      cases.push_back({model, strategy});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllStrategies, ModelStrategyTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ModelStrategyCase>& info) {
      std::string name =
          info.param.model + "_" + StrategyName(info.param.strategy.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelFactoryTest, KnowsAllNames) {
  EXPECT_EQ(AllModelNames().size(), 10u);
  Rng rng(3);
  for (const std::string& name : AllModelNames()) {
    auto model = MakeModel(name, SmallConfig(TestGraph()), rng);
    EXPECT_EQ(model->name(), name);
  }
}

TEST(ModelDeterminismTest, SameSeedSameLogits) {
  Graph& graph = TestGraph();
  for (const std::string& name : AllModelNames()) {
    Rng rng_a(7), rng_b(7);
    auto model_a = MakeModel(name, SmallConfig(graph), rng_a);
    auto model_b = MakeModel(name, SmallConfig(graph), rng_b);
    Tape tape_a, tape_b;
    Rng fwd_a(9), fwd_b(9);
    StrategyContext ctx_a(graph, StrategyConfig::SkipNodeU(0.5f), true,
                          fwd_a);
    StrategyContext ctx_b(graph, StrategyConfig::SkipNodeU(0.5f), true,
                          fwd_b);
    Var la = model_a->Forward(tape_a, graph, ctx_a, true, fwd_a);
    Var lb = model_b->Forward(tape_b, graph, ctx_b, true, fwd_b);
    float max_diff = 0.0f;
    for (int64_t i = 0; i < la.value().size(); ++i) {
      max_diff = std::max(
          max_diff, std::fabs(la.value().data()[i] - lb.value().data()[i]));
    }
    EXPECT_LT(max_diff, 1e-6f) << name;
  }
}

TEST(ModelDepthTest, DeepModelsBuildAndRun) {
  Graph& graph = TestGraph();
  ModelConfig config = SmallConfig(graph);
  config.num_layers = 16;
  Rng rng(5);
  for (const std::string& name : {"GCN", "ResGCN", "JKNet", "GCNII"}) {
    auto model = MakeModel(name, config, rng);
    Tape tape;
    StrategyContext ctx(graph, StrategyConfig::SkipNodeU(0.5f), true, rng);
    Var logits = model->Forward(tape, graph, ctx, true, rng);
    EXPECT_EQ(logits.cols(), graph.num_classes()) << name;
  }
}

TEST(IncepGcnTest, BranchDepthsScaleWithBudget) {
  EXPECT_EQ(IncepGcnModel::BranchDepths(4), (std::vector<int>{1, 1, 3}));
  EXPECT_EQ(IncepGcnModel::BranchDepths(9), (std::vector<int>{2, 4, 8}));
  EXPECT_EQ(IncepGcnModel::BranchDepths(2), (std::vector<int>{1, 1, 1}));
}

TEST(GrandTest, AuxiliaryLossPresentOnlyWhenTraining) {
  Graph& graph = TestGraph();
  Rng rng(6);
  ModelConfig config = SmallConfig(graph);
  config.grand_augmentations = 2;
  auto model = MakeModel("GRAND", config, rng);

  Tape train_tape;
  StrategyContext train_ctx(graph, StrategyConfig::None(), true, rng);
  model->Forward(train_tape, graph, train_ctx, true, rng);
  EXPECT_TRUE(model->AuxiliaryLoss(train_tape).valid());

  Tape eval_tape;
  StrategyContext eval_ctx(graph, StrategyConfig::None(), false, rng);
  model->Forward(eval_tape, graph, eval_ctx, false, rng);
  EXPECT_FALSE(model->AuxiliaryLoss(eval_tape).valid());
}

}  // namespace
}  // namespace skipnode
