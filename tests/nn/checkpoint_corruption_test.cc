// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Crash- and corruption-safety of the checkpoint layer: a damaged or
// half-written checkpoint must fail the load cleanly (model untouched), and
// an interrupted save must never clobber the previous valid generation.

#include "nn/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/io.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

namespace fs = std::filesystem;

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("cornell_like", 1.0, 3));
  return *kGraph;
}

ModelConfig SmallConfig() {
  Graph& graph = TestGraph();
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 8;
  config.out_dim = graph.num_classes();
  config.num_layers = 3;
  config.dropout = 0.0f;
  return config;
}

Matrix Logits(Model& model) {
  return EvaluateLogits(model, TestGraph(), StrategyConfig::None());
}

// Fresh per-test checkpoint directory under the gtest temp root.
std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/ckpt_" + tag;
  fs::remove_all(dir);
  return dir;
}

// Committed generation named by the manifest's first line (e.g.
// "gen-000001"), or "" for a legacy flat checkpoint.
std::string LiveGeneration(const std::string& dir) {
  std::ifstream manifest(dir + "/manifest.txt");
  std::string keyword, generation;
  manifest >> keyword >> generation;
  return keyword == "generation" ? generation : "";
}

TEST(CheckpointCorruptionTest, TruncatedParameterFileFailsLoadCleanly) {
  const std::string dir = FreshDir("truncated");
  Rng rng_a(1), rng_b(2);
  auto saved = MakeModel("GCN", SmallConfig(), rng_a);
  auto victim = MakeModel("GCN", SmallConfig(), rng_b);
  ASSERT_TRUE(SaveModelParameters(*saved, dir));

  const std::string name = saved->Parameters().front()->name;
  const std::string csv = dir + "/" + LiveGeneration(dir) + "/" + name + ".csv";
  {
    std::ofstream truncate(csv, std::ios::trunc);
    truncate << "0.5,0.5\n";  // Wrong arity and row count for the parameter.
  }

  const Matrix before = Logits(*victim);
  EXPECT_FALSE(LoadModelParameters(*victim, dir));
  EXPECT_EQ(MaxAbsDiff(Logits(*victim), before), 0.0f);
}

TEST(CheckpointCorruptionTest, MissingManifestEntryFailsLoadCleanly) {
  const std::string dir = FreshDir("missing_entry");
  Rng rng_a(3), rng_b(4);
  auto saved = MakeModel("GCN", SmallConfig(), rng_a);
  auto victim = MakeModel("GCN", SmallConfig(), rng_b);
  ASSERT_TRUE(SaveModelParameters(*saved, dir));

  // Rewrite the manifest without its last parameter entry.
  std::ifstream in(dir + "/manifest.txt");
  std::ostringstream kept;
  std::string line, dropped;
  while (std::getline(in, line)) {
    if (!dropped.empty()) kept << dropped << '\n';
    dropped = line;
  }
  in.close();
  std::ofstream(dir + "/manifest.txt", std::ios::trunc) << kept.str();

  const Matrix before = Logits(*victim);
  EXPECT_FALSE(LoadModelParameters(*victim, dir));
  EXPECT_EQ(MaxAbsDiff(Logits(*victim), before), 0.0f);
}

TEST(CheckpointCorruptionTest, ManifestShapeLieFailsLoadCleanly) {
  const std::string dir = FreshDir("shape_lie");
  Rng rng_a(5), rng_b(6);
  auto saved = MakeModel("GCN", SmallConfig(), rng_a);
  auto victim = MakeModel("GCN", SmallConfig(), rng_b);
  ASSERT_TRUE(SaveModelParameters(*saved, dir));

  // Inflate every row count: the manifest now disagrees with both the model
  // shapes and the files on disk.
  std::ifstream in(dir + "/manifest.txt");
  std::ostringstream rewritten;
  std::string keyword;
  in >> keyword;
  if (keyword == "generation") {
    std::string generation;
    in >> generation;
    rewritten << keyword << ' ' << generation << '\n';
  }
  std::string name;
  int rows, cols;
  while (in >> name >> rows >> cols) {
    rewritten << name << ' ' << rows + 1 << ' ' << cols << '\n';
  }
  in.close();
  std::ofstream(dir + "/manifest.txt", std::ios::trunc) << rewritten.str();

  const Matrix before = Logits(*victim);
  EXPECT_FALSE(LoadModelParameters(*victim, dir));
  EXPECT_EQ(MaxAbsDiff(Logits(*victim), before), 0.0f);
}

TEST(CheckpointCorruptionTest, InterruptedSaveNeverClobbersTheOldCheckpoint) {
  const std::string dir = FreshDir("interrupted");
  Rng rng_a(7), rng_b(8);
  auto saved = MakeModel("GCN", SmallConfig(), rng_a);
  ASSERT_TRUE(SaveModelParameters(*saved, dir));
  const Matrix golden = Logits(*saved);

  // Simulate a save that died mid-stage: a half-written staging directory
  // plus an uncommitted manifest. Readers must keep seeing gen-000001.
  fs::create_directory(dir + "/gen-000002.tmp");
  std::ofstream(dir + "/gen-000002.tmp/garbage.csv") << "0.1,0.2\n";
  std::ofstream(dir + "/manifest.txt.tmp") << "generation gen-000002\n";

  auto restored = MakeModel("GCN", SmallConfig(), rng_b);
  ASSERT_TRUE(LoadModelParameters(*restored, dir));
  EXPECT_LT(MaxAbsDiff(Logits(*restored), golden), 1e-4f);

  // The next successful save commits a fresh generation and sweeps up both
  // the crashed staging dir and the superseded generation.
  ASSERT_TRUE(SaveModelParameters(*restored, dir));
  EXPECT_FALSE(fs::exists(dir + "/gen-000002.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/manifest.txt.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000001"));
  ASSERT_TRUE(LoadModelParameters(*restored, dir));
  EXPECT_LT(MaxAbsDiff(Logits(*restored), golden), 1e-4f);
}

TEST(CheckpointCorruptionTest, LegacyFlatCheckpointStillLoads) {
  const std::string dir = FreshDir("legacy");
  fs::create_directory(dir);
  Rng rng_a(9), rng_b(10);
  auto saved = MakeModel("GCN", SmallConfig(), rng_a);

  // Hand-write the pre-generation layout: CSVs and a manifest with no
  // `generation` line, all at the directory top level.
  std::ostringstream manifest;
  for (Parameter* param : saved->Parameters()) {
    ASSERT_TRUE(
        SaveMatrixCsv(dir + "/" + param->name + ".csv", param->value));
    manifest << param->name << ' ' << param->value.rows() << ' '
             << param->value.cols() << '\n';
  }
  std::ofstream(dir + "/manifest.txt") << manifest.str();

  auto restored = MakeModel("GCN", SmallConfig(), rng_b);
  ASSERT_TRUE(LoadModelParameters(*restored, dir));
  EXPECT_LT(MaxAbsDiff(Logits(*restored), Logits(*saved)), 1e-4f);
}

}  // namespace
}  // namespace skipnode
