// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Backbone-specific semantics, beyond the generic (model x strategy) sweep:
// closed-form behaviours each architecture must satisfy.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "nn/appnp.h"
#include "nn/gcn.h"
#include "nn/gcnii.h"
#include "nn/gprgnn.h"
#include "nn/grand.h"
#include "nn/jknet.h"
#include "nn/sgc.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

Graph& TestGraph() {
  static Graph* const kGraph =
      new Graph(BuildDatasetByName("texas_like", 1.0, 4));
  return *kGraph;
}

ModelConfig BaseConfig(int layers = 3) {
  Graph& graph = TestGraph();
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 8;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.0f;  // Deterministic for the closed-form checks.
  return config;
}

Matrix EvalForward(Model& model, const StrategyConfig& strategy) {
  Rng rng(3);
  Tape tape;
  StrategyContext ctx(TestGraph(), strategy, /*training=*/false, rng);
  return model.Forward(tape, TestGraph(), ctx, /*training=*/false, rng)
      .value();
}

TEST(GcnBackboneTest, TwoLayerMatchesHandRolledFormula) {
  // Eval-mode 2-layer GCN == A(A X W0 + b0)_+ W1 + b1, computed by hand.
  Graph& graph = TestGraph();
  Rng rng(1);
  GcnModel model(BaseConfig(2), rng);
  Matrix logits = EvalForward(model, StrategyConfig::None());

  std::vector<Parameter*> params = model.Parameters();
  ASSERT_EQ(params.size(), 4u);  // w0, b0, w1, b1.
  const Matrix dense_a = graph.normalized_adjacency()->ToDense();
  Matrix h = MatMul(graph.features(), params[0]->value);
  for (int r = 0; r < h.rows(); ++r) {
    for (int c = 0; c < h.cols(); ++c) h(r, c) += params[1]->value(0, c);
  }
  h = Relu(MatMul(dense_a, h));
  Matrix expected = MatMul(h, params[2]->value);
  for (int r = 0; r < expected.rows(); ++r) {
    for (int c = 0; c < expected.cols(); ++c) {
      expected(r, c) += params[3]->value(0, c);
    }
  }
  expected = MatMul(dense_a, expected);
  EXPECT_LT(MaxAbsDiff(logits, expected), 1e-3f);
}

TEST(GcnBackboneTest, ResidualVariantDiffersFromPlain) {
  Rng rng_a(2), rng_b(2);
  GcnModel plain(BaseConfig(4), rng_a);
  GcnModel residual(BaseConfig(4), rng_b, /*residual=*/true, "ResGCN");
  // Same init (same seed), different wiring -> different outputs.
  EXPECT_GT(MaxAbsDiff(EvalForward(plain, StrategyConfig::None()),
                       EvalForward(residual, StrategyConfig::None())),
            1e-4f);
}

TEST(JkNetBackboneTest, HeadConsumesAllLayerOutputs) {
  Rng rng(3);
  ModelConfig config = BaseConfig(5);
  JkNetModel model(config, rng);
  std::vector<Parameter*> params = model.Parameters();
  // 5 convs (w+b each) + head (w+b).
  ASSERT_EQ(params.size(), 12u);
  // Head input width = L * hidden.
  Parameter* head_weight = params[10];
  EXPECT_EQ(head_weight->value.rows(), 5 * config.hidden_dim);
  EXPECT_EQ(head_weight->value.cols(), config.out_dim);
}

TEST(SgcBackboneTest, OutputIsLinearInPropagatedFeatures) {
  // SGC logits = (A^K X) W + b: doubling W - b must double logits - b... we
  // verify linearity directly: logits(2W, 2b) = 2 * logits(W, b).
  Rng rng(4);
  SgcModel model(BaseConfig(3), rng);
  Matrix before = EvalForward(model, StrategyConfig::None());
  for (Parameter* p : model.Parameters()) {
    for (int64_t i = 0; i < p->value.size(); ++i) p->value.data()[i] *= 2.0f;
  }
  Matrix after = EvalForward(model, StrategyConfig::None());
  EXPECT_LT(MaxAbsDiff(after, Scale(before, 2.0f)), 1e-3f);
}

TEST(AppnpBackboneTest, ZeroAlphaIsPurePropagation) {
  // With alpha = 0 the propagation is Z = A^K MLP(X): applying one more
  // hand-rolled A-multiplication to a (K-1)-step model matches the K-step
  // model exactly.
  Rng rng_a(5), rng_b(5);
  ModelConfig config_k = BaseConfig(4);
  config_k.alpha = 0.0f;
  ModelConfig config_km1 = config_k;
  config_km1.num_layers = 3;
  AppnpModel model_k(config_k, rng_a);
  AppnpModel model_km1(config_km1, rng_b);

  Matrix z_k = EvalForward(model_k, StrategyConfig::None());
  Matrix z_km1 = EvalForward(model_km1, StrategyConfig::None());
  Matrix propagated =
      MatMul(TestGraph().normalized_adjacency()->ToDense(), z_km1);
  EXPECT_LT(MaxAbsDiff(z_k, propagated), 1e-3f);
}

TEST(AppnpBackboneTest, TeleportKeepsOutputNearMlpForLargeAlpha) {
  // alpha = 1 collapses the propagation to Z = H (the MLP output) at every
  // step.
  Rng rng_a(6), rng_b(6);
  ModelConfig deep = BaseConfig(10);
  deep.alpha = 1.0f;
  ModelConfig shallow = BaseConfig(1);
  shallow.alpha = 1.0f;
  AppnpModel model_deep(deep, rng_a);
  AppnpModel model_shallow(shallow, rng_b);
  EXPECT_LT(MaxAbsDiff(EvalForward(model_deep, StrategyConfig::None()),
                       EvalForward(model_shallow, StrategyConfig::None())),
            1e-4f);
}

TEST(GprGnnBackboneTest, GammasInitialiseToPprProfile) {
  Rng rng(7);
  ModelConfig config = BaseConfig(4);
  config.alpha = 0.2f;
  GprGnnModel model(config, rng);
  Parameter* gammas = model.Parameters().back();
  ASSERT_EQ(gammas->value.cols(), 5);
  double total = 0.0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(gammas->value(0, k), 0.2f * std::pow(0.8f, k), 1e-5f);
    total += gammas->value(0, k);
  }
  EXPECT_NEAR(gammas->value(0, 4), std::pow(0.8f, 4), 1e-5f);
  total += gammas->value(0, 4);
  EXPECT_NEAR(total, 1.0, 1e-5);  // The PPR profile sums to 1.
}

TEST(GcniiBackboneTest, IdentityMappingStrengthDecaysWithDepth) {
  // beta_l = log(lambda/l + 1) must decrease in l; verified indirectly: with
  // lambda -> 0, every layer reduces to M (no W contribution), so zeroing
  // all conv weights must not change the output.
  Rng rng(8);
  ModelConfig config = BaseConfig(4);
  config.gcnii_lambda = 0.0f;
  GcniiModel model(config, rng);
  Matrix before = EvalForward(model, StrategyConfig::None());
  for (Parameter* p : model.Parameters()) {
    if (p->name.find(".conv") != std::string::npos) p->value.SetZero();
  }
  Matrix after = EvalForward(model, StrategyConfig::None());
  EXPECT_LT(MaxAbsDiff(before, after), 1e-4f);
}

TEST(GrandBackboneTest, EvalUsesSingleViewAndNoDrop) {
  Rng rng_a(9), rng_b(9);
  ModelConfig one_view = BaseConfig(3);
  one_view.grand_augmentations = 1;
  one_view.grand_dropnode = 0.0f;
  ModelConfig many_views = BaseConfig(3);
  many_views.grand_augmentations = 4;
  many_views.grand_dropnode = 0.5f;
  GrandModel a(one_view, rng_a);
  GrandModel b(many_views, rng_b);
  // Same seed init; at eval time the augmentation settings are inert.
  EXPECT_LT(MaxAbsDiff(EvalForward(a, StrategyConfig::None()),
                       EvalForward(b, StrategyConfig::None())),
            1e-5f);
}

TEST(GrandBackboneTest, ConsistencyLossIsNonNegativeAndWeighted) {
  Graph& graph = TestGraph();
  Rng rng(10);
  ModelConfig config = BaseConfig(3);
  config.grand_augmentations = 3;
  config.grand_consistency = 2.0f;
  config.grand_dropnode = 0.5f;
  GrandModel model(config, rng);
  Tape tape;
  StrategyContext ctx(graph, StrategyConfig::None(), true, rng);
  model.Forward(tape, graph, ctx, true, rng);
  Var aux = model.AuxiliaryLoss(tape);
  ASSERT_TRUE(aux.valid());
  EXPECT_GE(aux.value()(0, 0), 0.0f);
}

}  // namespace
}  // namespace skipnode
