// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The telemetry contract end to end (DESIGN §9): collecting per-epoch
// metrics and enabling process telemetry must leave every trained weight
// bitwise identical, at any thread count.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/telemetry.h"
#include "graph/datasets.h"
#include "nn/model_factory.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  explicit Fixture(uint64_t seed)
      : graph(BuildDatasetByName("cora_like", 0.15, seed)),
        split([this, seed]() {
          Rng rng(seed);
          return PublicSplit(graph, 10, 120, 150, rng);
        }()) {}
};

ModelConfig ConfigFor(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 24;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.4f;
  return config;
}

// Trains one model and returns its final parameter matrices as raw bytes,
// so comparisons are bitwise, not within-epsilon.
struct RunOutput {
  TrainResult result;
  std::vector<std::vector<char>> parameter_bytes;
};

RunOutput TrainOnce(const Fixture& setup, bool instrumented, int threads) {
  SetParallelThreadCount(threads);
  SetTelemetryEnabled(instrumented);
  if (instrumented) ResetTelemetry();
  Rng rng(12);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 4), rng);
  TrainRun run;
  run.options.epochs = 20;
  run.options.seed = 31;
  run.collect_metrics = instrumented;
  RunOutput output;
  output.result = TrainNodeClassifier(*model, setup.graph, setup.split,
                                      StrategyConfig::SkipNodeU(0.5f), run);
  for (const Parameter* p : model->Parameters()) {
    const char* data = reinterpret_cast<const char*>(p->value.data());
    output.parameter_bytes.emplace_back(
        data, data + p->value.size() * sizeof(float));
  }
  SetTelemetryEnabled(false);
  SetParallelThreadCount(0);
  return output;
}

// The acceptance criterion: trained weights are bitwise identical with
// telemetry + metrics collection on vs off, at 1 and at 4 threads.
TEST(TrainerMetricsTest, WeightsAreBitwiseIdenticalWithMetricsOnOrOff) {
  Fixture setup(10);
  const RunOutput baseline = TrainOnce(setup, /*instrumented=*/false,
                                       /*threads=*/1);
  for (const int threads : {1, 4}) {
    const RunOutput instrumented =
        TrainOnce(setup, /*instrumented=*/true, threads);
    ASSERT_EQ(instrumented.parameter_bytes.size(),
              baseline.parameter_bytes.size());
    for (size_t i = 0; i < baseline.parameter_bytes.size(); ++i) {
      ASSERT_EQ(instrumented.parameter_bytes[i].size(),
                baseline.parameter_bytes[i].size());
      EXPECT_EQ(std::memcmp(instrumented.parameter_bytes[i].data(),
                            baseline.parameter_bytes[i].data(),
                            baseline.parameter_bytes[i].size()),
                0)
          << "parameter " << i << " diverged at threads=" << threads;
    }
    EXPECT_DOUBLE_EQ(instrumented.result.final_train_loss,
                     baseline.result.final_train_loss);
    EXPECT_EQ(instrumented.result.best_epoch, baseline.result.best_epoch);
  }
}

TEST(TrainerMetricsTest, EpochMetricsCoverEveryEpoch) {
  Fixture setup(11);
  const RunOutput run = TrainOnce(setup, /*instrumented=*/true, /*threads=*/1);
  ASSERT_EQ(static_cast<int>(run.result.epoch_metrics.size()),
            run.result.epochs_run);
  int64_t forward_total = 0, backward_total = 0, step_total = 0;
  int64_t eval_total = 0;
  for (size_t i = 0; i < run.result.epoch_metrics.size(); ++i) {
    const EpochMetrics& epoch = run.result.epoch_metrics[i];
    EXPECT_EQ(epoch.epoch, static_cast<int>(i));
    EXPECT_GT(epoch.train_loss, 0.0);
    forward_total += epoch.forward_ns;
    backward_total += epoch.backward_ns;
    step_total += epoch.step_ns;
    eval_total += epoch.eval_ns;
  }
  // Each phase ran and took measurable time overall.
  EXPECT_GT(forward_total, 0);
  EXPECT_GT(backward_total, 0);
  EXPECT_GT(step_total, 0);
  EXPECT_GT(eval_total, 0);
}

TEST(TrainerMetricsTest, UninstrumentedRunCollectsNothing) {
  Fixture setup(12);
  const RunOutput run =
      TrainOnce(setup, /*instrumented=*/false, /*threads=*/1);
  EXPECT_TRUE(run.result.epoch_metrics.empty());
}

TEST(TrainerMetricsTest, TelemetrySeesTrainerAndKernelMetrics) {
  Fixture setup(13);
  SetTelemetryEnabled(true);
  ResetTelemetry();
  Rng rng(12);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 4), rng);
  TrainRun run;
  run.options.epochs = 5;
  TrainNodeClassifier(*model, setup.graph, setup.split,
                      StrategyConfig::None(), run);
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  SetTelemetryEnabled(false);
  ResetTelemetry();
  // Trainer phases.
  ASSERT_NE(snapshot.Find("train.forward"), nullptr);
  ASSERT_NE(snapshot.Find("train.backward"), nullptr);
  ASSERT_NE(snapshot.Find("train.step"), nullptr);
  EXPECT_EQ(snapshot.Find("train.forward")->count, 5);
  // Kernel-level metrics recorded underneath them.
  ASSERT_NE(snapshot.Find("tensor.gemm"), nullptr);
  ASSERT_NE(snapshot.Find("sparse.spmm"), nullptr);
  ASSERT_NE(snapshot.Find("train.adam_step"), nullptr);
  EXPECT_EQ(snapshot.Find("train.adam_step")->count, 5);
  EXPECT_GT(snapshot.Find("sparse.spmm")->items, 0);
}

}  // namespace
}  // namespace skipnode
