// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/metrics.h"

#include <gtest/gtest.h>

namespace skipnode {
namespace {

TEST(AccuracyTest, PerfectAndZero) {
  Matrix logits(3, 2, {1, 0, 0, 1, 1, 0});
  const std::vector<int> labels = {0, 1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2}), 1.0);
  const std::vector<int> wrong = {1, 0, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, wrong, {0, 1, 2}), 0.0);
}

TEST(AccuracyTest, SubsetOnly) {
  Matrix logits(4, 2, {1, 0, 1, 0, 0, 1, 0, 1});
  const std::vector<int> labels = {0, 1, 1, 0};
  // Nodes 0 (correct) and 1 (wrong).
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1}), 0.5);
}

TEST(AccuracyTest, TieBreaksTowardFirstClass) {
  Matrix logits(1, 3);  // All equal.
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0}, {0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {2}, {0}), 0.0);
}

TEST(MacroF1Test, PerfectPredictionsGiveOne) {
  Matrix logits(4, 2, {1, 0, 0, 1, 1, 0, 0, 1});
  const std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(MacroF1(logits, labels, {0, 1, 2, 3}, 2), 1.0);
}

TEST(MacroF1Test, CollapsedPredictorScoresLowerThanAccuracySuggests) {
  // Predicting the majority class everywhere: accuracy 0.75 but macro-F1
  // averages in the zero-F1 minority class.
  Matrix logits(4, 2, {1, 0, 1, 0, 1, 0, 1, 0});  // Always class 0.
  const std::vector<int> labels = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2, 3}), 0.75);
  // Class 0: TP=3, P=4, A=3 -> F1 = 6/7. Class 1: F1 = 0.
  EXPECT_NEAR(MacroF1(logits, labels, {0, 1, 2, 3}, 2), 0.5 * 6.0 / 7.0,
              1e-9);
}

TEST(MacroF1Test, SkipsAbsentClasses) {
  Matrix logits(2, 3, {1, 0, 0, 1, 0, 0});
  const std::vector<int> labels = {0, 0};
  // Only class 0 present -> macro-F1 is its F1 alone.
  EXPECT_DOUBLE_EQ(MacroF1(logits, labels, {0, 1}, 3), 1.0);
}

TEST(HitsAtKTest, CountsPositivesAboveKthNegative) {
  // Negatives sorted desc: 9, 7, 5, 3, 1. K = 2 -> threshold 7.
  const std::vector<float> negatives = {3, 9, 1, 5, 7};
  const std::vector<float> positives = {10, 8, 7, 6};
  // Strictly above 7: 10 and 8.
  EXPECT_DOUBLE_EQ(HitsAtK(positives, negatives, 2), 0.5);
}

TEST(HitsAtKTest, KLargerThanNegativesIsOne) {
  EXPECT_DOUBLE_EQ(HitsAtK({0.1f}, {0.5f, 0.9f}, 10), 1.0);
}

TEST(HitsAtKTest, AllPositivesBelow) {
  const std::vector<float> negatives = {10, 20, 30};
  EXPECT_DOUBLE_EQ(HitsAtK({1, 2, 3}, negatives, 1), 0.0);
}

TEST(HitsAtKTest, MonotoneInK) {
  std::vector<float> negatives, positives;
  for (int i = 0; i < 100; ++i) negatives.push_back(static_cast<float>(i));
  for (int i = 0; i < 50; ++i) {
    positives.push_back(static_cast<float>(2 * i));
  }
  double prev = 0.0;
  for (const int k : {1, 10, 50, 100}) {
    const double hits = HitsAtK(positives, negatives, k);
    EXPECT_GE(hits, prev);
    prev = hits;
  }
}

}  // namespace
}  // namespace skipnode
