// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/dynamics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "nn/model_factory.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  Fixture()
      : graph(BuildDatasetByName("cornell_like", 1.0, 9)),
        split([this]() {
          Rng rng(9);
          return RandomSplit(graph, 0.6, 0.2, rng);
        }()) {}
};

ModelConfig SmallConfig(const Graph& graph) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 12;
  config.out_dim = graph.num_classes();
  config.num_layers = 4;
  config.dropout = 0.2f;
  return config;
}

TEST(DynamicsTest, RecordsOneEntryPerEpochInEverySeries) {
  Fixture f;
  Rng rng(1);
  auto model = MakeModel("GCN", SmallConfig(f.graph), rng);
  TrainOptions options;
  options.epochs = 7;
  const DynamicsRecord record = TrainWithDynamics(
      *model, f.graph, f.split, StrategyConfig::None(), options);
  EXPECT_EQ(record.mad.size(), 7u);
  EXPECT_EQ(record.output_gradient_norm.size(), 7u);
  EXPECT_EQ(record.output_gradient_signed_sum.size(), 7u);
  EXPECT_EQ(record.first_layer_gradient_norm.size(), 7u);
  EXPECT_EQ(record.weight_norm.size(), 7u);
  EXPECT_EQ(record.train_loss.size(), 7u);
  EXPECT_EQ(record.val_accuracy.size(), 7u);
}

TEST(DynamicsTest, AllSeriesAreFiniteAndSigned) {
  Fixture f;
  Rng rng(2);
  auto model = MakeModel("GCN", SmallConfig(f.graph), rng);
  TrainOptions options;
  options.epochs = 10;
  const DynamicsRecord record = TrainWithDynamics(
      *model, f.graph, f.split, StrategyConfig::SkipNodeU(0.5f), options);
  for (size_t e = 0; e < record.mad.size(); ++e) {
    EXPECT_TRUE(std::isfinite(record.mad[e]));
    EXPECT_GE(record.mad[e], 0.0f);
    EXPECT_GE(record.output_gradient_norm[e], 0.0f);
    EXPECT_GE(record.first_layer_gradient_norm[e], 0.0f);
    EXPECT_GT(record.weight_norm[e], 0.0f);
    EXPECT_GE(record.val_accuracy[e], 0.0f);
    EXPECT_LE(record.val_accuracy[e], 1.0f);
  }
}

TEST(DynamicsTest, ShallowTrainingShowsLearning) {
  Fixture f;
  Rng rng(3);
  auto model = MakeModel("GCN", SmallConfig(f.graph), rng);
  TrainOptions options;
  options.epochs = 40;
  options.weight_decay = 0.0f;
  const DynamicsRecord record = TrainWithDynamics(
      *model, f.graph, f.split, StrategyConfig::None(), options);
  // Loss falls substantially from the first epoch to the last.
  EXPECT_LT(record.train_loss.back(), record.train_loss.front());
  // Gradient actually reaches the first layer on a shallow model.
  EXPECT_GT(record.first_layer_gradient_norm.front(), 0.0f);
}

TEST(DynamicsTest, WeightDecayShrinksWeightNormSeries) {
  Fixture f;
  Rng rng(4);
  auto model = MakeModel("GCN", SmallConfig(f.graph), rng);
  TrainOptions options;
  options.epochs = 30;
  options.weight_decay = 5e-2f;  // Aggressive decay dominates learning.
  const DynamicsRecord record = TrainWithDynamics(
      *model, f.graph, f.split, StrategyConfig::None(), options);
  EXPECT_LT(record.weight_norm.back(), record.weight_norm.front());
}

TEST(DynamicsTest, SignedSumIsSmallWithBalancedTraining) {
  // Theorem 1's cancellation needs class-balanced training rows; the
  // stratified 60% split is close to balanced, so the signed sum is small
  // relative to the gradient norm at every epoch.
  Fixture f;
  Rng rng(5);
  auto model = MakeModel("GCN", SmallConfig(f.graph), rng);
  TrainOptions options;
  options.epochs = 5;
  const DynamicsRecord record = TrainWithDynamics(
      *model, f.graph, f.split, StrategyConfig::None(), options);
  for (size_t e = 0; e < record.mad.size(); ++e) {
    EXPECT_LT(std::fabs(record.output_gradient_signed_sum[e]),
              0.5f * record.output_gradient_norm[e] + 1e-4f);
  }
}

}  // namespace
}  // namespace skipnode
