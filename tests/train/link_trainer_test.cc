// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/link_trainer.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "nn/gcn.h"

namespace skipnode {
namespace {

struct LinkSetup {
  Graph graph;
  LinkSplit split;
  Graph message_graph;

  explicit LinkSetup(uint64_t seed)
      : graph(BuildDatasetByName("ppa_like", 0.05, seed)),
        split([this, seed]() {
          Rng rng(seed + 1);
          return MakeLinkSplit(graph, 0.05, 0.10, 400, rng);
        }()),
        message_graph("ppa_like_train", graph.num_nodes(), split.train_edges,
                      graph.features(), {}, 0) {}
};

ModelConfig EncoderConfig(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 24;
  config.out_dim = 24;  // Embedding width.
  config.num_layers = layers;
  config.dropout = 0.0f;
  return config;
}

TEST(LinkTrainerTest, LearnsToRankEdgesAboveNegatives) {
  LinkSetup setup(1);
  Rng rng(2);
  GcnModel encoder(EncoderConfig(setup.message_graph, 2), rng);
  LinkTrainOptions options;
  options.epochs = 40;
  options.eval_every = 5;
  const LinkResult result = TrainLinkPredictor(
      encoder, setup.message_graph, setup.split, StrategyConfig::None(),
      options);
  // Random embeddings put ~K/|neg| of positives above the K-th negative;
  // with K = 100 over 400 negatives that's 25%. Training must beat it well.
  EXPECT_GT(result.test_hits100, 0.45);
  // Hits@K is monotone in K.
  EXPECT_LE(result.test_hits10, result.test_hits50 + 1e-9);
  EXPECT_LE(result.test_hits50, result.test_hits100 + 1e-9);
}

TEST(LinkTrainerTest, DeterministicForSeed) {
  LinkSetup setup(3);
  double hits[2];
  for (int i = 0; i < 2; ++i) {
    Rng rng(4);
    GcnModel encoder(EncoderConfig(setup.message_graph, 2), rng);
    LinkTrainOptions options;
    options.epochs = 10;
    options.seed = 9;
    hits[i] = TrainLinkPredictor(encoder, setup.message_graph, setup.split,
                                 StrategyConfig::SkipNodeU(0.5f), options)
                  .test_hits50;
  }
  EXPECT_DOUBLE_EQ(hits[0], hits[1]);
}

TEST(LinkTrainerTest, WorksWithSkipNodeOnDeeperEncoder) {
  LinkSetup setup(5);
  Rng rng(6);
  GcnModel encoder(EncoderConfig(setup.message_graph, 4), rng);
  LinkTrainOptions options;
  options.epochs = 30;
  const LinkResult result = TrainLinkPredictor(
      encoder, setup.message_graph, setup.split,
      StrategyConfig::SkipNodeU(0.5f), options);
  EXPECT_GT(result.test_hits100, 0.3);
}

}  // namespace
}  // namespace skipnode
