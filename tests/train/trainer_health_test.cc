// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// End-to-end exercise of the numerical-health guardrails (DESIGN §8):
// deterministic fault injection, detection, snapshot rollback with LR
// backoff, and the two invariants the design promises — a guarded run with
// no fault is bitwise identical to an unguarded one, and the whole recovery
// path reproduces bitwise across thread counts.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "graph/datasets.h"
#include "nn/model_factory.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  explicit Fixture(uint64_t seed)
      : graph(BuildDatasetByName("cora_like", 0.15, seed)),
        split([this, seed]() {
          Rng rng(seed);
          return PublicSplit(graph, 10, 120, 150, rng);
        }()) {}
};

ModelConfig ConfigFor(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 24;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.4f;
  return config;
}

int CountEvents(const std::vector<HealthEvent>& log, HealthEventKind kind) {
  return static_cast<int>(std::count_if(
      log.begin(), log.end(),
      [kind](const HealthEvent& e) { return e.kind == kind; }));
}

FaultPlan UpdateNaNAt(int epoch) {
  FaultPlan plan;
  plan.enabled = true;
  plan.site = FaultSite::kUpdate;
  plan.kind = FaultKind::kNaN;
  plan.epoch = epoch;
  plan.elements = 4;
  return plan;
}

// The acceptance scenario: a NaN injected into a parameter update at epoch
// 20 is detected the same epoch, the trainer rolls back and decays the LR,
// and the run still finishes with a finite loss and above-chance accuracy.
TEST(TrainerHealthTest, InjectedNaNTriggersRollbackAndRunStillConverges) {
  Fixture setup(1);
  Rng rng(2);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  TrainRun run;
  run.options.epochs = 80;
  run.options.seed = 17;
  run.health.enabled = true;
  run.fault = UpdateNaNAt(20);

  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(), run);

  EXPECT_EQ(CountEvents(result.health_log, HealthEventKind::kFaultInjected),
            1);
  EXPECT_EQ(
      CountEvents(result.health_log, HealthEventKind::kNonFiniteParameter),
      1);
  EXPECT_EQ(CountEvents(result.health_log, HealthEventKind::kRollback), 1);
  for (const HealthEvent& event : result.health_log) {
    EXPECT_EQ(event.epoch, 20);
  }
  EXPECT_EQ(result.rollbacks, 1);
  EXPECT_FLOAT_EQ(result.final_learning_rate,
                  run.options.learning_rate * run.health.lr_backoff);
  EXPECT_EQ(result.epochs_run, 80);
  EXPECT_TRUE(std::isfinite(result.final_train_loss));
  const double chance = 1.0 / setup.graph.num_classes();
  EXPECT_GT(result.test_accuracy, chance * 2.5);
}

TEST(TrainerHealthTest, ActivationFaultIsCaughtAtTheLossCheck) {
  Fixture setup(2);
  Rng rng(3);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  TrainRun run;
  run.options.epochs = 30;
  run.health.enabled = true;
  run.fault.enabled = true;
  run.fault.site = FaultSite::kActivation;
  run.fault.kind = FaultKind::kInf;
  run.fault.epoch = 10;
  run.fault.elements = 1 << 20;  // Clamped: corrupt the whole logit matrix.

  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(), run);
  EXPECT_EQ(CountEvents(result.health_log, HealthEventKind::kNonFiniteLoss),
            1);
  EXPECT_EQ(CountEvents(result.health_log, HealthEventKind::kRollback), 1);
  EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

TEST(TrainerHealthTest, GradientFaultIsCaughtBeforeTheOptimizerStep) {
  Fixture setup(3);
  Rng rng(4);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  TrainRun run;
  run.options.epochs = 30;
  run.health.enabled = true;
  run.fault.enabled = true;
  run.fault.site = FaultSite::kGradient;
  run.fault.kind = FaultKind::kNaN;
  run.fault.epoch = 10;

  std::vector<HealthEvent> sink;
  run.health_log = &sink;
  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(), run);
  EXPECT_EQ(
      CountEvents(result.health_log, HealthEventKind::kNonFiniteGradient), 1);
  EXPECT_EQ(CountEvents(result.health_log, HealthEventKind::kRollback), 1);
  // The bad gradient never reached Step, so parameters stayed finite — no
  // kNonFiniteParameter entry.
  EXPECT_EQ(
      CountEvents(result.health_log, HealthEventKind::kNonFiniteParameter),
      0);
  // The external sink mirrors the canonical log.
  ASSERT_EQ(sink.size(), result.health_log.size());
  for (size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink[i].kind, result.health_log[i].kind);
    EXPECT_EQ(sink[i].epoch, result.health_log[i].epoch);
    EXPECT_EQ(sink[i].detail, result.health_log[i].detail);
  }
}

TEST(TrainerHealthTest, ExhaustedRollbackBudgetHaltsTraining) {
  Fixture setup(4);
  Rng rng(5);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  TrainRun run;
  run.options.epochs = 50;
  run.health.enabled = true;
  run.health.max_rollbacks = 0;
  run.fault = UpdateNaNAt(10);

  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(), run);
  EXPECT_EQ(
      CountEvents(result.health_log, HealthEventKind::kRecoveryExhausted), 1);
  EXPECT_EQ(CountEvents(result.health_log, HealthEventKind::kRollback), 0);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_EQ(result.epochs_run, 11);  // Halted at the faulted epoch.
}

// DESIGN §8's first invariant: the guardrails are pure reads, so enabling
// them on a healthy run must not change one bit of the result.
TEST(TrainerHealthTest, GuardedRunWithoutFaultIsBitwiseIdentical) {
  Fixture setup(5);
  TrainResult results[2];
  for (int i = 0; i < 2; ++i) {
    Rng rng(6);
    auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
    TrainRun run;
    run.options.epochs = 25;
    run.options.seed = 23;
    run.health.enabled = (i == 1);
    run.health.check_every = 2;
    results[i] = TrainNodeClassifier(*model, setup.graph, setup.split,
                                     StrategyConfig::SkipNodeU(0.5f), run);
  }
  EXPECT_DOUBLE_EQ(results[0].final_train_loss, results[1].final_train_loss);
  EXPECT_DOUBLE_EQ(results[0].best_val_accuracy,
                   results[1].best_val_accuracy);
  EXPECT_DOUBLE_EQ(results[0].test_accuracy, results[1].test_accuracy);
  EXPECT_EQ(results[0].best_epoch, results[1].best_epoch);
  EXPECT_TRUE(results[1].health_log.empty());
}

// DESIGN §8's second invariant: detection, rollback, and recovery all stay
// on the row-ownership parallel contract, so the whole faulted run
// reproduces bitwise at any thread count.
TEST(TrainerHealthTest, RecoveryIsBitwiseIdenticalAcrossThreadCounts) {
  Fixture setup(6);
  TrainResult results[2];
  const int thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    SetParallelThreadCount(thread_counts[i]);
    Rng rng(7);
    auto model = MakeModel("GCN", ConfigFor(setup.graph, 4), rng);
    TrainRun run;
    run.options.epochs = 40;
    run.options.seed = 31;
    run.health.enabled = true;
    run.fault = UpdateNaNAt(15);
    results[i] = TrainNodeClassifier(*model, setup.graph, setup.split,
                                     StrategyConfig::SkipNodeU(0.5f), run);
  }
  SetParallelThreadCount(0);
  ASSERT_EQ(results[0].health_log.size(), results[1].health_log.size());
  for (size_t i = 0; i < results[0].health_log.size(); ++i) {
    EXPECT_EQ(results[0].health_log[i].kind, results[1].health_log[i].kind);
    EXPECT_EQ(results[0].health_log[i].epoch,
              results[1].health_log[i].epoch);
    EXPECT_EQ(results[0].health_log[i].detail,
              results[1].health_log[i].detail);
  }
  EXPECT_EQ(results[0].rollbacks, results[1].rollbacks);
  EXPECT_DOUBLE_EQ(results[0].final_train_loss, results[1].final_train_loss);
  EXPECT_DOUBLE_EQ(results[0].best_val_accuracy,
                   results[1].best_val_accuracy);
  EXPECT_DOUBLE_EQ(results[0].test_accuracy, results[1].test_accuracy);
  EXPECT_EQ(results[0].best_epoch, results[1].best_epoch);
}

TEST(TrainerHealthTest, GradClippingCapsTheGlobalNorm) {
  Fixture setup(7);
  Rng rng(8);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  TrainRun run;
  run.options.epochs = 10;
  run.health.enabled = true;
  run.health.grad_clip_norm = 1e-3f;  // Tiny: every epoch should clip.
  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(), run);
  EXPECT_GT(CountEvents(result.health_log, HealthEventKind::kGradientClipped),
            0);
  EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

}  // namespace
}  // namespace skipnode
