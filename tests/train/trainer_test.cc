// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/trainer.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/parallel.h"
#include "graph/datasets.h"
#include "tensor/ops.h"
#include "nn/model_factory.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  explicit Fixture(uint64_t seed)
      : graph(BuildDatasetByName("cora_like", 0.15, seed)),
        split([this, seed]() {
          Rng rng(seed);
          return PublicSplit(graph, 10, 120, 150, rng);
        }()) {}
};

ModelConfig ConfigFor(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 24;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.4f;
  return config;
}

TEST(TrainerTest, ShallowGcnBeatsChanceByAWideMargin) {
  Fixture setup(1);
  Rng rng(2);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  const TrainResult result =
      TrainNodeClassifier(*model, setup.graph, setup.split,
                          StrategyConfig::None(), {.options = {.epochs = 80}});
  const double chance = 1.0 / setup.graph.num_classes();
  EXPECT_GT(result.test_accuracy, chance * 2.5);
  EXPECT_GT(result.best_val_accuracy, chance * 2.5);
  EXPECT_GE(result.best_epoch, 0);
}

TEST(TrainerTest, ResultIsDeterministicForSeed) {
  Fixture setup(3);
  const TrainRun run{.options = {.epochs = 25, .seed = 17}};
  double accs[2];
  for (int i = 0; i < 2; ++i) {
    Rng rng(5);
    auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
    accs[i] = TrainNodeClassifier(*model, setup.graph, setup.split,
                                  StrategyConfig::SkipNodeU(0.5f), run)
                  .test_accuracy;
  }
  EXPECT_DOUBLE_EQ(accs[0], accs[1]);
}

TEST(TrainerTest, EarlyStoppingCutsEpochs) {
  Fixture setup(4);
  Rng rng(6);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(),
      {.options = {.epochs = 300, .patience = 10}});
  EXPECT_LT(result.epochs_run, 300);
}

TEST(TrainerTest, EvalEveryReducesEvaluationWithoutBreakingSelection) {
  Fixture setup(5);
  Rng rng(7);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(),
      {.options = {.epochs = 40, .eval_every = 5}});
  EXPECT_GT(result.test_accuracy, 0.0);
  EXPECT_EQ(result.best_epoch % 5 == 0 || result.best_epoch == 39, true);
}

TEST(TrainerTest, EvaluateLogitsShapeAndDeterminism) {
  Fixture setup(6);
  Rng rng(8);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  Matrix a = EvaluateLogits(*model, setup.graph, StrategyConfig::None());
  Matrix b = EvaluateLogits(*model, setup.graph, StrategyConfig::None());
  EXPECT_EQ(a.rows(), setup.graph.num_nodes());
  EXPECT_EQ(a.cols(), setup.graph.num_classes());
  EXPECT_LT(MaxAbsDiff(a, b), 1e-7f);
}

TEST(TrainerTest, EpochCallbackObservesEveryEvaluatedEpoch) {
  Fixture setup(8);
  Rng rng(10);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  std::vector<int> epochs_seen;
  double last_val = -1.0, last_test = -1.0;
  TrainRun run;
  run.options.epochs = 12;
  run.options.eval_every = 3;
  run.on_epoch = [&](int epoch, double train_loss, double val_acc,
                     double test_acc) {
    epochs_seen.push_back(epoch);
    EXPECT_GT(train_loss, 0.0);
    last_val = val_acc;
    last_test = test_acc;
  };
  const TrainResult result = TrainNodeClassifier(
      *model, setup.graph, setup.split, StrategyConfig::None(), run);
  // Epochs 0, 3, 6, 9 per eval_every, plus the always-evaluated last epoch.
  EXPECT_EQ(epochs_seen, (std::vector<int>{0, 3, 6, 9, 11}));
  EXPECT_GE(last_val, 0.0);
  EXPECT_GE(last_test, 0.0);
  EXPECT_GE(result.best_val_accuracy, 0.0);
}

TEST(TrainerTest, CallbackDoesNotPerturbTheResult) {
  Fixture setup(9);
  const TrainOptions options{.epochs = 20, .seed = 23};
  TrainResult results[2];
  for (int i = 0; i < 2; ++i) {
    Rng rng(11);
    auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
    TrainRun run;
    run.options = options;
    if (i == 1) run.on_epoch = [](int, double, double, double) {};
    results[i] = TrainNodeClassifier(*model, setup.graph, setup.split,
                                     StrategyConfig::SkipNodeU(0.5f), run);
  }
  EXPECT_DOUBLE_EQ(results[0].test_accuracy, results[1].test_accuracy);
  EXPECT_DOUBLE_EQ(results[0].final_train_loss, results[1].final_train_loss);
  EXPECT_EQ(results[0].best_epoch, results[1].best_epoch);
}

// The tentpole contract: the whole training loop — GEMMs, SpMM, dropout,
// Adam — is bitwise reproducible across thread counts, so a run at 4
// threads must reproduce the 1-thread result exactly, not approximately.
TEST(TrainerTest, TrainResultIsIdenticalAcrossThreadCounts) {
  Fixture setup(10);
  const TrainRun run{.options = {.epochs = 30, .seed = 31}};
  TrainResult results[2];
  const int thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    SetParallelThreadCount(thread_counts[i]);
    Rng rng(12);
    auto model = MakeModel("GCN", ConfigFor(setup.graph, 4), rng);
    results[i] = TrainNodeClassifier(*model, setup.graph, setup.split,
                                     StrategyConfig::SkipNodeU(0.5f), run);
  }
  SetParallelThreadCount(0);
  EXPECT_EQ(results[0].best_epoch, results[1].best_epoch);
  EXPECT_EQ(results[0].epochs_run, results[1].epochs_run);
  EXPECT_DOUBLE_EQ(results[0].best_val_accuracy, results[1].best_val_accuracy);
  EXPECT_DOUBLE_EQ(results[0].test_accuracy, results[1].test_accuracy);
  EXPECT_DOUBLE_EQ(results[0].final_train_loss, results[1].final_train_loss);
}

TEST(TrainerTest, TrainingLossFallsOverTraining) {
  Fixture setup(7);
  Rng rng(9);
  auto model = MakeModel("GCN", ConfigFor(setup.graph, 2), rng);
  const double loss_start =
      TrainNodeClassifier(*model, setup.graph, setup.split,
                          StrategyConfig::None(), {.options = {.epochs = 1}})
          .final_train_loss;
  const double loss_end =
      TrainNodeClassifier(*model, setup.graph, setup.split,
                          StrategyConfig::None(), {.options = {.epochs = 60}})
          .final_train_loss;
  EXPECT_LT(loss_end, loss_start);
}

}  // namespace
}  // namespace skipnode
