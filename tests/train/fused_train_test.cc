// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// End-to-end acceptance test for the fused propagation + workspace pool
// (DESIGN §10): a whole training run with the fused masked kernel and the
// pool enabled must produce bitwise-identical trained parameters to the
// naive SpMM + RowSelect path with pooling disabled — at 1 and 4 threads,
// for both SkipNode samplers.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/simd.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  Fixture()
      : graph(BuildDatasetByName("cora_like", 0.15, 1)),
        split([this]() {
          Rng rng(1);
          return PublicSplit(graph, 10, 120, 150, rng);
        }()) {}
};

ModelConfig ConfigFor(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.4f;
  return config;
}

struct TrainedRun {
  TrainResult result;
  std::vector<Matrix> parameters;
};

TrainedRun Train(const Fixture& setup, const std::string& backbone,
                 StrategyConfig strategy, bool fused, bool pooled,
                 int threads) {
  strategy.fuse_propagation = fused;
  SetMatrixPoolEnabled(pooled);
  SetParallelThreadCount(threads);
  Rng rng(12);
  auto model = MakeModel(backbone, ConfigFor(setup.graph, 4), rng);
  TrainedRun run;
  run.result =
      TrainNodeClassifier(*model, setup.graph, setup.split, strategy,
                          {.options = {.epochs = 12, .seed = 31}});
  for (Parameter* p : model->Parameters()) run.parameters.push_back(p->value);
  SetParallelThreadCount(0);
  SetMatrixPoolEnabled(true);
  return run;
}

void ExpectBitwiseEqual(const TrainedRun& a, const TrainedRun& b,
                        const std::string& label) {
  EXPECT_DOUBLE_EQ(a.result.final_train_loss, b.result.final_train_loss)
      << label;
  EXPECT_DOUBLE_EQ(a.result.test_accuracy, b.result.test_accuracy) << label;
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch) << label;
  ASSERT_EQ(a.parameters.size(), b.parameters.size()) << label;
  for (size_t i = 0; i < a.parameters.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(a.parameters[i], b.parameters[i]), 0.0f)
        << label << " parameter " << i;
  }
}

class FusedTrainTest
    : public ::testing::TestWithParam<std::pair<const char*, bool>> {};

TEST_P(FusedTrainTest, FusedPooledTrainingIsBitwiseIdenticalToNaive) {
  const std::string backbone = GetParam().first;
  const bool biased = GetParam().second;
  const StrategyConfig strategy = biased ? StrategyConfig::SkipNodeB(0.5f)
                                         : StrategyConfig::SkipNodeU(0.5f);
  Fixture setup;
  const TrainedRun naive =
      Train(setup, backbone, strategy, /*fused=*/false, /*pooled=*/false,
            /*threads=*/1);
  const TrainedRun fused_1t =
      Train(setup, backbone, strategy, /*fused=*/true, /*pooled=*/true,
            /*threads=*/1);
  const TrainedRun fused_4t =
      Train(setup, backbone, strategy, /*fused=*/true, /*pooled=*/true,
            /*threads=*/4);
  ExpectBitwiseEqual(naive, fused_1t, backbone + " fused@1t");
  ExpectBitwiseEqual(naive, fused_4t, backbone + " fused@4t");
}

INSTANTIATE_TEST_SUITE_P(
    Backbones, FusedTrainTest,
    ::testing::Values(std::make_pair("GCN", false),
                      std::make_pair("GCN", true),
                      std::make_pair("JKNet", false)),
    [](const ::testing::TestParamInfo<std::pair<const char*, bool>>& info) {
      return std::string(info.param.first) +
             (info.param.second ? "Biased" : "Uniform");
    });

// The backward pass runs the parallel transposed-SpMM gather on every path,
// fused or not — training the *naive* path at 1 and 4 threads pins that the
// cached transpose plan and its thread-count-invariant partitioning leave
// trained parameters bitwise unchanged end-to-end (DESIGN §7/§10).
TEST(FusedTrainTest, NaiveTrainingIsThreadCountInvariant) {
  Fixture setup;
  const StrategyConfig strategy = StrategyConfig::SkipNodeU(0.5f);
  const TrainedRun naive_1t =
      Train(setup, "GCN", strategy, /*fused=*/false, /*pooled=*/false,
            /*threads=*/1);
  const TrainedRun naive_4t =
      Train(setup, "GCN", strategy, /*fused=*/false, /*pooled=*/false,
            /*threads=*/4);
  ExpectBitwiseEqual(naive_1t, naive_4t, "naive 1t-vs-4t");
}

// The fused path must actually help the model learn exactly what the naive
// path learns — so a naive-vs-naive rerun must also agree with itself (the
// harness is sound, not vacuously passing on e.g. NaN != NaN).
TEST(FusedTrainTest, HarnessIsSelfConsistent) {
  Fixture setup;
  const StrategyConfig strategy = StrategyConfig::SkipNodeU(0.5f);
  const TrainedRun a =
      Train(setup, "GCN", strategy, /*fused=*/false, /*pooled=*/false, 1);
  const TrainedRun b =
      Train(setup, "GCN", strategy, /*fused=*/false, /*pooled=*/false, 1);
  ExpectBitwiseEqual(a, b, "naive rerun");
  EXPECT_GT(a.result.final_train_loss, 0.0);
}


// End-to-end DESIGN section 14 pin: the SKIPNODE_SIMD kill-switch routes
// every kernel through the scalar references, and a whole training run must
// not move by a single bit.
TEST(FusedTrainTest, TrainingIsBitwiseIdenticalAcrossSimdSwitch) {
  Fixture setup;
  const StrategyConfig strategy = StrategyConfig::SkipNodeU(0.5f);
  const bool saved = simd::Enabled();
  simd::SetEnabled(true);
  const TrainedRun vec =
      Train(setup, "GCN", strategy, /*fused=*/true, /*pooled=*/true, 1);
  simd::SetEnabled(false);
  const TrainedRun scalar =
      Train(setup, "GCN", strategy, /*fused=*/true, /*pooled=*/true, 1);
  const TrainedRun scalar_4t =
      Train(setup, "GCN", strategy, /*fused=*/true, /*pooled=*/true, 4);
  simd::SetEnabled(saved);
  ExpectBitwiseEqual(vec, scalar, "simd on-vs-off");
  ExpectBitwiseEqual(vec, scalar_4t, "simd on-vs-off@4t");
}

// fast_math (the reassociated Gemm dot) changes the floats — by rounding
// only. The run must stay deterministic (rerun and thread-count invariant,
// bitwise) and land at a comparable solution, but is NOT expected to match
// the exact path bitwise.
TEST(FusedTrainTest, FastMathTrainingIsDeterministicAndToleranceClose) {
  Fixture setup;
  StrategyConfig fast = StrategyConfig::SkipNodeU(0.5f);
  fast.fast_math = true;
  const TrainedRun fast_1t =
      Train(setup, "GCN", fast, /*fused=*/true, /*pooled=*/true, 1);
  const TrainedRun fast_rerun =
      Train(setup, "GCN", fast, /*fused=*/true, /*pooled=*/true, 1);
  const TrainedRun fast_4t =
      Train(setup, "GCN", fast, /*fused=*/true, /*pooled=*/true, 4);
  ExpectBitwiseEqual(fast_1t, fast_rerun, "fast_math rerun");
  ExpectBitwiseEqual(fast_1t, fast_4t, "fast_math 1t-vs-4t");

  const StrategyConfig exact = StrategyConfig::SkipNodeU(0.5f);
  const TrainedRun exact_1t =
      Train(setup, "GCN", exact, /*fused=*/true, /*pooled=*/true, 1);
  EXPECT_NEAR(fast_1t.result.final_train_loss,
              exact_1t.result.final_train_loss,
              0.05 * (1.0 + exact_1t.result.final_train_loss));
  ASSERT_EQ(fast_1t.parameters.size(), exact_1t.parameters.size());
  for (size_t i = 0; i < fast_1t.parameters.size(); ++i) {
    // Rounding differences compound over 12 epochs but stay small.
    EXPECT_LT(MaxAbsDiff(fast_1t.parameters[i], exact_1t.parameters[i]),
              0.05f)
        << "parameter " << i;
  }
}

}  // namespace
}  // namespace skipnode
