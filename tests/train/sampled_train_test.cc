// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// End-to-end acceptance for minibatch neighbor-sampled training
// (DESIGN §15): a sampled run at a fixed seed must produce bitwise-identical
// trained parameters at 1/4/8 threads and across the fused/naive sampled
// propagation paths, must exercise the skip-aware frontier pruning whenever
// rho > 0, and must land in the same accuracy band as the full-batch
// reference.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/telemetry.h"
#include "graph/datasets.h"
#include "graph/splits.h"
#include "nn/model_factory.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  Fixture()
      : graph(BuildDatasetByName("cora_like", 0.15, 1)),
        split([this]() {
          Rng rng(1);
          return PublicSplit(graph, 10, 120, 150, rng);
        }()) {}
};

ModelConfig ConfigFor(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.4f;
  return config;
}

struct TrainedRun {
  TrainResult result;
  std::vector<Matrix> parameters;
};

struct TrainSetup {
  std::string backbone = "GCN";
  StrategyConfig strategy = StrategyConfig::SkipNodeU(0.5f);
  int layers = 3;
  int epochs = 10;
  // Empty fanouts = full-batch reference run.
  std::vector<int> fanouts;
  int batch_size = 32;
  bool fused = true;
  int threads = 1;
};

TrainedRun Train(const Fixture& fixture, TrainSetup setup) {
  setup.strategy.fuse_propagation = setup.fused;
  SetParallelThreadCount(setup.threads);
  Rng rng(12);
  auto model = MakeModel(setup.backbone, ConfigFor(fixture.graph, setup.layers),
                         rng);
  TrainedRun run;
  run.result = TrainNodeClassifier(
      *model, fixture.graph, fixture.split, setup.strategy,
      {.options = {.epochs = setup.epochs, .seed = 31},
       .sampling = {.fanouts = setup.fanouts, .batch_size = setup.batch_size}});
  for (Parameter* p : model->Parameters()) run.parameters.push_back(p->value);
  SetParallelThreadCount(0);
  return run;
}

void ExpectBitwiseEqual(const TrainedRun& a, const TrainedRun& b,
                        const std::string& label) {
  EXPECT_DOUBLE_EQ(a.result.final_train_loss, b.result.final_train_loss)
      << label;
  EXPECT_DOUBLE_EQ(a.result.test_accuracy, b.result.test_accuracy) << label;
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch) << label;
  ASSERT_EQ(a.parameters.size(), b.parameters.size()) << label;
  for (size_t i = 0; i < a.parameters.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(a.parameters[i], b.parameters[i]), 0.0f)
        << label << " parameter " << i;
  }
}

class SampledTrainTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(SampledTrainTest, SampledTrainingIsThreadCountInvariant) {
  const std::string backbone = GetParam().first;
  const std::string strategy_name = GetParam().second;
  StrategyConfig strategy = StrategyConfig::None();
  if (strategy_name == "uniform") strategy = StrategyConfig::SkipNodeU(0.5f);
  if (strategy_name == "biased") strategy = StrategyConfig::SkipNodeB(0.5f);

  Fixture fixture;
  TrainSetup setup;
  setup.backbone = backbone;
  setup.strategy = strategy;
  setup.fanouts = {4, 4, 4};
  const TrainedRun ref = Train(fixture, setup);
  EXPECT_GT(ref.result.final_train_loss, 0.0);
  for (const int threads : {4, 8}) {
    TrainSetup threaded = setup;
    threaded.threads = threads;
    ExpectBitwiseEqual(ref, Train(fixture, threaded),
                       backbone + "/" + strategy_name + " @" +
                           std::to_string(threads) + "t");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SampledTrainTest,
    ::testing::Values(std::make_pair("GCN", "uniform"),
                      std::make_pair("GCN", "biased"),
                      std::make_pair("GCN", "none"),
                      std::make_pair("ResGCN", "uniform")),
    [](const ::testing::TestParamInfo<std::pair<const char*, const char*>>&
           info) {
      return std::string(info.param.first) + "_" + info.param.second;
    });

// The fused masked kernel on sampled blocks must match the naive
// SpMM + RowSelect composition bit for bit, pooled or not.
TEST(SampledTrainTest, FusedSampledPathMatchesNaiveBitwise) {
  Fixture fixture;
  TrainSetup fused;
  fused.fanouts = {4, 4, 4};
  TrainSetup naive = fused;
  naive.fused = false;

  SetMatrixPoolEnabled(false);
  const TrainedRun naive_run = Train(fixture, naive);
  SetMatrixPoolEnabled(true);
  const TrainedRun fused_run = Train(fixture, fused);
  TrainSetup fused_4t = fused;
  fused_4t.threads = 4;
  const TrainedRun fused_run_4t = Train(fixture, fused_4t);
  ExpectBitwiseEqual(naive_run, fused_run, "sampled fused-vs-naive");
  ExpectBitwiseEqual(naive_run, fused_run_4t, "sampled fused-vs-naive@4t");
}

// Sampling is a variance-reduction trade, not a different estimator: over
// enough epochs the sampled run must reach the full-batch band. (More
// optimizer steps per epoch usually puts it slightly above.)
TEST(SampledTrainTest, SampledAccuracyTracksFullBatch) {
  Fixture fixture;
  TrainSetup full;
  full.epochs = 30;
  const TrainedRun full_run = Train(fixture, full);

  TrainSetup sampled = full;
  sampled.fanouts = {4, 4, 4};
  const TrainedRun sampled_run = Train(fixture, sampled);

  EXPECT_GT(full_run.result.test_accuracy, 0.5);
  EXPECT_GE(sampled_run.result.test_accuracy,
            full_run.result.test_accuracy - 0.15);
}

// Whenever rho > 0 the sampler must actually skip expansion work: the
// pruning counters are the perf contract behind the ≤ 0.5× epoch budget.
TEST(SampledTrainTest, SkipAwareSamplingPrunesEdgesWheneverRhoPositive) {
  Fixture fixture;
  SetTelemetryEnabled(true);
  ResetTelemetry();
  TrainSetup setup;
  setup.epochs = 3;
  setup.fanouts = {4, 4, 4};
  Train(fixture, setup);
  const TelemetrySnapshot snapshot = SnapshotTelemetry();
  SetTelemetryEnabled(false);

  const MetricStat* nodes = snapshot.Find("sampler.nodes_pruned");
  const MetricStat* edges = snapshot.Find("sampler.edges_pruned");
  ASSERT_NE(nodes, nullptr);
  ASSERT_NE(edges, nullptr);
  EXPECT_GT(nodes->items, 0);
  EXPECT_GT(edges->items, 0);

  // And with rho == 0 (strategy none) no pruning counter may fire.
  SetTelemetryEnabled(true);
  ResetTelemetry();
  TrainSetup none = setup;
  none.strategy = StrategyConfig::None();
  Train(fixture, none);
  const TelemetrySnapshot none_snapshot = SnapshotTelemetry();
  SetTelemetryEnabled(false);
  EXPECT_EQ(none_snapshot.Find("sampler.nodes_pruned"), nullptr);
  EXPECT_EQ(none_snapshot.Find("sampler.edges_pruned"), nullptr);
}

// Reruns must agree with themselves — the determinism pins above are not
// vacuously comparing NaNs.
TEST(SampledTrainTest, HarnessIsSelfConsistent) {
  Fixture fixture;
  TrainSetup setup;
  setup.fanouts = {4, 4, 4};
  const TrainedRun a = Train(fixture, setup);
  const TrainedRun b = Train(fixture, setup);
  ExpectBitwiseEqual(a, b, "sampled rerun");
  EXPECT_GT(a.result.final_train_loss, 0.0);
}

// Four layers puts two middle layers under the skip mask and a deeper
// frontier stack; the thread-invariance contract must hold there too.
TEST(SampledTrainTest, DeeperStackStaysThreadCountInvariant) {
  Fixture fixture;
  TrainSetup setup;
  setup.layers = 4;
  setup.epochs = 6;
  setup.fanouts = {3, 3, 3, 3};
  setup.strategy = StrategyConfig::SkipNodeU(0.4f);
  const TrainedRun ref = Train(fixture, setup);
  TrainSetup threaded = setup;
  threaded.threads = 8;
  ExpectBitwiseEqual(ref, Train(fixture, threaded), "4-layer @8t");
}

}  // namespace
}  // namespace skipnode
