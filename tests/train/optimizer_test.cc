// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace skipnode {
namespace {

// Minimise mse(w, target) with each optimiser; both must converge.
template <typename Opt>
float MinimiseQuadratic(Opt& optimizer, int steps) {
  Parameter w("w", Matrix(2, 2, {5, -3, 2, 7}));
  const Matrix target(2, 2, {1, 1, 1, 1});
  const std::vector<Parameter*> params = {&w};
  for (int step = 0; step < steps; ++step) {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(w), tape.Constant(target));
    Optimizer::ZeroGrad(params);
    tape.Backward(loss);
    optimizer.Step(params);
  }
  return MaxAbsDiff(w.value, target);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Sgd sgd(0.5f);
  EXPECT_LT(MinimiseQuadratic(sgd, 100), 1e-3f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Adam adam(0.1f);
  EXPECT_LT(MinimiseQuadratic(adam, 300), 1e-2f);
}

TEST(OptimizerTest, ZeroGradClearsAccumulators) {
  Parameter w("w", Matrix(1, 1, {1.0f}));
  w.grad.at(0, 0) = 123.0f;
  Optimizer::ZeroGrad({&w});
  EXPECT_EQ(w.grad.at(0, 0), 0.0f);
}

TEST(OptimizerTest, WeightDecayShrinksWeightsWithoutGradients) {
  // The weight-over-decaying mechanism of Section 4.2: when the
  // classification gradient is zero, L2 decay still drives weights down.
  Parameter w("w", Matrix(1, 1, {2.0f}));
  const std::vector<Parameter*> params = {&w};
  Adam adam(0.01f, /*weight_decay=*/0.1f);
  float prev = std::fabs(w.value.at(0, 0));
  for (int step = 0; step < 120; ++step) {
    Optimizer::ZeroGrad(params);  // No backward: gradient stays zero.
    adam.Step(params);
    const float cur = std::fabs(w.value.at(0, 0));
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  EXPECT_LT(prev, 1.1f);
}

TEST(OptimizerTest, SgdWeightDecayMatchesClosedForm) {
  Parameter w("w", Matrix(1, 1, {1.0f}));
  const std::vector<Parameter*> params = {&w};
  Sgd sgd(0.1f, /*weight_decay=*/0.5f);
  Optimizer::ZeroGrad(params);
  sgd.Step(params);
  // w <- w - lr * wd * w = 1 - 0.05.
  EXPECT_NEAR(w.value.at(0, 0), 0.95f, 1e-6f);
}

TEST(OptimizerTest, AdamWConvergesOnQuadratic) {
  AdamW adamw(0.1f);
  EXPECT_LT(MinimiseQuadratic(adamw, 300), 1e-2f);
}

TEST(OptimizerTest, DecoupledDecayIgnoresGradientScale) {
  // In AdamW, two parameters with wildly different gradient scales shrink
  // by the same multiplicative decay (the gradient-free part). In coupled
  // Adam, the decay term enters the adaptive moments and its effect is
  // normalised away for the large-gradient parameter.
  Parameter w("w", Matrix(1, 1, {1.0f}));
  AdamW adamw(0.1f, /*weight_decay=*/0.1f);
  w.grad.at(0, 0) = 0.0f;
  adamw.Step({&w});
  // Pure decoupled decay step: w <- w - lr*wd*w = 1 - 0.01.
  EXPECT_NEAR(w.value.at(0, 0), 0.99f, 1e-5f);
}

TEST(OptimizerTest, CoupledVsDecoupledDifferUnderLargeGradients) {
  // Same gradients, same settings: the two decay styles produce different
  // trajectories (the coupled style's decay is rescaled by 1/sqrt(v)).
  Parameter coupled("a", Matrix(1, 1, {2.0f}));
  Parameter decoupled("b", Matrix(1, 1, {2.0f}));
  Adam adam(0.05f, 0.05f);
  AdamW adamw(0.05f, 0.05f);
  for (int step = 0; step < 30; ++step) {
    coupled.grad.at(0, 0) = 10.0f;  // Constant large gradient.
    decoupled.grad.at(0, 0) = 10.0f;
    adam.Step({&coupled});
    adamw.Step({&decoupled});
  }
  EXPECT_GT(std::fabs(coupled.value.at(0, 0) - decoupled.value.at(0, 0)),
            1e-3f);
}

TEST(OptimizerTest, AdamIsScaleInvariantInFirstStep) {
  // Adam's first update has magnitude ~lr regardless of gradient scale.
  for (const float scale : {1.0f, 100.0f}) {
    Parameter w("w", Matrix(1, 1, {0.0f}));
    w.grad.at(0, 0) = scale;
    Adam adam(0.01f);
    adam.Step({&w});
    EXPECT_NEAR(w.value.at(0, 0), -0.01f, 1e-4f);
  }
}

}  // namespace
}  // namespace skipnode
