// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "train/optimizer.h"

#include <cmath>
#include <cstring>
#include <memory>

#include "base/parallel.h"
#include "base/rng.h"
#include "base/simd.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace skipnode {
namespace {

// Minimise mse(w, target) with each optimiser; both must converge.
template <typename Opt>
float MinimiseQuadratic(Opt& optimizer, int steps) {
  Parameter w("w", Matrix(2, 2, {5, -3, 2, 7}));
  const Matrix target(2, 2, {1, 1, 1, 1});
  const std::vector<Parameter*> params = {&w};
  for (int step = 0; step < steps; ++step) {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(w), tape.Constant(target));
    Optimizer::ZeroGrad(params);
    tape.Backward(loss);
    optimizer.Step(params);
  }
  return MaxAbsDiff(w.value, target);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Sgd sgd(0.5f);
  EXPECT_LT(MinimiseQuadratic(sgd, 100), 1e-3f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Adam adam(0.1f);
  EXPECT_LT(MinimiseQuadratic(adam, 300), 1e-2f);
}

TEST(OptimizerTest, ZeroGradClearsAccumulators) {
  Parameter w("w", Matrix(1, 1, {1.0f}));
  w.grad.at(0, 0) = 123.0f;
  Optimizer::ZeroGrad({&w});
  EXPECT_EQ(w.grad.at(0, 0), 0.0f);
}

TEST(OptimizerTest, WeightDecayShrinksWeightsWithoutGradients) {
  // The weight-over-decaying mechanism of Section 4.2: when the
  // classification gradient is zero, L2 decay still drives weights down.
  Parameter w("w", Matrix(1, 1, {2.0f}));
  const std::vector<Parameter*> params = {&w};
  Adam adam(0.01f, /*weight_decay=*/0.1f);
  float prev = std::fabs(w.value.at(0, 0));
  for (int step = 0; step < 120; ++step) {
    Optimizer::ZeroGrad(params);  // No backward: gradient stays zero.
    adam.Step(params);
    const float cur = std::fabs(w.value.at(0, 0));
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  EXPECT_LT(prev, 1.1f);
}

TEST(OptimizerTest, SgdWeightDecayMatchesClosedForm) {
  Parameter w("w", Matrix(1, 1, {1.0f}));
  const std::vector<Parameter*> params = {&w};
  Sgd sgd(0.1f, /*weight_decay=*/0.5f);
  Optimizer::ZeroGrad(params);
  sgd.Step(params);
  // w <- w - lr * wd * w = 1 - 0.05.
  EXPECT_NEAR(w.value.at(0, 0), 0.95f, 1e-6f);
}

TEST(OptimizerTest, AdamWConvergesOnQuadratic) {
  AdamW adamw(0.1f);
  EXPECT_LT(MinimiseQuadratic(adamw, 300), 1e-2f);
}

TEST(OptimizerTest, DecoupledDecayIgnoresGradientScale) {
  // In AdamW, two parameters with wildly different gradient scales shrink
  // by the same multiplicative decay (the gradient-free part). In coupled
  // Adam, the decay term enters the adaptive moments and its effect is
  // normalised away for the large-gradient parameter.
  Parameter w("w", Matrix(1, 1, {1.0f}));
  AdamW adamw(0.1f, /*weight_decay=*/0.1f);
  w.grad.at(0, 0) = 0.0f;
  adamw.Step({&w});
  // Pure decoupled decay step: w <- w - lr*wd*w = 1 - 0.01.
  EXPECT_NEAR(w.value.at(0, 0), 0.99f, 1e-5f);
}

TEST(OptimizerTest, CoupledVsDecoupledDifferUnderLargeGradients) {
  // Same gradients, same settings: the two decay styles produce different
  // trajectories (the coupled style's decay is rescaled by 1/sqrt(v)).
  Parameter coupled("a", Matrix(1, 1, {2.0f}));
  Parameter decoupled("b", Matrix(1, 1, {2.0f}));
  Adam adam(0.05f, 0.05f);
  AdamW adamw(0.05f, 0.05f);
  for (int step = 0; step < 30; ++step) {
    coupled.grad.at(0, 0) = 10.0f;  // Constant large gradient.
    decoupled.grad.at(0, 0) = 10.0f;
    adam.Step({&coupled});
    adamw.Step({&decoupled});
  }
  EXPECT_GT(std::fabs(coupled.value.at(0, 0) - decoupled.value.at(0, 0)),
            1e-3f);
}

TEST(OptimizerTest, AdamIsScaleInvariantInFirstStep) {
  // Adam's first update has magnitude ~lr regardless of gradient scale.
  for (const float scale : {1.0f, 100.0f}) {
    Parameter w("w", Matrix(1, 1, {0.0f}));
    w.grad.at(0, 0) = scale;
    Adam adam(0.01f);
    adam.Step({&w});
    EXPECT_NEAR(w.value.at(0, 0), -0.01f, 1e-4f);
  }
}


// Optimizer updates must be bitwise identical with the vectorized kernels
// on and off (DESIGN section 14), both decay styles, odd sizes, any thread
// count.
TEST(OptimizerTest, StepsAreBitwiseIdenticalAcrossSimdAndThreads) {
  const bool saved = simd::Enabled();
  Rng rng(21);
  const auto run = [&](bool vec, int threads, bool decoupled, bool sgd) {
    simd::SetEnabled(vec);
    SetParallelThreadCount(threads);
    Parameter w("w", Matrix::Random(13, 19, rng));
    Rng local(33);
    Matrix init = Matrix::Random(13, 19, local);
    w.value = init;
    std::unique_ptr<Optimizer> opt;
    if (sgd) {
      opt = std::make_unique<Sgd>(0.05f, 5e-4f);
    } else if (decoupled) {
      opt = std::make_unique<AdamW>(0.01f, 5e-4f);
    } else {
      opt = std::make_unique<Adam>(0.01f, 5e-4f);
    }
    for (int step = 0; step < 5; ++step) {
      Matrix g = Matrix::Random(13, 19, local);
      w.grad = g;
      opt->Step({&w});
    }
    return w.value;
  };
  for (const bool sgd : {false, true}) {
    for (const bool decoupled : {false, true}) {
      if (sgd && decoupled) continue;
      const Matrix reference = run(false, 1, decoupled, sgd);
      for (const bool vec : {false, true}) {
        for (const int threads : {1, 4, 8}) {
          const Matrix got = run(vec, threads, decoupled, sgd);
          ASSERT_EQ(std::memcmp(got.data(), reference.data(),
                                sizeof(float) *
                                    static_cast<size_t>(got.size())),
                    0)
              << "sgd=" << sgd << " decoupled=" << decoupled
              << " simd=" << vec << " threads=" << threads;
        }
      }
    }
  }
  SetParallelThreadCount(0);
  simd::SetEnabled(saved);
}

}  // namespace
}  // namespace skipnode
