// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Integration tests for the paper's headline claims, at test-suite scale:
//   1. a deep vanilla GCN collapses toward chance accuracy while the same
//      depth with SkipNode stays far above it (Tables 6/7);
//   2. the deep vanilla GCN's representation over-smooths (MAD -> ~0) while
//      SkipNode keeps feature diversity (Figures 2a, 5b);
//   3. the vanilla model's output-layer gradient and weight norms collapse
//      relative to SkipNode's (Figures 2b, 2c).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/oversmoothing.h"
#include "graph/datasets.h"
#include "nn/model_factory.h"
#include "train/dynamics.h"
#include "train/trainer.h"

namespace skipnode {
namespace {

struct Fixture {
  Graph graph;
  Split split;

  explicit Fixture(uint64_t seed)
      : graph(BuildDatasetByName("cora_like", 0.2, seed)),
        split([this, seed]() {
          Rng rng(seed);
          return PublicSplit(graph, 12, 150, 200, rng);
        }()) {}
};

ModelConfig DeepConfig(const Graph& graph, int layers) {
  ModelConfig config;
  config.in_dim = graph.feature_dim();
  config.hidden_dim = 24;
  config.out_dim = graph.num_classes();
  config.num_layers = layers;
  config.dropout = 0.2f;
  return config;
}

double RunGcn(const Fixture& setup, int layers, const StrategyConfig& strategy,
              uint64_t seed) {
  Rng rng(seed);
  auto model = MakeModel("GCN", DeepConfig(setup.graph, layers), rng);
  return TrainNodeClassifier(
             *model, setup.graph, setup.split, strategy,
             {.options = {.epochs = 100, .eval_every = 2, .seed = seed}})
      .test_accuracy;
}

TEST(PaperClaimsTest, SkipNodeRescuesDeepGcn) {
  Fixture setup(1);
  const int kDeep = 12;
  const double vanilla = RunGcn(setup, kDeep, StrategyConfig::None(), 5);
  const double skip_u = RunGcn(setup, kDeep, StrategyConfig::SkipNodeU(0.7f), 5);
  const double chance = 1.0 / setup.graph.num_classes();

  // The deep vanilla GCN is near chance; SkipNode keeps it far above both
  // chance and the vanilla model (Table 6's depth-16+ pattern).
  EXPECT_LT(vanilla, 2.2 * chance);
  EXPECT_GT(skip_u, 2.8 * chance);
  EXPECT_GT(skip_u, vanilla + 0.10);
}

TEST(PaperClaimsTest, ShallowGcnIsAlreadyFine) {
  // SkipNode's story is about depth: at L = 2 the vanilla model works.
  Fixture setup(2);
  const double vanilla = RunGcn(setup, 2, StrategyConfig::None(), 7);
  EXPECT_GT(vanilla, 2.8 / setup.graph.num_classes());
}

TEST(PaperClaimsTest, DynamicsShowThreeCoupledFailures) {
  Fixture setup(3);
  TrainOptions options;
  options.epochs = 80;
  options.weight_decay = 5e-4f;
  options.seed = 11;

  // The paper's Figure 2 uses 9 layers on full-size Cora; the scaled-down
  // graph needs more depth (and no dropout noise) for the vanilla model to
  // collapse reliably.
  const int kDeep = 16;
  ModelConfig config = DeepConfig(setup.graph, kDeep);
  config.dropout = 0.0f;
  Rng rng_a(13), rng_b(13);
  auto vanilla = MakeModel("GCN", config, rng_a);
  auto with_skip = MakeModel("GCN", config, rng_b);

  const DynamicsRecord rec_vanilla = TrainWithDynamics(
      *vanilla, setup.graph, setup.split, StrategyConfig::None(), options);
  const DynamicsRecord rec_skip =
      TrainWithDynamics(*with_skip, setup.graph, setup.split,
                        StrategyConfig::SkipNodeU(0.7f), options);

  const auto tail_mean = [](const std::vector<float>& values) {
    double total = 0.0;
    const size_t start = values.size() - 10;
    for (size_t i = start; i < values.size(); ++i) total += values[i];
    return total / 10.0;
  };

  // (a) Over-smoothing: vanilla MAD collapses, SkipNode keeps diversity.
  EXPECT_GT(tail_mean(rec_skip.mad), 2.0 * tail_mean(rec_vanilla.mad));
  // (b) Gradient vanishing: back-propagation-induced vanishing shows up at
  // the *first* layer's weights (the output-layer CE gradient is bounded
  // below whenever predictions are wrong, per Theorem 1 only its signed sum
  // cancels). SkipNode sustains a much larger input-layer gradient.
  EXPECT_GT(tail_mean(rec_skip.first_layer_gradient_norm),
            2.0 * tail_mean(rec_vanilla.first_layer_gradient_norm));
  // (c) Weight over-decaying: vanilla weights shrink more from their start.
  const double vanilla_ratio =
      tail_mean(rec_vanilla.weight_norm) / rec_vanilla.weight_norm.front();
  const double skip_ratio =
      tail_mean(rec_skip.weight_norm) / rec_skip.weight_norm.front();
  EXPECT_LT(vanilla_ratio, skip_ratio);
  // And the model actually learns under SkipNode.
  EXPECT_GT(tail_mean(rec_skip.val_accuracy),
            tail_mean(rec_vanilla.val_accuracy));
}

TEST(PaperClaimsTest, Theorem1SignedSumStartsNearZeroForDeepGcn) {
  // At the first epochs of a deep (over-smoothed) GCN with class-balanced
  // training nodes, the signed gradient sum at the classification layer is
  // tiny relative to the entry-wise gradient mass.
  Fixture setup(4);
  TrainOptions options;
  options.epochs = 3;
  options.seed = 21;
  Rng rng(23);
  auto model = MakeModel("GCN", DeepConfig(setup.graph, 12), rng);
  const DynamicsRecord record = TrainWithDynamics(
      *model, setup.graph, setup.split, StrategyConfig::None(), options);
  ASSERT_FALSE(record.output_gradient_signed_sum.empty());
  EXPECT_LT(std::fabs(record.output_gradient_signed_sum.front()),
            0.05f * record.output_gradient_norm.front() + 1e-4f);
}

TEST(PaperClaimsTest, BiasedSamplingAlsoRescues) {
  // Biased sampling draws *exactly* rho*N nodes, so very large rho skips
  // nearly every convolution; rho = 0.5 is the paper's typical setting.
  Fixture setup(5);
  const double skip_b =
      RunGcn(setup, 12, StrategyConfig::SkipNodeB(0.5f), 27);
  EXPECT_GT(skip_b, 2.5 / setup.graph.num_classes());
}

TEST(PaperClaimsTest, DecoupledModelsBeatGcnOnHeterophilicGraphs) {
  // The paper's Table 3 heterophily story: on low-homophily graphs where
  // features (not neighbourhoods) carry the label, generalised-PageRank
  // models with learnable hop weights (GPRGNN) far outperform plain GCN.
  Graph graph = BuildDatasetByName("texas_like", 1.0, 31);
  ASSERT_LT(graph.EdgeHomophily(), 0.4);
  Rng split_rng(31);
  Split split = RandomSplit(graph, 0.6, 0.2, split_rng);

  const auto run = [&](const char* backbone) {
    ModelConfig config = DeepConfig(graph, 4);
    Rng rng(33);
    auto model = MakeModel(backbone, config, rng);
    return TrainNodeClassifier(*model, graph, split, StrategyConfig::None(),
                               {.options = {.epochs = 120, .seed = 33}})
        .test_accuracy;
  };
  const double gcn = run("GCN");
  const double gprgnn = run("GPRGNN");
  EXPECT_GT(gprgnn, gcn + 0.15);
}

}  // namespace
}  // namespace skipnode
