// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/csr_matrix.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace skipnode {
namespace {

CsrMatrix SmallMatrix() {
  // [[0, 2, 0],
  //  [1, 0, 3],
  //  [0, 0, 4]]
  return CsrMatrix::FromCoo(3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 2}},
                            {2, 1, 3, 4});
}

TEST(CsrMatrixTest, FromCooBasics) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 1);
  EXPECT_EQ(m.RowNnz(1), 2);
  EXPECT_EQ(m.RowNnz(2), 1);
}

TEST(CsrMatrixTest, ToDenseMatchesLayout) {
  Matrix dense = SmallMatrix().ToDense();
  EXPECT_LT(MaxAbsDiff(dense, Matrix(3, 3, {0, 2, 0, 1, 0, 3, 0, 0, 4})),
            1e-6f);
}

TEST(CsrMatrixTest, DuplicateCoordinatesAreSummed) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 2, {{0, 0}, {0, 0}, {1, 1}},
                                   {1.0f, 2.5f, 4.0f});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.ToDense().at(0, 0), 3.5f);
}

TEST(CsrMatrixTest, UnsortedInputIsSorted) {
  CsrMatrix m = CsrMatrix::FromCoo(2, 3, {{1, 2}, {0, 1}, {1, 0}},
                                   {3, 1, 2});
  const std::vector<int>& cols = m.col_idx();
  EXPECT_EQ(cols[0], 1);  // Row 0.
  EXPECT_EQ(cols[1], 0);  // Row 1 sorted by column.
  EXPECT_EQ(cols[2], 2);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(1);
  CsrMatrix sparse = SmallMatrix();
  Matrix x = Matrix::Random(3, 5, rng);
  EXPECT_LT(MaxAbsDiff(sparse.Multiply(x), MatMul(sparse.ToDense(), x)),
            1e-5f);
}

TEST(CsrMatrixTest, MultiplyTransposedMatchesDense) {
  Rng rng(2);
  CsrMatrix sparse = SmallMatrix();
  Matrix x = Matrix::Random(3, 4, rng);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyTransposed(x),
                       MatMul(Transpose(sparse.ToDense()), x)),
            1e-5f);
}

TEST(CsrMatrixTest, MultiplyAccumulateAdds) {
  Rng rng(3);
  CsrMatrix sparse = SmallMatrix();
  Matrix x = Matrix::Random(3, 2, rng);
  Matrix out = Matrix::Ones(3, 2);
  sparse.MultiplyAccumulate(x, out);
  EXPECT_LT(MaxAbsDiff(out, Add(sparse.Multiply(x), Matrix::Ones(3, 2))),
            1e-5f);
}

TEST(CsrMatrixTest, IdentityActsAsIdentity) {
  Rng rng(4);
  Matrix x = Matrix::Random(5, 3, rng);
  EXPECT_LT(MaxAbsDiff(CsrMatrix::Identity(5).Multiply(x), x), 1e-6f);
}

TEST(CsrMatrixTest, RowSums) {
  Matrix sums = SmallMatrix().RowSums();
  EXPECT_FLOAT_EQ(sums.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(sums.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(sums.at(2, 0), 4.0f);
}

TEST(CsrMatrixTest, SymmetryDetection) {
  EXPECT_FALSE(SmallMatrix().IsSymmetric());
  CsrMatrix sym = CsrMatrix::FromCoo(2, 2, {{0, 1}, {1, 0}, {0, 0}},
                                     {2, 2, 1});
  EXPECT_TRUE(sym.IsSymmetric());
  CsrMatrix asym_values = CsrMatrix::FromCoo(2, 2, {{0, 1}, {1, 0}},
                                             {2, 3});
  EXPECT_FALSE(asym_values.IsSymmetric());
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix empty;
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.nnz(), 0);
}

}  // namespace
}  // namespace skipnode
