// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/csr_matrix.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

CsrMatrix SmallMatrix() {
  // [[0, 2, 0],
  //  [1, 0, 3],
  //  [0, 0, 4]]
  return testing::CsrFromCoo(3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 2}},
                            {2, 1, 3, 4});
}

TEST(CsrMatrixTest, CooBuildBasics) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 1);
  EXPECT_EQ(m.RowNnz(1), 2);
  EXPECT_EQ(m.RowNnz(2), 1);
}

TEST(CsrMatrixTest, ToDenseMatchesLayout) {
  Matrix dense = SmallMatrix().ToDense();
  EXPECT_LT(MaxAbsDiff(dense, Matrix(3, 3, {0, 2, 0, 1, 0, 3, 0, 0, 4})),
            1e-6f);
}

TEST(CsrMatrixTest, DuplicateCoordinatesAreSummed) {
  CsrMatrix m = testing::CsrFromCoo(2, 2, {{0, 0}, {0, 0}, {1, 1}},
                                   {1.0f, 2.5f, 4.0f});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.ToDense().at(0, 0), 3.5f);
}

TEST(CsrMatrixTest, UnsortedInputIsSorted) {
  CsrMatrix m = testing::CsrFromCoo(2, 3, {{1, 2}, {0, 1}, {1, 0}},
                                   {3, 1, 2});
  const std::vector<int>& cols = m.col_idx();
  EXPECT_EQ(cols[0], 1);  // Row 0.
  EXPECT_EQ(cols[1], 0);  // Row 1 sorted by column.
  EXPECT_EQ(cols[2], 2);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(1);
  CsrMatrix sparse = SmallMatrix();
  Matrix x = Matrix::Random(3, 5, rng);
  EXPECT_LT(MaxAbsDiff(sparse.Multiply(x), MatMul(sparse.ToDense(), x)),
            1e-5f);
}

TEST(CsrMatrixTest, MultiplyTransposedMatchesDense) {
  Rng rng(2);
  CsrMatrix sparse = SmallMatrix();
  Matrix x = Matrix::Random(3, 4, rng);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyTransposed(x),
                       MatMul(Transpose(sparse.ToDense()), x)),
            1e-5f);
}

TEST(CsrMatrixTest, MultiplyAccumulateAdds) {
  Rng rng(3);
  CsrMatrix sparse = SmallMatrix();
  Matrix x = Matrix::Random(3, 2, rng);
  Matrix out = Matrix::Ones(3, 2);
  sparse.MultiplyAccumulate(x, out);
  EXPECT_LT(MaxAbsDiff(out, Add(sparse.Multiply(x), Matrix::Ones(3, 2))),
            1e-5f);
}

TEST(CsrMatrixTest, IdentityActsAsIdentity) {
  Rng rng(4);
  Matrix x = Matrix::Random(5, 3, rng);
  EXPECT_LT(MaxAbsDiff(CsrMatrix::Identity(5).Multiply(x), x), 1e-6f);
}

TEST(CsrMatrixTest, RowSums) {
  Matrix sums = SmallMatrix().RowSums();
  EXPECT_FLOAT_EQ(sums.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(sums.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(sums.at(2, 0), 4.0f);
}

TEST(CsrMatrixTest, RowSumsAccumulateInDouble) {
  // Pins the header contract: each row sums in double and rounds to float
  // once at the end. 1e8 + 1 is exactly representable in double but rounds
  // to 1e8 in float, so a float-order accumulation of {1e8, 1, -1e8} would
  // return 0 while the double accumulation returns exactly 1.
  CsrMatrix m = testing::CsrFromCoo(1, 3, {{0, 0}, {0, 1}, {0, 2}},
                                   {1e8f, 1.0f, -1e8f});
  EXPECT_EQ(m.RowSums().at(0, 0), 1.0f);
}

TEST(CsrMatrixTest, TransposePlanMatchesExplicitTranspose) {
  // An asymmetric rectangular matrix, including a duplicate coordinate so
  // the merged-entry path is covered.
  CsrMatrix m = testing::CsrFromCoo(
      3, 4, {{0, 2}, {0, 0}, {1, 2}, {2, 3}, {2, 0}, {2, 0}},
      {5.0f, 1.0f, 2.0f, 7.0f, 3.0f, 4.0f});
  const CsrMatrix::TransposePlan& plan = m.transpose_plan();
  ASSERT_FALSE(plan.symmetric_alias);

  // Reference transpose: swap every stored (r, c, v) and rebuild via the
  // same COO helper used everywhere else.
  std::vector<std::pair<int, int>> coords;
  std::vector<float> values;
  for (int r = 0; r < m.rows(); ++r) {
    for (int64_t e = m.RowBegin(r); e < m.RowEnd(r); ++e) {
      const size_t se = static_cast<size_t>(e);
      coords.push_back({m.col_idx()[se], r});
      values.push_back(m.values()[se]);
    }
  }
  CsrMatrix t = testing::CsrFromCoo(m.cols(), m.rows(), std::move(coords),
                                   std::move(values));

  ASSERT_EQ(plan.row_ptr.size(), t.row_offsets().size());
  for (size_t c = 0; c < plan.row_ptr.size(); ++c) {
    EXPECT_EQ(plan.row_ptr[c], t.row_offsets()[c]) << "offset " << c;
  }
  EXPECT_EQ(plan.src_row, t.col_idx());
  ASSERT_EQ(plan.value_perm.size(), t.values().size());
  for (size_t e = 0; e < plan.value_perm.size(); ++e) {
    EXPECT_EQ(m.values()[static_cast<size_t>(plan.value_perm[e])],
              t.values()[e])
        << "entry " << e;
  }
}

TEST(CsrMatrixTest, TransposePlanAliasesExactlySymmetricMatrices) {
  CsrMatrix sym = testing::CsrFromCoo(
      3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 2}},
      {0.5f, 0.5f, 0.25f, 0.25f, 1.0f});
  const CsrMatrix::TransposePlan& plan = sym.transpose_plan();
  EXPECT_TRUE(plan.symmetric_alias);
  // No second index set materialised.
  EXPECT_TRUE(plan.row_ptr.empty());
  EXPECT_TRUE(plan.src_row.empty());
  EXPECT_TRUE(plan.value_perm.empty());
  Rng rng(21);
  Matrix x = Matrix::Random(3, 4, rng);
  EXPECT_EQ(MaxAbsDiff(sym.Multiply(x), sym.MultiplyTransposed(x)), 0.0f);
}

TEST(CsrMatrixTest, TransposePlanSharedByCopies) {
  CsrMatrix m = SmallMatrix();
  const CsrMatrix::TransposePlan& plan = m.transpose_plan();
  CsrMatrix copy = m;
  // Copies share the cache cell, so the plan is built once per matrix.
  EXPECT_EQ(&copy.transpose_plan(), &plan);
}

TEST(CsrMatrixTest, SymmetryDetection) {
  EXPECT_FALSE(SmallMatrix().IsSymmetric());
  CsrMatrix sym = testing::CsrFromCoo(2, 2, {{0, 1}, {1, 0}, {0, 0}},
                                     {2, 2, 1});
  EXPECT_TRUE(sym.IsSymmetric());
  CsrMatrix asym_values = testing::CsrFromCoo(2, 2, {{0, 1}, {1, 0}},
                                             {2, 3});
  EXPECT_FALSE(asym_values.IsSymmetric());
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix empty;
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.nnz(), 0);
}

}  // namespace
}  // namespace skipnode
