// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/graph_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

// Path graph 0-1-2-3.
EdgeList PathEdges() { return {{0, 1}, {1, 2}, {2, 3}}; }

TEST(GraphOpsTest, Degrees) {
  const std::vector<int> degree = Degrees(4, PathEdges());
  EXPECT_EQ(degree, (std::vector<int>{1, 2, 2, 1}));
}

TEST(GraphOpsTest, BuildAdjacencyIsSymmetricBinary) {
  CsrMatrix a = BuildAdjacency(4, PathEdges());
  EXPECT_TRUE(a.IsSymmetric());
  EXPECT_EQ(a.nnz(), 6);  // Three undirected edges, both directions.
  Matrix dense = a.ToDense();
  EXPECT_FLOAT_EQ(dense.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dense.at(0, 0), 0.0f);  // No self loops.
}

TEST(GraphOpsTest, NormalizedAdjacencyValues) {
  // For edge (u, v): value = 1/sqrt((d_u+1)(d_v+1)); diagonal = 1/(d_u+1).
  CsrMatrix a_hat = NormalizedAdjacency(4, PathEdges());
  Matrix dense = a_hat.ToDense();
  EXPECT_NEAR(dense.at(0, 0), 1.0f / 2.0f, 1e-6f);
  EXPECT_NEAR(dense.at(1, 1), 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(dense.at(0, 1), 1.0f / std::sqrt(6.0f), 1e-6f);
  EXPECT_TRUE(a_hat.IsSymmetric());
}

TEST(GraphOpsTest, NormalizedAdjacencyHasEigenvalueOne) {
  // v_i = sqrt(d_i + 1) is an eigenvector with eigenvalue exactly 1.
  Rng rng(1);
  const EdgeList edges = ErdosRenyi(30, 0.15, rng);
  CsrMatrix a_hat = NormalizedAdjacency(30, edges);
  const std::vector<int> degree = Degrees(30, edges);
  Matrix v(30, 1);
  for (int i = 0; i < 30; ++i) {
    v.at(i, 0) = std::sqrt(static_cast<float>(degree[i]) + 1.0f);
  }
  EXPECT_LT(MaxAbsDiff(a_hat.Multiply(v), v), 1e-4f);
}

TEST(GraphOpsTest, NormalizedAdjacencySpectralRadiusAtMostOne) {
  Rng rng(2);
  const EdgeList edges = ErdosRenyi(25, 0.2, rng);
  CsrMatrix a_hat = NormalizedAdjacency(25, edges);
  Matrix x = Matrix::RandomNormal(25, 1, rng);
  float prev = x.Norm();
  for (int i = 0; i < 20; ++i) {
    x = a_hat.Multiply(x);
    const float cur = x.Norm();
    EXPECT_LE(cur, prev * (1.0f + 1e-5f));
    prev = cur;
  }
}

TEST(GraphOpsTest, NormalizedWithoutSelfLoops) {
  CsrMatrix a_hat =
      NormalizedAdjacency(4, PathEdges(), /*add_self_loops=*/false);
  Matrix dense = a_hat.ToDense();
  EXPECT_FLOAT_EQ(dense.at(0, 0), 0.0f);
  EXPECT_NEAR(dense.at(0, 1), 1.0f / std::sqrt(2.0f), 1e-6f);
}

TEST(GraphOpsTest, DropEdgeZeroRateKeepsEverything) {
  Rng rng(3);
  CsrMatrix full = NormalizedAdjacency(4, PathEdges());
  CsrMatrix sampled = DropEdgeAdjacency(4, PathEdges(), 0.0, rng);
  EXPECT_LT(MaxAbsDiff(full.ToDense(), sampled.ToDense()), 1e-6f);
}

TEST(GraphOpsTest, DropEdgeRemovesRoughlyRate) {
  Rng rng(4);
  const EdgeList edges = ErdosRenyi(60, 0.3, rng);
  const double kRate = 0.5;
  double kept_total = 0.0;
  const int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    CsrMatrix sampled = DropEdgeAdjacency(60, edges, kRate, rng);
    // nnz = 2 * kept_edges + 60 self loops.
    kept_total += (sampled.nnz() - 60) / 2.0;
  }
  const double mean_kept = kept_total / kTrials;
  EXPECT_NEAR(mean_kept / edges.size(), 1.0 - kRate, 0.05);
}

TEST(GraphOpsTest, DropEdgeResultIsRenormalized) {
  Rng rng(5);
  const EdgeList edges = ErdosRenyi(40, 0.2, rng);
  CsrMatrix sampled = DropEdgeAdjacency(40, edges, 0.4, rng);
  EXPECT_TRUE(sampled.IsSymmetric());
  // Every kept node has its self-loop, so all diagonal entries are positive
  // and the eigenvalue-1 property holds on the sampled graph.
  Matrix dense = sampled.ToDense();
  for (int i = 0; i < 40; ++i) EXPECT_GT(dense.at(i, i), 0.0f);
}

TEST(GraphOpsTest, DropNodeIsolatesDroppedNodes) {
  Rng rng(6);
  const EdgeList edges = ErdosRenyi(50, 0.2, rng);
  CsrMatrix sampled = DropNodeAdjacency(50, edges, 0.5, rng);
  Matrix dense = sampled.ToDense();
  int zero_rows = 0;
  for (int i = 0; i < 50; ++i) {
    double row_total = 0.0;
    for (int j = 0; j < 50; ++j) row_total += std::fabs(dense.at(i, j));
    if (row_total == 0.0) ++zero_rows;
  }
  // About half the nodes should be fully isolated (row of zeros).
  EXPECT_GT(zero_rows, 10);
  EXPECT_LT(zero_rows, 40);
  EXPECT_TRUE(sampled.IsSymmetric());
}

TEST(GraphOpsTest, RandomWalkAdjacencyIsRowStochastic) {
  Rng rng(7);
  const EdgeList edges = ErdosRenyi(40, 0.15, rng);
  CsrMatrix walk = RandomWalkAdjacency(40, edges);
  Matrix sums = walk.RowSums();
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(sums.at(i, 0), 1.0f, 1e-5f);  // Self-loop guarantees mass.
  }
  // Constant vectors are fixed points of a row-stochastic operator.
  Matrix ones = Matrix::Ones(40, 2);
  EXPECT_LT(MaxAbsDiff(walk.Multiply(ones), ones), 1e-5f);
}

TEST(GraphOpsTest, RandomWalkWithoutSelfLoops) {
  CsrMatrix walk =
      RandomWalkAdjacency(4, PathEdges(), /*add_self_loops=*/false);
  Matrix dense = walk.ToDense();
  EXPECT_FLOAT_EQ(dense.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dense.at(0, 1), 1.0f);        // Degree-1 endpoint.
  EXPECT_FLOAT_EQ(dense.at(1, 0), 0.5f);        // Degree-2 middle node.
  EXPECT_FLOAT_EQ(dense.at(1, 2), 0.5f);
}

TEST(GraphOpsTest, ConnectedComponentsPathPlusIsolated) {
  // Path 0-1-2-3 plus isolated node 4 and pair 5-6.
  EdgeList edges = PathEdges();
  edges.emplace_back(5, 6);
  const std::vector<int> comp = ConnectedComponents(7, edges);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[4]);
  EXPECT_NE(comp[4], comp[5]);
  EXPECT_EQ(comp[5], comp[6]);
  // Ids are dense starting at 0.
  int max_id = 0;
  for (const int c : comp) max_id = std::max(max_id, c);
  EXPECT_EQ(max_id, 2);
}

}  // namespace
}  // namespace skipnode
