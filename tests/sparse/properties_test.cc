// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// Property sweeps (TEST_P) over graph sizes and densities: the invariants of
// the normalised adjacency and its spectral structure must hold for every
// configuration, not just the hand-picked graphs of the unit tests.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sparse/graph_ops.h"
#include "sparse/spectral.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

struct GraphConfig {
  int num_nodes;
  double edge_probability;
  uint64_t seed;
};

class NormalizedAdjacencySweep
    : public ::testing::TestWithParam<GraphConfig> {
 protected:
  NormalizedAdjacencySweep() {
    const GraphConfig& config = GetParam();
    Rng rng(config.seed);
    edges_ = ErdosRenyi(config.num_nodes, config.edge_probability, rng);
    n_ = config.num_nodes;
    a_hat_ = NormalizedAdjacency(n_, edges_);
  }

  int n_;
  EdgeList edges_;
  CsrMatrix a_hat_;
};

TEST_P(NormalizedAdjacencySweep, IsSymmetric) {
  EXPECT_TRUE(a_hat_.IsSymmetric());
}

TEST_P(NormalizedAdjacencySweep, AllValuesInUnitInterval) {
  for (const float v : a_hat_.values()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_P(NormalizedAdjacencySweep, SqrtDegreeVectorIsFixedPoint) {
  const std::vector<int> degree = Degrees(n_, edges_);
  Matrix v(n_, 1);
  for (int i = 0; i < n_; ++i) {
    v.at(i, 0) = std::sqrt(static_cast<float>(degree[i]) + 1.0f);
  }
  EXPECT_LT(MaxAbsDiff(a_hat_.Multiply(v), v), 1e-3f);
}

TEST_P(NormalizedAdjacencySweep, RowSumsBoundedBySqrtDegree) {
  // Each of the d_i + 1 entries in row i is at most 1/sqrt(d_i + 1), so the
  // row sum is positive and at most sqrt(d_i + 1). (Row sums CAN exceed 1
  // when a hub's neighbours have smaller degrees — only the spectral radius
  // is exactly 1.)
  const std::vector<int> degree = Degrees(n_, edges_);
  Matrix sums = a_hat_.RowSums();
  for (int i = 0; i < n_; ++i) {
    EXPECT_GT(sums.at(i, 0), 0.0f);
    EXPECT_LE(sums.at(i, 0),
              std::sqrt(static_cast<float>(degree[i]) + 1.0f) + 1e-5f);
  }
}

TEST_P(NormalizedAdjacencySweep, SpectralRadiusIsOne) {
  // Power iteration from a random start must converge to eigenvalue 1 (the
  // top of the spectrum), never above.
  Rng rng(GetParam().seed + 1);
  Matrix v = Matrix::RandomNormal(n_, 1, rng);
  v = Scale(v, 1.0f / v.Norm());
  float rayleigh = 0.0f;
  for (int it = 0; it < 100; ++it) {
    Matrix av = a_hat_.Multiply(v);
    rayleigh = RowDots(v, av).Sum();
    const float norm = av.Norm();
    ASSERT_GT(norm, 0.0f);
    v = Scale(av, 1.0f / norm);
  }
  EXPECT_LE(rayleigh, 1.0f + 1e-4f);
  EXPECT_GT(rayleigh, 0.9f);
}

TEST_P(NormalizedAdjacencySweep, LambdaBelowOneAndContraction) {
  const std::vector<int> comp = ConnectedComponents(n_, edges_);
  Matrix basis = TopEigenvectors(comp, Degrees(n_, edges_));
  const float lambda = SecondLargestEigenvalueMagnitude(a_hat_, basis);
  EXPECT_GE(lambda, 0.0f);
  EXPECT_LT(lambda, 1.0f);
  // d_M(A_hat X) <= lambda d_M(X) for random X.
  Rng rng(GetParam().seed + 2);
  Matrix x = Matrix::RandomNormal(n_, 4, rng);
  const float before = DistanceToM(basis, x);
  const float after = DistanceToM(basis, a_hat_.Multiply(x));
  EXPECT_LE(after, lambda * before * 1.05f + 1e-4f);
}

TEST_P(NormalizedAdjacencySweep, DropEdgePreservesInvariants) {
  Rng rng(GetParam().seed + 3);
  CsrMatrix sampled = DropEdgeAdjacency(n_, edges_, 0.4, rng);
  EXPECT_TRUE(sampled.IsSymmetric());
  EXPECT_LE(sampled.nnz(), a_hat_.nnz());
  for (const float v : sampled.values()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeAndDensitySweep, NormalizedAdjacencySweep,
    ::testing::Values(GraphConfig{20, 0.10, 1}, GraphConfig{20, 0.50, 2},
                      GraphConfig{60, 0.05, 3}, GraphConfig{60, 0.30, 4},
                      GraphConfig{150, 0.03, 5}, GraphConfig{150, 0.15, 6}),
    [](const ::testing::TestParamInfo<GraphConfig>& info) {
      return "n" + std::to_string(info.param.num_nodes) + "_p" +
             std::to_string(
                 static_cast<int>(info.param.edge_probability * 100));
    });

}  // namespace
}  // namespace skipnode
