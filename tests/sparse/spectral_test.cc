// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.

#include "sparse/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tensor/ops.h"

namespace skipnode {
namespace {

struct SpectralFixture {
  EdgeList edges;
  std::vector<int> degrees;
  std::vector<int> components;
  CsrMatrix a_hat;
  Matrix basis;

  explicit SpectralFixture(int n, double p, uint64_t seed) {
    Rng rng(seed);
    edges = ErdosRenyi(n, p, rng);
    degrees = Degrees(n, edges);
    components = ConnectedComponents(n, edges);
    a_hat = NormalizedAdjacency(n, edges);
    basis = TopEigenvectors(components, degrees);
  }
};

TEST(SpectralTest, TopEigenvectorsAreOrthonormal) {
  SpectralFixture f(40, 0.1, 1);
  Matrix gram = MatMulTransposeA(f.basis, f.basis);
  EXPECT_LT(MaxAbsDiff(gram, Matrix::Identity(gram.rows())), 1e-4f);
}

TEST(SpectralTest, TopEigenvectorsAreFixedByAHat) {
  SpectralFixture f(40, 0.1, 2);
  // A_hat e_m = e_m for every component eigenvector.
  EXPECT_LT(MaxAbsDiff(f.a_hat.Multiply(f.basis), f.basis), 1e-4f);
}

TEST(SpectralTest, OneColumnPerComponent) {
  // Two disjoint triangles -> two components -> two basis columns.
  EdgeList edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  const std::vector<int> comp = ConnectedComponents(6, edges);
  Matrix basis = TopEigenvectors(comp, Degrees(6, edges));
  EXPECT_EQ(basis.cols(), 2);
}

TEST(SpectralTest, ProjectionIsIdempotent) {
  SpectralFixture f(30, 0.15, 3);
  Rng rng(4);
  Matrix x = Matrix::RandomNormal(30, 5, rng);
  Matrix proj = ProjectOntoM(f.basis, x);
  Matrix proj2 = ProjectOntoM(f.basis, proj);
  EXPECT_LT(MaxAbsDiff(proj, proj2), 1e-4f);
}

TEST(SpectralTest, DistanceIsZeroInsideM) {
  SpectralFixture f(30, 0.15, 5);
  Rng rng(6);
  // Any E * W is inside M = U (x) R^d.
  Matrix coeff = Matrix::RandomNormal(f.basis.cols(), 4, rng);
  Matrix inside = MatMul(f.basis, coeff);
  EXPECT_LT(DistanceToM(f.basis, inside), 1e-4f * inside.Norm() + 1e-5f);
}

TEST(SpectralTest, DistanceIsAtMostNorm) {
  SpectralFixture f(30, 0.15, 7);
  Rng rng(8);
  Matrix x = Matrix::RandomNormal(30, 3, rng);
  const float d = DistanceToM(f.basis, x);
  EXPECT_GE(d, 0.0f);
  EXPECT_LE(d, x.Norm() + 1e-4f);
}

TEST(SpectralTest, PropagationContractsDistanceByLambda) {
  // The core of Eq. (3): d_M(A_hat X) <= lambda * d_M(X).
  SpectralFixture f(50, 0.1, 9);
  const float lambda = SecondLargestEigenvalueMagnitude(f.a_hat, f.basis);
  Rng rng(10);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix x = Matrix::RandomNormal(50, 6, rng);
    const float before = DistanceToM(f.basis, x);
    const float after = DistanceToM(f.basis, f.a_hat.Multiply(x));
    EXPECT_LE(after, lambda * before * 1.01f + 1e-4f);
  }
}

TEST(SpectralTest, LambdaIsStrictlyInsideUnitIntervalForConnectedGraph) {
  SpectralFixture f(40, 0.3, 11);  // Dense enough to be connected.
  const float lambda = SecondLargestEigenvalueMagnitude(f.a_hat, f.basis);
  EXPECT_GT(lambda, 0.0f);
  EXPECT_LT(lambda, 1.0f);
}

TEST(SpectralTest, LambdaMatchesDensePowerIterationOnTinyGraph) {
  // Path graph 0-1-2: compute the three eigenvalues of A_hat by hand using
  // the characteristic polynomial of the 3x3 dense matrix.
  EdgeList edges = {{0, 1}, {1, 2}};
  CsrMatrix a_hat = NormalizedAdjacency(3, edges);
  Matrix basis =
      TopEigenvectors(ConnectedComponents(3, edges), Degrees(3, edges));
  const float lambda = SecondLargestEigenvalueMagnitude(a_hat, basis);
  // Dense check: deflate and run many exact dense multiplications.
  Matrix dense = a_hat.ToDense();
  Rng rng(12);
  Matrix v = Matrix::RandomNormal(3, 1, rng);
  for (int it = 0; it < 500; ++it) {
    // Deflate the top eigenvector, multiply, normalise.
    Matrix coeff = MatMulTransposeA(basis, v);
    v = Sub(v, MatMul(basis, coeff));
    v = MatMul(dense, v);
    const float norm = v.Norm();
    ASSERT_GT(norm, 0.0f);
    v = Scale(v, 1.0f / norm);
  }
  const float rayleigh = RowDots(v, MatMul(dense, v)).Sum();
  EXPECT_NEAR(lambda, std::fabs(rayleigh), 1e-3f);
}

TEST(SpectralTest, DenserGraphHasSmallerLambda) {
  // The paper (Remark 2): larger/denser graphs have smaller lambda.
  SpectralFixture sparse(60, 0.08, 13);
  SpectralFixture dense(60, 0.5, 13);
  const float lambda_sparse =
      SecondLargestEigenvalueMagnitude(sparse.a_hat, sparse.basis);
  const float lambda_dense =
      SecondLargestEigenvalueMagnitude(dense.a_hat, dense.basis);
  EXPECT_LT(lambda_dense, lambda_sparse);
}

}  // namespace
}  // namespace skipnode
