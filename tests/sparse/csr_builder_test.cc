// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The streaming two-pass CSR builder (DESIGN §13). Contracts under test:
//   * Value mode reproduces the serial COO reference (testing/coo_matrix.h,
//     the retired CsrMatrix::FromCoo semantics) bit for bit — same row
//     pointers, column order, and summed duplicate values — at any thread
//     count (the builder's per-row merge fans out).
//   * Pattern mode collapses duplicates before weights exist, exposes the
//     final degrees, and assigns fn(r, c) per surviving entry.
//   * The forced-wide (64-bit offset) build is bitwise identical to the
//     narrow build through every SpMM kernel and the transpose plan, so the
//     index width is purely a storage choice.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/rng.h"
#include "sparse/csr_builder.h"
#include "sparse/csr_matrix.h"
#include "tensor/ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

struct Coo {
  int rows = 0;
  int cols = 0;
  std::vector<std::pair<int, int>> coords;
  std::vector<float> values;
};

// Random COO with skewed rows and ~10% duplicate coordinates (float-equal
// values per coordinate, like every duplicate producer in the repo).
Coo RandomCoo(int rows, int cols, uint64_t seed) {
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    const int degree =
        r % 13 == 0 ? 30 : static_cast<int>(rng.UniformInt(6));
    for (int k = 0; k < degree; ++k) {
      const int c = static_cast<int>(rng.UniformInt(cols));
      const float v = rng.UniformFloat(-2.0f, 2.0f);
      coo.coords.push_back({r, c});
      coo.values.push_back(v);
      if (rng.Bernoulli(0.1)) {  // duplicate the coordinate, equal value
        coo.coords.push_back({r, c});
        coo.values.push_back(v);
      }
    }
  }
  return coo;
}

CsrMatrix BuildStreaming(const Coo& coo, bool force_wide) {
  CsrBuilder::Options options;
  options.force_wide_offsets = force_wide;
  CsrBuilder builder(coo.rows, coo.cols, options);
  for (const auto& [r, c] : coo.coords) builder.CountEntry(r);
  builder.FinishCounting();
  for (size_t i = 0; i < coo.coords.size(); ++i) {
    builder.AddEntry(coo.coords[i].first, coo.coords[i].second,
                     coo.values[i]);
  }
  return builder.Build();
}

void ExpectIdenticalCsr(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (int r = 0; r <= a.rows(); ++r) {
    EXPECT_EQ(a.row_offsets()[static_cast<size_t>(r)],
              b.row_offsets()[static_cast<size_t>(r)])
        << "row " << r;
  }
  for (int64_t e = 0; e < a.nnz(); ++e) {
    const size_t i = static_cast<size_t>(e);
    EXPECT_EQ(a.col_idx()[i], b.col_idx()[i]) << "entry " << e;
    EXPECT_EQ(a.values()[i], b.values()[i]) << "entry " << e;  // bitwise
  }
}

class CsrBuilderTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreadCount(0); }
};

TEST_F(CsrBuilderTest, ValueModeMatchesCooReferenceAtAllThreadCounts) {
  const Coo coo = RandomCoo(211, 97, /*seed=*/21);
  const CsrMatrix reference =
      testing::CsrFromCoo(coo.rows, coo.cols, coo.coords, coo.values);
  for (const int threads : {1, 4, 8}) {
    SetParallelThreadCount(threads);
    ExpectIdenticalCsr(reference, BuildStreaming(coo, /*force_wide=*/false));
  }
}

TEST_F(CsrBuilderTest, DuplicatesSumInPerRowInsertionOrder) {
  // Values chosen so float addition order matters: (0.1 + 0.2) + 0.3 and
  // 0.1 + (0.3 + 0.2) differ in the last bit. Both paths must pick the same
  // (insertion) order.
  Coo coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.coords = {{0, 2}, {0, 2}, {1, 0}, {0, 2}, {1, 1}};
  coo.values = {0.1f, 0.2f, 5.0f, 0.3f, -1.0f};
  const CsrMatrix reference =
      testing::CsrFromCoo(coo.rows, coo.cols, coo.coords, coo.values);
  const CsrMatrix streamed = BuildStreaming(coo, /*force_wide=*/false);
  ExpectIdenticalCsr(reference, streamed);
  EXPECT_EQ(streamed.values()[0], (0.1f + 0.2f) + 0.3f);  // bitwise
  EXPECT_EQ(streamed.nnz(), 3);
}

TEST_F(CsrBuilderTest, RowOwnerFillMatchesSerialFillAtAllThreadCounts) {
  // The sampler's fill mode: BeginRowFill + one AddRowEntries call per row,
  // issued from parallel code with row ownership. Must be bitwise identical
  // to the serial AddEntry path at any thread count.
  const Coo coo = RandomCoo(160, 80, /*seed=*/33);
  const CsrMatrix reference = BuildStreaming(coo, /*force_wide=*/false);
  // Group the COO stream by row, preserving per-row insertion order.
  std::vector<std::vector<int>> row_cols(static_cast<size_t>(coo.rows));
  std::vector<std::vector<float>> row_vals(static_cast<size_t>(coo.rows));
  for (size_t i = 0; i < coo.coords.size(); ++i) {
    row_cols[static_cast<size_t>(coo.coords[i].first)].push_back(
        coo.coords[i].second);
    row_vals[static_cast<size_t>(coo.coords[i].first)].push_back(
        coo.values[i]);
  }
  for (const int threads : {1, 4, 8}) {
    SetParallelThreadCount(threads);
    CsrBuilder builder(coo.rows, coo.cols);
    for (const auto& [r, c] : coo.coords) builder.CountEntry(r);
    builder.FinishCounting();
    builder.BeginRowFill();
    ParallelFor(0, coo.rows, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        builder.AddRowEntries(
            static_cast<int>(r), row_cols[static_cast<size_t>(r)].data(),
            row_vals[static_cast<size_t>(r)].data(),
            static_cast<int>(row_cols[static_cast<size_t>(r)].size()));
      }
    });
    ExpectIdenticalCsr(reference, builder.Build());
  }
}

TEST_F(CsrBuilderTest, EmptyRowsAndEmptyMatrix) {
  CsrBuilder builder(4, 4);
  builder.CountEntry(2);
  builder.FinishCounting();
  builder.AddEntry(2, 1, 7.0f);
  const CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.RowNnz(0), 0);
  EXPECT_EQ(m.RowNnz(2), 1);

  CsrBuilder empty(3, 5);
  empty.FinishCounting();
  const CsrMatrix e = empty.Build();
  EXPECT_EQ(e.rows(), 3);
  EXPECT_EQ(e.cols(), 5);
  EXPECT_EQ(e.nnz(), 0);
}

TEST_F(CsrBuilderTest, PatternModeCollapsesDuplicatesBeforeWeights) {
  CsrBuilder builder(3, 3);
  // Row 0: {0,1} streamed three times, {0,2} once. Row 2: {2,0}.
  for (int i = 0; i < 3; ++i) builder.CountEntry(0);
  builder.CountEntry(0);
  builder.CountEntry(2);
  builder.FinishCounting();
  for (int i = 0; i < 3; ++i) builder.AddPatternEntry(0, 1);
  builder.AddPatternEntry(0, 2);
  builder.AddPatternEntry(2, 0);
  builder.FinalizePattern();

  // Degrees are post-deduplication: the weight fn sees final structure.
  EXPECT_EQ(builder.FinalRowNnz(0), 2);
  EXPECT_EQ(builder.FinalRowNnz(1), 0);
  EXPECT_EQ(builder.FinalRowNnz(2), 1);
  EXPECT_EQ(builder.final_nnz(), 3);

  const CsrMatrix m = builder.BuildWithValues(
      [](int r, int c) { return static_cast<float>(10 * r + c); });
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.col_idx()[0], 1);
  EXPECT_EQ(m.values()[0], 1.0f);   // fn(0, 1)
  EXPECT_EQ(m.values()[1], 2.0f);   // fn(0, 2)
  EXPECT_EQ(m.values()[2], 20.0f);  // fn(2, 0)
}

TEST_F(CsrBuilderTest, NarrowWidthIsTheDefaultAndWideIsForced) {
  const Coo coo = RandomCoo(50, 50, /*seed=*/3);
  EXPECT_EQ(BuildStreaming(coo, /*force_wide=*/false).index_width(), 32);
  EXPECT_EQ(BuildStreaming(coo, /*force_wide=*/true).index_width(), 64);
}

TEST_F(CsrBuilderTest, WideBuildBitwiseMatchesNarrowThroughEveryKernel) {
  const Coo coo = RandomCoo(180, 77, /*seed=*/42);
  const CsrMatrix narrow = BuildStreaming(coo, /*force_wide=*/false);
  const CsrMatrix wide = BuildStreaming(coo, /*force_wide=*/true);
  ASSERT_EQ(narrow.index_width(), 32);
  ASSERT_EQ(wide.index_width(), 64);
  ExpectIdenticalCsr(narrow, wide);

  Rng data_rng(7);
  const Matrix x = Matrix::Random(narrow.cols(), 6, data_rng);
  const Matrix g = Matrix::Random(narrow.rows(), 6, data_rng);
  std::vector<uint8_t> row_mask(narrow.rows(), 0);
  for (int r = 0; r < narrow.rows(); ++r) row_mask[r] = (r % 3 == 0);

  for (const int threads : {1, 4, 8}) {
    SetParallelThreadCount(threads);
    EXPECT_EQ(MaxAbsDiff(narrow.Multiply(x), wide.Multiply(x)), 0.0f)
        << "threads=" << threads;
    Matrix acc_narrow(narrow.rows(), 6), acc_wide(narrow.rows(), 6);
    narrow.MultiplyAccumulateMasked(x, row_mask, acc_narrow);
    wide.MultiplyAccumulateMasked(x, row_mask, acc_wide);
    EXPECT_EQ(MaxAbsDiff(acc_narrow, acc_wide), 0.0f)
        << "masked threads=" << threads;
    // The transposed gathers exercise the plan's row_ptr/value_perm at both
    // widths (rectangular-free but asymmetric values: no alias).
    EXPECT_EQ(
        MaxAbsDiff(narrow.MultiplyTransposed(g), wide.MultiplyTransposed(g)),
        0.0f)
        << "transposed threads=" << threads;
    EXPECT_EQ(MaxAbsDiff(narrow.MultiplyTransposedMasked(g, row_mask),
                         wide.MultiplyTransposedMasked(g, row_mask)),
              0.0f)
        << "transposed masked threads=" << threads;
  }
  EXPECT_EQ(MaxAbsDiff(narrow.RowSums(), wide.RowSums()), 0.0f);
  EXPECT_EQ(wide.transpose_plan().symmetric_alias,
            narrow.transpose_plan().symmetric_alias);
}

TEST_F(CsrBuilderTest, WidePatternModeMatchesNarrow) {
  CsrBuilder::Options wide_options;
  wide_options.force_wide_offsets = true;
  CsrBuilder narrow(40, 40);
  CsrBuilder wide(40, 40, wide_options);
  Rng rng(9);
  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < 300; ++i) {
    entries.push_back({static_cast<int>(rng.UniformInt(40)),
                       static_cast<int>(rng.UniformInt(40))});
  }
  for (const auto& [r, c] : entries) {
    narrow.CountEntry(r);
    wide.CountEntry(r);
  }
  narrow.FinishCounting();
  wide.FinishCounting();
  for (const auto& [r, c] : entries) {
    narrow.AddPatternEntry(r, c);
    wide.AddPatternEntry(r, c);
  }
  narrow.FinalizePattern();
  wide.FinalizePattern();
  ASSERT_EQ(narrow.final_nnz(), wide.final_nnz());
  const auto weight = [](int r, int c) {
    return 1.0f / static_cast<float>(1 + r + c);
  };
  ExpectIdenticalCsr(narrow.BuildWithValues(weight),
                     wide.BuildWithValues(weight));
}

}  // namespace
}  // namespace skipnode
