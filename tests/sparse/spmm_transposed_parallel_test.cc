// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The parallel transposed-SpMM gathers (DESIGN §7/§10). Contract under test:
// MultiplyTransposed / MultiplyTransposedMasked over the cached transpose
// plan must be bitwise identical to the pre-plan *serial scatter* kernels —
// reimplemented verbatim below as the reference — at 1, 4, and 8 threads,
// for asymmetric rectangular matrices (plan materialised) and for symmetric
// normalised adjacencies (forward-CSR alias fast path).

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/rng.h"
#include "sparse/csr_matrix.h"
#include "sparse/graph_ops.h"
#include "tensor/ops.h"
#include "testing/coo_matrix.h"

namespace skipnode {
namespace {

// The retired serial kernel, verbatim: scatters row r of `dense` into output
// row col_idx[e], accumulating each output row's contributions in increasing
// source-row order.
Matrix SerialScatterTransposed(const CsrMatrix& a, const Matrix& dense) {
  Matrix out(a.cols(), dense.cols());
  const int d = dense.cols();
  for (int r = 0; r < a.rows(); ++r) {
    const float* src = dense.row(r);
    for (int64_t e = a.RowBegin(r); e < a.RowEnd(r); ++e) {
      const size_t se = static_cast<size_t>(e);
      const float w = a.values()[se];
      float* dst = out.row(a.col_idx()[se]);
      for (int j = 0; j < d; ++j) dst[j] += w * src[j];
    }
  }
  return out;
}

Matrix SerialScatterTransposedMasked(const CsrMatrix& a, const Matrix& dense,
                                     const std::vector<uint8_t>& skip_rows) {
  Matrix out(a.cols(), dense.cols());
  const int d = dense.cols();
  for (int r = 0; r < a.rows(); ++r) {
    if (skip_rows[r]) continue;
    const float* src = dense.row(r);
    for (int64_t e = a.RowBegin(r); e < a.RowEnd(r); ++e) {
      const size_t se = static_cast<size_t>(e);
      const float w = a.values()[se];
      float* dst = out.row(a.col_idx()[se]);
      for (int j = 0; j < d; ++j) dst[j] += w * src[j];
    }
  }
  return out;
}

// Rectangular (rows != cols) random matrix with a few heavy rows, so the
// nnz-balanced partition sees skew and the plan (not the alias) is used.
CsrMatrix AsymmetricRectangular(int rows, int cols, Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  std::vector<float> values;
  for (int r = 0; r < rows; ++r) {
    const int degree = r % 17 == 0 ? 40 : 1 + static_cast<int>(rng.UniformInt(5));
    for (int k = 0; k < degree; ++k) {
      coords.push_back({r, static_cast<int>(rng.UniformInt(cols))});
      values.push_back(rng.UniformFloat(-2.0f, 2.0f));
    }
  }
  return testing::CsrFromCoo(rows, cols, std::move(coords), std::move(values));
}

// A symmetric normalised adjacency, the production shape of every backward
// Aᵀ·g in the repo.
CsrMatrix SymmetricAdjacency(int n, Rng& rng) {
  EdgeList edges;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 3; ++k) {
      const int j = static_cast<int>(rng.UniformInt(n));
      if (j != i) edges.push_back({i, j});
    }
  }
  return NormalizedAdjacency(n, edges);
}

std::vector<uint8_t> AlternatingMask(int rows) {
  std::vector<uint8_t> mask(rows, 0);
  for (int r = 0; r < rows; ++r) mask[r] = (r % 3 == 0) ? 1 : 0;
  return mask;
}

class SpmmTransposedParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreadCount(0); }

  void ExpectBitwiseAtAllThreadCounts(const CsrMatrix& a) {
    Rng rng(77);
    const Matrix g = Matrix::Random(a.rows(), 9, rng);
    const std::vector<uint8_t> mask = AlternatingMask(a.rows());
    const Matrix ref = SerialScatterTransposed(a, g);
    const Matrix ref_masked = SerialScatterTransposedMasked(a, g, mask);
    for (const int threads : {1, 4, 8}) {
      SetParallelThreadCount(threads);
      // Bitwise: exact zero difference, not approximately zero.
      EXPECT_EQ(MaxAbsDiff(ref, a.MultiplyTransposed(g)), 0.0f)
          << "threads=" << threads;
      EXPECT_EQ(MaxAbsDiff(ref_masked, a.MultiplyTransposedMasked(g, mask)),
                0.0f)
          << "masked threads=" << threads;
    }
  }
};

TEST_F(SpmmTransposedParallelTest, AsymmetricRectangularMatchesSerialScatter) {
  Rng rng(5);
  const CsrMatrix a = AsymmetricRectangular(203, 91, rng);
  ASSERT_FALSE(a.transpose_plan().symmetric_alias);
  ExpectBitwiseAtAllThreadCounts(a);
}

TEST_F(SpmmTransposedParallelTest, SymmetricAdjacencyMatchesSerialScatter) {
  Rng rng(6);
  const CsrMatrix a = SymmetricAdjacency(150, rng);
  // Â is exactly symmetric (inv_sqrt[u] * inv_sqrt[v] commutes bitwise), so
  // the plan must alias the forward CSR instead of materialising an index
  // set.
  ASSERT_TRUE(a.transpose_plan().symmetric_alias);
  ExpectBitwiseAtAllThreadCounts(a);
}

TEST_F(SpmmTransposedParallelTest, SymmetricAliasTransposeEqualsForward) {
  Rng rng(7);
  const CsrMatrix a = SymmetricAdjacency(120, rng);
  Rng data_rng(8);
  const Matrix x = Matrix::Random(a.rows(), 6, data_rng);
  // For symmetric A, Aᵀx = Ax; with the alias both run the same gather, so
  // the results must agree bitwise.
  EXPECT_EQ(MaxAbsDiff(a.Multiply(x), a.MultiplyTransposed(x)), 0.0f);
}

TEST_F(SpmmTransposedParallelTest, NearSymmetricValuesDoNotAlias) {
  // Mirrored values differing below IsSymmetric's default tolerance must
  // still defeat the alias: the fast path requires *exact* equality, or the
  // gather would read A[c][r] bits that differ from the scatter's A[r][c].
  const CsrMatrix a = testing::CsrFromCoo(
      2, 2, {{0, 1}, {1, 0}}, {1.0f, 1.0f + 1.1920929e-7f});
  ASSERT_FALSE(a.transpose_plan().symmetric_alias);
  ExpectBitwiseAtAllThreadCounts(a);
}

TEST_F(SpmmTransposedParallelTest, MaskedMatchesZeroedRowsUnderThreads) {
  Rng rng(9);
  const CsrMatrix a = AsymmetricRectangular(140, 60, rng);
  Rng data_rng(10);
  const Matrix g = Matrix::Random(a.rows(), 5, data_rng);
  const std::vector<uint8_t> mask = AlternatingMask(a.rows());
  Matrix g_zeroed = g;
  for (int r = 0; r < g.rows(); ++r) {
    if (!mask[r]) continue;
    for (int j = 0; j < g.cols(); ++j) g_zeroed(r, j) = 0.0f;
  }
  for (const int threads : {1, 4, 8}) {
    SetParallelThreadCount(threads);
    EXPECT_EQ(MaxAbsDiff(a.MultiplyTransposed(g_zeroed),
                         a.MultiplyTransposedMasked(g, mask)),
              0.0f)
        << "threads=" << threads;
  }
}

TEST_F(SpmmTransposedParallelTest, EmptyAndAllSkippedEdgeCases) {
  Rng rng(11);
  const CsrMatrix a = AsymmetricRectangular(30, 12, rng);
  Rng data_rng(12);
  const Matrix g = Matrix::Random(30, 4, data_rng);
  SetParallelThreadCount(4);
  const std::vector<uint8_t> all(30, 1);
  EXPECT_EQ(MaxAbsDiff(a.MultiplyTransposedMasked(g, all), Matrix(12, 4)),
            0.0f);
  const CsrMatrix empty;
  const Matrix none = empty.MultiplyTransposed(Matrix(0, 4));
  EXPECT_EQ(none.rows(), 0);
  EXPECT_EQ(none.cols(), 4);
}

}  // namespace
}  // namespace skipnode
