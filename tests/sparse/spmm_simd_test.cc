// Copyright 2026 The SkipNode Authors.
// Licensed under the Apache License, Version 2.0.
//
// The four CSR kernels (forward / masked forward / transposed backward /
// masked transposed backward) must be bitwise identical with the vectorized
// inner loops on and off (DESIGN §14), at 1/4/8 threads (DESIGN §7), over
// both offset widths (DESIGN §13), and across odd dense widths that leave a
// strip tail. This is the cross-product the SIMD rewiring must not move.

#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/rng.h"
#include "base/simd.h"
#include "sparse/csr_builder.h"
#include "sparse/csr_matrix.h"
#include "tensor/matrix.h"

namespace skipnode {
namespace {

// Restores thread count and the SIMD switch after each case.
class StateGuard {
 public:
  StateGuard() : simd_(simd::Enabled()) {}
  ~StateGuard() {
    SetParallelThreadCount(0);
    simd::SetEnabled(simd_);
  }

 private:
  bool simd_;
};

// Random rectangular CSR with a couple of heavy rows (skewed nnz) built at
// the requested offset width.
CsrMatrix RandomCsr(int rows, int cols, bool wide, Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  std::vector<float> values;
  for (int r = 0; r < rows; ++r) {
    const int degree = (r % 11 == 0) ? cols / 2 : 3;
    for (int k = 0; k < degree; ++k) {
      coords.push_back({r, static_cast<int>(rng.UniformInt(cols))});
      values.push_back(rng.UniformFloat(-1.0f, 1.0f));
    }
  }
  CsrBuilder::Options options;
  options.force_wide_offsets = wide;
  CsrBuilder builder(rows, cols, options);
  for (const auto& [r, c] : coords) builder.CountEntry(r);
  builder.FinishCounting();
  for (size_t i = 0; i < coords.size(); ++i) {
    builder.AddEntry(coords[i].first, coords[i].second, values[i]);
  }
  return builder.Build();
}

std::vector<uint8_t> RandomMask(int n, Rng& rng) {
  std::vector<uint8_t> mask(n);
  for (auto& m : mask) m = rng.Bernoulli(0.5) ? 1 : 0;
  return mask;
}

void ExpectBitwiseEq(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    uint32_t ua, ub;
    std::memcpy(&ua, a.data() + i, 4);
    std::memcpy(&ub, b.data() + i, 4);
    ASSERT_EQ(ua, ub) << what << " element " << i;
  }
}

TEST(SpmmSimdTest, AllFourKernelsBitwiseAcrossSimdThreadsWidthAndTails) {
  const StateGuard guard;
  const int rows = 97, cols = 61;
  Rng data_rng(3);
  // d=19 leaves a 3-element strip tail; d=32 is strip-covered.
  for (const int d : {19, 32}) {
    Matrix x(cols, d), g(rows, d);
    for (int64_t i = 0; i < x.size(); ++i) {
      x.data()[i] = data_rng.UniformFloat(-1.0f, 1.0f);
    }
    for (int64_t i = 0; i < g.size(); ++i) {
      g.data()[i] = data_rng.UniformFloat(-1.0f, 1.0f);
    }
    Rng mask_rng(5);
    const auto row_mask = RandomMask(rows, mask_rng);

    Matrix narrow_fwd;
    for (const bool wide : {false, true}) {
      Rng csr_rng(7);  // Same matrix content at both widths.
      const CsrMatrix a = RandomCsr(rows, cols, wide, csr_rng);
      ASSERT_EQ(a.index_width(), wide ? 64 : 32);

      // Reference: SIMD off, single thread.
      simd::SetEnabled(false);
      SetParallelThreadCount(1);
      const Matrix fwd = a.Multiply(x);
      Matrix fwd_masked(rows, d);
      a.MultiplyAccumulateMasked(x, row_mask, fwd_masked);
      const Matrix bwd = a.MultiplyTransposed(g);
      const Matrix bwd_masked = a.MultiplyTransposedMasked(g, row_mask);

      for (const bool vec : {false, true}) {
        simd::SetEnabled(vec);
        for (const int threads : {1, 4, 8}) {
          SetParallelThreadCount(threads);
          ExpectBitwiseEq(a.Multiply(x), fwd, "forward");
          Matrix masked(rows, d);
          a.MultiplyAccumulateMasked(x, row_mask, masked);
          ExpectBitwiseEq(masked, fwd_masked, "masked forward");
          ExpectBitwiseEq(a.MultiplyTransposed(g), bwd, "backward");
          ExpectBitwiseEq(a.MultiplyTransposedMasked(g, row_mask), bwd_masked,
                          "masked backward");
        }
      }
      // Narrow and wide must agree too (same content, different offsets).
      if (!wide) {
        narrow_fwd = fwd;
      } else {
        ExpectBitwiseEq(fwd, narrow_fwd, "narrow-vs-wide forward");
      }
    }
  }
}

}  // namespace
}  // namespace skipnode
